// The paper's running example (§II-B): a networked syringe pump with a
// dose-safety check, attacked two ways —
//
//   Fig. 1: a control-flow attack smashes a return address to reach the
//           actuation code while skipping `dose < 10`;
//   Fig. 2: a data-only attack overflows `settings[]` onto the adjacent
//           actuation mask `set`, disabling injection WITHOUT changing the
//           control flow (invisible to CFA; caught by DIALED).
//
// Build & run:  ./examples/medical_device
#include <cstdio>

#include "apps/apps.h"
#include "proto/prover.h"
#include "proto/session.h"

using namespace dialed;

namespace {

void report_verdict(const char* label, const verifier::verdict& v) {
  std::printf("%-34s -> %s\n", label, v.accepted ? "ACCEPTED" : "REJECTED");
  for (const auto& f : v.findings) {
    std::printf("    %-22s %s\n", verifier::to_string(f.kind).c_str(),
                f.detail.c_str());
  }
}

void actuation_trace(emu::machine& m) {
  const auto& h = m.gpio().history();
  if (h.empty()) {
    std::printf("    actuation: none\n");
    return;
  }
  std::printf("    actuation:");
  for (const auto& w : h) std::printf(" P3OUT=%u", w.value);
  std::printf("\n");
}

}  // namespace

int main() {
  // A bedside device is a one-verifier/one-prover deployment, so this
  // example keeps the single-device `verifier_session` — now a thin
  // adapter over fleet::verifier_hub (see src/proto/session.h); use the
  // hub directly when serving more than one pump.
  const byte_vec key(32, 0x99);

  std::printf("=== Fig. 1: control-flow attack ===\n");
  {
    const auto prog =
        apps::build_app(apps::fig1_app(), instr::instrumentation::dialed);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);
    vrf.core().add_policy(apps::dose_actuation_policy());

    auto v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig1_benign(5)));
    report_verdict("benign: inject 5 units", v);
    actuation_trace(dev.machine());

    v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig1_benign(12)));
    report_verdict("benign: request 12 units (blocked)", v);
    actuation_trace(dev.machine());

    v = vrf.check(
        dev.invoke(vrf.new_challenge(), apps::fig1_attack(prog, 15)));
    report_verdict("ATTACK: smash RA, dose 15", v);
    actuation_trace(dev.machine());
    std::printf("    (the pump DID inject 15 units — APEX saw a clean run,\n"
                "     only the CF-Log evidence betrays the attack)\n");
  }

  std::printf("\n=== Fig. 2: data-only attack ===\n");
  {
    const auto prog =
        apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);

    auto v = vrf.check(
        dev.invoke(vrf.new_challenge(), apps::fig2_benign(1, 3)));
    report_verdict("benign: settings[3] = 1", v);
    actuation_trace(dev.machine());

    v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
    report_verdict("ATTACK: settings[8] = 0 (hits `set`)", v);
    actuation_trace(dev.machine());
    std::printf("    (no injection happened; same control flow as benign)\n");
  }

  std::printf("\n=== The CFA blind spot, demonstrated ===\n");
  {
    // With Tiny-CFA alone, the Fig. 2 attack's log is byte-identical to a
    // benign run: CFA cannot see data-only attacks (paper §II-B).
    const auto prog =
        apps::build_app(apps::fig2_app(), instr::instrumentation::tinycfa);
    proto::prover_device dev(prog, key);
    std::array<std::uint8_t, 16> chal{};
    const auto benign = dev.invoke(chal, apps::fig2_benign(1, 3));
    const auto attack = dev.invoke(chal, apps::fig2_attack());
    std::printf("CFA-only OR logs identical between benign and attack: %s\n",
                benign.or_bytes == attack.or_bytes ? "YES (blind)" : "no");
    std::printf("both runs report EXEC=1: %s\n",
                (benign.exec && attack.exec) ? "YES" : "no");
  }
  return 0;
}
