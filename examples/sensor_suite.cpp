// Authenticated sensing, fleet-style: ONE verifier hub polls three
// provisioned devices (two FireSensors + an UltrasonicRanger, the paper's
// evaluation apps #2/#3) with concurrently outstanding challenges, then
// verifies the round's reports as a wire v2 batch. Because every sensed
// value enters the attested I-Log, Vrf derives the readings from the
// replay — a device cannot lie about what it measured, a report replayed
// across devices or rounds is rejected with a typed error, and each
// device signs with its own KDF-derived key.
//
// Build & run:  ./examples/sensor_suite
#include <cstdio>
#include <memory>

#include "apps/apps.h"
#include "fleet/verifier_hub.h"
#include "proto/prover.h"
#include "proto/wire.h"

using namespace dialed;

int main() {
  // One master key for the whole fleet; each device gets
  // K_dev = HMAC(K_master, device_id) at provisioning.
  fleet::device_registry registry(byte_vec(32, 0x33));

  const auto fire = apps::evaluation_apps()[1];       // FireSensor
  const auto ranger = apps::evaluation_apps()[2];     // UltrasonicRanger
  const auto fire_prog =
      apps::build_app(fire, instr::instrumentation::dialed);
  const auto ranger_prog =
      apps::build_app(ranger, instr::instrumentation::dialed);

  const auto kitchen = registry.provision(fire_prog);
  const auto garage = registry.provision(fire_prog);
  const auto door = registry.provision(ranger_prog);
  // Default config: the hub shards device state across lock domains and
  // fans verify_batch out over a worker pool sized to the machine.
  fleet::verifier_hub hub(registry);
  std::printf("hub: verify_batch on %zu worker thread(s) + caller\n",
              hub.batch_workers());

  proto::prover_device dev_kitchen(fire_prog, registry.derive_key(kitchen));
  proto::prover_device dev_garage(fire_prog, registry.derive_key(garage));
  proto::prover_device dev_door(ranger_prog, registry.derive_key(door));

  std::printf("fleet: %zu devices provisioned (kitchen=%u garage=%u "
              "door=%u)\n\n",
              registry.size(), kitchen, garage, door);

  const std::uint16_t kitchen_ambient[4] = {160, 168, 800, 820};  // fire!
  const std::uint16_t garage_ambient[4] = {150, 152, 149, 151};
  const std::uint16_t door_distance_cm[4] = {150, 90, 40, 12};

  byte_vec replayed_frame;  // a frame we will try to replay later
  for (int round = 0; round < 4; ++round) {
    // Issue the round's challenges up front — all three outstanding at
    // once; devices answer independently.
    const auto g_kitchen = hub.challenge(kitchen);
    const auto g_garage = hub.challenge(garage);
    const auto g_door = hub.challenge(door);

    proto::invocation fire_inv;
    fire_inv.args[0] = 60;  // alarm threshold (8-sample average)
    auto frame_of = [](fleet::device_id id, const fleet::challenge_grant& g,
                       const verifier::attestation_report& rep) {
      proto::frame_info info;
      info.device_id = id;
      info.seq = g.seq;
      return proto::encode_frame(info, rep);
    };

    fire_inv.adc_samples = {kitchen_ambient[round]};
    std::vector<byte_vec> frames;
    frames.push_back(frame_of(
        kitchen, g_kitchen, dev_kitchen.invoke(g_kitchen.nonce, fire_inv)));
    fire_inv.adc_samples = {garage_ambient[round]};
    frames.push_back(frame_of(
        garage, g_garage, dev_garage.invoke(g_garage.nonce, fire_inv)));
    proto::invocation door_inv;
    door_inv.args[0] = 3;  // average three pings
    const auto echo =
        static_cast<std::uint16_t>(door_distance_cm[round] * 58);
    door_inv.adc_samples = {echo, echo, echo};
    frames.push_back(
        frame_of(door, g_door, dev_door.invoke(g_door.nonce, door_inv)));
    if (round == 0) replayed_frame = frames[0];

    const auto results = hub.verify_batch(frames);
    std::printf("round %d:\n", round);
    const char* name[3] = {"kitchen fire", "garage fire ", "door range  "};
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::printf("  dev %u (%s): attested %3u  %s\n", r.device, name[i],
                  r.verdict.replayed_result,
                  r.accepted() ? "verified" : "REJECTED");
    }
    hub.tick();  // one poll period on the hub's monotonic clock
  }

  std::printf("\n=== a captured round-0 frame is replayed ===\n");
  const auto replay = hub.submit(replayed_frame);
  std::printf("hub verdict: %s\n",
              proto::to_string(replay.error).c_str());

  std::printf("\n=== a compromised device tries to hide the fire ===\n");
  {
    const auto g = hub.challenge(kitchen);
    proto::invocation inv;
    inv.args[0] = 60;
    inv.adc_samples = {900};  // it is burning
    auto rep = dev_kitchen.invoke(g.nonce, inv);
    rep.claimed_result = 20;  // "everything is fine"
    proto::frame_info info;
    info.device_id = kitchen;
    info.seq = g.seq;
    const auto r = hub.submit(proto::encode_frame(info, rep));
    std::printf("claimed reading: %u, attested reading: %u -> %s\n",
                rep.claimed_result, r.verdict.replayed_result,
                r.accepted() ? "accepted (!!)" : "REJECTED (result forged)");
    for (const auto& f : r.verdict.findings) {
      std::printf("    %s: %s\n", verifier::to_string(f.kind).c_str(),
                  f.detail.c_str());
    }
  }
  return 0;
}
