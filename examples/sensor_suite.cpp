// Authenticated sensing: a verifier polls a fleet of two sensors
// (FireSensor + UltrasonicRanger, the paper's evaluation apps #2/#3) over
// several rounds. Because every sensed value enters the attested I-Log,
// Vrf derives the readings from the replay — the device cannot lie about
// what it measured, and a spoofed result mailbox is caught.
//
// Build & run:  ./examples/sensor_suite
#include <cstdio>

#include "apps/apps.h"
#include "proto/prover.h"
#include "proto/session.h"

using namespace dialed;

int main() {
  const byte_vec key(32, 0x33);

  std::printf("=== FireSensor: five monitoring rounds ===\n");
  {
    auto app = apps::evaluation_apps()[1];
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);

    const std::uint16_t ambient[5] = {160, 168, 176, 800, 820};  // fire at #4
    for (int round = 0; round < 5; ++round) {
      proto::invocation inv;
      inv.args[0] = 60;  // alarm threshold (8-sample average)
      inv.adc_samples = {ambient[round]};
      const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
      std::printf("round %d: sensed avg (attested) = %3u  alarm=%s  %s\n",
                  round, v.replayed_result,
                  dev.machine().gpio().output() ? "ON " : "off",
                  v.accepted ? "verified" : "REJECTED");
    }
  }

  std::printf("\n=== UltrasonicRanger: obstacle approach ===\n");
  {
    auto app = apps::evaluation_apps()[2];
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);

    const std::uint16_t distance_cm[4] = {150, 90, 40, 12};
    for (int round = 0; round < 4; ++round) {
      proto::invocation inv;
      inv.args[0] = 3;  // average three pings
      const std::uint16_t echo =
          static_cast<std::uint16_t>(distance_cm[round] * 58);
      inv.adc_samples = {echo, echo, echo};
      const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
      std::printf("round %d: distance (attested) = %3u cm  %s\n", round,
                  v.replayed_result, v.accepted ? "verified" : "REJECTED");
    }
  }

  std::printf("\n=== A compromised device tries to hide the fire ===\n");
  {
    auto app = apps::evaluation_apps()[1];
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);

    proto::invocation inv;
    inv.args[0] = 60;
    inv.adc_samples = {900};  // it is burning
    auto rep = dev.invoke(vrf.new_challenge(), inv);
    rep.claimed_result = 20;  // "everything is fine"
    const auto v = vrf.check(rep);
    std::printf("claimed reading: %u, attested reading: %u -> %s\n",
                rep.claimed_result, v.replayed_result,
                v.accepted ? "accepted (!!)" : "REJECTED (result forged)");
    for (const auto& f : v.findings) {
      std::printf("    %s: %s\n", verifier::to_string(f.kind).c_str(),
                  f.detail.c_str());
    }
  }
  return 0;
}
