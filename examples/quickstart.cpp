// Quickstart: the complete DIALED pipeline in one file.
//
//   1. Write an embedded operation in mini-C.
//   2. Compile + instrument (Tiny-CFA + DIALED) + link it into an MSP430
//      program whose attested ER is guarded by the APEX/VRASED monitors.
//   3. Run one attested invocation on the emulated device.
//   4. Verify the report: MAC, EXEC, and abstract execution of the logs.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "instr/oplink.h"
#include "proto/prover.h"
#include "proto/session.h"

int main() {
  using namespace dialed;

  // 1. The embedded operation: average `n` sensor samples from the ADC.
  const char* source = R"(
    int sample_count = 0;                 // persistent device state

    int read_adc() {
      __mmio_w16(320, 1);                 // trigger a conversion
      return __mmio_r16(320);             // read the sample (idempotent)
    }

    int op(int n) {
      int sum = 0;
      int i;
      if (n < 1) { n = 1; }
      for (i = 0; i < n; i++) {
        sum = sum + read_adc();           // each sample becomes an I-Log entry
      }
      sample_count = sample_count + n;
      return sum / n;
    }
  )";

  // 2. Build at the DIALED level (Tiny-CFA + DIALED instrumentation).
  instr::link_options lo;
  lo.entry = "op";
  lo.mode = instr::instrumentation::dialed;
  const auto prog = instr::build_operation(source, lo);
  std::printf("built op: ER=[0x%04x,0x%04x], %zu bytes of attested code\n",
              prog.er_min, prog.er_max, prog.code_size());

  // 3. Provision a device and a verifier with the shared key.
  const byte_vec key(32, 0xd1);
  proto::prover_device device(prog, key);
  proto::verifier_session vrf(prog, key);

  // One attested invocation: average 4 samples.
  proto::invocation inv;
  inv.args[0] = 4;
  inv.adc_samples = {300, 310, 290, 300};
  const auto challenge = vrf.new_challenge();
  const auto report = device.invoke(challenge, inv);

  std::printf("device: result=%u, EXEC=%d, op took %llu MCU cycles, "
              "log used %d bytes\n",
              report.claimed_result, report.exec ? 1 : 0,
              static_cast<unsigned long long>(device.last_op_cycles()),
              device.last_log_bytes());

  // 4. Verify: MAC + EXEC + abstract execution of CF-Log/I-Log.
  const auto verdict = vrf.check(report);
  std::printf("verifier: %s — replayed result %u over %llu instructions, "
              "%d log slots\n",
              verdict.accepted ? "ACCEPTED" : "REJECTED",
              verdict.replayed_result,
              static_cast<unsigned long long>(verdict.replay_instructions),
              verdict.log_slots_consumed);
  for (const auto& f : verdict.findings) {
    std::printf("  finding: %s — %s\n",
                verifier::to_string(f.kind).c_str(), f.detail.c_str());
  }
  return verdict.accepted ? 0 : 1;
}
