// Quickstart: the complete DIALED pipeline in one file.
//
//   1. Write an embedded operation in mini-C.
//   2. Compile + instrument (Tiny-CFA + DIALED) + link it into an MSP430
//      program whose attested ER is guarded by the APEX/VRASED monitors.
//   3. Provision the device into a fleet registry (per-device key derived
//      from a master key) and run one attested invocation.
//   4. Ship the report as a wire v2 frame and verify it through the hub:
//      MAC, EXEC, and abstract execution of the logs.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "fleet/verifier_hub.h"
#include "instr/oplink.h"
#include "proto/prover.h"
#include "proto/wire.h"

int main() {
  using namespace dialed;

  // 1. The embedded operation: average `n` sensor samples from the ADC.
  const char* source = R"(
    int sample_count = 0;                 // persistent device state

    int read_adc() {
      __mmio_w16(320, 1);                 // trigger a conversion
      return __mmio_r16(320);             // read the sample (idempotent)
    }

    int op(int n) {
      int sum = 0;
      int i;
      if (n < 1) { n = 1; }
      for (i = 0; i < n; i++) {
        sum = sum + read_adc();           // each sample becomes an I-Log entry
      }
      sample_count = sample_count + n;
      return sum / n;
    }
  )";

  // 2. Build at the DIALED level (Tiny-CFA + DIALED instrumentation).
  instr::link_options lo;
  lo.entry = "op";
  lo.mode = instr::instrumentation::dialed;
  const auto prog = instr::build_operation(source, lo);
  std::printf("built op: ER=[0x%04x,0x%04x], %zu bytes of attested code\n",
              prog.er_min, prog.er_max, prog.code_size());

  // 3. Provision the device: the verifier keeps ONE fleet master key and
  //    derives this device's K_dev = HMAC(K_master, device_id); the
  //    factory burns the derived key into the device.
  fleet::device_registry registry(byte_vec(32, 0xd1));
  const auto id = registry.provision(prog);
  fleet::verifier_hub hub(registry);
  proto::prover_device device(prog, registry.derive_key(id));
  // Provisioning interned the image into the registry's firmware catalog:
  // every further device on this image shares ONE verifier artifact.
  std::printf("provisioned device %u on firmware %.16s... (%zu distinct "
              "firmware(s) in the catalog)\n",
              id, registry.find(id)->firmware->id_hex().c_str(),
              registry.catalog()->size());

  // One attested invocation: average 4 samples.
  proto::invocation inv;
  inv.args[0] = 4;
  inv.adc_samples = {300, 310, 290, 300};
  const auto grant = hub.challenge(id);
  const auto report = device.invoke(grant.nonce, inv);

  std::printf("device %u: result=%u, EXEC=%d, op took %llu MCU cycles, "
              "log used %d bytes\n",
              id, report.claimed_result, report.exec ? 1 : 0,
              static_cast<unsigned long long>(device.last_op_cycles()),
              device.last_log_bytes());

  // 4. Ship the report as a wire v2 frame (device id + challenge sequence
  //    in the header) and verify: MAC + EXEC + abstract execution.
  proto::frame_info info;
  info.device_id = id;
  info.seq = grant.seq;
  const auto frame = proto::encode_frame(info, report);
  const auto result = hub.submit(frame);
  if (result.error != proto::proto_error::none) {
    std::printf("protocol error: %s\n",
                proto::to_string(result.error).c_str());
    return 1;
  }
  const auto& verdict = result.verdict;
  std::printf("verifier: %s — replayed result %u over %llu instructions, "
              "%d log slots (%zu-byte v2 frame)\n",
              verdict.accepted ? "ACCEPTED" : "REJECTED",
              verdict.replayed_result,
              static_cast<unsigned long long>(verdict.replay_instructions),
              verdict.log_slots_consumed, frame.size());
  for (const auto& f : verdict.findings) {
    std::printf("  finding: %s — %s\n",
                verifier::to_string(f.kind).c_str(), f.detail.c_str());
  }
  return verdict.accepted ? 0 : 1;
}
