// Forensics: what the verifier can reconstruct from one attestation report.
// Dumps the instrumented ER disassembly head, the annotated CF-Log/I-Log
// (every slot classified by the abstract executor), and the replay
// statistics — for a benign run and for the Fig. 2 data-only attack.
//
// Build & run:  ./examples/forensics
#include <cstdio>

#include "apps/apps.h"
#include "fleet/registry.h"
#include "masm/disasm.h"
#include "proto/prover.h"
#include "verifier/verifier.h"

using namespace dialed;

namespace {

void dump_log(const verifier::verdict& v, int max_entries) {
  std::printf("  slot  value   kind         produced at\n");
  int shown = 0;
  for (const auto& e : v.annotated_log) {
    if (shown++ >= max_entries) {
      std::printf("  ... (%zu entries total)\n", v.annotated_log.size());
      break;
    }
    std::printf("  %4d  0x%04x  %-12s pc=0x%04x\n", e.slot, e.value,
                logfmt::to_string(e.kind).c_str(), e.source_pc);
  }
}

}  // namespace

int main() {
  // Provision the device fleet-style so the forensic record is tied to a
  // stable device id and its KDF-derived key.
  fleet::device_registry registry(byte_vec(32, 0x77));
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  const auto id = registry.provision(prog);
  const auto& record = *registry.find(id);
  proto::prover_device dev(prog, record.key);  // burned in at the factory
  // The verifier context shares the registry's interned firmware artifact
  // — the same immutable precomputation every device on this image uses.
  verifier::op_verifier vrf(record.firmware, record.key);

  std::printf("=== Deployed operation ===\n");
  std::printf("firmware %s\n", record.firmware->id_hex().c_str());
  std::printf("ER [0x%04x, 0x%04x], %zu bytes; globals:\n", prog.er_min,
              prog.er_max, prog.code_size());
  for (const auto& [name, addr] : prog.global_addrs) {
    std::printf("  %-10s @ 0x%04x\n", name.c_str(), addr);
  }
  std::printf("bounds metadata: %zu compiler-recorded array access sites\n",
              prog.compile_info.access_sites.size());

  std::printf("\nfirst instructions of the instrumented ER:\n");
  const auto er = masm::disassemble(prog.er_bytes(), prog.er_min);
  for (std::size_t i = 0; i < er.size() && i < 10; ++i) {
    std::printf("  0x%04x  %s\n", er[i].address, er[i].text.c_str());
  }

  std::array<std::uint8_t, 16> chal{};
  chal.fill(0xc4);

  std::printf("\n=== Benign round: settings[3] = 1 ===\n");
  {
    const auto rep = dev.invoke(chal, apps::fig2_benign(1, 3));
    const auto v = vrf.verify(rep);
    std::printf("verdict: %s; %d log slots, %llu replayed instructions\n",
                v.accepted ? "ACCEPTED" : "REJECTED", v.log_slots_consumed,
                static_cast<unsigned long long>(v.replay_instructions));
    dump_log(v, 14);
  }

  std::printf("\n=== Attack round: settings[8] = 0 ===\n");
  {
    const auto rep = dev.invoke(chal, apps::fig2_attack());
    const auto v = vrf.verify(rep);
    std::printf("verdict: %s\n", v.accepted ? "ACCEPTED" : "REJECTED");
    for (const auto& f : v.findings) {
      std::printf("  %-20s %s (pc=0x%04x, addr=0x%04x)\n",
                  verifier::to_string(f.kind).c_str(), f.detail.c_str(),
                  f.pc, f.addr);
    }
    std::printf("\nattested entry arguments (I-Log slots 1..8):\n");
    logfmt::log_view log(rep.or_min, rep.or_max, rep.or_bytes);
    std::printf("  new_setting (arg0) = %u\n", log.argument(0));
    std::printf("  index       (arg1) = %u  <- out of bounds for "
                "settings[8]\n",
                log.argument(1));

    std::printf("\nperipheral writes with input-taint provenance:\n");
    for (const auto& e : v.io_trace) {
      std::printf("  pc=0x%04x  [0x%04x] <- 0x%04x  %s\n", e.pc, e.addr,
                  e.value,
                  e.tainted ? "INPUT-DERIVED (attacker-influencable)"
                            : "constant");
    }
  }
  return 0;
}
