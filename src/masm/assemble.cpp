#include <algorithm>

#include "common/error.h"
#include "masm/masm.h"

namespace dialed::masm {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw error("masm:" + std::to_string(line) + ": " + msg);
}

constexpr std::uint16_t default_origin = 0xc000;

std::uint16_t resolve(const expr& e,
                      const std::map<std::string, std::uint16_t>& symbols,
                      int line) {
  std::int32_t v = e.offset;
  if (!e.sym.empty()) {
    const auto it = symbols.find(e.sym);
    if (it == symbols.end()) fail(line, "undefined symbol '" + e.sym + "'");
    v += it->second;
  }
  return static_cast<std::uint16_t>(v & 0xffff);
}

/// Build the resolved isa::instruction for a statement. In sizing mode
/// (`symbols == nullptr`) expressions resolve to 0 and CG eligibility is
/// judged exactly as in the final pass, so sizes are stable.
struct lowered {
  isa::instruction ins;
  bool allow_cg = true;
};

lowered lower(const stmt& s,
              const std::map<std::string, std::uint16_t>* symbols) {
  lowered out;
  out.ins.op = s.op;
  out.ins.byte_op = s.byte_op;

  auto lower_operand = [&](const operand_ast& o) -> isa::operand {
    isa::operand r;
    r.mode = o.mode;
    r.base = o.reg;
    if (isa::mode_needs_ext(o.mode)) {
      r.ext = symbols ? resolve(o.e, *symbols, s.line)
                      : static_cast<std::uint16_t>(o.e.offset);
    }
    return r;
  };

  if (isa::is_jump(s.op)) {
    out.ins.target = symbols ? resolve(s.ops[0].e, *symbols, s.line) : 0;
    return out;
  }
  if (s.op == isa::opcode::reti) return out;
  if (isa::is_format2(s.op)) {
    out.ins.dst = lower_operand(s.ops[0]);
    if (s.ops[0].mode == isa::addr_mode::immediate && !s.ops[0].e.is_literal()) {
      out.allow_cg = false;  // symbol value unknown in pass 1; keep size fixed
    }
    return out;
  }
  out.ins.src = lower_operand(s.ops[0]);
  out.ins.dst = lower_operand(s.ops[1]);
  if (s.ops[0].mode == isa::addr_mode::immediate && !s.ops[0].e.is_literal()) {
    out.allow_cg = false;
  }
  return out;
}

struct layout_item {
  std::size_t stmt_index;
  std::uint16_t address;
  int size;
};

}  // namespace

std::uint16_t image::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw error("masm: undefined symbol '" + name + "'");
  }
  return it->second;
}

std::size_t image::total_bytes() const {
  std::size_t n = 0;
  for (const auto& s : segments) n += s.bytes.size();
  return n;
}

image assemble(const module_src& m,
               const std::map<std::string, std::uint16_t>& predefined) {
  image img;
  std::map<std::string, std::uint16_t> symbols = predefined;

  // ---- Pass 1: layout ----
  std::vector<layout_item> layout;
  std::uint32_t addr = default_origin;
  bool segment_open = false;

  auto define = [&](const std::string& name, std::uint16_t value, int line) {
    if (!symbols.emplace(name, value).second) {
      fail(line, "symbol '" + name + "' redefined");
    }
  };

  for (std::size_t i = 0; i < m.stmts.size(); ++i) {
    const stmt& s = m.stmts[i];
    switch (s.k) {
      case stmt::kind::label:
        define(s.label, static_cast<std::uint16_t>(addr), s.line);
        break;
      case stmt::kind::directive: {
        if (s.directive == "org") {
          addr = resolve(s.args.at(0), symbols, s.line);
          segment_open = false;
        } else if (s.directive == "equ") {
          define(s.dir_sym, resolve(s.args.at(0), symbols, s.line), s.line);
        } else if (s.directive == "word") {
          if (addr % 2 != 0) fail(s.line, ".word at odd address");
          layout.push_back({i, static_cast<std::uint16_t>(addr),
                            static_cast<int>(2 * s.args.size())});
          addr += 2 * s.args.size();
          segment_open = true;
        } else if (s.directive == "byte") {
          layout.push_back({i, static_cast<std::uint16_t>(addr),
                            static_cast<int>(s.args.size())});
          addr += s.args.size();
          segment_open = true;
        } else if (s.directive == "space") {
          const int n = resolve(s.args.at(0), symbols, s.line);
          layout.push_back({i, static_cast<std::uint16_t>(addr), n});
          addr += n;
          segment_open = true;
        } else if (s.directive == "align") {
          const int pad = static_cast<int>(addr % 2);
          if (pad != 0) {
            layout.push_back({i, static_cast<std::uint16_t>(addr), pad});
            addr += pad;
            segment_open = true;
          }
        }
        // .text/.data/.global: ignored.
        break;
      }
      case stmt::kind::instruction: {
        if (addr % 2 != 0) fail(s.line, "instruction at odd address");
        const lowered lo = lower(s, nullptr);
        const int size = 2 * isa::encoded_words(lo.ins, lo.allow_cg);
        layout.push_back({i, static_cast<std::uint16_t>(addr), size});
        addr += size;
        segment_open = true;
        break;
      }
    }
    if (addr > 0x10000u) fail(s.line, "assembly exceeds the 64KiB space");
  }
  (void)segment_open;

  // ---- Pass 2: emit ----
  segment* cur = nullptr;
  auto open_segment = [&](std::uint16_t base) {
    img.segments.push_back(segment{base, {}});
    cur = &img.segments.back();
  };

  for (const auto& item : layout) {
    const stmt& s = m.stmts[item.stmt_index];
    if (cur == nullptr || cur->end() != item.address) {
      open_segment(item.address);
    }
    if (s.k == stmt::kind::directive) {
      if (s.directive == "word") {
        for (const auto& a : s.args) {
          const std::uint16_t v = resolve(a, symbols, s.line);
          cur->bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
          cur->bytes.push_back(static_cast<std::uint8_t>(v >> 8));
        }
      } else if (s.directive == "byte") {
        for (const auto& a : s.args) {
          cur->bytes.push_back(
              static_cast<std::uint8_t>(resolve(a, symbols, s.line) & 0xff));
        }
      } else if (s.directive == "space" || s.directive == "align") {
        cur->bytes.insert(cur->bytes.end(), item.size, 0);
      }
      continue;
    }
    // Instruction.
    const lowered lo = lower(s, &symbols);
    const auto words = isa::encode(lo.ins, item.address, lo.allow_cg);
    if (static_cast<int>(2 * words.size()) != item.size) {
      fail(s.line, "internal: pass-1/pass-2 size mismatch");
    }
    for (const std::uint16_t w : words) {
      cur->bytes.push_back(static_cast<std::uint8_t>(w & 0xff));
      cur->bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    img.listing.push_back(
        {item.address, item.size, s.line, to_text(s)});
  }

  // Overlap check.
  std::vector<segment> sorted = img.segments;
  std::sort(sorted.begin(), sorted.end(),
            [](const segment& a, const segment& b) { return a.base < b.base; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (!sorted[i - 1].bytes.empty() &&
        sorted[i].base < sorted[i - 1].end()) {
      throw error("masm: overlapping segments at " + hex16(sorted[i].base));
    }
  }

  img.symbols = std::move(symbols);
  return img;
}

image assemble_text(std::string_view text,
                    const std::map<std::string, std::uint16_t>& predefined) {
  return assemble(parse(text), predefined);
}

}  // namespace dialed::masm
