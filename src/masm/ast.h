// Assembly-source object model. The mini-C compiler emits this (via text),
// the Tiny-CFA and DIALED instrumentation passes transform it, and the
// assembler lowers it to a memory image. Emulated mnemonics (ret, br, pop,
// clr, inc, ...) are canonicalized to core opcodes at parse time, so passes
// only ever see the 27 native instructions plus directives and labels.
#ifndef DIALED_MASM_AST_H
#define DIALED_MASM_AST_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace dialed::masm {

/// `sym + offset`; an empty `sym` makes it a plain literal.
struct expr {
  std::string sym;
  std::int32_t offset = 0;

  bool is_literal() const { return sym.empty(); }
  bool operator==(const expr&) const = default;
};

inline expr lit(std::int32_t v) { return {"", v}; }
inline expr symref(std::string s, std::int32_t off = 0) {
  return {std::move(s), off};
}

/// Operand before symbol resolution. `e` is meaningful for modes that carry
/// a value (indexed offset, absolute address, symbolic target, immediate).
struct operand_ast {
  isa::addr_mode mode = isa::addr_mode::reg;
  std::uint8_t reg = 0;
  expr e{};

  bool operator==(const operand_ast&) const = default;
};

operand_ast reg_operand(std::uint8_t r);
operand_ast imm_operand(expr e);
operand_ast abs_operand(expr e);
operand_ast idx_operand(std::uint8_t r, expr e);
operand_ast ind_operand(std::uint8_t r, bool post_inc = false);
operand_ast sym_operand(expr e);

/// One source statement.
struct stmt {
  enum class kind : std::uint8_t { label, instruction, directive };
  kind k = kind::instruction;

  // kind::label
  std::string label;

  // kind::instruction (core opcodes only after parsing)
  isa::opcode op = isa::opcode::mov;
  bool byte_op = false;
  std::vector<operand_ast> ops;

  // kind::directive: name without the leading dot ("org", "word", "byte",
  // "space", "align", "equ"); `dir_sym` holds the .equ name.
  std::string directive;
  std::string dir_sym;
  std::vector<expr> args;

  int line = 0;  ///< 1-based source line (0 for synthesized statements)

  /// Set on statements inserted by an instrumentation pass; later passes
  /// must not instrument them (paper §IV: the inserted checks/logging are
  /// trusted-by-attestation, not application code).
  bool synthetic = false;

  bool operator==(const stmt&) const = default;
};

stmt make_label(std::string name);
stmt make_instr(isa::opcode op, std::vector<operand_ast> ops,
                bool byte_op = false);
stmt make_directive(std::string name, std::vector<expr> args,
                    std::string sym = {});

/// A parsed assembly module (translation unit).
struct module_src {
  std::vector<stmt> stmts;
};

/// Render back to assembly text (round-trips through parse()).
std::string to_text(const module_src& m);
std::string to_text(const stmt& s);

}  // namespace dialed::masm

#endif  // DIALED_MASM_AST_H
