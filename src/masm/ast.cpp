#include "masm/ast.h"

#include "common/bytes.h"
#include "common/error.h"

namespace dialed::masm {

operand_ast reg_operand(std::uint8_t r) {
  return {isa::addr_mode::reg, r, {}};
}
operand_ast imm_operand(expr e) {
  return {isa::addr_mode::immediate, isa::REG_PC, std::move(e)};
}
operand_ast abs_operand(expr e) {
  return {isa::addr_mode::absolute, isa::REG_SR, std::move(e)};
}
operand_ast idx_operand(std::uint8_t r, expr e) {
  return {isa::addr_mode::indexed, r, std::move(e)};
}
operand_ast ind_operand(std::uint8_t r, bool post_inc) {
  return {post_inc ? isa::addr_mode::indirect_inc : isa::addr_mode::indirect,
          r,
          {}};
}
operand_ast sym_operand(expr e) {
  return {isa::addr_mode::symbolic, isa::REG_PC, std::move(e)};
}

stmt make_label(std::string name) {
  stmt s;
  s.k = stmt::kind::label;
  s.label = std::move(name);
  return s;
}

stmt make_instr(isa::opcode op, std::vector<operand_ast> ops, bool byte_op) {
  stmt s;
  s.k = stmt::kind::instruction;
  s.op = op;
  s.byte_op = byte_op;
  s.ops = std::move(ops);
  return s;
}

stmt make_directive(std::string name, std::vector<expr> args,
                    std::string sym) {
  stmt s;
  s.k = stmt::kind::directive;
  s.directive = std::move(name);
  s.args = std::move(args);
  s.dir_sym = std::move(sym);
  return s;
}

namespace {

std::string expr_text(const expr& e) {
  if (e.is_literal()) {
    if (e.offset < 0) return std::to_string(e.offset);
    if (e.offset > 9) return hex16(static_cast<std::uint16_t>(e.offset));
    return std::to_string(e.offset);
  }
  std::string out = e.sym;
  if (e.offset > 0) out += "+" + std::to_string(e.offset);
  if (e.offset < 0) out += std::to_string(e.offset);
  return out;
}

std::string operand_text(const operand_ast& o) {
  using isa::addr_mode;
  switch (o.mode) {
    case addr_mode::reg: return isa::reg_name(o.reg);
    case addr_mode::indexed:
      return expr_text(o.e) + "(" + isa::reg_name(o.reg) + ")";
    case addr_mode::symbolic: return expr_text(o.e);
    case addr_mode::absolute: return "&" + expr_text(o.e);
    case addr_mode::indirect: return "@" + isa::reg_name(o.reg);
    case addr_mode::indirect_inc: return "@" + isa::reg_name(o.reg) + "+";
    case addr_mode::immediate: return "#" + expr_text(o.e);
  }
  return "?";
}

}  // namespace

std::string to_text(const stmt& s) {
  switch (s.k) {
    case stmt::kind::label:
      return s.label + ":";
    case stmt::kind::directive: {
      std::string out = "        ." + s.directive;
      if (!s.dir_sym.empty()) out += " " + s.dir_sym + ",";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        out += (i == 0 && s.dir_sym.empty() ? " " : " ");
        out += expr_text(s.args[i]);
        if (i + 1 < s.args.size()) out += ",";
      }
      return out;
    }
    case stmt::kind::instruction: {
      std::string out = "        ";
      out += std::string(isa::mnemonic(s.op));
      if (s.byte_op) out += ".b";
      for (std::size_t i = 0; i < s.ops.size(); ++i) {
        out += (i == 0) ? " " : ", ";
        out += operand_text(s.ops[i]);
      }
      return out;
    }
  }
  throw error("masm: unknown statement kind");
}

std::string to_text(const module_src& m) {
  std::string out;
  for (const auto& s : m.stmts) {
    out += to_text(s);
    out += "\n";
  }
  return out;
}

}  // namespace dialed::masm
