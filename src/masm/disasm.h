// Linear disassembler over assembled images; used for listings, debugging,
// and the verifier's forensic trace rendering.
#ifndef DIALED_MASM_DISASM_H
#define DIALED_MASM_DISASM_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "masm/masm.h"

namespace dialed::masm {

struct disasm_entry {
  std::uint16_t address = 0;
  isa::instruction ins;
  int size_bytes = 0;
  std::string text;
};

/// Disassemble `bytes` located at `base` until the buffer is exhausted.
/// Throws dialed::error on illegal encodings.
std::vector<disasm_entry> disassemble(std::span<const std::uint8_t> bytes,
                                      std::uint16_t base);

/// Disassemble every segment of an image.
std::vector<disasm_entry> disassemble(const image& img);

}  // namespace dialed::masm

#endif  // DIALED_MASM_DISASM_H
