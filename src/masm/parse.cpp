#include <cctype>
#include <optional>

#include "common/error.h"
#include "masm/masm.h"

namespace dialed::masm {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw error("masm:" + std::to_string(line) + ": " + msg);
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '$';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// Cursor over one source line.
class line_cursor {
 public:
  line_cursor(std::string_view s, int line) : s_(s), line_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) {
      fail(line_, std::string("expected '") + c + "'");
    }
  }

  std::optional<std::string> ident() {
    skip_ws();
    if (pos_ >= s_.size() || !ident_start(s_[pos_])) return std::nullopt;
    std::size_t start = pos_;
    while (pos_ < s_.size() && ident_char(s_[pos_])) ++pos_;
    return std::string(s_.substr(start, pos_ - start));
  }

  std::optional<std::int32_t> number() {
    skip_ws();
    bool neg = false;
    std::size_t p = pos_;
    if (p < s_.size() && s_[p] == '-') {
      neg = true;
      ++p;
    }
    if (p >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[p]))) {
      return std::nullopt;
    }
    std::int64_t value = 0;
    if (s_.substr(p).starts_with("0x") || s_.substr(p).starts_with("0X")) {
      p += 2;
      std::size_t digits = 0;
      while (p < s_.size() &&
             std::isxdigit(static_cast<unsigned char>(s_[p]))) {
        const char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(s_[p])));
        value = value * 16 + (c <= '9' ? c - '0' : c - 'a' + 10);
        ++p;
        ++digits;
      }
      if (digits == 0) fail(line_, "malformed hex literal");
    } else {
      while (p < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[p]))) {
        value = value * 10 + (s_[p] - '0');
        ++p;
      }
    }
    pos_ = p;
    return static_cast<std::int32_t>(neg ? -value : value);
  }

  int line() const { return line_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_;
};

std::optional<std::uint8_t> parse_reg_name(const std::string& id) {
  if (id == "pc") return isa::REG_PC;
  if (id == "sp") return isa::REG_SP;
  if (id == "sr") return isa::REG_SR;
  if (id.size() >= 2 && (id[0] == 'r' || id[0] == 'R')) {
    int n = 0;
    for (std::size_t i = 1; i < id.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(id[i]))) return std::nullopt;
      n = n * 10 + (id[i] - '0');
    }
    if (n <= 15) return static_cast<std::uint8_t>(n);
  }
  return std::nullopt;
}

// expr := term (('+'|'-') number | '+' ident...)*
// Practical subset: [ident] [("+"|"-") literal]* ; also literal-only chains.
expr parse_expr(line_cursor& c) {
  expr e;
  if (auto n = c.number()) {
    e.offset = *n;
  } else if (auto id = c.ident()) {
    if (auto r = parse_reg_name(*id)) {
      fail(c.line(), "register name used where an expression is expected");
    }
    e.sym = *id;
  } else {
    fail(c.line(), "expected expression");
  }
  for (;;) {
    if (c.consume('+')) {
      if (auto n = c.number()) {
        e.offset += *n;
      } else if (auto id = c.ident()) {
        if (!e.sym.empty()) fail(c.line(), "at most one symbol per expression");
        e.sym = *id;
      } else {
        fail(c.line(), "expected term after '+'");
      }
    } else if (c.peek() == '-') {
      // A '-' introducing a negative literal term.
      if (auto n = c.number()) {
        e.offset += *n;
      } else {
        fail(c.line(), "expected number after '-'");
      }
    } else {
      break;
    }
  }
  return e;
}

operand_ast parse_operand(line_cursor& c) {
  if (c.consume('#')) return imm_operand(parse_expr(c));
  if (c.consume('&')) return abs_operand(parse_expr(c));
  if (c.consume('@')) {
    auto id = c.ident();
    if (!id) fail(c.line(), "expected register after '@'");
    auto r = parse_reg_name(*id);
    if (!r) fail(c.line(), "expected register after '@'");
    const bool inc = c.consume('+');
    return ind_operand(*r, inc);
  }
  // Either a register, an indexed expression, or a symbolic reference.
  // Try a register name first.
  {
    line_cursor save = c;
    if (auto id = c.ident()) {
      if (auto r = parse_reg_name(*id)) {
        if (c.peek() != '(') return reg_operand(*r);
      }
    }
    c = save;
  }
  expr e = parse_expr(c);
  if (c.consume('(')) {
    auto id = c.ident();
    if (!id) fail(c.line(), "expected register in indexed operand");
    auto r = parse_reg_name(*id);
    if (!r) fail(c.line(), "expected register in indexed operand");
    c.expect(')');
    return idx_operand(*r, std::move(e));
  }
  return sym_operand(std::move(e));
}

/// Expand one (possibly emulated) mnemonic into a core statement.
stmt expand(const std::string& mnem, bool byte_op,
            std::vector<operand_ast> ops, int line) {
  using isa::opcode;
  auto need = [&](std::size_t n) {
    if (ops.size() != n) {
      fail(line, mnem + " takes " + std::to_string(n) + " operand(s)");
    }
  };
  auto core = [&](opcode op, std::vector<operand_ast> o) {
    stmt s = make_instr(op, std::move(o), byte_op);
    s.line = line;
    return s;
  };
  auto sr = reg_operand(isa::REG_SR);
  auto pc = reg_operand(isa::REG_PC);
  auto sp_pop = ind_operand(isa::REG_SP, /*post_inc=*/true);

  if (mnem == "nop") {
    need(0);
    return core(opcode::mov, {reg_operand(isa::REG_CG2),
                              reg_operand(isa::REG_CG2)});
  }
  if (mnem == "ret") {
    need(0);
    return core(opcode::mov, {sp_pop, pc});
  }
  if (mnem == "pop") {
    need(1);
    return core(opcode::mov, {sp_pop, ops[0]});
  }
  if (mnem == "br") {
    need(1);
    // `br dst` = mov dst, pc. Accept `br #addr` and `br rN` / `br @rN`.
    return core(opcode::mov, {ops[0], pc});
  }
  if (mnem == "clr") {
    need(1);
    return core(opcode::mov, {imm_operand(lit(0)), ops[0]});
  }
  if (mnem == "inc") {
    need(1);
    return core(opcode::add, {imm_operand(lit(1)), ops[0]});
  }
  if (mnem == "incd") {
    need(1);
    return core(opcode::add, {imm_operand(lit(2)), ops[0]});
  }
  if (mnem == "dec") {
    need(1);
    return core(opcode::sub, {imm_operand(lit(1)), ops[0]});
  }
  if (mnem == "decd") {
    need(1);
    return core(opcode::sub, {imm_operand(lit(2)), ops[0]});
  }
  if (mnem == "tst") {
    need(1);
    return core(opcode::cmp, {imm_operand(lit(0)), ops[0]});
  }
  if (mnem == "inv") {
    need(1);
    return core(opcode::xor_, {imm_operand(lit(-1)), ops[0]});
  }
  if (mnem == "rla") {
    need(1);
    return core(opcode::add, {ops[0], ops[0]});
  }
  if (mnem == "rlc") {
    need(1);
    return core(opcode::addc, {ops[0], ops[0]});
  }
  if (mnem == "adc") {
    need(1);
    return core(opcode::addc, {imm_operand(lit(0)), ops[0]});
  }
  if (mnem == "sbc") {
    need(1);
    return core(opcode::subc, {imm_operand(lit(0)), ops[0]});
  }
  if (mnem == "dadc") {
    need(1);
    return core(opcode::dadd, {imm_operand(lit(0)), ops[0]});
  }
  if (mnem == "dint") {
    need(0);
    return core(opcode::bic, {imm_operand(lit(8)), sr});
  }
  if (mnem == "eint") {
    need(0);
    return core(opcode::bis, {imm_operand(lit(8)), sr});
  }
  if (mnem == "setc") {
    need(0);
    return core(opcode::bis, {imm_operand(lit(1)), sr});
  }
  if (mnem == "clrc") {
    need(0);
    return core(opcode::bic, {imm_operand(lit(1)), sr});
  }
  if (mnem == "setz") {
    need(0);
    return core(opcode::bis, {imm_operand(lit(2)), sr});
  }
  if (mnem == "clrz") {
    need(0);
    return core(opcode::bic, {imm_operand(lit(2)), sr});
  }
  if (mnem == "setn") {
    need(0);
    return core(opcode::bis, {imm_operand(lit(4)), sr});
  }
  if (mnem == "clrn") {
    need(0);
    return core(opcode::bic, {imm_operand(lit(4)), sr});
  }

  const auto op = isa::opcode_from_mnemonic(mnem);
  if (!op) fail(line, "unknown mnemonic '" + mnem + "'");
  if (isa::is_jump(*op)) {
    need(1);
    if (ops[0].mode != isa::addr_mode::symbolic &&
        ops[0].mode != isa::addr_mode::immediate) {
      fail(line, "jump target must be a label or address");
    }
    ops[0].mode = isa::addr_mode::symbolic;
  } else if (*op == opcode::reti) {
    need(0);
  } else if (isa::is_format2(*op)) {
    need(1);
  } else {
    need(2);
  }
  return core(*op, std::move(ops));
}

}  // namespace

module_src parse(std::string_view text) {
  module_src out;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comment.
    if (const auto sc = raw.find(';'); sc != std::string_view::npos) {
      raw = raw.substr(0, sc);
    }

    line_cursor c(raw, line_no);
    if (c.at_end()) continue;

    // Optional label.
    {
      line_cursor save = c;
      if (auto id = c.ident()) {
        if (c.consume(':')) {
          stmt s = make_label(*id);
          s.line = line_no;
          out.stmts.push_back(std::move(s));
        } else {
          c = save;
        }
      }
    }
    if (c.at_end()) continue;

    if (c.consume('.')) {
      auto name = c.ident();
      if (!name) fail(line_no, "expected directive name after '.'");
      stmt s;
      s.k = stmt::kind::directive;
      s.directive = *name;
      s.line = line_no;
      if (*name == "equ") {
        auto sym = c.ident();
        if (!sym) fail(line_no, ".equ needs a symbol name");
        s.dir_sym = *sym;
        c.expect(',');
        s.args.push_back(parse_expr(c));
      } else if (*name == "align" || *name == "text" || *name == "data" ||
                 *name == "global") {
        // .align takes no argument in this assembler; .text/.data/.global
        // are accepted and ignored for gcc-style compatibility.
        while (!c.at_end()) {
          if (!c.ident() && !c.number() && !c.consume(',')) break;
        }
      } else if (*name == "org" || *name == "word" || *name == "byte" ||
                 *name == "space") {
        s.args.push_back(parse_expr(c));
        while (c.consume(',')) s.args.push_back(parse_expr(c));
      } else {
        fail(line_no, "unknown directive ." + *name);
      }
      if (!c.at_end()) fail(line_no, "trailing characters after directive");
      out.stmts.push_back(std::move(s));
      continue;
    }

    // Instruction.
    auto mnem = c.ident();
    if (!mnem) fail(line_no, "expected mnemonic");
    bool byte_op = false;
    std::string name = *mnem;
    if (name.size() > 2 && name.ends_with(".b")) {
      byte_op = true;
      name = name.substr(0, name.size() - 2);
    } else if (name.size() > 2 && name.ends_with(".w")) {
      name = name.substr(0, name.size() - 2);
    }
    std::vector<operand_ast> ops;
    if (!c.at_end()) {
      ops.push_back(parse_operand(c));
      while (c.consume(',')) ops.push_back(parse_operand(c));
    }
    if (!c.at_end()) fail(line_no, "trailing characters after instruction");
    out.stmts.push_back(expand(name, byte_op, std::move(ops), line_no));
  }
  return out;
}

}  // namespace dialed::masm
