#include "masm/disasm.h"

#include "common/bytes.h"
#include "common/error.h"

namespace dialed::masm {

std::vector<disasm_entry> disassemble(std::span<const std::uint8_t> bytes,
                                      std::uint16_t base) {
  std::vector<disasm_entry> out;
  std::vector<std::uint16_t> words(bytes.size() / 2);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = load_le16(bytes, 2 * i);
  }
  std::size_t w = 0;
  while (w < words.size()) {
    const std::uint16_t addr = static_cast<std::uint16_t>(base + 2 * w);
    const auto d = isa::decode(std::span(words).subspan(w), addr);
    out.push_back({addr, d.ins, 2 * d.words, isa::to_string(d.ins)});
    w += d.words;
  }
  return out;
}

std::vector<disasm_entry> disassemble(const image& img) {
  std::vector<disasm_entry> out;
  for (const auto& seg : img.segments) {
    auto part = disassemble(seg.bytes, seg.base);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace dialed::masm
