// Two-pass MSP430 assembler and memory-image model.
//
// Supported syntax (one statement per line, ';' comments):
//   label:            .org 0xc000         .equ NAME, expr
//   mov #1, r15       .word a, b          .byte 1, 2
//   mov.b @r14+, 2(r5)                    .space 8
//   jne .L1           .align
// plus the usual emulated mnemonics (ret, br, pop, nop, clr, inc, dec,
// incd, decd, tst, inv, rla, rlc, adc, sbc, dint, eint, setc/clrc, jz/jnz/
// jlo/jhs), which are canonicalized to core instructions at parse time.
#ifndef DIALED_MASM_MASM_H
#define DIALED_MASM_MASM_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "masm/ast.h"

namespace dialed::masm {

/// Parse assembly text into the statement model. Throws dialed::error with
/// "masm:<line>: ..." context on the first syntax error.
module_src parse(std::string_view text);

/// One contiguous run of assembled bytes.
struct segment {
  std::uint16_t base = 0;
  byte_vec bytes;

  std::uint16_t end() const {
    return static_cast<std::uint16_t>(base + bytes.size());
  }
};

/// Per-instruction listing record (address → source statement), consumed by
/// the verifier's forensics output and by tests.
struct listing_entry {
  std::uint16_t address = 0;
  int size_bytes = 0;
  int line = 0;
  std::string text;
};

/// Assembled module: memory segments plus the symbol table and listing.
struct image {
  std::vector<segment> segments;
  std::map<std::string, std::uint16_t> symbols;
  std::vector<listing_entry> listing;

  /// Value of a symbol; throws dialed::error when undefined.
  std::uint16_t symbol(const std::string& name) const;

  /// Total assembled bytes across segments.
  std::size_t total_bytes() const;
};

/// Assemble a parsed module. `predefined` symbols (e.g. OR_MIN/OR_MAX,
/// peripheral addresses) are visible to all expressions.
image assemble(const module_src& m,
               const std::map<std::string, std::uint16_t>& predefined = {});

/// Convenience: parse + assemble.
image assemble_text(
    std::string_view text,
    const std::map<std::string, std::uint16_t>& predefined = {});

}  // namespace dialed::masm

#endif  // DIALED_MASM_MASM_H
