// x86 SHA-256 compression backends, selected at runtime by the dispatch in
// sha256.cpp. Both are built with function-level target attributes so the
// translation unit compiles under the project's baseline -march and the
// unsupported paths are simply never called (cpuid-gated).
//
//  - shani: the SHA extensions kernel (SHA256RNDS2/SHA256MSG1/SHA256MSG2),
//    state packed as ABEF/CDGH vectors, 16 four-round groups per block.
//  - avx2: vectorized message schedule — four W words per step, with the
//    W[t-2] dependency resolved in two halves — feeding scalar rounds; two
//    blocks' schedules are computed in parallel in 256-bit lanes when the
//    input has them.
#include "crypto/sha256_backends.h"

#if DIALED_SHA256_HAVE_X86

#include <immintrin.h>

#include <array>
#include <bit>

namespace dialed::crypto::detail {

namespace {

constexpr std::array<std::uint32_t, 64> round_k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// ---------------------------------------------------------------------------
// AVX2 backend: SIMD message schedule + scalar rounds.

constexpr std::uint32_t big_sigma0(std::uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
constexpr std::uint32_t big_sigma1(std::uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}

// Rounds over a precomputed W+K schedule (64 words per block).
void rounds64(std::uint32_t* state, const std::uint32_t* wk) {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t t1 = h + big_sigma1(e) + ((e & f) ^ (~e & g)) + wk[i];
    const std::uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

__attribute__((target("avx2"))) inline __m128i sigma0_4(__m128i x) {
  const __m128i r7 = _mm_or_si128(_mm_srli_epi32(x, 7), _mm_slli_epi32(x, 25));
  const __m128i r18 =
      _mm_or_si128(_mm_srli_epi32(x, 18), _mm_slli_epi32(x, 14));
  return _mm_xor_si128(_mm_xor_si128(r7, r18), _mm_srli_epi32(x, 3));
}

__attribute__((target("avx2"))) inline __m128i sigma1_4(__m128i x) {
  const __m128i r17 =
      _mm_or_si128(_mm_srli_epi32(x, 17), _mm_slli_epi32(x, 15));
  const __m128i r19 =
      _mm_or_si128(_mm_srli_epi32(x, 19), _mm_slli_epi32(x, 13));
  return _mm_xor_si128(_mm_xor_si128(r17, r19), _mm_srli_epi32(x, 10));
}

// One schedule step: given the previous four W groups (x0 = W[t-16..t-13]
// ... x3 = W[t-4..t-1]), produce W[t..t+3]. Lanes 2,3 depend on lanes 0,1
// of the result itself (sigma1 of W[t-2] reaches into the new group), so
// sigma1 is applied in two halves.
__attribute__((target("avx2"))) inline __m128i schedule_4(__m128i x0,
                                                          __m128i x1,
                                                          __m128i x2,
                                                          __m128i x3) {
  __m128i t = _mm_add_epi32(x0, sigma0_4(_mm_alignr_epi8(x1, x0, 4)));
  t = _mm_add_epi32(t, _mm_alignr_epi8(x3, x2, 4));  // + W[t-7..t-4]
  // Low half: sigma1(W[t-2..t-1]) lives in x3's upper lanes.
  const __m128i s1_lo = sigma1_4(_mm_shuffle_epi32(x3, 0x0E));
  const __m128i w_lo = _mm_add_epi32(t, s1_lo);  // lanes 0,1 final
  // High half: sigma1 of the two words just produced.
  const __m128i s1_hi = sigma1_4(_mm_shuffle_epi32(w_lo, 0x40));
  const __m128i w_hi = _mm_add_epi32(t, s1_hi);  // lanes 2,3 final
  return _mm_blend_epi16(w_lo, w_hi, 0xF0);
}

__attribute__((target("avx2"))) inline __m256i sigma1_8(__m256i x) {
  const __m256i r17 =
      _mm256_or_si256(_mm256_srli_epi32(x, 17), _mm256_slli_epi32(x, 15));
  const __m256i r19 =
      _mm256_or_si256(_mm256_srli_epi32(x, 19), _mm256_slli_epi32(x, 13));
  return _mm256_xor_si256(_mm256_xor_si256(r17, r19),
                          _mm256_srli_epi32(x, 10));
}

// 256-bit variant: the same step on two independent blocks, one per
// 128-bit lane (alignr/shuffle/blend all operate within lanes).
__attribute__((target("avx2"))) inline __m256i schedule_4x2(__m256i x0,
                                                            __m256i x1,
                                                            __m256i x2,
                                                            __m256i x3) {
  const __m256i a15 = _mm256_alignr_epi8(x1, x0, 4);
  const __m256i s0 = _mm256_xor_si256(
      _mm256_xor_si256(
          _mm256_or_si256(_mm256_srli_epi32(a15, 7),
                          _mm256_slli_epi32(a15, 25)),
          _mm256_or_si256(_mm256_srli_epi32(a15, 18),
                          _mm256_slli_epi32(a15, 14))),
      _mm256_srli_epi32(a15, 3));
  __m256i t = _mm256_add_epi32(x0, s0);
  t = _mm256_add_epi32(t, _mm256_alignr_epi8(x3, x2, 4));
  const __m256i w_lo =
      _mm256_add_epi32(t, sigma1_8(_mm256_shuffle_epi32(x3, 0x0E)));
  const __m256i w_hi =
      _mm256_add_epi32(t, sigma1_8(_mm256_shuffle_epi32(w_lo, 0x40)));
  return _mm256_blend_epi16(w_lo, w_hi, 0xF0);
}

// Expand one block's 16 big-endian message words into a 64-word W+K
// schedule.
__attribute__((target("avx2"))) void build_schedule_1(
    const std::uint8_t* block, std::uint32_t* wk) {
  const __m128i bswap = _mm_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL));
  __m128i x0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), bswap);
  __m128i x1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), bswap);
  __m128i x2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), bswap);
  __m128i x3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), bswap);
  __m128i w[16];
  w[0] = x0;
  w[1] = x1;
  w[2] = x2;
  w[3] = x3;
  for (int g = 4; g < 16; ++g) {
    const __m128i next = schedule_4(x0, x1, x2, x3);
    w[g] = next;
    x0 = x1;
    x1 = x2;
    x2 = x3;
    x3 = next;
  }
  for (int g = 0; g < 16; ++g) {
    const __m128i kk = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_k.data() + 4 * g));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(wk + 4 * g),
                     _mm_add_epi32(w[g], kk));
  }
}

__attribute__((target("avx2"))) inline __m256i load_pair_be(
    const std::uint8_t* block_a, const std::uint8_t* block_b, int off,
    __m256i bswap) {
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block_a + off));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block_b + off));
  return _mm256_shuffle_epi8(
      _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1), bswap);
}

// Two blocks' schedules in parallel: block A in the low 128-bit lane,
// block B in the high lane.
__attribute__((target("avx2"))) void build_schedule_2(
    const std::uint8_t* block_a, const std::uint8_t* block_b,
    std::uint32_t* wk_a, std::uint32_t* wk_b) {
  const __m256i bswap = _mm256_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL),
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL));
  __m256i x0 = load_pair_be(block_a, block_b, 0, bswap);
  __m256i x1 = load_pair_be(block_a, block_b, 16, bswap);
  __m256i x2 = load_pair_be(block_a, block_b, 32, bswap);
  __m256i x3 = load_pair_be(block_a, block_b, 48, bswap);
  __m256i w[16];
  w[0] = x0;
  w[1] = x1;
  w[2] = x2;
  w[3] = x3;
  for (int g = 4; g < 16; ++g) {
    const __m256i next = schedule_4x2(x0, x1, x2, x3);
    w[g] = next;
    x0 = x1;
    x1 = x2;
    x2 = x3;
    x3 = next;
  }
  for (int g = 0; g < 16; ++g) {
    const __m128i kk = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_k.data() + 4 * g));
    const __m256i wkv = _mm256_add_epi32(
        w[g], _mm256_inserti128_si256(_mm256_castsi128_si256(kk), kk, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(wk_a + 4 * g),
                     _mm256_castsi256_si128(wkv));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(wk_b + 4 * g),
                     _mm256_extracti128_si256(wkv, 1));
  }
}

}  // namespace

__attribute__((target("avx2"))) void sha256_compress_avx2(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t n) {
  alignas(32) std::uint32_t wk[2][64];
  while (n >= 2) {
    build_schedule_2(blocks, blocks + 64, wk[0], wk[1]);
    rounds64(state, wk[0]);
    rounds64(state, wk[1]);
    blocks += 128;
    n -= 2;
  }
  if (n != 0) {
    build_schedule_1(blocks, wk[0]);
    rounds64(state, wk[0]);
  }
}

// ---------------------------------------------------------------------------
// SHA-NI backend. State is carried as two packed vectors (ABEF / CDGH);
// each SHA256RNDS2 advances two rounds, message words flow through
// SHA256MSG1/SHA256MSG2 with one ALIGNR fix-up per four-round group.

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_compress_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t n) {
  const __m128i bswap = _mm_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL));
  const auto kvec = [](int g) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_k.data() + 4 * g));
  };

  // Pack a,b,...,h into ABEF / CDGH.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));  // DCBA
  __m128i st1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                              // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);                              // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);                      // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);                           // CDGH

  while (n-- != 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks)), bswap);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        bswap);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        bswap);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        bswap);

    // Rounds 0-3
    msg = _mm_add_epi32(msg0, kvec(0));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));

    // Rounds 4-7
    msg = _mm_add_epi32(msg1, kvec(1));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg = _mm_add_epi32(msg2, kvec(2));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg = _mm_add_epi32(msg3, kvec(3));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(msg0, kvec(4));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(msg1, kvec(5));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(msg2, kvec(6));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(msg3, kvec(7));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(msg0, kvec(8));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(msg1, kvec(9));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(msg2, kvec(10));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(msg3, kvec(11));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(msg0, kvec(12));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1, kvec(13));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));

    // Rounds 56-59
    msg = _mm_add_epi32(msg2, kvec(14));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));

    // Rounds 60-63
    msg = _mm_add_epi32(msg3, kvec(15));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    st0 = _mm_sha256rnds2_epu32(st0, st1, _mm_shuffle_epi32(msg, 0x0E));

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
    blocks += 64;
  }

  // Unpack ABEF/CDGH back to a..h memory order.
  tmp = _mm_shuffle_epi32(st0, 0x1B);                 // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);                 // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);              // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);                 // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), st1);
}

}  // namespace dialed::crypto::detail

#endif  // DIALED_SHA256_HAVE_X86
