#include "crypto/sha256.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "crypto/sha256_backends.h"

#if DIALED_SHA256_HAVE_X86
#include <cpuid.h>
#endif

namespace dialed::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t big_sigma0(std::uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
constexpr std::uint32_t big_sigma1(std::uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
constexpr std::uint32_t small_sigma0(std::uint32_t x) {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
constexpr std::uint32_t small_sigma1(std::uint32_t x) {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

// ---------------------------------------------------------------------------
// Backend dispatch. Resolved once (cpuid probe + DIALED_SHA256_IMPL env
// override), then every compression goes through one atomic function-pointer
// load. sha256_force_backend() swaps both atomics; hashes in flight finish
// on whichever backend they loaded — all backends are bit-identical.

using compress_fn = void (*)(std::uint32_t*, const std::uint8_t*,
                             std::size_t);

std::atomic<compress_fn> g_compress{nullptr};
std::atomic<sha256_backend> g_backend{sha256_backend::scalar};

#if DIALED_SHA256_HAVE_X86
struct cpu_features {
  bool avx2 = false;
  bool shani = false;
};

cpu_features probe_cpu() {
  cpu_features out;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return out;
  const bool ssse3 = (ecx & (1u << 9)) != 0;
  const bool sse41 = (ecx & (1u << 19)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  // AVX2 needs the OS to context-switch YMM state (XCR0 bits 1:2).
  bool ymm_ok = false;
  if (osxsave) {
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    ymm_ok = (xcr0_lo & 0x6u) == 0x6u;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return out;
  out.avx2 = ymm_ok && (ebx & (1u << 5)) != 0;
  // The SHA-NI kernel also leans on SSSE3/SSE4.1 shuffles.
  out.shani = ssse3 && sse41 && (ebx & (1u << 29)) != 0;
  return out;
}

const cpu_features& cached_cpu() {
  static const cpu_features f = probe_cpu();
  return f;
}
#endif  // DIALED_SHA256_HAVE_X86

compress_fn backend_fn(sha256_backend b) {
  switch (b) {
#if DIALED_SHA256_HAVE_X86
    case sha256_backend::avx2:
      return detail::sha256_compress_avx2;
    case sha256_backend::shani:
      return detail::sha256_compress_shani;
#endif
    default:
      return detail::sha256_compress_scalar;
  }
}

sha256_backend best_supported() {
  if (sha256_backend_supported(sha256_backend::shani))
    return sha256_backend::shani;
  if (sha256_backend_supported(sha256_backend::avx2))
    return sha256_backend::avx2;
  return sha256_backend::scalar;
}

void init_dispatch() {
  sha256_backend chosen = best_supported();
  if (const char* env = std::getenv("DIALED_SHA256_IMPL")) {
    sha256_backend want = chosen;
    bool parsed = false;
    if (std::strcmp(env, "scalar") == 0) {
      want = sha256_backend::scalar;
      parsed = true;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = sha256_backend::avx2;
      parsed = true;
    } else if (std::strcmp(env, "shani") == 0) {
      want = sha256_backend::shani;
      parsed = true;
    }
    if (parsed && sha256_backend_supported(want)) chosen = want;
  }
  g_backend.store(chosen, std::memory_order_relaxed);
  g_compress.store(backend_fn(chosen), std::memory_order_release);
}

compress_fn active_fn() {
  compress_fn fn = g_compress.load(std::memory_order_acquire);
  if (fn == nullptr) [[unlikely]] {
    // Thread-safe one-time resolve via the magic-static guard.
    static const bool once = (init_dispatch(), true);
    (void)once;
    fn = g_compress.load(std::memory_order_acquire);
  }
  return fn;
}

}  // namespace

namespace detail {

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t n) {
  while (n-- != 0) {
    const std::uint8_t* block = blocks;
    std::array<std::uint32_t, 64> w{};
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
             w[i - 16];
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 =
          h + big_sigma1(e) + ((e & f) ^ (~e & g)) + k[i] + w[i];
      const std::uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += sha256::block_size;
  }
}

}  // namespace detail

const char* to_string(sha256_backend b) {
  switch (b) {
    case sha256_backend::avx2:
      return "avx2";
    case sha256_backend::shani:
      return "shani";
    default:
      return "scalar";
  }
}

bool sha256_backend_supported(sha256_backend b) {
  switch (b) {
    case sha256_backend::scalar:
      return true;
#if DIALED_SHA256_HAVE_X86
    case sha256_backend::avx2:
      return cached_cpu().avx2;
    case sha256_backend::shani:
      return cached_cpu().shani;
#endif
    default:
      return false;
  }
}

sha256_backend sha256_active_backend() {
  (void)active_fn();  // force one-time resolution
  return g_backend.load(std::memory_order_relaxed);
}

bool sha256_force_backend(sha256_backend b) {
  if (!sha256_backend_supported(b)) return false;
  (void)active_fn();  // resolve first so a later lazy init can't clobber us
  g_backend.store(b, std::memory_order_relaxed);
  g_compress.store(backend_fn(b), std::memory_order_release);
  return true;
}

void sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_bytes_ = 0;
}

void sha256::compress_blocks(const std::uint8_t* blocks, std::size_t n) {
  active_fn()(state_.data(), blocks, n);
}

void sha256::update(std::span<const std::uint8_t> data) {
  // An empty span may carry a null data() — memcpy's pointer arguments
  // must never be null even for size 0 (UBSan catches it; found by the
  // wire fuzz battery hashing zero-length OR baselines).
  if (data.empty()) return;
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ != 0) {
    const std::size_t take =
        std::min(block_size - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == block_size) {
      compress_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  if (const std::size_t whole = (data.size() - pos) / block_size;
      whole != 0) {
    compress_blocks(data.data() + pos, whole);
    pos += whole * block_size;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

sha256::digest sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  buffer_[buffered_++] = 0x80;
  if (buffered_ > block_size - 8) {
    std::memset(buffer_.data() + buffered_, 0, block_size - buffered_);
    compress_blocks(buffer_.data(), 1);
    buffered_ = 0;
  }
  std::memset(buffer_.data() + buffered_, 0, block_size - 8 - buffered_);
  for (int i = 0; i < 8; ++i) {
    buffer_[block_size - 8 + i] =
        static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  compress_blocks(buffer_.data(), 1);

  digest out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  reset();
  return out;
}

sha256::digest sha256::hash(std::span<const std::uint8_t> data) {
  sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace dialed::crypto
