// SHA-256 (FIPS 180-4). VRASED's SW-Att computes HMAC-SHA256 over attested
// memory; this is the self-contained implementation backing it.
#ifndef DIALED_CRYPTO_SHA256_H
#define DIALED_CRYPTO_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dialed::crypto {

/// Incremental SHA-256. Reusable after `reset()`.
class sha256 {
 public:
  static constexpr std::size_t digest_size = 32;
  static constexpr std::size_t block_size = 64;
  using digest = std::array<std::uint8_t, digest_size>;

  sha256() { reset(); }

  /// Restore the initial hash state; discards any buffered input.
  void reset();

  /// Absorb `data`; may be called any number of times.
  void update(std::span<const std::uint8_t> data);

  /// Pad, finalize and return the digest. The object must be `reset()`
  /// before further use.
  digest finish();

  /// One-shot convenience.
  static digest hash(std::span<const std::uint8_t> data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, block_size> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace dialed::crypto

#endif  // DIALED_CRYPTO_SHA256_H
