// SHA-256 (FIPS 180-4). VRASED's SW-Att computes HMAC-SHA256 over attested
// memory; this is the self-contained implementation backing it.
//
// The compression function is runtime-dispatched: a one-time `cpuid` probe
// picks the fastest backend the CPU supports (SHA-NI > AVX2 > scalar), and
// every `sha256` instance routes its block compressions through an atomic
// function pointer. The scalar backend is always compiled in — it is the
// differential-testing reference and the only backend on non-x86 builds or
// when `DIALED_SHA256_PORTABLE` is defined (CMake `-DDIALED_SHA256_SIMD=OFF`).
#ifndef DIALED_CRYPTO_SHA256_H
#define DIALED_CRYPTO_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.h"

namespace dialed::crypto {

/// Compression backends, ordered slowest-to-fastest. `scalar` is the
/// portable reference implementation; `avx2` vectorizes the message
/// schedule (two blocks at a time when the input allows); `shani` uses the
/// x86 SHA extensions.
enum class sha256_backend : std::uint8_t { scalar = 0, avx2 = 1, shani = 2 };

const char* to_string(sha256_backend b);

/// Whether this build + CPU can execute `b`. `scalar` is always true.
bool sha256_backend_supported(sha256_backend b);

/// The backend new hash computations will use. Resolved on first use from
/// the cpuid probe and the `DIALED_SHA256_IMPL=scalar|avx2|shani`
/// environment override (unknown or unsupported values fall back to the
/// best supported backend).
sha256_backend sha256_active_backend();

/// Force `b` for subsequent computations; returns false (and changes
/// nothing) if unsupported. Intended for startup/test configuration — it
/// may race with hashes already in flight on other threads (they finish on
/// whichever backend they loaded; every backend is bit-identical).
bool sha256_force_backend(sha256_backend b);

/// Incremental SHA-256. `finish()` auto-resets, so one instance can hash a
/// sequence of messages with no `reset()` calls in between.
class sha256 {
 public:
  static constexpr std::size_t digest_size = 32;
  static constexpr std::size_t block_size = 64;
  using digest = std::array<std::uint8_t, digest_size>;

  sha256() { reset(); }

  /// Restore the initial hash state; discards any buffered input.
  void reset();

  /// Absorb `data`; may be called any number of times.
  void update(std::span<const std::uint8_t> data);

  /// Pad, finalize and return the digest. The object is automatically
  /// reset to the initial state afterwards, ready for the next message.
  digest finish();

  /// Hash state captured at a 64-byte block boundary. Lets a keyed
  /// construction (HMAC) absorb its key block once and replay the
  /// resulting state per message instead of recompressing the key.
  struct midstate {
    std::array<std::uint32_t, 8> h{};
    std::uint64_t total_bytes = 0;
  };

  /// Snapshot the current state. Only valid at a block boundary (a
  /// multiple of 64 bytes absorbed): buffered partial-block input is not
  /// part of the compressed state, so capturing it would silently drop
  /// bytes — throws dialed::error instead.
  midstate save() const {
    if (buffered_ != 0) {
      throw error("sha256: midstate save off a 64-byte block boundary");
    }
    return {state_, total_bytes_};
  }

  /// Resume from a block-boundary snapshot, discarding current state.
  void restore(const midstate& m) {
    state_ = m.h;
    total_bytes_ = m.total_bytes;
    buffered_ = 0;
  }

  /// One-shot convenience.
  static digest hash(std::span<const std::uint8_t> data);

 private:
  void compress_blocks(const std::uint8_t* blocks, std::size_t n);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, block_size> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace dialed::crypto

#endif  // DIALED_CRYPTO_SHA256_H
