// Internal: raw SHA-256 compression backends behind the dispatch in
// sha256.cpp. Each function folds `n` consecutive 64-byte blocks into
// `state` (8 words, host order); callers guarantee n >= 1. Not part of the
// public crypto API — include crypto/sha256.h instead.
#ifndef DIALED_CRYPTO_SHA256_BACKENDS_H
#define DIALED_CRYPTO_SHA256_BACKENDS_H

#include <cstddef>
#include <cstdint>

// x86 SIMD backends need function-level target attributes (so the rest of
// the build keeps its baseline -march) and are compiled out entirely on
// other architectures or when DIALED_SHA256_PORTABLE is defined (CMake
// -DDIALED_SHA256_SIMD=OFF).
#if !defined(DIALED_SHA256_PORTABLE) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIALED_SHA256_HAVE_X86 1
#else
#define DIALED_SHA256_HAVE_X86 0
#endif

namespace dialed::crypto::detail {

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t n);

#if DIALED_SHA256_HAVE_X86
void sha256_compress_avx2(std::uint32_t* state, const std::uint8_t* blocks,
                          std::size_t n);
void sha256_compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                           std::size_t n);
#endif

}  // namespace dialed::crypto::detail

#endif  // DIALED_CRYPTO_SHA256_BACKENDS_H
