// HMAC-SHA256 (RFC 2104 / FIPS 198-1), the MAC used by VRASED's SW-Att to
// authenticate attestation reports.
#ifndef DIALED_CRYPTO_HMAC_H
#define DIALED_CRYPTO_HMAC_H

#include <span>

#include "crypto/sha256.h"

namespace dialed::crypto {

/// Incremental HMAC-SHA256 keyed at construction.
class hmac_sha256 {
 public:
  using mac = sha256::digest;

  explicit hmac_sha256(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  mac finish();

  /// One-shot convenience.
  static mac compute(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> data);

  /// Constant-time comparison of two MACs.
  static bool equal(const mac& a, const mac& b);

 private:
  std::array<std::uint8_t, sha256::block_size> opad_key_{};
  sha256 inner_;
};

}  // namespace dialed::crypto

#endif  // DIALED_CRYPTO_HMAC_H
