// HMAC-SHA256 (RFC 2104 / FIPS 198-1), the MAC used by VRASED's SW-Att to
// authenticate attestation reports.
#ifndef DIALED_CRYPTO_HMAC_H
#define DIALED_CRYPTO_HMAC_H

#include <span>

#include "crypto/sha256.h"

namespace dialed::crypto {

/// Precomputed HMAC key schedule: the SHA-256 midstates left after
/// absorbing the ipad- and opad-masked key blocks. Deriving one costs two
/// compressions; every MAC computed from it then spends compressions on
/// message bytes only (vs. two extra key-block compressions per MAC when
/// starting from the raw key). Holds key material — treat as secret, never
/// persist (recompute from the key on load).
struct hmac_keystate {
  sha256::midstate inner;  ///< state after the ipad block
  sha256::midstate outer;  ///< state after the opad block

  static hmac_keystate derive(std::span<const std::uint8_t> key);
};

/// Incremental HMAC-SHA256 keyed at construction. `finish()` re-arms the
/// instance for the next message under the same key.
class hmac_sha256 {
 public:
  using mac = sha256::digest;

  explicit hmac_sha256(std::span<const std::uint8_t> key);
  explicit hmac_sha256(const hmac_keystate& ks);

  void update(std::span<const std::uint8_t> data);
  mac finish();

  /// One-shot convenience.
  static mac compute(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> data);

  /// One-shot from a cached key schedule: no key hashing, no ipad/opad
  /// block temporaries — a single hash object resumed from the midstates.
  static mac compute(const hmac_keystate& ks,
                     std::span<const std::uint8_t> data);

  /// Constant-time comparison of two MACs.
  static bool equal(const mac& a, const mac& b);

 private:
  hmac_keystate ks_;
  sha256 inner_;
};

}  // namespace dialed::crypto

#endif  // DIALED_CRYPTO_HMAC_H
