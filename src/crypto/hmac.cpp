#include "crypto/hmac.h"

#include <algorithm>

namespace dialed::crypto {

hmac_sha256::hmac_sha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, sha256::block_size> block_key{};
  if (key.size() > sha256::block_size) {
    const auto digest = sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, sha256::block_size> ipad_key{};
  for (std::size_t i = 0; i < sha256::block_size; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.update(ipad_key);
}

void hmac_sha256::update(std::span<const std::uint8_t> data) {
  inner_.update(data);
}

hmac_sha256::mac hmac_sha256::finish() {
  const auto inner_digest = inner_.finish();
  sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

hmac_sha256::mac hmac_sha256::compute(std::span<const std::uint8_t> key,
                                      std::span<const std::uint8_t> data) {
  hmac_sha256 h(key);
  h.update(data);
  return h.finish();
}

bool hmac_sha256::equal(const mac& a, const mac& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace dialed::crypto
