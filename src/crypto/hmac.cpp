#include "crypto/hmac.h"

#include <algorithm>

namespace dialed::crypto {

hmac_keystate hmac_keystate::derive(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, sha256::block_size> block_key{};
  if (key.size() > sha256::block_size) {
    const auto digest = sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, sha256::block_size> pad{};
  for (std::size_t i = 0; i < sha256::block_size; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
  }
  hmac_keystate out;
  sha256 h;
  h.update(pad);
  out.inner = h.save();
  for (std::size_t i = 0; i < sha256::block_size; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  h.reset();
  h.update(pad);
  out.outer = h.save();
  return out;
}

hmac_sha256::hmac_sha256(std::span<const std::uint8_t> key)
    : ks_(hmac_keystate::derive(key)) {
  inner_.restore(ks_.inner);
}

hmac_sha256::hmac_sha256(const hmac_keystate& ks) : ks_(ks) {
  inner_.restore(ks_.inner);
}

void hmac_sha256::update(std::span<const std::uint8_t> data) {
  inner_.update(data);
}

hmac_sha256::mac hmac_sha256::finish() {
  const auto inner_digest = inner_.finish();
  sha256 outer;
  outer.restore(ks_.outer);
  outer.update(inner_digest);
  // Re-arm for the next message under the same key.
  inner_.restore(ks_.inner);
  return outer.finish();
}

hmac_sha256::mac hmac_sha256::compute(std::span<const std::uint8_t> key,
                                      std::span<const std::uint8_t> data) {
  return compute(hmac_keystate::derive(key), data);
}

hmac_sha256::mac hmac_sha256::compute(const hmac_keystate& ks,
                                      std::span<const std::uint8_t> data) {
  sha256 h;
  h.restore(ks.inner);
  h.update(data);
  const auto inner_digest = h.finish();
  h.restore(ks.outer);
  h.update(inner_digest);
  return h.finish();
}

bool hmac_sha256::equal(const mac& a, const mac& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace dialed::crypto
