#include "store/fleet_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "store/codec.h"
#include "verifier/firmware_artifact.h"

namespace dialed::store {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// On-disk constants
// ---------------------------------------------------------------------------

constexpr std::array<std::uint8_t, 4> snapshot_magic = {'D', 'L', 'F',
                                                        'S'};
/// v1: PR 4's original format. v2 (wire v2.1) appends a per-device delta
/// baseline to each hub-state row and grows the proto_error histogram by
/// the baseline_mismatch bucket. v1 snapshots still load (no baselines,
/// the new bucket zero); this build always WRITES v2.
constexpr std::uint32_t snapshot_version_v1 = 1;
constexpr std::uint32_t snapshot_version = 2;
/// proto_error_count at the time v1 snapshots were written — their
/// histogram has exactly this many buckets.
constexpr std::uint32_t v1_error_buckets = 12;

/// WAL record types (first payload byte).
enum class rec : std::uint8_t {
  firmware = 1,   ///< content id + full linked_program image
  provision = 2,  ///< device id, key, firmware content id
  challenge = 3,  ///< device id, seq, nonce, issue tick
  retire = 4,     ///< device id, nonce, fate
  verdict = 5,    ///< device id, proto_error byte, accepted flag
  tick = 6,       ///< new clock value
  baseline = 7,   ///< device id, seq, accepted round's full OR bytes
};

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

std::optional<byte_vec> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  byte_vec data((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw store_error(store_error_kind::io_error,
                      p.string() + ": read failed");
  }
  return data;
}

/// tmp + fsync + rename, so a crash mid-write never leaves a half
/// snapshot under the real name.
void write_file_atomic(const fs::path& p, std::span<const std::uint8_t> b) {
  const fs::path tmp = p.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw store_error(store_error_kind::io_error,
                      tmp.string() + ": open: " + std::strerror(errno));
  }
  const bool wrote = std::fwrite(b.data(), 1, b.size(), f) == b.size() &&
                     std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote) {
    throw store_error(store_error_kind::io_error,
                      tmp.string() + ": write: " + std::strerror(errno));
  }
  std::error_code ec;
  fs::rename(tmp, p, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      p.string() + ": rename: " + ec.message());
  }
}

// ---------------------------------------------------------------------------
// The state image: plain data the snapshot parser and the WAL replay both
// apply into, materialized into live objects at the end of open().
// ---------------------------------------------------------------------------

struct image_device {
  byte_vec key;
  verifier::firmware_id fw{};
};

struct state_image {
  byte_vec master_key;
  fleet::device_id next_id = 1;
  std::uint64_t now = 0;
  std::uint64_t wal_generation = 0;
  fleet::hub_stats stats;  ///< hub-level counters (per_device unused)
  std::map<verifier::firmware_id, instr::linked_program> firmwares;
  std::map<fleet::device_id, image_device> devices;
  std::map<fleet::device_id, fleet::device_restore> states;
};

verifier::firmware_id read_fw_id(reader& r) {
  verifier::firmware_id id{};
  const auto s = r.raw(id.size());
  std::copy(s.begin(), s.end(), id.begin());
  return id;
}

fleet::nonce16 read_nonce(reader& r) {
  fleet::nonce16 n{};
  const auto s = r.raw(n.size());
  std::copy(s.begin(), s.end(), n.begin());
  return n;
}

// ---------------------------------------------------------------------------
// WAL replay
// ---------------------------------------------------------------------------

fleet::device_restore& state_for(state_image& img, fleet::device_id id) {
  auto& st = img.states[id];
  st.id = id;
  return st;
}

void apply_record(state_image& img, std::span<const std::uint8_t> payload,
                  std::size_t record_index,
                  std::size_t retired_memory) {
  reader r(payload, "wal record " + std::to_string(record_index));
  const std::uint8_t type = r.u8();
  switch (static_cast<rec>(type)) {
    case rec::firmware: {
      const auto id = read_fw_id(r);
      const byte_vec blob = r.bytes();
      reader pr(blob, "wal firmware image");
      img.firmwares[id] = read_program(pr);
      break;
    }
    case rec::provision: {
      const fleet::device_id id = r.u32();
      image_device dev;
      dev.key = r.bytes();
      dev.fw = read_fw_id(r);
      if (img.firmwares.count(dev.fw) == 0) {
        throw store_error(store_error_kind::unknown_firmware,
                          "wal: device " + std::to_string(id) +
                              " references an unpersisted firmware id");
      }
      if (!img.devices.emplace(id, std::move(dev)).second) {
        throw store_error(store_error_kind::bad_record,
                          "wal: device " + std::to_string(id) +
                              " provisioned twice");
      }
      img.next_id = std::max(img.next_id, id + 1);
      break;
    }
    case rec::challenge: {
      const fleet::device_id id = r.u32();
      const std::uint32_t seq = r.u32();
      const auto nonce = read_nonce(r);
      const std::uint64_t issued_at = r.u64();
      if (img.devices.count(id) == 0) {
        throw store_error(store_error_kind::bad_record,
                          "wal: challenge for unprovisioned device " +
                              std::to_string(id));
      }
      auto& st = state_for(img, id);
      st.outstanding.push_back({nonce, seq, issued_at});
      st.next_seq = std::max(st.next_seq, seq + 1);
      // tick() journals outside the shard locks, so a challenge that read
      // the advanced clock can beat its tick record into the log (or the
      // tick record can be the torn tail). The clock must never restore
      // BEHIND an issue stamp — unsigned expiry math would treat the
      // challenge as ~2^64 ticks old and expire it on the spot.
      img.now = std::max(img.now, issued_at);
      ++img.stats.challenges_issued;
      break;
    }
    case rec::retire: {
      const fleet::device_id id = r.u32();
      const auto nonce = read_nonce(r);
      fleet::nonce_fate fate{};
      if (!fleet::nonce_fate_from_u8(r.u8(), fate)) {
        throw store_error(store_error_kind::bad_record,
                          "wal: invalid nonce fate byte");
      }
      auto& st = state_for(img, id);
      const auto it = std::find_if(
          st.outstanding.begin(), st.outstanding.end(),
          [&](const auto& e) { return e.nonce == nonce; });
      if (it == st.outstanding.end()) {
        throw store_error(store_error_kind::bad_record,
                          "wal: retire of a nonce never outstanding "
                          "(device " +
                              std::to_string(id) + ")");
      }
      st.outstanding.erase(it);
      st.retired.push_back({nonce, fate});
      if (retired_memory != 0 && st.retired.size() > retired_memory) {
        st.retired.erase(st.retired.begin());
      }
      if (fate == fleet::nonce_fate::expired) {
        ++img.stats.challenges_expired;
      } else if (fate == fleet::nonce_fate::superseded) {
        ++img.stats.challenges_superseded;
      }
      break;
    }
    case rec::verdict: {
      const fleet::device_id id = r.u32();
      proto::proto_error err{};
      if (!proto::proto_error_from_u8(r.u8(), err)) {
        throw store_error(store_error_kind::bad_record,
                          "wal: invalid proto_error byte");
      }
      const bool accepted = r.boolean();
      const bool known = img.devices.count(id) != 0;
      if (err == proto::proto_error::none) {
        if (!known) {
          throw store_error(store_error_kind::bad_record,
                            "wal: verdict for unprovisioned device " +
                                std::to_string(id));
        }
        auto& c = state_for(img, id).counters;
        if (accepted) {
          ++img.stats.reports_accepted;
          ++c.accepted;
        } else {
          ++img.stats.reports_rejected_verdict;
          ++c.rejected_verdict;
        }
      } else {
        ++img.stats.rejected_by_error[static_cast<std::size_t>(err)];
        // Unknown device ids are deliberately not attributed (matching
        // the live hub: an id-spraying attacker must not grow the map).
        if (known) {
          auto& c = state_for(img, id).counters;
          if (err == proto::proto_error::replayed_report) {
            ++c.replayed;
          } else {
            ++c.rejected_protocol;
          }
        }
      }
      break;
    }
    case rec::tick: {
      // Concurrent ticks may journal out of order; keep the maximum so
      // the clock never regresses (expiry must stay monotonic).
      img.now = std::max(img.now, r.u64());
      break;
    }
    case rec::baseline: {
      const fleet::device_id id = r.u32();
      const std::uint32_t seq = r.u32();
      byte_vec bytes = r.bytes();
      if (img.devices.count(id) == 0) {
        throw store_error(store_error_kind::bad_record,
                          "wal: baseline for unprovisioned device " +
                              std::to_string(id));
      }
      auto& b = state_for(img, id).baseline;
      // Concurrent accepts journal in lock order per shard, but keep the
      // max-seq rule anyway — it is the live hub's adoption rule too.
      if (!b.valid || seq > b.seq) {
        b.valid = true;
        b.seq = seq;
        b.bytes = std::move(bytes);
      }
      break;
    }
    default:
      throw store_error(store_error_kind::bad_record,
                        "wal: unknown record type " +
                            std::to_string(type));
  }
  if (!r.done()) {
    throw store_error(store_error_kind::bad_record,
                      "wal: record " + std::to_string(record_index) +
                          " has " + std::to_string(r.remaining()) +
                          " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

void write_device_state(writer& w, const fleet::device_restore& d) {
  w.u32(d.id);
  w.u32(d.next_seq);
  w.u32(static_cast<std::uint32_t>(d.outstanding.size()));
  for (const auto& c : d.outstanding) {
    w.raw(c.nonce);
    w.u32(c.seq);
    w.u64(c.issued_at);
  }
  w.u32(static_cast<std::uint32_t>(d.retired.size()));
  for (const auto& n : d.retired) {
    w.raw(n.nonce);
    w.u8(static_cast<std::uint8_t>(n.fate));
  }
  w.u64(d.counters.accepted);
  w.u64(d.counters.rejected_verdict);
  w.u64(d.counters.replayed);
  w.u64(d.counters.rejected_protocol);
  // v2: the wire v2.1 delta baseline (absent flag + seq + OR bytes).
  w.boolean(d.baseline.valid);
  if (d.baseline.valid) {
    w.u32(d.baseline.seq);
    w.bytes(d.baseline.bytes);
  }
}

fleet::device_restore read_device_state(reader& r,
                                        std::uint32_t version) {
  fleet::device_restore d;
  d.id = r.u32();
  d.next_seq = r.u32();
  const std::uint32_t nout = r.count(28);
  d.outstanding.reserve(nout);
  for (std::uint32_t i = 0; i < nout; ++i) {
    fleet::device_restore::outstanding_challenge c;
    c.nonce = read_nonce(r);
    c.seq = r.u32();
    c.issued_at = r.u64();
    d.outstanding.push_back(c);
  }
  const std::uint32_t nret = r.count(17);
  d.retired.reserve(nret);
  for (std::uint32_t i = 0; i < nret; ++i) {
    fleet::device_restore::retired_nonce n;
    n.nonce = read_nonce(r);
    if (!fleet::nonce_fate_from_u8(r.u8(), n.fate)) {
      throw store_error(store_error_kind::bad_record,
                        "snapshot: invalid nonce fate byte");
    }
    d.retired.push_back(n);
  }
  d.counters.accepted = r.u64();
  d.counters.rejected_verdict = r.u64();
  d.counters.replayed = r.u64();
  d.counters.rejected_protocol = r.u64();
  if (version >= 2 && r.boolean()) {
    d.baseline.valid = true;
    d.baseline.seq = r.u32();
    d.baseline.bytes = r.bytes();
  }
  return d;
}

state_image parse_snapshot(std::span<const std::uint8_t> data,
                           const std::string& path) {
  if (data.size() < 12 ||
      !std::equal(snapshot_magic.begin(), snapshot_magic.end(),
                  data.begin())) {
    throw store_error(store_error_kind::bad_magic,
                      path + ": not a DIALED fleet snapshot");
  }
  const std::uint32_t version = load_le32(data, 4);
  if (version != snapshot_version_v1 && version != snapshot_version) {
    throw store_error(store_error_kind::bad_version,
                      path + ": snapshot version " +
                          std::to_string(version) +
                          " (this build speaks " +
                          std::to_string(snapshot_version_v1) + ".." +
                          std::to_string(snapshot_version) + ")");
  }
  const std::uint32_t stored_crc = load_le32(data, data.size() - 4);
  const auto guarded = data.subspan(0, data.size() - 4);
  if (crc32(guarded) != stored_crc) {
    throw store_error(store_error_kind::crc_mismatch,
                      path + ": snapshot CRC mismatch — corrupt at "
                             "rest, refusing to load");
  }

  state_image img;
  reader r(guarded.subspan(8), "snapshot");
  img.master_key = r.bytes();
  img.next_id = r.u32();
  img.now = r.u64();
  img.wal_generation = r.u64();

  img.stats.challenges_issued = r.u64();
  img.stats.challenges_expired = r.u64();
  img.stats.challenges_superseded = r.u64();
  img.stats.reports_accepted = r.u64();
  img.stats.reports_rejected_verdict = r.u64();
  // v1 snapshots predate baseline_mismatch: their histogram is one
  // bucket short, and the missing (newest) bucket starts at zero.
  const std::uint32_t nerr = r.count(8);
  const std::uint32_t expected_err =
      version == snapshot_version_v1
          ? v1_error_buckets
          : static_cast<std::uint32_t>(img.stats.rejected_by_error.size());
  if (nerr != expected_err ||
      nerr > img.stats.rejected_by_error.size()) {
    throw store_error(store_error_kind::bad_record,
                      path + ": error histogram has " +
                          std::to_string(nerr) + " buckets, expected " +
                          std::to_string(expected_err));
  }
  for (std::uint32_t i = 0; i < nerr; ++i) {
    img.stats.rejected_by_error[i] = r.u64();
  }

  const std::uint32_t nfw = r.count(36);
  for (std::uint32_t i = 0; i < nfw; ++i) {
    const auto id = read_fw_id(r);
    const byte_vec blob = r.bytes();
    reader pr(blob, "snapshot firmware image");
    img.firmwares[id] = read_program(pr);
    if (!pr.done()) {
      throw store_error(store_error_kind::bad_record,
                        path + ": firmware image has trailing bytes");
    }
  }

  const std::uint32_t ndev = r.count(40);
  for (std::uint32_t i = 0; i < ndev; ++i) {
    const fleet::device_id id = r.u32();
    image_device dev;
    dev.key = r.bytes();
    dev.fw = read_fw_id(r);
    if (img.firmwares.count(dev.fw) == 0) {
      throw store_error(store_error_kind::unknown_firmware,
                        path + ": device " + std::to_string(id) +
                            " references a firmware id missing from "
                            "the snapshot");
    }
    if (!img.devices.emplace(id, std::move(dev)).second) {
      throw store_error(store_error_kind::bad_record,
                        path + ": device " + std::to_string(id) +
                            " appears twice");
    }
  }

  const std::uint32_t nstate = r.count(44);
  for (std::uint32_t i = 0; i < nstate; ++i) {
    auto d = read_device_state(r, version);
    if (img.devices.count(d.id) == 0) {
      throw store_error(store_error_kind::bad_record,
                        path + ": hub state for unprovisioned device " +
                            std::to_string(d.id));
    }
    const auto id = d.id;
    img.states.emplace(id, std::move(d));
  }

  if (!r.done()) {
    throw store_error(store_error_kind::bad_record,
                      path + ": snapshot has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes");
  }
  return img;
}

byte_vec serialize_program(const instr::linked_program& prog) {
  writer w;
  write_program(w, prog);
  return w.take();
}

}  // namespace

// ---------------------------------------------------------------------------
// fleet_store
// ---------------------------------------------------------------------------

fleet_store::fleet_store(std::string dir, options opts)
    : dir_(std::move(dir)), opts_(std::move(opts)) {}

std::string fleet_store::wal_path(std::uint64_t generation) const {
  return (fs::path(dir_) / ("wal-" + std::to_string(generation) + ".log"))
      .string();
}

fleet_state fleet_store::open(const std::string& dir, options opts) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      dir + ": create: " + ec.message());
  }

  // 1. Snapshot (or a fresh image).
  const fs::path snap_path = fs::path(dir) / snapshot_file;
  state_image img;
  bool had_snapshot = false;
  if (const auto data = read_file(snap_path)) {
    img = parse_snapshot(*data, snap_path.string());
    had_snapshot = true;
    if (!opts.master_key.empty() && opts.master_key != img.master_key) {
      throw store_error(
          store_error_kind::master_key_mismatch,
          snap_path.string() +
              ": caller's master key differs from the persisted one");
    }
  } else {
    img.master_key = opts.master_key;
  }

  // 2. WAL replay on top (only the snapshot's own generation — an older
  // log would double-apply events the snapshot already contains).
  std::unique_ptr<fleet_store> store(
      new fleet_store(dir, std::move(opts)));
  store->generation_ = img.wal_generation;
  const std::string wal_file = store->wal_path(img.wal_generation);
  std::uint64_t wal_valid = 0;
  std::uint64_t wal_count = 0;
  bool had_wal_records = false;
  if (const auto data = read_file(wal_file)) {
    const auto parsed = read_wal(*data);
    for (std::size_t i = 0; i < parsed.records.size(); ++i) {
      apply_record(img, parsed.records[i].payload, i,
                   store->opts_.hub.retired_memory);
    }
    wal_valid = parsed.valid_bytes;
    wal_count = parsed.records.size();
    had_wal_records = wal_count > 0;
  }

  // 3. Materialize: catalog (re-intern every image, verifying content
  // ids), registry, hub — then wire the store in as their sink.
  fleet_state st;
  st.catalog = std::make_shared<fleet::firmware_catalog>();
  for (auto& [id, prog] : img.firmwares) {
    if (verifier::firmware_artifact::fingerprint(prog) != id) {
      throw store_error(
          store_error_kind::firmware_mismatch,
          "firmware image re-hashes to a different content id — "
          "snapshot/WAL corrupt or built by an incompatible version");
    }
    st.catalog->intern(std::move(prog));
  }
  img.firmwares.clear();

  st.registry = std::make_unique<fleet::device_registry>(img.master_key,
                                                         st.catalog);
  for (auto& [id, dev] : img.devices) {
    auto fw = st.catalog->find(dev.fw);
    // Unreachable after the parse-time checks, but fail closed anyway.
    if (fw == nullptr) {
      throw store_error(store_error_kind::unknown_firmware,
                        "device " + std::to_string(id) +
                            " references a missing firmware artifact");
    }
    st.registry->restore_device(id, std::move(dev.key), std::move(fw));
  }
  st.registry->set_next_id(img.next_id);

  store->wal_ = std::make_unique<wal_writer>(
      wal_file, wal_valid, wal_count, store->opts_.sync_every_append);
  for (const auto& fid : st.catalog->ids()) {
    store->persisted_firmware_.insert(fid);
  }

  auto hub_cfg = store->opts_.hub;
  hub_cfg.sink = store.get();
  st.hub = std::make_unique<fleet::verifier_hub>(*st.registry, hub_cfg);
  if (had_snapshot || had_wal_records) {
    std::vector<fleet::device_restore> devices;
    devices.reserve(img.states.size());
    for (auto& [id, d] : img.states) devices.push_back(std::move(d));
    st.hub->restore(img.now, devices, img.stats);
  }
  st.registry->set_sink(store.get());

  store->catalog_ = st.catalog;
  store->registry_ = st.registry.get();
  store->hub_ = st.hub.get();
  st.store = std::move(store);

  // 4. Bound reopen cost: fold the replayed WAL into a fresh snapshot
  // while nothing is in flight yet.
  if (st.store->opts_.compact_on_open &&
      (had_wal_records || !had_snapshot)) {
    st.store->compact();
  }

  // Best-effort hygiene: logs from other generations are unreadable by
  // design (they would double-apply) — a crash mid-compaction can leave
  // one behind, so sweep them now.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.ends_with(".log") &&
        entry.path().string() !=
            st.store->wal_path(st.store->generation_)) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
  return st;
}

void fleet_store::write_snapshot() {
  writer w;
  w.raw(snapshot_magic);
  w.u32(snapshot_version);
  w.bytes(registry_->master_key());
  w.u32(registry_->next_id());
  w.u64(hub_->now());
  w.u64(generation_);

  // Hub-level scalars only: the per-device rows ride in dump_devices()
  // below, no point assembling (and discarding) the map under locks.
  const auto stats = hub_->stats(/*include_per_device=*/false);
  w.u64(stats.challenges_issued);
  w.u64(stats.challenges_expired);
  w.u64(stats.challenges_superseded);
  w.u64(stats.reports_accepted);
  w.u64(stats.reports_rejected_verdict);
  w.u32(static_cast<std::uint32_t>(stats.rejected_by_error.size()));
  for (const auto v : stats.rejected_by_error) w.u64(v);

  const auto fw_ids = catalog_->ids();
  w.u32(static_cast<std::uint32_t>(fw_ids.size()));
  for (const auto& id : fw_ids) {
    w.raw(id);
    w.bytes(serialize_program(catalog_->find(id)->program()));
  }

  const auto dev_ids = registry_->ids();
  w.u32(static_cast<std::uint32_t>(dev_ids.size()));
  for (const auto id : dev_ids) {
    const auto* rec = registry_->find(id);
    w.u32(id);
    w.bytes(rec->key);
    w.raw(rec->firmware->id());
  }

  const auto states = hub_->dump_devices();
  w.u32(static_cast<std::uint32_t>(states.size()));
  for (const auto& d : states) write_device_state(w, d);

  w.u32(crc32(w.data()));
  write_file_atomic(fs::path(dir_) / snapshot_file, w.data());
}

void fleet_store::compact() {
  // New generation first, THEN the snapshot that names it, THEN the old
  // log's removal: a crash at any point leaves either the old snapshot +
  // old WAL (pre-compaction state) or the new snapshot + an empty new
  // WAL — never a snapshot paired with a log it already contains.
  const std::uint64_t old_gen = generation_;
  ++generation_;
  try {
    write_snapshot();
  } catch (...) {
    generation_ = old_gen;
    throw;
  }
  try {
    wal_->reset_to(wal_path(generation_));
  } catch (...) {
    // The on-disk snapshot already names the new generation; the old log
    // will never be read again. Appending to it anyway would silently
    // drop every future event on the floor at the next open — poison the
    // writer so traffic fails loudly until the store is reopened.
    wal_->poison();
    throw;
  }
  {
    std::lock_guard<std::mutex> lk(fw_mu_);
    for (const auto& fid : catalog_->ids()) {
      persisted_firmware_.insert(fid);
    }
  }
  std::error_code ec;
  fs::remove(wal_path(old_gen), ec);  // best-effort cleanup
}

// ---------------------------------------------------------------------------
// persist_sink
// ---------------------------------------------------------------------------

void fleet_store::on_provision(const fleet::device_record& rec) {
  // First device on a firmware image journals the image itself — under
  // fw_mu_ so the dedup set and the image-before-device WAL order hold
  // even against a concurrent compact's set refresh.
  std::lock_guard<std::mutex> lk(fw_mu_);
  const auto& fid = rec.firmware->id();
  if (persisted_firmware_.insert(fid).second) {
    writer w;
    w.u8(static_cast<std::uint8_t>(rec::firmware));
    w.raw(fid);
    w.bytes(serialize_program(rec.firmware->program()));
    wal_->append(w.data());
  }
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::provision));
  w.u32(rec.id);
  w.bytes(rec.key);
  w.raw(fid);
  wal_->append(w.data());
}

void fleet_store::on_challenge(fleet::device_id id, std::uint32_t seq,
                               const fleet::nonce16& nonce,
                               std::uint64_t issued_at) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::challenge));
  w.u32(id);
  w.u32(seq);
  w.raw(nonce);
  w.u64(issued_at);
  wal_->append(w.data());
}

void fleet_store::on_retire(fleet::device_id id,
                            const fleet::nonce16& nonce,
                            fleet::nonce_fate fate) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::retire));
  w.u32(id);
  w.raw(nonce);
  w.u8(static_cast<std::uint8_t>(fate));
  wal_->append(w.data());
}

void fleet_store::on_verdict(fleet::device_id id,
                             proto::proto_error error, bool accepted) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::verdict));
  w.u32(id);
  w.u8(static_cast<std::uint8_t>(error));
  w.u8(accepted ? 1 : 0);
  wal_->append(w.data());
}

void fleet_store::on_baseline(fleet::device_id id, std::uint32_t seq,
                              std::span<const std::uint8_t> or_bytes) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::baseline));
  w.u32(id);
  w.u32(seq);
  w.bytes(or_bytes);
  wal_->append(w.data());
}

void fleet_store::on_tick(std::uint64_t now) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::tick));
  w.u64(now);
  wal_->append(w.data());
}

}  // namespace dialed::store
