#include "store/fleet_store.h"

#include "obs/event_log.h"

#include <filesystem>
#include <vector>

#include "store/codec.h"
#include "store/ship.h"
#include "verifier/firmware_artifact.h"

namespace dialed::store {

namespace fs = std::filesystem;

namespace {

byte_vec serialize_program(const instr::linked_program& prog) {
  writer w;
  write_program(w, prog);
  return w.take();
}

/// "wal-<G>.log" -> G; nullopt for anything else.
std::optional<std::uint64_t> wal_name_generation(const std::string& name) {
  if (name.rfind("wal-", 0) != 0 || !name.ends_with(".log")) {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return std::nullopt;
  std::uint64_t g = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    g = g * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return g;
}

}  // namespace

// ---------------------------------------------------------------------------
// fleet_store
// ---------------------------------------------------------------------------

fleet_store::fleet_store(std::string dir, options opts)
    : dir_(std::move(dir)), opts_(std::move(opts)) {}

std::string fleet_store::wal_path(std::uint64_t generation) const {
  return (fs::path(dir_) / ("wal-" + std::to_string(generation) + ".log"))
      .string();
}

fleet_state fleet_store::open(const std::string& dir, options opts) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      dir + ": create: " + ec.message());
  }

  // 1. Snapshot (or a fresh image).
  const fs::path snap_path = fs::path(dir) / snapshot_file;
  state_image img;
  bool had_snapshot = false;
  if (const auto data = read_file(snap_path)) {
    img = parse_snapshot(*data, snap_path.string());
    had_snapshot = true;
    if (!opts.master_key.empty() && opts.master_key != img.master_key) {
      throw store_error(
          store_error_kind::master_key_mismatch,
          snap_path.string() +
              ": caller's master key differs from the persisted one");
    }
  } else {
    img.master_key = opts.master_key;
  }

  // 2. WAL chain replay: generation G (the snapshot's), then G+1, ... —
  // an online compaction that crashed after rolling the log but before
  // publishing the snapshot leaves two consecutive logs, and both hold
  // live history. Only the NEWEST log may end in a torn record; a torn
  // log with a successor was complete when the successor was created,
  // so damage there is corruption, not a crash signature.
  std::unique_ptr<fleet_store> store(
      new fleet_store(dir, std::move(opts)));
  const std::uint64_t chain_start = img.wal_generation;
  std::uint64_t chain_end = chain_start;
  std::uint64_t tail_valid = 0;
  std::uint64_t tail_count = 0;
  std::uint64_t replayed = 0;
  for (std::uint64_t g = chain_start;; ++g) {
    const auto data = read_file(store->wal_path(g));
    if (!data) {
      if (g == chain_start && !fs::exists(store->wal_path(g + 1))) {
        break;  // fresh directory: no log yet
      }
      throw store_error(store_error_kind::crc_mismatch,
                        store->wal_path(g) +
                            ": missing from the WAL chain — a later "
                            "generation exists but this one is gone");
    }
    const auto parsed = read_wal(*data);
    const bool has_next = fs::exists(store->wal_path(g + 1));
    if (parsed.torn_tail && has_next) {
      throw store_error(
          store_error_kind::crc_mismatch,
          store->wal_path(g) +
              ": torn record mid-chain — only the newest WAL "
              "generation may end torn");
    }
    for (std::size_t i = 0; i < parsed.records.size(); ++i) {
      apply_record(img, parsed.records[i].payload, replayed + i,
                   store->opts_.hub.retired_memory);
    }
    replayed += parsed.records.size();
    chain_end = g;
    tail_valid = parsed.valid_bytes;
    tail_count = parsed.records.size();
    if (!has_next) break;
  }
  const bool had_wal_records = replayed > 0;
  store->generation_.store(chain_end, std::memory_order_relaxed);
  img.wal_generation = chain_end;

  // 3. Materialize: catalog (re-intern every image, verifying content
  // ids), registry, hub — then wire the store in as their sink. The
  // image is COPIED into live objects, not consumed: it becomes the
  // store's mirror, kept in lockstep with the journal from here on.
  fleet_state st;
  st.catalog = std::make_shared<fleet::firmware_catalog>();
  for (const auto& [id, blob] : img.firmwares) {
    reader pr(blob, "firmware image");
    auto prog = read_program(pr);
    if (verifier::firmware_artifact::fingerprint(prog) != id) {
      throw store_error(
          store_error_kind::firmware_mismatch,
          "firmware image re-hashes to a different content id — "
          "snapshot/WAL corrupt or built by an incompatible version");
    }
    st.catalog->intern(std::move(prog));
  }

  st.registry = std::make_unique<fleet::device_registry>(img.master_key,
                                                         st.catalog);
  for (const auto& [id, dev] : img.devices) {
    auto fw = st.catalog->find(dev.fw);
    // Unreachable after the parse-time checks, but fail closed anyway.
    if (fw == nullptr) {
      throw store_error(store_error_kind::unknown_firmware,
                        "device " + std::to_string(id) +
                            " references a missing firmware artifact");
    }
    st.registry->restore_device(id, byte_vec(dev.key), std::move(fw));
  }
  st.registry->set_next_id(img.next_id);

  store->wal_ = std::make_unique<wal_writer>(
      store->wal_path(chain_end), tail_valid, tail_count,
      store->opts_.wal);

  auto hub_cfg = store->opts_.hub;
  hub_cfg.sink = store.get();
  st.hub = std::make_unique<fleet::verifier_hub>(*st.registry, hub_cfg);
  if (had_snapshot || had_wal_records) {
    std::vector<fleet::device_restore> devices;
    devices.reserve(img.states.size());
    for (const auto& [id, d] : img.states) devices.push_back(d);
    st.hub->restore(img.now, devices, img.stats);
  }
  st.registry->set_sink(store.get());

  store->mirror_ = std::move(img);
  store->hub_ = st.hub.get();
  st.store = std::move(store);

  // 4. Bound reopen cost: fold the replayed chain into a fresh snapshot.
  // Also folds a multi-file chain (interrupted compaction) back to one.
  const bool compacted = st.store->opts_.compact_on_open &&
                         (had_wal_records || !had_snapshot ||
                          chain_end != chain_start);
  if (compacted) st.store->compact();

  // Best-effort hygiene: logs outside [snapshot generation, current
  // generation] can never be replayed again — a crash mid-compaction
  // can leave one behind, so sweep them now.
  const std::uint64_t keep_min =
      compacted ? st.store->generation() : chain_start;
  const std::uint64_t keep_max = st.store->generation();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto g =
        wal_name_generation(entry.path().filename().string());
    if (g && (*g < keep_min || *g > keep_max)) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
  return st;
}

void fleet_store::merge_live_stats_locked() {
  if (hub_ != nullptr) {
    merge_live_stats(mirror_, hub_->stats(/*include_per_device=*/false));
  }
}

void fleet_store::compact() {
  std::lock_guard<std::mutex> compact_lk(compact_mu_);

  // Serialization point: under the journal lock the mirror is exactly
  // the journal's replay, so the snapshot and the new generation's
  // first record cut the history at the same instant. Traffic resumes
  // the moment the lock drops — the file I/O below runs outside it.
  byte_vec snap;
  std::uint64_t old_gen = 0;
  std::uint64_t new_gen = 0;
  {
    std::lock_guard<std::mutex> lk(log_mu_);
    old_gen = generation_.load(std::memory_order_relaxed);
    new_gen = old_gen + 1;
    merge_live_stats_locked();
    snap = serialize_snapshot(mirror_, new_gen);
    // Roll BEFORE publishing the snapshot: a crash (or a failed write)
    // between the two leaves snapshot(G) + wal-G + wal-(G+1) — a chain
    // open() replays in full. The reverse order could pair a new
    // snapshot with an old log and double-apply it. reset_to leaves the
    // writer untouched on failure, so a throw here aborts the compact
    // with the store exactly as it was.
    wal_->reset_to(wal_path(new_gen));
    generation_.store(new_gen, std::memory_order_relaxed);
    mirror_.wal_generation = new_gen;
    if (shipper_ != nullptr) shipper_->on_snapshot(new_gen, snap);
  }

  write_file_atomic(fs::path(dir_) / snapshot_file, snap);
  std::error_code ec;
  fs::remove(wal_path(old_gen), ec);  // best-effort cleanup
  obs::log().emit(obs::log_level::info, "store_compacted",
                  {{"dir", dir_},
                   {"generation", new_gen},
                   {"snapshot_bytes", snap.size()}});
}

void fleet_store::attach_shipper(ship_sink* s) {
  std::lock_guard<std::mutex> compact_lk(compact_mu_);
  std::lock_guard<std::mutex> lk(log_mu_);
  shipper_ = s;
  if (s == nullptr) return;
  // Bootstrap: a full snapshot of the current state, cut at the same
  // instant the follower starts seeing records. Named with the CURRENT
  // generation — records already in wal-<G> are inside this snapshot,
  // and the follower only appends what is shipped after it.
  merge_live_stats_locked();
  const byte_vec snap = serialize_snapshot(
      mirror_, generation_.load(std::memory_order_relaxed));
  s->on_snapshot(generation_.load(std::memory_order_relaxed), snap);
}

// ---------------------------------------------------------------------------
// Journaling
// ---------------------------------------------------------------------------

void fleet_store::journal_locked(std::span<const std::uint8_t> payload) {
  wal_->append(payload);
  try {
    apply_record(mirror_, payload,
                 static_cast<std::size_t>(wal_->records() - 1),
                 opts_.hub.retired_memory);
  } catch (...) {
    // The journal accepted a record its own replay refuses: the mirror
    // (and every follower) has diverged from the log. Poison the writer
    // so the store fails loudly instead of compacting divergent state.
    wal_->poison();
    throw;
  }
  if (shipper_ != nullptr) {
    shipper_->on_record(generation_.load(std::memory_order_relaxed),
                        payload);
  }
}

void fleet_store::journal(std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lk(log_mu_);
  journal_locked(payload);
}

// ---------------------------------------------------------------------------
// persist_sink
// ---------------------------------------------------------------------------

void fleet_store::on_provision(const fleet::device_record& rec) {
  // First device on a firmware image journals the image itself — the
  // mirror's firmware table IS the dedup set, and one lock hold keeps
  // the image-before-device WAL order atomic against everything else.
  std::lock_guard<std::mutex> lk(log_mu_);
  const auto& fid = rec.firmware->id();
  if (mirror_.firmwares.count(fid) == 0) {
    writer w;
    w.u8(static_cast<std::uint8_t>(rec::firmware));
    w.raw(fid);
    w.bytes(serialize_program(rec.firmware->program()));
    journal_locked(w.data());
  }
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::provision));
  w.u32(rec.id);
  w.bytes(rec.key);
  w.raw(fid);
  journal_locked(w.data());
}

void fleet_store::on_challenge(fleet::device_id id, std::uint32_t seq,
                               const fleet::nonce16& nonce,
                               std::uint64_t issued_at) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::challenge));
  w.u32(id);
  w.u32(seq);
  w.raw(nonce);
  w.u64(issued_at);
  journal(w.data());
}

void fleet_store::on_retire(fleet::device_id id,
                            const fleet::nonce16& nonce,
                            fleet::nonce_fate fate) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::retire));
  w.u32(id);
  w.raw(nonce);
  w.u8(static_cast<std::uint8_t>(fate));
  journal(w.data());
}

void fleet_store::on_verdict(fleet::device_id id,
                             proto::proto_error error, bool accepted) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::verdict));
  w.u32(id);
  w.u8(static_cast<std::uint8_t>(error));
  w.u8(accepted ? 1 : 0);
  journal(w.data());
}

void fleet_store::on_baseline(fleet::device_id id, std::uint32_t seq,
                              std::span<const std::uint8_t> or_bytes) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::baseline));
  w.u32(id);
  w.u32(seq);
  w.bytes(or_bytes);
  journal(w.data());
}

void fleet_store::on_tick(std::uint64_t now) {
  writer w;
  w.u8(static_cast<std::uint8_t>(rec::tick));
  w.u64(now);
  journal(w.data());
}

void fleet_store::sync_barrier() {
  // per_record synced inside append; none promises nothing — only group
  // has anything to wait for. The caller's own record is already staged
  // (its journal() happened-before, same thread), so syncing to the
  // current staged horizon covers it.
  if (opts_.wal.sync != wal_sync::group) return;
  wal_->sync_to(wal_->staged_lsn());
}

}  // namespace dialed::store
