// WAL shipping: keep a warm standby of a fleet_store by streaming it the
// journal. The stream is the SAME bytes the store persists — the PR 4
// record codec and snapshot format — so a follower is, by construction,
// in the state a reopen of the primary's directory would produce:
//
//   primary store ── attach_shipper ──> wal_shipper ──> wal_follower(s)
//
// Protocol (delivered in journal order, under the primary's journal
// lock):
//
//   on_snapshot(G, bytes)   a full snapshot naming WAL generation G.
//                           Sent once at attach, and again at every
//                           compaction (the follower rolls its own log
//                           in lockstep).
//   on_record(G, payload)   one WAL record payload appended under
//                           generation G.
//
// The follower VALIDATES every record against its own state image with
// the same apply_record a restart runs — a record the primary's replay
// would refuse is refused here, before it touches the follower's disk.
// Any protocol violation (a record before the first snapshot, a
// generation mismatch, traffic after promotion) or validation failure
// puts the follower into a sticky error state (store_error(ship_desync)
// or the apply error) instead of throwing into the primary's hot path;
// promote() rethrows it.
//
// Promotion reuses the crash-restart machinery wholesale: promote()
// closes the follower's log and fleet_store::open()s its directory, so
// a pre-crash report replayed at the promoted standby is classified
// replayed_report exactly as it would be by the primary restarting.
#ifndef DIALED_STORE_SHIP_H
#define DIALED_STORE_SHIP_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/fleet_store.h"
#include "store/state_image.h"
#include "store/wal.h"

namespace dialed::store {

/// Receiver half of the shipping stream. Called under the primary's
/// journal lock: implementations must be fast, must not throw, and must
/// not call back into the shipping store.
class ship_sink {
 public:
  virtual ~ship_sink() = default;
  virtual void on_snapshot(std::uint64_t generation,
                           std::span<const std::uint8_t> snapshot) = 0;
  virtual void on_record(std::uint64_t generation,
                         std::span<const std::uint8_t> payload) = 0;
};

class wal_follower;

/// Point-in-time standby health, from wal_shipper::stats(): how far the
/// TRACKED followers (added via the wal_follower overload) trail the
/// shipped stream, and whether any of them latched a desync.
struct ship_stats {
  std::uint64_t records_shipped = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t snapshots_shipped = 0;
  std::uint64_t followers = 0;      ///< tracked followers only
  /// Max over tracked followers of (records shipped - records applied).
  /// A follower that applies synchronously reads 0; a desynced one stops
  /// applying, so its lag grows with every shipped record.
  std::uint64_t max_lag_records = 0;
  bool any_desync = false;  ///< some follower latched store_error
};

/// Fan-out + instrumentation: one shipper forwards the stream to any
/// number of followers. Register followers BEFORE attaching the shipper
/// to a store — the follower set is not mutable while shipping.
class wal_shipper final : public ship_sink {
 public:
  void add_follower(ship_sink* f) { followers_.push_back(f); }
  /// Same, but keeps the typed pointer so stats() can report the
  /// follower's apply lag and desync state.
  void add_follower(wal_follower* f);

  /// Shipping + standby-health snapshot (safe from any thread; briefly
  /// takes each tracked follower's mutex for the error check).
  ship_stats stats() const;

  void on_snapshot(std::uint64_t generation,
                   std::span<const std::uint8_t> snapshot) override {
    for (auto* f : followers_) f->on_snapshot(generation, snapshot);
    snapshots_shipped_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_record(std::uint64_t generation,
                 std::span<const std::uint8_t> payload) override {
    for (auto* f : followers_) f->on_record(generation, payload);
    records_shipped_.fetch_add(1, std::memory_order_relaxed);
    bytes_shipped_.fetch_add(payload.size(), std::memory_order_relaxed);
  }

  std::uint64_t records_shipped() const {
    return records_shipped_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_shipped() const {
    return bytes_shipped_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_shipped() const {
    return snapshots_shipped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<ship_sink*> followers_;
  std::vector<wal_follower*> tracked_;  ///< subset with lag visibility
  std::atomic<std::uint64_t> records_shipped_{0};
  std::atomic<std::uint64_t> bytes_shipped_{0};
  std::atomic<std::uint64_t> snapshots_shipped_{0};
};

/// A warm standby: applies the shipped stream into its own state
/// directory (snapshot file + WAL, same layout as the primary's), ready
/// to be promoted to a live fleet after the primary dies.
struct follower_config {
  /// Durability policy for the follower's WAL (same matrix as the
  /// primary's, src/store/wal.h). Followers apply a serialized stream,
  /// so group buys little here — per_record or none are the usual picks.
  wal_options wal{};
  /// Retired-nonce ring bound for the follower's VALIDATION image;
  /// match the primary's hub_config.retired_memory. Only bounds the
  /// follower's memory — the promoted hub re-applies its own bound.
  std::size_t retired_memory = 0;
};

class wal_follower final : public ship_sink {
 public:
  explicit wal_follower(std::string dir, follower_config cfg = {});

  // ---- ship_sink (never throws; errors latch, promote() rethrows) ----
  void on_snapshot(std::uint64_t generation,
                   std::span<const std::uint8_t> snapshot) override;
  void on_record(std::uint64_t generation,
                 std::span<const std::uint8_t> payload) override;

  /// Stop following and open this follower's directory as a live fleet.
  /// Rethrows any latched stream error; after a successful promote the
  /// follower is inert (late-arriving stream calls latch ship_desync).
  fleet_state promote(fleet_store::options opts);

  /// The latched error, if the stream has desynced. A desynced follower
  /// ignores all further traffic and cannot be promoted.
  std::optional<store_error> error() const;

  bool synced() const;               ///< has a snapshot, no error
  std::uint64_t generation() const;  ///< generation being followed
  std::uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }
  const std::string& directory() const { return dir_; }

 private:
  void latch_locked(store_error err);

  std::string dir_;
  follower_config cfg_;
  mutable std::mutex mu_;
  bool have_snapshot_ = false;
  bool promoted_ = false;
  std::uint64_t gen_ = 0;
  std::optional<store_error> error_;
  std::unique_ptr<wal_writer> wal_;
  state_image img_;  ///< validation image (mirrors what is on disk)
  std::atomic<std::uint64_t> records_applied_{0};
};

}  // namespace dialed::store

#endif  // DIALED_STORE_SHIP_H
