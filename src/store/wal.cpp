#include "store/wal.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "store/codec.h"

namespace dialed::store {

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw store_error(store_error_kind::io_error,
                    path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

wal_read_result read_wal(std::span<const std::uint8_t> data) {
  wal_read_result out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Header short of 8 bytes, or payload running past EOF: a torn tail
    // by construction — nothing CAN follow an incomplete record.
    if (data.size() - pos < 8) break;
    const std::uint32_t len = load_le32(data, pos);
    const std::uint32_t crc = load_le32(data, pos + 4);
    if (data.size() - pos - 8 < len) break;
    const auto payload = data.subspan(pos + 8, len);
    if (crc32(payload) != crc) {
      if (pos + 8 + len == data.size()) break;  // torn mid-write at EOF
      throw store_error(
          store_error_kind::crc_mismatch,
          "wal: record at offset " + std::to_string(pos) +
              " fails its CRC with intact records following it — "
              "corrupt log, refusing to load");
    }
    if (len == 0) {
      // No writer ever frames an empty payload (the type byte alone is
      // one byte), but crc32("") == 0, so an all-zero run would pass the
      // CRC check. A zero run reaching EOF is the classic power-loss
      // artifact (file extended, data blocks never written) — treat it
      // as a torn tail. Zeros with real data after them are corruption.
      const bool zero_tail =
          std::all_of(data.begin() + static_cast<std::ptrdiff_t>(pos),
                      data.end(),
                      [](std::uint8_t b) { return b == 0; });
      if (zero_tail) break;
      throw store_error(store_error_kind::bad_record,
                        "wal: empty record at offset " +
                            std::to_string(pos) +
                            " with data following it");
    }
    out.records.push_back({byte_vec(payload.begin(), payload.end())});
    pos += 8 + len;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos != data.size();
  return out;
}

wal_writer::wal_writer(std::string path, std::uint64_t truncate_to,
                       std::uint64_t existing_records, wal_options opts)
    : path_(std::move(path)), opts_(opts), records_(existing_records),
      lsn_(existing_records), synced_lsn_(existing_records) {
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path_, ec);
  if (!ec && existing > truncate_to) {
    std::filesystem::resize_file(path_, truncate_to, ec);
    if (ec) {
      throw store_error(store_error_kind::io_error,
                        path_ + ": truncating torn tail: " + ec.message());
    }
  }
  f_ = std::fopen(path_.c_str(), "ab");
  if (f_ == nullptr) io_fail(path_, "open");
  bytes_ = ec ? 0 : std::min<std::uint64_t>(existing, truncate_to);
}

wal_writer::~wal_writer() {
  if (f_ != nullptr) std::fclose(f_);
}

std::uint64_t wal_writer::append(std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 8> header{};
  store_le32(header, 0, static_cast<std::uint32_t>(payload.size()));
  store_le32(header, 4, crc32(payload));
  std::lock_guard<std::mutex> lk(mu_);
  if (failed_) {
    throw store_error(store_error_kind::io_error,
                      path_ + ": writer poisoned by an earlier failed "
                              "append — reopen the store to recover");
  }
  if (std::fwrite(header.data(), 1, header.size(), f_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), f_) !=
          payload.size()) {
    fail_locked("append");
  }
  if (std::fflush(f_) != 0) fail_locked("flush");
  if (opts_.sync == wal_sync::per_record &&
      ::fsync(fileno(f_)) != 0) {
    fail_locked("fsync");
  }
  bytes_ += header.size() + payload.size();
  ++records_;
  const std::uint64_t lsn = ++lsn_;
  if (opts_.sync != wal_sync::group) {
    // per_record: the fsync above made it durable. none: no durability
    // is promised, so the horizon tracks the stage point and sync_to
    // never blocks. Either way group-commit machinery stays idle.
    synced_lsn_ = lsn;
    if (opts_.sync == wal_sync::per_record) note_batch_locked(1);
  }
  return lsn;
}

void wal_writer::sync_to(std::uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  while (synced_lsn_ < lsn) {
    if (failed_) {
      throw store_error(store_error_kind::io_error,
                        path_ + ": writer poisoned while records were "
                                "awaiting a group fsync");
    }
    if (sync_in_progress_) {
      // Another waiter is the leader; park until its batch lands (it may
      // cover us), the leader slot frees up, or the writer dies.
      cv_.wait(lk, [&] {
        return synced_lsn_ >= lsn || !sync_in_progress_ || failed_;
      });
      continue;
    }
    // Become the leader. Absorption window first: concurrent appenders
    // keep staging while we sleep (the wait releases mu_), so the one
    // fsync below covers them too — this is where group commit earns
    // its batch sizes.
    sync_in_progress_ = true;
    if (opts_.group_max_delay_us > 0) {
      cv_.wait_for(lk, std::chrono::microseconds(opts_.group_max_delay_us),
                   [&] { return failed_; });
    }
    if (failed_) {
      sync_in_progress_ = false;
      cv_.notify_all();
      continue;  // loop top throws the poisoned error
    }
    const std::uint64_t target = lsn_;       // everything staged so far
    const std::uint64_t base = synced_lsn_;  // stable: reset_to waits on
                                             // sync_in_progress_
    const int fd = fileno(f_);
    // Fsync outside the mutex: appends keep staging into the (fflush-ed)
    // file meanwhile. The fd cannot be closed under us — reset_to blocks
    // until sync_in_progress_ clears.
    lk.unlock();
    const int rc = ::fsync(fd);
    lk.lock();
    sync_in_progress_ = false;
    if (rc != 0) {
      // The batch may or may not be on disk; fail closed for everyone.
      failed_ = true;
      cv_.notify_all();
      io_fail(path_, "group fsync");
    }
    if (target > synced_lsn_) {
      note_batch_locked(target - base);
      synced_lsn_ = target;
    }
    cv_.notify_all();
  }
}

std::uint64_t wal_writer::staged_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lsn_;
}

std::uint64_t wal_writer::synced_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return synced_lsn_;
}

group_commit_stats wal_writer::sync_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sync_stats_;
}

void wal_writer::note_batch_locked(std::uint64_t n) {
  ++sync_stats_.syncs;
  sync_stats_.records += n;
  std::size_t b = 0;
  while (b + 1 < sync_stats_.batch_hist.size() &&
         (std::uint64_t{1} << b) < n) {
    ++b;
  }
  ++sync_stats_.batch_hist[b];
}

void wal_writer::fail_locked(const char* what) {
  // A partially-written record mid-file would make every LATER append
  // unreadable (mid-log CRC failure refuses to load), so roll the file
  // back to the last good boundary and poison the writer — further
  // appends fail fast instead of landing after garbage.
  failed_ = true;
  const int err = errno;
  (void)std::fflush(f_);
  (void)::ftruncate(fileno(f_), static_cast<off_t>(bytes_));
  cv_.notify_all();  // group-commit waiters must wake up and fail
  errno = err;
  io_fail(path_, what);
}

void wal_writer::reset_to(std::string path) {
  std::unique_lock<std::mutex> lk(mu_);
  // Never close the file under an in-flight batch fsync (it holds the fd
  // outside the mutex).
  cv_.wait(lk, [&] { return !sync_in_progress_; });
  // Durability handoff: staged-but-unsynced records live in THIS file,
  // and after the roll it leaves the writer's control (compaction
  // removes it once the snapshot publishes). Settle them now so every
  // group-commit waiter releases against bytes that are actually on
  // disk. A failed handoff fsync aborts the roll with the writer
  // untouched — the caller (compact) backs out cleanly.
  if (!failed_ && synced_lsn_ < lsn_ && opts_.sync != wal_sync::none) {
    if (::fsync(fileno(f_)) != 0) io_fail(path_, "handoff fsync");
    note_batch_locked(lsn_ - synced_lsn_);
  }
  std::FILE* fresh = std::fopen(path.c_str(), "wb");
  if (fresh == nullptr) io_fail(path, "reset");
  std::fclose(f_);
  f_ = fresh;
  path_ = std::move(path);
  failed_ = false;  // fresh file, clean boundary
  bytes_ = 0;
  records_ = 0;
  // LSNs are writer-lifetime, not per-file: lsn_ does NOT reset, and the
  // settled horizon releases anyone who was waiting on the old file.
  synced_lsn_ = lsn_;
  cv_.notify_all();
}

void wal_writer::poison() {
  std::lock_guard<std::mutex> lk(mu_);
  failed_ = true;
  cv_.notify_all();  // wake group-commit waiters to fail loudly
}

std::uint64_t wal_writer::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

std::uint64_t wal_writer::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

}  // namespace dialed::store
