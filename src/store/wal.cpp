#include "store/wal.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "store/codec.h"

namespace dialed::store {

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw store_error(store_error_kind::io_error,
                    path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

wal_read_result read_wal(std::span<const std::uint8_t> data) {
  wal_read_result out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Header short of 8 bytes, or payload running past EOF: a torn tail
    // by construction — nothing CAN follow an incomplete record.
    if (data.size() - pos < 8) break;
    const std::uint32_t len = load_le32(data, pos);
    const std::uint32_t crc = load_le32(data, pos + 4);
    if (data.size() - pos - 8 < len) break;
    const auto payload = data.subspan(pos + 8, len);
    if (crc32(payload) != crc) {
      if (pos + 8 + len == data.size()) break;  // torn mid-write at EOF
      throw store_error(
          store_error_kind::crc_mismatch,
          "wal: record at offset " + std::to_string(pos) +
              " fails its CRC with intact records following it — "
              "corrupt log, refusing to load");
    }
    if (len == 0) {
      // No writer ever frames an empty payload (the type byte alone is
      // one byte), but crc32("") == 0, so an all-zero run would pass the
      // CRC check. A zero run reaching EOF is the classic power-loss
      // artifact (file extended, data blocks never written) — treat it
      // as a torn tail. Zeros with real data after them are corruption.
      const bool zero_tail =
          std::all_of(data.begin() + static_cast<std::ptrdiff_t>(pos),
                      data.end(),
                      [](std::uint8_t b) { return b == 0; });
      if (zero_tail) break;
      throw store_error(store_error_kind::bad_record,
                        "wal: empty record at offset " +
                            std::to_string(pos) +
                            " with data following it");
    }
    out.records.push_back({byte_vec(payload.begin(), payload.end())});
    pos += 8 + len;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos != data.size();
  return out;
}

wal_writer::wal_writer(std::string path, std::uint64_t truncate_to,
                       std::uint64_t existing_records,
                       bool sync_every_append)
    : path_(std::move(path)), sync_(sync_every_append),
      records_(existing_records) {
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path_, ec);
  if (!ec && existing > truncate_to) {
    std::filesystem::resize_file(path_, truncate_to, ec);
    if (ec) {
      throw store_error(store_error_kind::io_error,
                        path_ + ": truncating torn tail: " + ec.message());
    }
  }
  f_ = std::fopen(path_.c_str(), "ab");
  if (f_ == nullptr) io_fail(path_, "open");
  bytes_ = ec ? 0 : std::min<std::uint64_t>(existing, truncate_to);
}

wal_writer::~wal_writer() {
  if (f_ != nullptr) std::fclose(f_);
}

void wal_writer::append(std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 8> header{};
  store_le32(header, 0, static_cast<std::uint32_t>(payload.size()));
  store_le32(header, 4, crc32(payload));
  std::lock_guard<std::mutex> lk(mu_);
  if (failed_) {
    throw store_error(store_error_kind::io_error,
                      path_ + ": writer poisoned by an earlier failed "
                              "append — reopen the store to recover");
  }
  if (std::fwrite(header.data(), 1, header.size(), f_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), f_) !=
          payload.size()) {
    fail_locked("append");
  }
  if (std::fflush(f_) != 0) fail_locked("flush");
  if (sync_ && ::fsync(fileno(f_)) != 0) fail_locked("fsync");
  bytes_ += header.size() + payload.size();
  ++records_;
}

void wal_writer::fail_locked(const char* what) {
  // A partially-written record mid-file would make every LATER append
  // unreadable (mid-log CRC failure refuses to load), so roll the file
  // back to the last good boundary and poison the writer — further
  // appends fail fast instead of landing after garbage.
  failed_ = true;
  const int err = errno;
  (void)std::fflush(f_);
  (void)::ftruncate(fileno(f_), static_cast<off_t>(bytes_));
  errno = err;
  io_fail(path_, what);
}

void wal_writer::reset_to(std::string path) {
  std::lock_guard<std::mutex> lk(mu_);
  std::FILE* fresh = std::fopen(path.c_str(), "wb");
  if (fresh == nullptr) io_fail(path, "reset");
  std::fclose(f_);
  f_ = fresh;
  path_ = std::move(path);
  failed_ = false;  // fresh file, clean boundary
  bytes_ = 0;
  records_ = 0;
}

void wal_writer::poison() {
  std::lock_guard<std::mutex> lk(mu_);
  failed_ = true;
}

std::uint64_t wal_writer::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

std::uint64_t wal_writer::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

}  // namespace dialed::store
