// Append-only write-ahead log for the fleet store.
//
// On-disk framing, one record after another:
//
//   offset  size  field
//   0       4     payload length n (LE32)
//   4       4     CRC-32 over the n payload bytes
//   8       n     payload (first payload byte is the record type)
//
// Crash semantics — the load-bearing distinction:
//
//   * TORN TAIL: the FINAL record is incomplete — fewer than 8 header
//     bytes remain, or the declared payload runs past end-of-file, or the
//     payload reaches exactly end-of-file but its CRC does not match
//     (the crash hit mid-write). That is the expected signature of a
//     crash during append; the reader reports the torn bytes and the
//     store drops them cleanly (truncating the file on reopen).
//   * CORRUPT BODY: a record whose CRC fails (or whose payload is
//     undecodable) while MORE well-formed bytes follow it. That is not a
//     torn write — it is corruption in the middle of the history, and
//     replaying anything after it would resurrect state the log cannot
//     vouch for. The reader fails closed with store_error(crc_mismatch).
//
// Known limitation: the length field itself is only guarded by the
// payload CRC indirectly. A shrunk length fails closed (the CRC is then
// checked over the wrong byte range, mid-log), but a corrupted length
// that points PAST end-of-file is indistinguishable from a mid-append
// crash and is treated as a torn tail — dropping any records after the
// flip. Compaction keeps logs short, and the snapshot (whole-file CRC)
// carries the bulk of the state; closing this fully needs fixed-size
// block framing (ROADMAP open item).
//
// Writers serialize appends behind an internal mutex, so the registry's
// provisioning lock and every hub shard can emit records concurrently.
// Each append is flushed to the OS before returning; what happens beyond
// that is the sync policy's business.
//
// Sync policy matrix (wal_options::sync)
// --------------------------------------
//
//   policy      fsync cost            survives          sync_to(lsn)
//   ----------  --------------------  ----------------  ------------------
//   per_record  one fsync per append  power loss        returns instantly
//               (inside append, under                   (already durable)
//               the append mutex)
//   group       one fsync per BATCH:  power loss        blocks until an
//               appends only stage;                     fsync covering lsn
//               sync_to waiters elect                   completes; one
//               a leader that waits                     waiter fsyncs for
//               group_max_delay_us                      the whole group
//               for more stagers,
//               fsyncs once, and
//               releases everyone
//               the batch covers
//   none        zero                  process crash     returns instantly
//                                     (OS page cache);  (no durability
//                                     NOT power loss    promised, nothing
//                                                       to wait for)
//
// `group` gives per_record's guarantee at a fraction of the cost when
// writers are concurrent: N threads that each append one record and then
// call sync_to absorb into ONE fsync instead of N. A single-threaded
// writer degrades to per_record behavior (every batch has size 1) plus
// the absorption delay — group commit buys throughput under concurrency,
// never latency for a lone writer.
//
// Crash semantics per policy: losing the tail of the log is SAFE in this
// store's direction — an un-synced challenge issuance or nonce retirement
// replays as "never issued"/"still outstanding", so a restarted hub
// REJECTS the affected reports (stale_nonce / replayed classification may
// soften to stale_nonce, never the reverse). The invariant that must hold
// is ordering, not completeness: a verdict is only computed AFTER the
// nonce consumption is journaled (and, under per_record/group, fsynced —
// see fleet_store::sync_barrier), so no report can verify twice across a
// crash.
#ifndef DIALED_STORE_WAL_H
#define DIALED_STORE_WAL_H

#include <array>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/store_error.h"

namespace dialed::store {

/// When appended records become durable (see the matrix above).
enum class wal_sync : std::uint8_t {
  per_record,  ///< fsync inside every append
  group,       ///< appends stage; sync_to batches fsyncs (group commit)
  none,        ///< flush to the OS only (process-crash durability)
};

constexpr const char* to_string(wal_sync s) {
  switch (s) {
    case wal_sync::per_record: return "per_record";
    case wal_sync::group: return "group";
    case wal_sync::none: return "none";
  }
  return "unknown";
}

struct wal_options {
  wal_sync sync = wal_sync::none;
  /// Group-commit absorption window: how long a sync_to leader waits for
  /// more appenders to stage before issuing the batch fsync. 0 = fsync
  /// immediately (batches only what raced in before the leader won).
  std::uint32_t group_max_delay_us = 100;
};

/// Counters for the fsync batching behavior (all policies; `none` never
/// fsyncs so everything stays 0). batch_hist[i] counts fsyncs whose batch
/// size fell in (2^(i-1), 2^i]: buckets 1, 2, 4, 8, 16, 32, 64, 128+.
struct group_commit_stats {
  std::uint64_t syncs = 0;    ///< fsyncs issued
  std::uint64_t records = 0;  ///< records those fsyncs made durable
  std::array<std::uint64_t, 8> batch_hist{};
};

/// One decoded WAL record: the payload with the framing stripped.
struct wal_record {
  byte_vec payload;
};

struct wal_read_result {
  std::vector<wal_record> records;
  /// Byte offset of the first torn byte (== file size when the log ends
  /// cleanly). Reopening truncates the file to this length.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Parse an entire WAL image. Throws store_error(crc_mismatch /
/// truncated_record) for corruption that is NOT a torn tail (see file
/// comment).
wal_read_result read_wal(std::span<const std::uint8_t> data);

/// Appender over a WAL file. Opens (creating if missing) and, when the
/// existing tail is torn, truncates it to `valid_bytes` first so the next
/// append lands on a clean boundary.
class wal_writer {
 public:
  /// `truncate_to`: length the existing file is cut to before appending
  /// (pass wal_read_result::valid_bytes); `existing_records` the number of
  /// records already in it. Throws store_error(io_error).
  wal_writer(std::string path, std::uint64_t truncate_to,
             std::uint64_t existing_records, wal_options opts = {});
  ~wal_writer();

  wal_writer(const wal_writer&) = delete;
  wal_writer& operator=(const wal_writer&) = delete;

  /// Frame `payload` and append it, returning the record's LSN (a
  /// writer-lifetime monotone sequence that does NOT reset across
  /// reset_to — generation rolls never recycle an LSN a waiter may hold).
  /// Thread-safe. Under wal_sync::group the record is only STAGED
  /// (written + flushed to the OS); pass the LSN to sync_to for
  /// durability. Throws store_error(io_error) when the write or flush
  /// fails; a failed append rolls the file back to the last record
  /// boundary and POISONS the writer (every later append throws io_error
  /// immediately) so a half-written record can never get live records
  /// appended after it. Reopen the store (or reset_to) to recover.
  std::uint64_t append(std::span<const std::uint8_t> payload);

  /// Block until every record with LSN <= `lsn` is durable (fsynced).
  /// Instant under per_record (already durable) and none (no promise to
  /// wait for). Under group this IS the commit protocol: the first
  /// waiter past the current durable horizon becomes the leader, sleeps
  /// up to group_max_delay_us absorbing concurrent stagers, issues ONE
  /// fsync (outside the append mutex — appends keep staging throughout),
  /// and wakes every waiter the batch covered; late waiters elect the
  /// next leader. Throws store_error(io_error) if the writer is (or
  /// becomes) poisoned, or the batch fsync fails.
  void sync_to(std::uint64_t lsn);

  /// Highest LSN staged (append returned) / made durable so far.
  std::uint64_t staged_lsn() const;
  std::uint64_t synced_lsn() const;

  /// Fsync batching counters (see group_commit_stats).
  group_commit_stats sync_stats() const;

  /// Replace the log with an empty one at `path` (compaction commit —
  /// typically the next WAL generation's filename). Thread-safe against
  /// append AND sync_to: waits out any in-flight batch fsync, then (under
  /// per_record/group) fsyncs the outgoing file so every staged record is
  /// durable before the file leaves the writer's control, and releases
  /// all group-commit waiters. Throws store_error(io_error) with the
  /// writer untouched if that handoff fsync fails. See
  /// fleet_store::compact's quiescence contract.
  void reset_to(std::string path);

  /// Permanently fail this writer: every later append throws io_error.
  /// Used when the store's on-disk naming has moved past this log (a
  /// compaction that could not switch generations) — appending to a log
  /// no reopen will ever read must be loud, not silent.
  void poison();

  std::uint64_t bytes() const;
  std::uint64_t records() const;

 private:
  [[noreturn]] void fail_locked(const char* what);
  void note_batch_locked(std::uint64_t n);

  std::string path_;
  wal_options opts_;
  mutable std::mutex mu_;
  /// Wakes group-commit waiters (durable horizon advanced, leader slot
  /// freed, or writer poisoned) and reset_to's wait-for-leader.
  std::condition_variable cv_;
  std::FILE* f_ = nullptr;
  bool failed_ = false;  ///< poisoned by a failed append (see append)
  /// True while a sync_to leader owns the fsync (issued OUTSIDE mu_, so
  /// this flag — not the mutex — is what reset_to must wait out before
  /// closing the file).
  bool sync_in_progress_ = false;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t lsn_ = 0;         ///< last staged LSN (monotone, never reset)
  std::uint64_t synced_lsn_ = 0;  ///< durable horizon (== lsn_ for
                                  ///< per_record/none)
  group_commit_stats sync_stats_;
};

}  // namespace dialed::store

#endif  // DIALED_STORE_WAL_H
