// Append-only write-ahead log for the fleet store.
//
// On-disk framing, one record after another:
//
//   offset  size  field
//   0       4     payload length n (LE32)
//   4       4     CRC-32 over the n payload bytes
//   8       n     payload (first payload byte is the record type)
//
// Crash semantics — the load-bearing distinction:
//
//   * TORN TAIL: the FINAL record is incomplete — fewer than 8 header
//     bytes remain, or the declared payload runs past end-of-file, or the
//     payload reaches exactly end-of-file but its CRC does not match
//     (the crash hit mid-write). That is the expected signature of a
//     crash during append; the reader reports the torn bytes and the
//     store drops them cleanly (truncating the file on reopen).
//   * CORRUPT BODY: a record whose CRC fails (or whose payload is
//     undecodable) while MORE well-formed bytes follow it. That is not a
//     torn write — it is corruption in the middle of the history, and
//     replaying anything after it would resurrect state the log cannot
//     vouch for. The reader fails closed with store_error(crc_mismatch).
//
// Known limitation: the length field itself is only guarded by the
// payload CRC indirectly. A shrunk length fails closed (the CRC is then
// checked over the wrong byte range, mid-log), but a corrupted length
// that points PAST end-of-file is indistinguishable from a mid-append
// crash and is treated as a torn tail — dropping any records after the
// flip. Compaction keeps logs short, and the snapshot (whole-file CRC)
// carries the bulk of the state; closing this fully needs fixed-size
// block framing (ROADMAP open item).
//
// Writers serialize appends behind an internal mutex, so the registry's
// provisioning lock and every hub shard can emit records concurrently.
// Each append is flushed to the OS before returning; `sync_every_append`
// additionally fsyncs (durability against power loss, at a per-record
// cost — the default trusts the OS page cache, which survives process
// crashes, the failure mode the tests exercise).
#ifndef DIALED_STORE_WAL_H
#define DIALED_STORE_WAL_H

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/store_error.h"

namespace dialed::store {

/// One decoded WAL record: the payload with the framing stripped.
struct wal_record {
  byte_vec payload;
};

struct wal_read_result {
  std::vector<wal_record> records;
  /// Byte offset of the first torn byte (== file size when the log ends
  /// cleanly). Reopening truncates the file to this length.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Parse an entire WAL image. Throws store_error(crc_mismatch /
/// truncated_record) for corruption that is NOT a torn tail (see file
/// comment).
wal_read_result read_wal(std::span<const std::uint8_t> data);

/// Appender over a WAL file. Opens (creating if missing) and, when the
/// existing tail is torn, truncates it to `valid_bytes` first so the next
/// append lands on a clean boundary.
class wal_writer {
 public:
  /// `truncate_to`: length the existing file is cut to before appending
  /// (pass wal_read_result::valid_bytes); `existing_records` the number of
  /// records already in it. Throws store_error(io_error).
  wal_writer(std::string path, std::uint64_t truncate_to,
             std::uint64_t existing_records, bool sync_every_append);
  ~wal_writer();

  wal_writer(const wal_writer&) = delete;
  wal_writer& operator=(const wal_writer&) = delete;

  /// Frame `payload` and append it. Thread-safe. Throws
  /// store_error(io_error) when the write or flush fails; a failed
  /// append rolls the file back to the last record boundary and POISONS
  /// the writer (every later append throws io_error immediately) so a
  /// half-written record can never get live records appended after it.
  /// Reopen the store (or reset_to) to recover.
  void append(std::span<const std::uint8_t> payload);

  /// Replace the log with an empty one at `path` (compaction commit —
  /// typically the next WAL generation's filename). Thread-safe against
  /// append, but see fleet_store::compact's quiescence contract.
  void reset_to(std::string path);

  /// Permanently fail this writer: every later append throws io_error.
  /// Used when the store's on-disk naming has moved past this log (a
  /// compaction that could not switch generations) — appending to a log
  /// no reopen will ever read must be loud, not silent.
  void poison();

  std::uint64_t bytes() const;
  std::uint64_t records() const;

 private:
  [[noreturn]] void fail_locked(const char* what);

  std::string path_;
  bool sync_;
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  bool failed_ = false;  ///< poisoned by a failed append (see append)
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace dialed::store

#endif  // DIALED_STORE_WAL_H
