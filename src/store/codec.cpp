#include "store/codec.h"

#include <array>

namespace dialed::store {

namespace {

/// IEEE CRC-32, slicing-by-8: tables[0] is the classic byte-at-a-time
/// table; tables[k][i] advances a byte through k more zero bytes, so one
/// iteration folds 8 input bytes with 8 independent lookups. Every WAL
/// append/replay and snapshot checksum runs through here, so the byte
/// loop was a measurable share of group-commit throughput.
const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = t[k - 1][i];
        t[k][i] = t[0][prev & 0xffu] ^ (prev >> 8);
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& t = crc32_tables();
  std::uint32_t c = 0xffffffffu;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(data[i]) |
                                  static_cast<std::uint32_t>(data[i + 1])
                                      << 8 |
                                  static_cast<std::uint32_t>(data[i + 2])
                                      << 16 |
                                  static_cast<std::uint32_t>(data[i + 3])
                                      << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(data[i + 4]) |
                             static_cast<std::uint32_t>(data[i + 5]) << 8 |
                             static_cast<std::uint32_t>(data[i + 6]) << 16 |
                             static_cast<std::uint32_t>(data[i + 7]) << 24;
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
        t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
        t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
  }
  for (; i < data.size(); ++i) {
    c = t[0][(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

void writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void writer::bytes(std::span<const std::uint8_t> b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void writer::str(const std::string& s) {
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void writer::raw(std::span<const std::uint8_t> b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

// ---------------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------------

std::span<const std::uint8_t> reader::need(std::size_t n) {
  if (data_.size() - pos_ < n) {
    throw store_error(store_error_kind::truncated_record,
                      context_ + ": need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) +
                          ", have " + std::to_string(remaining()));
  }
  const auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint8_t reader::u8() { return need(1)[0]; }

std::uint16_t reader::u16() { return load_le16(need(2), 0); }

std::uint32_t reader::u32() { return load_le32(need(4), 0); }

std::uint64_t reader::u64() {
  const auto b = need(8);
  return static_cast<std::uint64_t>(load_le32(b, 0)) |
         (static_cast<std::uint64_t>(load_le32(b, 4)) << 32);
}

bool reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw store_error(store_error_kind::bad_record,
                      context_ + ": boolean byte " + std::to_string(v));
  }
  return v != 0;
}

byte_vec reader::bytes() {
  const std::uint32_t n = count(1);
  const auto s = need(n);
  return byte_vec(s.begin(), s.end());
}

std::string reader::str() {
  const std::uint32_t n = count(1);
  const auto s = need(n);
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

std::span<const std::uint8_t> reader::raw(std::size_t n) { return need(n); }

std::uint32_t reader::count(std::size_t min_element_bytes) {
  const std::uint32_t n = u32();
  if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
    throw store_error(store_error_kind::truncated_record,
                      context_ + ": count " + std::to_string(n) +
                          " exceeds remaining " +
                          std::to_string(remaining()) + " bytes");
  }
  return n;
}

// ---------------------------------------------------------------------------
// linked_program codec
// ---------------------------------------------------------------------------

namespace {

void write_memmap(writer& w, const emu::memory_map& m) {
  for (const std::uint16_t v :
       {m.ram_start, m.ram_end, m.or_min, m.or_max, m.stack_init,
        m.key_base, m.key_size, m.mac_base, m.mac_size, m.srom_start,
        m.srom_end, m.flash_start, m.flash_end, m.ivt_start,
        m.reset_vector, m.p3out, m.p3in, m.net_data, m.net_avail, m.net_tx,
        m.adc_mem, m.tar, m.halt_port, m.args_base, m.result_addr,
        m.meta_base}) {
    w.u16(v);
  }
}

emu::memory_map read_memmap(reader& r) {
  emu::memory_map m;
  for (std::uint16_t* f :
       {&m.ram_start, &m.ram_end, &m.or_min, &m.or_max, &m.stack_init,
        &m.key_base, &m.key_size, &m.mac_base, &m.mac_size, &m.srom_start,
        &m.srom_end, &m.flash_start, &m.flash_end, &m.ivt_start,
        &m.reset_vector, &m.p3out, &m.p3in, &m.net_data, &m.net_avail,
        &m.net_tx, &m.adc_mem, &m.tar, &m.halt_port, &m.args_base,
        &m.result_addr, &m.meta_base}) {
    *f = r.u16();
  }
  return m;
}

void write_symbol_map(writer& w,
                      const std::map<std::string, std::uint16_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [name, addr] : m) {
    w.str(name);
    w.u16(addr);
  }
}

std::map<std::string, std::uint16_t> read_symbol_map(reader& r) {
  std::map<std::string, std::uint16_t> m;
  const std::uint32_t n = r.count(6);  // >= len prefix + u16 per entry
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    m[name] = r.u16();
  }
  return m;
}

}  // namespace

void write_program(writer& w, const instr::linked_program& prog) {
  // Image: segments, symbols, listing.
  w.u32(static_cast<std::uint32_t>(prog.image.segments.size()));
  for (const auto& seg : prog.image.segments) {
    w.u16(seg.base);
    w.bytes(seg.bytes);
  }
  write_symbol_map(w, prog.image.symbols);
  w.u32(static_cast<std::uint32_t>(prog.image.listing.size()));
  for (const auto& e : prog.image.listing) {
    w.u16(e.address);
    w.i32(e.size_bytes);
    w.i32(e.line);
    w.str(e.text);
  }

  // Layout scalars.
  w.u16(prog.er_min);
  w.u16(prog.er_max);
  w.u16(prog.crt_entry);
  w.u16(prog.op_return_addr);
  write_symbol_map(w, prog.global_addrs);

  // compile_result — the verifier's bounds analysis reads globals and
  // frame layouts, so the round trip must be complete, not just what the
  // fingerprint hashes.
  const auto& ci = prog.compile_info;
  w.str(ci.asm_text);
  w.u32(static_cast<std::uint32_t>(ci.globals.size()));
  for (const auto& g : ci.globals) {
    w.str(g.name);
    w.i32(g.size_bytes);
    w.boolean(g.is_char);
    w.boolean(g.is_array);
    w.u32(static_cast<std::uint32_t>(g.init.size()));
    for (const std::int32_t v : g.init) w.i32(v);
  }
  w.u32(static_cast<std::uint32_t>(ci.functions.size()));
  for (const auto& f : ci.functions) {
    w.str(f.name);
    w.i32(f.frame_size);
    w.i32(f.num_params);
    w.boolean(f.returns_value);
    w.u32(static_cast<std::uint32_t>(f.locals.size()));
    for (const auto& l : f.locals) {
      w.str(l.name);
      w.i32(l.frame_offset);
      w.i32(l.size_bytes);
      w.boolean(l.is_array);
      w.boolean(l.is_char);
    }
  }
  w.u32(static_cast<std::uint32_t>(ci.helpers.size()));
  for (const auto& h : ci.helpers) w.str(h);
  w.u32(static_cast<std::uint32_t>(ci.access_sites.size()));
  for (const auto& s : ci.access_sites) {
    w.str(s.label);
    w.str(s.object);
    w.str(s.function);
    w.boolean(s.is_global);
    w.i32(s.local_offset_adj);
    w.i32(s.size_bytes);
  }
  w.u32(static_cast<std::uint32_t>(ci.function_text.size()));
  for (const auto& [name, text] : ci.function_text) {
    w.str(name);
    w.str(text);
  }

  w.str(prog.er_asm_text);

  // link_options.
  w.str(prog.options.entry);
  w.u8(static_cast<std::uint8_t>(prog.options.mode));
  write_memmap(w, prog.options.map);
  w.u16(prog.options.er_base);
  const auto& po = prog.options.pass_opts;
  w.boolean(po.optimized_cf);
  w.boolean(po.log_all_reads);
  w.boolean(po.static_read_filter);
  w.boolean(po.static_write_filter);
  write_memmap(w, po.map);
  write_symbol_map(w, po.symbols);
}

instr::linked_program read_program(reader& r) {
  instr::linked_program prog;

  const std::uint32_t nseg = r.count(6);
  prog.image.segments.reserve(nseg);
  for (std::uint32_t i = 0; i < nseg; ++i) {
    masm::segment seg;
    seg.base = r.u16();
    seg.bytes = r.bytes();
    prog.image.segments.push_back(std::move(seg));
  }
  prog.image.symbols = read_symbol_map(r);
  const std::uint32_t nlst = r.count(14);
  prog.image.listing.reserve(nlst);
  for (std::uint32_t i = 0; i < nlst; ++i) {
    masm::listing_entry e;
    e.address = r.u16();
    e.size_bytes = r.i32();
    e.line = r.i32();
    e.text = r.str();
    prog.image.listing.push_back(std::move(e));
  }

  prog.er_min = r.u16();
  prog.er_max = r.u16();
  prog.crt_entry = r.u16();
  prog.op_return_addr = r.u16();
  prog.global_addrs = read_symbol_map(r);

  auto& ci = prog.compile_info;
  ci.asm_text = r.str();
  const std::uint32_t ng = r.count(18);
  ci.globals.reserve(ng);
  for (std::uint32_t i = 0; i < ng; ++i) {
    cc::global_var_info g;
    g.name = r.str();
    g.size_bytes = r.i32();
    g.is_char = r.boolean();
    g.is_array = r.boolean();
    const std::uint32_t ni = r.count(4);
    g.init.reserve(ni);
    for (std::uint32_t k = 0; k < ni; ++k) g.init.push_back(r.i32());
    ci.globals.push_back(std::move(g));
  }
  const std::uint32_t nf = r.count(17);
  ci.functions.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    cc::function_info f;
    f.name = r.str();
    f.frame_size = r.i32();
    f.num_params = r.i32();
    f.returns_value = r.boolean();
    const std::uint32_t nl = r.count(18);
    f.locals.reserve(nl);
    for (std::uint32_t k = 0; k < nl; ++k) {
      cc::local_var_info l;
      l.name = r.str();
      l.frame_offset = r.i32();
      l.size_bytes = r.i32();
      l.is_array = r.boolean();
      l.is_char = r.boolean();
      f.locals.push_back(std::move(l));
    }
    ci.functions.push_back(std::move(f));
  }
  const std::uint32_t nh = r.count(4);
  for (std::uint32_t i = 0; i < nh; ++i) ci.helpers.insert(r.str());
  const std::uint32_t ns = r.count(21);
  ci.access_sites.reserve(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    cc::access_site s;
    s.label = r.str();
    s.object = r.str();
    s.function = r.str();
    s.is_global = r.boolean();
    s.local_offset_adj = r.i32();
    s.size_bytes = r.i32();
    ci.access_sites.push_back(std::move(s));
  }
  const std::uint32_t nft = r.count(8);
  ci.function_text.reserve(nft);
  for (std::uint32_t i = 0; i < nft; ++i) {
    std::string name = r.str();
    std::string text = r.str();
    ci.function_text.emplace_back(std::move(name), std::move(text));
  }

  prog.er_asm_text = r.str();

  prog.options.entry = r.str();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(instr::instrumentation::dialed)) {
    throw store_error(store_error_kind::bad_record,
                      "linked_program: instrumentation byte " +
                          std::to_string(mode));
  }
  prog.options.mode = static_cast<instr::instrumentation>(mode);
  prog.options.map = read_memmap(r);
  prog.options.er_base = r.u16();
  auto& po = prog.options.pass_opts;
  po.optimized_cf = r.boolean();
  po.log_all_reads = r.boolean();
  po.static_read_filter = r.boolean();
  po.static_write_filter = r.boolean();
  po.map = read_memmap(r);
  po.symbols = read_symbol_map(r);

  return prog;
}

}  // namespace dialed::store
