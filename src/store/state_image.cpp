#include "store/state_image.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "store/codec.h"

namespace dialed::store {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

std::optional<byte_vec> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  byte_vec data((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw store_error(store_error_kind::io_error,
                      p.string() + ": read failed");
  }
  return data;
}

void write_file_atomic(const fs::path& p, std::span<const std::uint8_t> b) {
  const fs::path tmp = p.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw store_error(store_error_kind::io_error,
                      tmp.string() + ": open: " + std::strerror(errno));
  }
  const bool wrote = std::fwrite(b.data(), 1, b.size(), f) == b.size() &&
                     std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote) {
    throw store_error(store_error_kind::io_error,
                      tmp.string() + ": write: " + std::strerror(errno));
  }
  std::error_code ec;
  fs::rename(tmp, p, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      p.string() + ": rename: " + ec.message());
  }
}

namespace {

verifier::firmware_id read_fw_id(reader& r) {
  verifier::firmware_id id{};
  const auto s = r.raw(id.size());
  std::copy(s.begin(), s.end(), id.begin());
  return id;
}

fleet::nonce16 read_nonce(reader& r) {
  fleet::nonce16 n{};
  const auto s = r.raw(n.size());
  std::copy(s.begin(), s.end(), n.begin());
  return n;
}

fleet::device_restore& state_for(state_image& img, fleet::device_id id) {
  auto& st = img.states[id];
  st.id = id;
  return st;
}

/// Parse-validate a firmware blob (structure only — the content-id
/// fingerprint check runs at materialize time, where the program is
/// actually rebuilt).
void check_firmware_blob(const byte_vec& blob, const std::string& where) {
  reader pr(blob, where);
  read_program(pr);
  if (!pr.done()) {
    throw store_error(store_error_kind::bad_record,
                      where + " has trailing bytes");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// WAL replay
// ---------------------------------------------------------------------------

void apply_record(state_image& img, std::span<const std::uint8_t> payload,
                  std::size_t record_index, std::size_t retired_memory) {
  reader r(payload, "wal record " + std::to_string(record_index));
  const std::uint8_t type = r.u8();
  switch (static_cast<rec>(type)) {
    case rec::firmware: {
      const auto id = read_fw_id(r);
      byte_vec blob = r.bytes();
      check_firmware_blob(blob, "wal firmware image");
      img.firmwares[id] = std::move(blob);
      break;
    }
    case rec::provision: {
      const fleet::device_id id = r.u32();
      image_device dev;
      dev.key = r.bytes();
      dev.fw = read_fw_id(r);
      if (img.firmwares.count(dev.fw) == 0) {
        throw store_error(store_error_kind::unknown_firmware,
                          "wal: device " + std::to_string(id) +
                              " references an unpersisted firmware id");
      }
      if (!img.devices.emplace(id, std::move(dev)).second) {
        throw store_error(store_error_kind::bad_record,
                          "wal: device " + std::to_string(id) +
                              " provisioned twice");
      }
      img.next_id = std::max(img.next_id, id + 1);
      break;
    }
    case rec::challenge: {
      const fleet::device_id id = r.u32();
      const std::uint32_t seq = r.u32();
      const auto nonce = read_nonce(r);
      const std::uint64_t issued_at = r.u64();
      if (img.devices.count(id) == 0) {
        throw store_error(store_error_kind::bad_record,
                          "wal: challenge for unprovisioned device " +
                              std::to_string(id));
      }
      auto& st = state_for(img, id);
      st.outstanding.push_back({nonce, seq, issued_at});
      st.next_seq = std::max(st.next_seq, seq + 1);
      // tick() journals outside the shard locks, so a challenge that read
      // the advanced clock can beat its tick record into the log (or the
      // tick record can be the torn tail). The clock must never restore
      // BEHIND an issue stamp — unsigned expiry math would treat the
      // challenge as ~2^64 ticks old and expire it on the spot.
      img.now = std::max(img.now, issued_at);
      ++img.stats.challenges_issued;
      break;
    }
    case rec::retire: {
      const fleet::device_id id = r.u32();
      const auto nonce = read_nonce(r);
      fleet::nonce_fate fate{};
      if (!fleet::nonce_fate_from_u8(r.u8(), fate)) {
        throw store_error(store_error_kind::bad_record,
                          "wal: invalid nonce fate byte");
      }
      auto& st = state_for(img, id);
      const auto it = std::find_if(
          st.outstanding.begin(), st.outstanding.end(),
          [&](const auto& e) { return e.nonce == nonce; });
      if (it == st.outstanding.end()) {
        throw store_error(store_error_kind::bad_record,
                          "wal: retire of a nonce never outstanding "
                          "(device " +
                              std::to_string(id) + ")");
      }
      st.outstanding.erase(it);
      st.retired.push_back({nonce, fate});
      if (retired_memory != 0 && st.retired.size() > retired_memory) {
        st.retired.erase(st.retired.begin());
      }
      if (fate == fleet::nonce_fate::expired) {
        ++img.stats.challenges_expired;
      } else if (fate == fleet::nonce_fate::superseded) {
        ++img.stats.challenges_superseded;
      }
      break;
    }
    case rec::verdict: {
      const fleet::device_id id = r.u32();
      proto::proto_error err{};
      if (!proto::proto_error_from_u8(r.u8(), err)) {
        throw store_error(store_error_kind::bad_record,
                          "wal: invalid proto_error byte");
      }
      const bool accepted = r.boolean();
      const bool known = img.devices.count(id) != 0;
      if (err == proto::proto_error::none) {
        if (!known) {
          throw store_error(store_error_kind::bad_record,
                            "wal: verdict for unprovisioned device " +
                                std::to_string(id));
        }
        auto& c = state_for(img, id).counters;
        if (accepted) {
          ++img.stats.reports_accepted;
          ++c.accepted;
        } else {
          ++img.stats.reports_rejected_verdict;
          ++c.rejected_verdict;
        }
      } else {
        ++img.stats.rejected_by_error[static_cast<std::size_t>(err)];
        // Unknown device ids are deliberately not attributed (matching
        // the live hub: an id-spraying attacker must not grow the map).
        if (known) {
          auto& c = state_for(img, id).counters;
          if (err == proto::proto_error::replayed_report) {
            ++c.replayed;
          } else {
            ++c.rejected_protocol;
          }
        }
      }
      break;
    }
    case rec::tick: {
      // Concurrent ticks may journal out of order; keep the maximum so
      // the clock never regresses (expiry must stay monotonic).
      img.now = std::max(img.now, r.u64());
      break;
    }
    case rec::baseline: {
      const fleet::device_id id = r.u32();
      const std::uint32_t seq = r.u32();
      byte_vec bytes = r.bytes();
      if (img.devices.count(id) == 0) {
        throw store_error(store_error_kind::bad_record,
                          "wal: baseline for unprovisioned device " +
                              std::to_string(id));
      }
      auto& b = state_for(img, id).baseline;
      // Concurrent accepts journal in lock order per shard, but keep the
      // max-seq rule anyway — it is the live hub's adoption rule too.
      if (!b.valid || seq > b.seq) {
        b.valid = true;
        b.seq = seq;
        b.bytes = std::move(bytes);
      }
      break;
    }
    default:
      throw store_error(store_error_kind::bad_record,
                        "wal: unknown record type " +
                            std::to_string(type));
  }
  if (!r.done()) {
    throw store_error(store_error_kind::bad_record,
                      "wal: record " + std::to_string(record_index) +
                          " has " + std::to_string(r.remaining()) +
                          " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

namespace {

void write_device_state(writer& w, const fleet::device_restore& d) {
  w.u32(d.id);
  w.u32(d.next_seq);
  w.u32(static_cast<std::uint32_t>(d.outstanding.size()));
  for (const auto& c : d.outstanding) {
    w.raw(c.nonce);
    w.u32(c.seq);
    w.u64(c.issued_at);
  }
  w.u32(static_cast<std::uint32_t>(d.retired.size()));
  for (const auto& n : d.retired) {
    w.raw(n.nonce);
    w.u8(static_cast<std::uint8_t>(n.fate));
  }
  w.u64(d.counters.accepted);
  w.u64(d.counters.rejected_verdict);
  w.u64(d.counters.replayed);
  w.u64(d.counters.rejected_protocol);
  // v2: the wire v2.1 delta baseline (absent flag + seq + OR bytes).
  w.boolean(d.baseline.valid);
  if (d.baseline.valid) {
    w.u32(d.baseline.seq);
    w.bytes(d.baseline.bytes);
  }
}

fleet::device_restore read_device_state(reader& r,
                                        std::uint32_t version) {
  fleet::device_restore d;
  d.id = r.u32();
  d.next_seq = r.u32();
  const std::uint32_t nout = r.count(28);
  d.outstanding.reserve(nout);
  for (std::uint32_t i = 0; i < nout; ++i) {
    fleet::device_restore::outstanding_challenge c;
    c.nonce = read_nonce(r);
    c.seq = r.u32();
    c.issued_at = r.u64();
    d.outstanding.push_back(c);
  }
  const std::uint32_t nret = r.count(17);
  d.retired.reserve(nret);
  for (std::uint32_t i = 0; i < nret; ++i) {
    fleet::device_restore::retired_nonce n;
    n.nonce = read_nonce(r);
    if (!fleet::nonce_fate_from_u8(r.u8(), n.fate)) {
      throw store_error(store_error_kind::bad_record,
                        "snapshot: invalid nonce fate byte");
    }
    d.retired.push_back(n);
  }
  d.counters.accepted = r.u64();
  d.counters.rejected_verdict = r.u64();
  d.counters.replayed = r.u64();
  d.counters.rejected_protocol = r.u64();
  if (version >= 2 && r.boolean()) {
    d.baseline.valid = true;
    d.baseline.seq = r.u32();
    d.baseline.bytes = r.bytes();
  }
  return d;
}

}  // namespace

state_image parse_snapshot(std::span<const std::uint8_t> data,
                           const std::string& path) {
  if (data.size() < 12 ||
      !std::equal(snapshot_magic.begin(), snapshot_magic.end(),
                  data.begin())) {
    throw store_error(store_error_kind::bad_magic,
                      path + ": not a DIALED fleet snapshot");
  }
  const std::uint32_t version = load_le32(data, 4);
  if (version != snapshot_version_v1 && version != snapshot_version) {
    throw store_error(store_error_kind::bad_version,
                      path + ": snapshot version " +
                          std::to_string(version) +
                          " (this build speaks " +
                          std::to_string(snapshot_version_v1) + ".." +
                          std::to_string(snapshot_version) + ")");
  }
  const std::uint32_t stored_crc = load_le32(data, data.size() - 4);
  const auto guarded = data.subspan(0, data.size() - 4);
  if (crc32(guarded) != stored_crc) {
    throw store_error(store_error_kind::crc_mismatch,
                      path + ": snapshot CRC mismatch — corrupt at "
                             "rest, refusing to load");
  }

  state_image img;
  reader r(guarded.subspan(8), "snapshot");
  img.master_key = r.bytes();
  img.next_id = r.u32();
  img.now = r.u64();
  img.wal_generation = r.u64();

  img.stats.challenges_issued = r.u64();
  img.stats.challenges_expired = r.u64();
  img.stats.challenges_superseded = r.u64();
  img.stats.reports_accepted = r.u64();
  img.stats.reports_rejected_verdict = r.u64();
  // v1 snapshots predate baseline_mismatch: their histogram is one
  // bucket short, and the missing (newest) bucket starts at zero.
  const std::uint32_t nerr = r.count(8);
  const std::uint32_t expected_err =
      version == snapshot_version_v1
          ? v1_error_buckets
          : static_cast<std::uint32_t>(img.stats.rejected_by_error.size());
  if (nerr != expected_err ||
      nerr > img.stats.rejected_by_error.size()) {
    throw store_error(store_error_kind::bad_record,
                      path + ": error histogram has " +
                          std::to_string(nerr) + " buckets, expected " +
                          std::to_string(expected_err));
  }
  for (std::uint32_t i = 0; i < nerr; ++i) {
    img.stats.rejected_by_error[i] = r.u64();
  }

  const std::uint32_t nfw = r.count(36);
  for (std::uint32_t i = 0; i < nfw; ++i) {
    const auto id = read_fw_id(r);
    byte_vec blob = r.bytes();
    check_firmware_blob(blob, path + ": firmware image");
    img.firmwares[id] = std::move(blob);
  }

  const std::uint32_t ndev = r.count(40);
  for (std::uint32_t i = 0; i < ndev; ++i) {
    const fleet::device_id id = r.u32();
    image_device dev;
    dev.key = r.bytes();
    dev.fw = read_fw_id(r);
    if (img.firmwares.count(dev.fw) == 0) {
      throw store_error(store_error_kind::unknown_firmware,
                        path + ": device " + std::to_string(id) +
                            " references a firmware id missing from "
                            "the snapshot");
    }
    if (!img.devices.emplace(id, std::move(dev)).second) {
      throw store_error(store_error_kind::bad_record,
                        path + ": device " + std::to_string(id) +
                            " appears twice");
    }
  }

  const std::uint32_t nstate = r.count(44);
  for (std::uint32_t i = 0; i < nstate; ++i) {
    auto d = read_device_state(r, version);
    if (img.devices.count(d.id) == 0) {
      throw store_error(store_error_kind::bad_record,
                        path + ": hub state for unprovisioned device " +
                            std::to_string(d.id));
    }
    const auto id = d.id;
    img.states.emplace(id, std::move(d));
  }

  if (!r.done()) {
    throw store_error(store_error_kind::bad_record,
                      path + ": snapshot has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes");
  }
  return img;
}

byte_vec serialize_snapshot(const state_image& img,
                            std::uint64_t generation) {
  writer w;
  w.raw(snapshot_magic);
  w.u32(snapshot_version);
  w.bytes(img.master_key);
  w.u32(img.next_id);
  w.u64(img.now);
  w.u64(generation);

  w.u64(img.stats.challenges_issued);
  w.u64(img.stats.challenges_expired);
  w.u64(img.stats.challenges_superseded);
  w.u64(img.stats.reports_accepted);
  w.u64(img.stats.reports_rejected_verdict);
  w.u32(static_cast<std::uint32_t>(img.stats.rejected_by_error.size()));
  for (const auto v : img.stats.rejected_by_error) w.u64(v);

  w.u32(static_cast<std::uint32_t>(img.firmwares.size()));
  for (const auto& [id, blob] : img.firmwares) {
    w.raw(id);
    w.bytes(blob);
  }

  w.u32(static_cast<std::uint32_t>(img.devices.size()));
  for (const auto& [id, dev] : img.devices) {
    w.u32(id);
    w.bytes(dev.key);
    w.raw(dev.fw);
  }

  w.u32(static_cast<std::uint32_t>(img.states.size()));
  for (const auto& [id, d] : img.states) write_device_state(w, d);

  w.u32(crc32(w.data()));
  return w.take();
}

void merge_live_stats(state_image& img, const fleet::hub_stats& live) {
  auto& s = img.stats;
  s.challenges_issued = std::max(s.challenges_issued,
                                 live.challenges_issued);
  s.challenges_expired = std::max(s.challenges_expired,
                                  live.challenges_expired);
  s.challenges_superseded = std::max(s.challenges_superseded,
                                     live.challenges_superseded);
  s.reports_accepted = std::max(s.reports_accepted,
                                live.reports_accepted);
  s.reports_rejected_verdict = std::max(s.reports_rejected_verdict,
                                        live.reports_rejected_verdict);
  for (std::size_t i = 0; i < s.rejected_by_error.size(); ++i) {
    s.rejected_by_error[i] = std::max(s.rejected_by_error[i],
                                      live.rejected_by_error[i]);
  }
}

}  // namespace dialed::store
