#include "store/ship.h"

#include <algorithm>
#include <filesystem>

#include "obs/event_log.h"

namespace dialed::store {

namespace fs = std::filesystem;

void wal_shipper::add_follower(wal_follower* f) {
  followers_.push_back(f);
  tracked_.push_back(f);
}

ship_stats wal_shipper::stats() const {
  ship_stats s;
  s.records_shipped = records_shipped();
  s.bytes_shipped = bytes_shipped();
  s.snapshots_shipped = snapshots_shipped();
  s.followers = tracked_.size();
  for (const auto* f : tracked_) {
    const auto applied = f->records_applied();
    const auto lag =
        s.records_shipped > applied ? s.records_shipped - applied : 0;
    s.max_lag_records = std::max(s.max_lag_records, lag);
    if (f->error().has_value()) s.any_desync = true;
  }
  return s;
}

wal_follower::wal_follower(std::string dir, follower_config cfg)
    : dir_(std::move(dir)), cfg_(cfg) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      dir_ + ": create: " + ec.message());
  }
}

void wal_follower::latch_locked(store_error err) {
  if (error_) return;
  // The operator-facing moment this follower stops being a standby:
  // say so once, with the cause (stats()/healthz carry it from here on).
  obs::log().emit(obs::log_level::error, "standby_desync",
                  {{"dir", dir_}, {"error", err.what()}});
  error_.emplace(std::move(err));
}

void wal_follower::on_snapshot(std::uint64_t generation,
                               std::span<const std::uint8_t> snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  if (error_) return;
  if (promoted_) {
    latch_locked(store_error(store_error_kind::ship_desync,
                             dir_ + ": snapshot shipped after promote"));
    return;
  }
  try {
    // Validate before touching disk: a snapshot the promote-time open
    // would refuse must not replace a good one.
    state_image img =
        parse_snapshot(snapshot, dir_ + ": shipped snapshot");
    const fs::path snap = fs::path(dir_) / fleet_store::snapshot_file;
    write_file_atomic(snap, snapshot);
    const fs::path wal =
        fs::path(dir_) / ("wal-" + std::to_string(generation) + ".log");
    // Fresh log for the new generation (truncating any stale file). The
    // previous generation's log is dead weight now that the snapshot
    // covers it; sweep it so the follower dir mirrors a compacted
    // primary (promote()'s open would sweep it anyway).
    if (wal_ != nullptr && have_snapshot_ && generation != gen_) {
      wal_.reset();
      std::error_code ec;
      fs::remove(fs::path(dir_) /
                     ("wal-" + std::to_string(gen_) + ".log"),
                 ec);
    }
    wal_ = std::make_unique<wal_writer>(wal.string(), 0, 0, cfg_.wal);
    img_ = std::move(img);
    img_.wal_generation = generation;
    gen_ = generation;
    have_snapshot_ = true;
  } catch (const store_error& e) {
    latch_locked(e);
  } catch (const std::exception& e) {
    latch_locked(store_error(store_error_kind::io_error,
                             dir_ + ": shipped snapshot: " + e.what()));
  }
}

void wal_follower::on_record(std::uint64_t generation,
                             std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (error_) return;
  if (promoted_) {
    latch_locked(store_error(store_error_kind::ship_desync,
                             dir_ + ": record shipped after promote"));
    return;
  }
  if (!have_snapshot_) {
    latch_locked(store_error(
        store_error_kind::ship_desync,
        dir_ + ": record shipped before the initial snapshot"));
    return;
  }
  if (generation != gen_) {
    latch_locked(store_error(
        store_error_kind::ship_desync,
        dir_ + ": record for generation " + std::to_string(generation) +
            " while following " + std::to_string(gen_)));
    return;
  }
  try {
    // Validate first — exactly the check promote-time replay would run.
    // A record the image refuses never reaches the follower's disk.
    apply_record(img_, payload,
                 static_cast<std::size_t>(
                     records_applied_.load(std::memory_order_relaxed)),
                 cfg_.retired_memory);
    wal_->append(payload);
    records_applied_.fetch_add(1, std::memory_order_relaxed);
  } catch (const store_error& e) {
    latch_locked(e);
  } catch (const std::exception& e) {
    latch_locked(store_error(store_error_kind::io_error,
                             dir_ + ": shipped record: " + e.what()));
  }
}

fleet_state wal_follower::promote(fleet_store::options opts) {
  std::unique_ptr<wal_writer> closing;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (error_) throw *error_;
    if (!have_snapshot_) {
      throw store_error(store_error_kind::ship_desync,
                        dir_ + ": promote before the initial snapshot");
    }
    promoted_ = true;
    closing = std::move(wal_);  // close (flush) outside the lock
  }
  closing.reset();
  obs::log().emit(obs::log_level::info, "standby_promoted",
                  {{"dir", dir_},
                   {"generation", gen_},
                   {"records_applied", records_applied()}});
  return fleet_store::open(dir_, std::move(opts));
}

std::optional<store_error> wal_follower::error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return error_;
}

bool wal_follower::synced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return have_snapshot_ && !error_ && !promoted_;
}

std::uint64_t wal_follower::generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return gen_;
}

}  // namespace dialed::store
