// Durable fleet state: snapshot + write-ahead-log persistence for the
// device registry, the firmware catalog, and the verifier hub's
// anti-replay state. This closes the attestation-vs-state gap a restart
// used to open: without it, a crashed hub forgot every consumed nonce,
// so a report accepted seconds before the crash verified again afterwards
// — a textbook replay through state loss (cf. the TOCTOU-on-DICE line of
// attacks; SAFE^d keeps its attestation state durable for the same
// reason).
//
// What is persisted
// -----------------
//   * the device registry: ids, per-device key material, the firmware
//     content id each device runs, and the id-assignment cursor;
//   * the firmware catalog: content id -> full linked_program image, so
//     artifacts re-intern BY CONTENT ID on load (one artifact per image,
//     shared by every device on it — the PR 3 invariant survives
//     restarts);
//   * per-device anti-replay state: outstanding challenges (nonce, seq,
//     issue tick), the retired-nonce history with fates, the seq
//     high-water mark, and the hub clock — so a restarted hub classifies
//     a pre-crash report as replayed_report instead of accepting it;
//   * hub-level and per-device stats counters.
//
// Files in the state directory
// ----------------------------
//   snapshot.dls   versioned, CRC-32-guarded binary snapshot ("DLFS"
//                  magic). Atomically replaced via .tmp + rename.
//   wal-<G>.log    append-only log of every state change since snapshot
//                  generation G (see src/store/wal.h for framing/torn-
//                  tail semantics). The snapshot names the generation it
//                  covers, so a WAL from an older generation can never be
//                  double-applied on top of a newer snapshot.
//
// Lifecycle
// ---------
//   auto st = store::fleet_store::open(dir, {.master_key = K});
//   st.registry->provision(...);       // journaled
//   st.hub->challenge(id); ...         // journaled
//   st.store->compact();               // snapshot + fresh WAL generation
//
// open() replays snapshot + WAL into a fresh {catalog, registry, hub}
// triple wired to the store as its persistence sink, verifying every
// firmware image re-hashes to its recorded content id. Corrupt state
// fails closed with a typed store_error; only a torn FINAL WAL record —
// the expected crash signature — is dropped (and truncated) cleanly.
//
// Concurrency contract
// --------------------
// WAL appends are fully concurrent (the registry's writer lock and every
// hub shard feed one internally-locked appender). compact() however
// assembles a point-in-time state from three separately-locked
// structures, so it requires QUIESCENCE: no in-flight provision /
// challenge / submit / tick while it runs. open() compacts before any
// traffic exists; call sites that compact later (CLI exit, maintenance
// windows) must drain traffic first. Online compaction is an open item,
// as is an advisory lock on the state dir — one process per directory is
// the caller's responsibility today.
#ifndef DIALED_STORE_FLEET_STORE_H
#define DIALED_STORE_FLEET_STORE_H

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "fleet/verifier_hub.h"
#include "store/wal.h"

namespace dialed::store {

class fleet_store;

/// The reopened fleet: a catalog/registry/hub triple wired to its store.
/// Member order is the destruction contract — the hub and registry hold a
/// sink pointer into the store, so they are declared after it and
/// destroyed before it.
struct fleet_state {
  std::shared_ptr<fleet::firmware_catalog> catalog;
  std::unique_ptr<fleet_store> store;
  std::unique_ptr<fleet::device_registry> registry;
  std::unique_ptr<fleet::verifier_hub> hub;
};

class fleet_store final : public fleet::persist_sink {
 public:
  struct options {
    /// Fleet master key. Required when the state dir is fresh; on reopen
    /// an empty key means "use the persisted one" and a non-empty key
    /// must MATCH the persisted one (store_error(master_key_mismatch)
    /// otherwise — silently proceeding would derive wrong device keys).
    byte_vec master_key;
    /// Configuration for the reopened hub (shards, TTL, workers...).
    /// The store installs itself as cfg.sink.
    fleet::hub_config hub{};
    /// fsync every WAL append (power-loss durability) instead of only
    /// flushing to the OS (process-crash durability, the default).
    bool sync_every_append = false;
    /// Rewrite the snapshot and reset the WAL at open() when the WAL is
    /// non-empty or no snapshot exists yet. Keeps reopen cost bounded and
    /// makes the master key durable from the first open.
    bool compact_on_open = true;
  };

  static constexpr const char* snapshot_file = "snapshot.dls";

  /// Load (or initialize) the state directory and materialize the fleet.
  /// Throws store_error on any corruption (fail closed) and
  /// registry_error(empty_master_key) on a fresh dir with no key.
  static fleet_state open(const std::string& dir, options opts);

  /// Rewrite the snapshot from the live {registry, catalog, hub} and
  /// start a fresh WAL generation. QUIESCENT ONLY — see file comment.
  void compact();

  /// Observability: current WAL size (records/bytes since the snapshot).
  std::uint64_t wal_records() const { return wal_->records(); }
  std::uint64_t wal_bytes() const { return wal_->bytes(); }
  std::uint64_t generation() const { return generation_; }
  const std::string& directory() const { return dir_; }

  // ---- fleet::persist_sink -------------------------------------------
  void on_provision(const fleet::device_record& rec) override;
  void on_challenge(fleet::device_id id, std::uint32_t seq,
                    const fleet::nonce16& nonce,
                    std::uint64_t issued_at) override;
  void on_retire(fleet::device_id id, const fleet::nonce16& nonce,
                 fleet::nonce_fate fate) override;
  void on_verdict(fleet::device_id id, proto::proto_error error,
                  bool accepted) override;
  void on_baseline(fleet::device_id id, std::uint32_t seq,
                   std::span<const std::uint8_t> or_bytes) override;
  void on_tick(std::uint64_t now) override;

 private:
  fleet_store(std::string dir, options opts);

  std::string wal_path(std::uint64_t generation) const;
  void write_snapshot();

  std::string dir_;
  options opts_;
  std::uint64_t generation_ = 0;
  std::unique_ptr<wal_writer> wal_;

  /// Firmware ids already durable (snapshot or an earlier WAL record) —
  /// on_provision appends each program image at most once.
  std::mutex fw_mu_;
  std::set<verifier::firmware_id> persisted_firmware_;

  /// Borrowed views of the live objects, for compact(). Set by open();
  /// fleet_state's member order guarantees they outlive this store.
  std::shared_ptr<fleet::firmware_catalog> catalog_;
  fleet::device_registry* registry_ = nullptr;
  fleet::verifier_hub* hub_ = nullptr;
};

}  // namespace dialed::store

#endif  // DIALED_STORE_FLEET_STORE_H
