// Durable fleet state: snapshot + write-ahead-log persistence for the
// device registry, the firmware catalog, and the verifier hub's
// anti-replay state. This closes the attestation-vs-state gap a restart
// used to open: without it, a crashed hub forgot every consumed nonce,
// so a report accepted seconds before the crash verified again afterwards
// — a textbook replay through state loss (cf. the TOCTOU-on-DICE line of
// attacks; SAFE^d keeps its attestation state durable for the same
// reason).
//
// What is persisted
// -----------------
//   * the device registry: ids, per-device key material, the firmware
//     content id each device runs, and the id-assignment cursor;
//   * the firmware catalog: content id -> full linked_program image, so
//     artifacts re-intern BY CONTENT ID on load (one artifact per image,
//     shared by every device on it — the PR 3 invariant survives
//     restarts);
//   * per-device anti-replay state: outstanding challenges (nonce, seq,
//     issue tick), the retired-nonce history with fates, the seq
//     high-water mark, and the hub clock — so a restarted hub classifies
//     a pre-crash report as replayed_report instead of accepting it;
//   * hub-level and per-device stats counters.
//
// Files in the state directory
// ----------------------------
//   snapshot.dls   versioned, CRC-32-guarded binary snapshot ("DLFS"
//                  magic). Atomically replaced via .tmp + rename.
//   wal-<G>.log    append-only log of every state change since snapshot
//                  generation G (see src/store/wal.h for framing/torn-
//                  tail semantics). The snapshot names the generation it
//                  covers; open() replays the CHAIN of consecutive
//                  generations G, G+1, ... (an online compaction that
//                  crashed between rolling the log and publishing the
//                  snapshot leaves two logs — both replay, in order, and
//                  nothing is lost). Only the newest log in the chain may
//                  end in a torn record; a torn or missing log mid-chain
//                  is corruption and fails closed.
//
// Lifecycle
// ---------
//   auto st = store::fleet_store::open(dir, {.master_key = K});
//   st.registry->provision(...);       // journaled
//   st.hub->challenge(id); ...         // journaled
//   st.store->compact();               // snapshot + fresh WAL generation
//
// open() replays snapshot + WAL chain into a fresh {catalog, registry,
// hub} triple wired to the store as its persistence sink, verifying every
// firmware image re-hashes to its recorded content id. Corrupt state
// fails closed with a typed store_error; only a torn FINAL WAL record —
// the expected crash signature — is dropped (and truncated) cleanly.
//
// Concurrency contract
// --------------------
// Appends are fully concurrent: the registry's writer lock and every hub
// shard feed one store-level journal lock, which (1) appends the record,
// (2) applies it to an in-memory MIRROR of the durable state (the mirror
// equals replay(log) by construction), and (3) forwards it to the
// attached shipper, all in one critical section. compact() is ONLINE:
// it serializes the mirror under that same lock — never the registry's
// or the hub's locks — rolls the WAL to the next generation, and writes
// the snapshot file outside the lock, so provision/challenge/submit/tick
// traffic keeps flowing throughout. An advisory lock on the state dir is
// still an open item — one process per directory is the caller's
// responsibility today.
#ifndef DIALED_STORE_FLEET_STORE_H
#define DIALED_STORE_FLEET_STORE_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "fleet/verifier_hub.h"
#include "store/state_image.h"
#include "store/wal.h"

namespace dialed::store {

class fleet_store;
class ship_sink;  // store/ship.h

/// The reopened fleet: a catalog/registry/hub triple wired to its store.
/// Member order is the destruction contract — the hub and registry hold a
/// sink pointer into the store, so they are declared after it and
/// destroyed before it.
struct fleet_state {
  std::shared_ptr<fleet::firmware_catalog> catalog;
  std::unique_ptr<fleet_store> store;
  std::unique_ptr<fleet::device_registry> registry;
  std::unique_ptr<fleet::verifier_hub> hub;
};

class fleet_store final : public fleet::persist_sink {
 public:
  struct options {
    /// Fleet master key. Required when the state dir is fresh; on reopen
    /// an empty key means "use the persisted one" and a non-empty key
    /// must MATCH the persisted one (store_error(master_key_mismatch)
    /// otherwise — silently proceeding would derive wrong device keys).
    byte_vec master_key;
    /// Configuration for the reopened hub (shards, TTL, workers...).
    /// The store installs itself as cfg.sink.
    fleet::hub_config hub{};
    /// WAL durability policy (see the sync policy matrix in
    /// src/store/wal.h): per_record fsyncs inside every append, group
    /// batches concurrent appenders' fsyncs into one (the hub's
    /// sync_barrier is the commit point), none trusts the OS page cache
    /// (process-crash durability, the default).
    wal_options wal{};
    /// Rewrite the snapshot and reset the WAL at open() when the WAL is
    /// non-empty or no snapshot exists yet. Keeps reopen cost bounded and
    /// makes the master key durable from the first open.
    bool compact_on_open = true;
  };

  static constexpr const char* snapshot_file = "snapshot.dls";

  /// Load (or initialize) the state directory and materialize the fleet.
  /// Throws store_error on any corruption (fail closed) and
  /// registry_error(empty_master_key) on a fresh dir with no key.
  static fleet_state open(const std::string& dir, options opts);

  /// ONLINE compaction: serialize the mirror as a snapshot naming the
  /// next WAL generation, roll the log, publish the snapshot file, drop
  /// the old log. Safe under full concurrent traffic (see file comment);
  /// concurrent compact() calls serialize against each other. Throws
  /// store_error(io_error) when the roll or the snapshot write fails —
  /// a failed roll leaves the store exactly as it was, a failed snapshot
  /// write leaves a two-log chain that the next open (or the next
  /// successful compact) folds up.
  void compact();

  /// Attach (or detach, with nullptr) a shipping sink. The sink
  /// immediately receives a full snapshot of the current state, then
  /// every subsequent record and every compaction snapshot, in journal
  /// order — delivered under the journal lock, so implementations must
  /// be fast and MUST NOT call back into this store.
  void attach_shipper(ship_sink* s);

  /// Observability: current WAL size (records/bytes since the snapshot).
  std::uint64_t wal_records() const { return wal_->records(); }
  std::uint64_t wal_bytes() const { return wal_->bytes(); }
  /// Fsync batching counters (the /metrics group-commit histogram).
  group_commit_stats group_commit() const { return wal_->sync_stats(); }
  wal_sync wal_sync_policy() const { return opts_.wal.sync; }
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  const std::string& directory() const { return dir_; }

  // ---- fleet::persist_sink -------------------------------------------
  void on_provision(const fleet::device_record& rec) override;
  void on_challenge(fleet::device_id id, std::uint32_t seq,
                    const fleet::nonce16& nonce,
                    std::uint64_t issued_at) override;
  void on_retire(fleet::device_id id, const fleet::nonce16& nonce,
                 fleet::nonce_fate fate) override;
  void on_verdict(fleet::device_id id, proto::proto_error error,
                  bool accepted) override;
  void on_baseline(fleet::device_id id, std::uint32_t seq,
                   std::span<const std::uint8_t> or_bytes) override;
  void on_tick(std::uint64_t now) override;
  /// The hub's phase-1/phase-2 durability barrier. Under wal_sync::group
  /// this is where concurrent verifiers park and one batch fsync covers
  /// them all; per_record is already durable and none promises nothing,
  /// so both return immediately. Deliberately does NOT take log_mu_ —
  /// the caller's record was appended before this call (same thread),
  /// and blocking the journal for the fsync wait would serialize the
  /// very batching group commit exists for.
  void sync_barrier() override;

 private:
  fleet_store(std::string dir, options opts);

  std::string wal_path(std::uint64_t generation) const;
  /// Append + mirror-apply + ship one record. Requires log_mu_. A record
  /// the mirror refuses poisons the writer (the journal and the mirror
  /// must never diverge) and rethrows.
  void journal_locked(std::span<const std::uint8_t> payload);
  /// Take log_mu_ and journal one record.
  void journal(std::span<const std::uint8_t> payload);
  /// Fold the live hub's unattributed rejection counters into the
  /// mirror (they are deliberately not journaled). Requires log_mu_.
  void merge_live_stats_locked();

  std::string dir_;
  options opts_;
  std::atomic<std::uint64_t> generation_{0};
  std::unique_ptr<wal_writer> wal_;

  /// Orders append -> mirror apply -> ship as one atomic step, and
  /// freezes all three for compact()'s serialization point.
  mutable std::mutex log_mu_;
  /// Live replay of the journal: what a reopen RIGHT NOW would
  /// materialize (modulo unattributed stats, merged in at compact).
  state_image mirror_;
  ship_sink* shipper_ = nullptr;

  /// Serializes whole compact() bodies (two interleaved compactions
  /// would race on the snapshot tmp file and the old-log removal).
  std::mutex compact_mu_;

  /// Borrowed view of the live hub, for the stats merge. Set by open();
  /// fleet_state's member order guarantees it outlives this store.
  const fleet::verifier_hub* hub_ = nullptr;
};

}  // namespace dialed::store

#endif  // DIALED_STORE_FLEET_STORE_H
