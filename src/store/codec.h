// Binary codec primitives for the durable fleet store: a little-endian,
// length-prefixed writer/reader pair, a CRC-32 (the file-integrity guard —
// the wire's CRC-16 is sized for radio frames, state files get the full
// 32 bits), and the canonical serialization of an instr::linked_program.
//
// Encoding rules (matching the firmware fingerprint hasher, so the two
// stay cross-checkable): every multi-byte scalar is little-endian; every
// string/byte-run is u32-length-prefixed; containers are u32-count-
// prefixed with elements in iteration order. The reader is fully
// bounds-checked: any read past the end of the buffer throws
// store_error(truncated_record) instead of returning garbage — corrupt
// state must fail closed, never load partially.
#ifndef DIALED_STORE_CODEC_H
#define DIALED_STORE_CODEC_H

#include <span>
#include <string>

#include "common/bytes.h"
#include "common/store_error.h"
#include "instr/oplink.h"

namespace dialed::store {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) — guards both
/// the snapshot file and every WAL record payload.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Append-only little-endian serializer over a caller-visible byte_vec.
class writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void bytes(std::span<const std::uint8_t> b);
  void str(const std::string& s);
  /// Fixed-size run, NO length prefix (e.g. 16-byte nonces, 32-byte ids).
  void raw(std::span<const std::uint8_t> b);

  const byte_vec& data() const { return out_; }
  byte_vec take() { return std::move(out_); }

 private:
  byte_vec out_;
};

/// Bounds-checked deserializer over a borrowed span. `context` names the
/// file/record being decoded so a truncation error is diagnosable.
class reader {
 public:
  explicit reader(std::span<const std::uint8_t> data,
                  std::string context = "record")
      : data_(data), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  bool boolean();
  byte_vec bytes();
  std::string str();
  /// Read exactly `n` bytes (fixed-size runs).
  std::span<const std::uint8_t> raw(std::size_t n);
  /// A container count: like u32, but additionally checked against the
  /// bytes remaining (each element needs >= `min_element_bytes`), so a
  /// corrupt count fails as truncated_record instead of driving a
  /// multi-gigabyte reserve.
  std::uint32_t count(std::size_t min_element_bytes = 1);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Serialize a complete linked_program — image segments, symbol table,
/// listing, layout scalars, compile_result metadata and link options —
/// such that read_program(write_program(p)) round-trips byte-identically
/// and in particular re-fingerprints to the same firmware content id.
void write_program(writer& w, const instr::linked_program& prog);

/// Inverse of write_program. Throws store_error on truncation or
/// undecodable enum values.
instr::linked_program read_program(reader& r);

}  // namespace dialed::store

#endif  // DIALED_STORE_CODEC_H
