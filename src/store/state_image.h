// The fleet's durable state as plain data: the struct the snapshot
// parser and the WAL replay both apply into, extracted from
// fleet_store.cpp so three consumers share one codec —
//
//   * fleet_store::open()   replays snapshot + WAL chain into an image,
//                           then materializes live objects from it;
//   * fleet_store's MIRROR  a live image kept record-for-record in sync
//                           with the WAL, so compact() can serialize a
//                           point-in-time snapshot WITHOUT quiescing the
//                           hub (the mirror equals replay(log) by
//                           construction);
//   * store::wal_follower   a warm standby applying shipped records into
//                           its own image, validating each one exactly
//                           like a restart would.
//
// apply_record is the single source of truth for record semantics: every
// validation a restart performs (unknown firmware, double provision,
// retire of a never-outstanding nonce, trailing bytes) happens here, so
// followers and mirrors fail closed on the same inputs a reopen would.
//
// Firmware images are kept as their SERIALIZED blobs, not parsed
// programs: the image is a persistence artifact, and blobs make
// serialize_snapshot allocation-free per firmware while parse validation
// still runs at apply/parse time (and the content-id fingerprint check at
// materialize time, where the artifact is actually built).
#ifndef DIALED_STORE_STATE_IMAGE_H
#define DIALED_STORE_STATE_IMAGE_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/store_error.h"
#include "fleet/hub_like.h"
#include "fleet/persist.h"
#include "verifier/firmware_artifact.h"

namespace dialed::store {

// ---------------------------------------------------------------------------
// On-disk constants
// ---------------------------------------------------------------------------

inline constexpr std::array<std::uint8_t, 4> snapshot_magic = {'D', 'L',
                                                               'F', 'S'};
/// v1: PR 4's original format. v2 (wire v2.1) appends a per-device delta
/// baseline to each hub-state row and grows the proto_error histogram by
/// the baseline_mismatch bucket. v1 snapshots still load (no baselines,
/// the new bucket zero); this build always WRITES v2.
inline constexpr std::uint32_t snapshot_version_v1 = 1;
inline constexpr std::uint32_t snapshot_version = 2;
/// proto_error_count at the time v1 snapshots were written — their
/// histogram has exactly this many buckets.
inline constexpr std::uint32_t v1_error_buckets = 12;

/// WAL record types (first payload byte).
enum class rec : std::uint8_t {
  firmware = 1,   ///< content id + full linked_program image
  provision = 2,  ///< device id, key, firmware content id
  challenge = 3,  ///< device id, seq, nonce, issue tick
  retire = 4,     ///< device id, nonce, fate
  verdict = 5,    ///< device id, proto_error byte, accepted flag
  tick = 6,       ///< new clock value
  baseline = 7,   ///< device id, seq, accepted round's full OR bytes
};

// ---------------------------------------------------------------------------
// File helpers (shared by fleet_store and wal_follower)
// ---------------------------------------------------------------------------

/// Whole-file read; nullopt when the file does not exist, io_error on a
/// failed read of an existing file.
std::optional<byte_vec> read_file(const std::filesystem::path& p);

/// tmp + fsync + rename, so a crash mid-write never leaves a half
/// snapshot under the real name.
void write_file_atomic(const std::filesystem::path& p,
                       std::span<const std::uint8_t> b);

// ---------------------------------------------------------------------------
// The state image
// ---------------------------------------------------------------------------

struct image_device {
  byte_vec key;
  verifier::firmware_id fw{};
};

struct state_image {
  byte_vec master_key;
  fleet::device_id next_id = 1;
  std::uint64_t now = 0;
  std::uint64_t wal_generation = 0;
  fleet::hub_stats stats;  ///< hub-level counters (per_device unused)
  /// Serialized linked_program blobs, keyed by content id. Parse-checked
  /// on the way in; fingerprint-checked when materialized into a catalog.
  std::map<verifier::firmware_id, byte_vec> firmwares;
  std::map<fleet::device_id, image_device> devices;
  std::map<fleet::device_id, fleet::device_restore> states;
};

/// Apply one WAL record payload. Throws store_error(bad_record /
/// unknown_firmware / truncated_record) on anything a replay would
/// refuse; on throw the image may hold the record's partial effects and
/// must be discarded (fleet_store poisons its writer; a follower goes
/// into a desynced error state).
/// `retired_memory` bounds each device's retired-nonce ring (0 = keep
/// all), matching hub_config.retired_memory so replayed state equals
/// live state.
void apply_record(state_image& img, std::span<const std::uint8_t> payload,
                  std::size_t record_index, std::size_t retired_memory);

/// Parse + CRC-check a snapshot file image. Throws typed store_error on
/// any corruption (fail closed).
state_image parse_snapshot(std::span<const std::uint8_t> data,
                           const std::string& path);

/// Serialize the image as a version-current snapshot naming WAL
/// generation `generation` (the caller's fence — compact() passes the
/// NEXT generation before rolling the log). Inverse of parse_snapshot.
byte_vec serialize_snapshot(const state_image& img,
                            std::uint64_t generation);

/// Elementwise max-merge of the persisted hub-level scalars from `live`
/// into `img.stats`. The hub deliberately does not journal verdicts it
/// cannot attribute to device state (an id-spraying attacker must not
/// grow the log), so a mirror's histogram can run behind the live
/// counters; compact() merges before serializing so snapshots keep the
/// old "counters survive a clean compact" property. Max (not overwrite):
/// both sides only ever grow, and max is safe regardless of which side
/// saw a given event first.
void merge_live_stats(state_image& img, const fleet::hub_stats& live);

}  // namespace dialed::store

#endif  // DIALED_STORE_STATE_IMAGE_H
