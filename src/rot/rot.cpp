#include "rot/rot.h"

namespace dialed::rot {

root_of_trust::root_of_trust(emu::machine& m) {
  apex_ = std::make_unique<apex_monitor>(m.map());
  m.get_bus().add_device(apex_.get());
  m.get_bus().add_watcher(apex_.get());
  vrased_ = std::make_unique<vrased_rot>(m, *apex_);
  vrased_->install();
}

}  // namespace dialed::rot
