// The exact byte serialization covered by the attestation MAC. Shared
// between the device-side SW-Att (src/rot/vrased) and the verifier, so both
// compute the MAC over identical inputs:
//
//   KDF:  k' = HMAC-SHA256(K, chal)
//   MAC   = HMAC-SHA256(k', er_min‖er_max‖or_min‖or_max‖exec‖ER‖OR)
//
// with bounds little-endian, `exec` one byte, ER/OR raw memory snapshots.
#ifndef DIALED_ROT_ATTEST_H
#define DIALED_ROT_ATTEST_H

#include <cstdint>
#include <span>

#include "crypto/hmac.h"

namespace dialed::rot {

struct attest_input {
  std::uint16_t er_min = 0;
  std::uint16_t er_max = 0;
  std::uint16_t or_min = 0;
  std::uint16_t or_max = 0;
  bool exec = false;
  std::span<const std::uint8_t> challenge;  ///< 16 bytes
  std::span<const std::uint8_t> er_bytes;   ///< [er_min, er_max] inclusive
  std::span<const std::uint8_t> or_bytes;   ///< [or_min, or_max+1] inclusive
};

/// Compute the attestation MAC with the device master key `key`.
crypto::hmac_sha256::mac compute_attestation_mac(
    std::span<const std::uint8_t> key, const attest_input& in);

}  // namespace dialed::rot

#endif  // DIALED_ROT_ATTEST_H
