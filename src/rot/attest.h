// The exact byte serialization covered by the attestation MAC. Shared
// between the device-side SW-Att (src/rot/vrased) and the verifier, so both
// compute the MAC over identical inputs:
//
//   KDF:  k' = HMAC-SHA256(K, chal)
//   MAC   = HMAC-SHA256(k', er_min‖er_max‖or_min‖or_max‖exec‖ER‖OR)
//
// with bounds little-endian, `exec` one byte, ER/OR raw memory snapshots.
//
// The MAC definition never changes; the overloads below are verifier-side
// fast paths over the same bytes. Note the KDF key k' is challenge-derived,
// so no midstate over the MAC'd message itself can be cached across
// reports — what CAN be cached is (a) the ipad/opad key schedule of K
// (hmac_keystate, per device) and (b) the fixed header‖ER prefix of the
// message as one contiguous buffer (per firmware), which the hash then
// absorbs in a single unbroken SIMD run.
#ifndef DIALED_ROT_ATTEST_H
#define DIALED_ROT_ATTEST_H

#include <array>
#include <cstdint>
#include <span>

#include "crypto/hmac.h"

namespace dialed::rot {

struct attest_input {
  std::uint16_t er_min = 0;
  std::uint16_t er_max = 0;
  std::uint16_t or_min = 0;
  std::uint16_t or_max = 0;
  bool exec = false;
  std::span<const std::uint8_t> challenge;  ///< 16 bytes
  std::span<const std::uint8_t> er_bytes;   ///< [er_min, er_max] inclusive
  std::span<const std::uint8_t> or_bytes;   ///< [or_min, or_max+1] inclusive
};

/// The 9-byte fixed prefix of the MAC'd message (bounds little-endian +
/// exec flag). Exposed so the verifier can precompute header‖ER once per
/// firmware artifact.
std::array<std::uint8_t, 9> attest_mac_header(std::uint16_t er_min,
                                              std::uint16_t er_max,
                                              std::uint16_t or_min,
                                              std::uint16_t or_max,
                                              bool exec);

/// Compute the attestation MAC with the device master key `key`.
crypto::hmac_sha256::mac compute_attestation_mac(
    std::span<const std::uint8_t> key, const attest_input& in);

/// Same MAC from a cached key schedule for K (skips the per-report key
/// compressions in both HMAC invocations' KDF step).
crypto::hmac_sha256::mac compute_attestation_mac(
    const crypto::hmac_keystate& key_state, const attest_input& in);

/// Verifier hot path: `header_and_er` must be
/// attest_mac_header(...) ‖ ER — the precomputed contiguous prefix.
/// Byte-identical to the attest_input overloads.
crypto::hmac_sha256::mac compute_attestation_mac(
    const crypto::hmac_keystate& key_state,
    std::span<const std::uint8_t> challenge,
    std::span<const std::uint8_t> header_and_er,
    std::span<const std::uint8_t> or_bytes);

/// The same hot path when the caller has already run the KDF for this
/// challenge (`derived_key_state` = schedule of k') — lets the verifier
/// derive k' once and MAC both the EXEC=1 and the diagnostic EXEC=0
/// message against it.
crypto::hmac_sha256::mac compute_attestation_mac_derived(
    const crypto::hmac_keystate& derived_key_state,
    std::span<const std::uint8_t> header_and_er,
    std::span<const std::uint8_t> or_bytes);

}  // namespace dialed::rot

#endif  // DIALED_ROT_ATTEST_H
