#include "rot/vrased.h"

#include "common/error.h"
#include "rot/apex.h"
#include "rot/attest.h"

namespace dialed::rot {

std::string to_string(vrased_violation v) {
  switch (v) {
    case vrased_violation::key_read_outside_swatt:
      return "key-read-outside-swatt";
    case vrased_violation::key_write: return "key-write";
    case vrased_violation::srom_mid_entry: return "srom-mid-entry";
  }
  return "?";
}

vrased_rot::vrased_rot(emu::machine& m, apex_monitor& apex)
    : machine_(m), apex_(apex), map_(m.map()) {
  key_.assign(map_.key_size, 0);
}

void vrased_rot::install() {
  machine_.get_bus().add_device(this);
  machine_.get_bus().add_watcher(this);
  machine_.add_rom_handler(map_.srom_start, [this] { run_swatt(); });
}

void vrased_rot::provision_key(std::span<const std::uint8_t> key) {
  if (key.size() != map_.key_size) {
    throw error("rot: key must be exactly " + std::to_string(map_.key_size) +
                " bytes");
  }
  key_.assign(key.begin(), key.end());
}

std::uint8_t vrased_rot::read8(std::uint16_t addr) {
  if (!swatt_active_) {
    violations_.push_back(
        {vrased_violation::key_read_outside_swatt, addr});
    return 0;  // the hardware gates the key bus to zero
  }
  return key_[addr - map_.key_base];
}

void vrased_rot::write8(std::uint16_t addr, std::uint8_t) {
  violations_.push_back({vrased_violation::key_write, addr});
  // Key memory is write-protected after provisioning; the write is dropped.
}

void vrased_rot::on_exec(std::uint16_t pc, const isa::instruction&) {
  if (map_.in_srom(pc) && pc != map_.srom_start) {
    // VRASED resets the MCU when SW-Att is entered anywhere but its first
    // instruction; we model the reset as a forced fault halt.
    violations_.push_back({vrased_violation::srom_mid_entry, pc});
    machine_.force_halt(emu::HALT_FAULT);
  }
}

void vrased_rot::run_swatt() {
  swatt_active_ = true;
  ++swatt_runs_;

  auto& bus = machine_.get_bus();
  const std::uint16_t er_min = apex_.er_min();
  const std::uint16_t er_max = apex_.er_max();
  const std::uint16_t or_min = apex_.or_min();
  const std::uint16_t or_max = apex_.or_max();

  // Snapshot the attested regions exactly as SW-Att would read them. ER
  // covers [er_min, er_max+1]: er_max is the address of the final (one
  // word) instruction, so the range includes both of its bytes. The
  // 0xffff clamps keep the uint16 casts from wrapping a top-of-memory
  // bound's tail read to 0x0000 — the hardware would just stop at the
  // last byte of the address space.
  byte_vec er_bytes;
  for (std::uint32_t a = er_min; a <= static_cast<std::uint32_t>(er_max) +
                                          1 &&
                                 a <= 0xffffu && er_min != 0;
       ++a) {
    er_bytes.push_back(bus.peek8(static_cast<std::uint16_t>(a)));
  }
  byte_vec or_bytes;
  for (std::uint32_t a = or_min; a <= static_cast<std::uint32_t>(or_max) +
                                          1 &&
                                 a <= 0xffffu && or_min != 0;
       ++a) {
    or_bytes.push_back(bus.peek8(static_cast<std::uint16_t>(a)));
  }
  const auto chal = apex_.challenge();

  attest_input in;
  in.er_min = er_min;
  in.er_max = er_max;
  in.or_min = or_min;
  in.or_max = or_max;
  in.exec = apex_.exec_flag();
  in.challenge = chal;
  in.er_bytes = er_bytes;
  in.or_bytes = or_bytes;
  const auto mac = compute_attestation_mac(key_, in);

  for (std::size_t i = 0; i < mac.size() && i < map_.mac_size; ++i) {
    bus.poke8(static_cast<std::uint16_t>(map_.mac_base + i), mac[i]);
  }

  // Charge the modelled runtime of the ROM routine.
  const std::uint64_t cost =
      cost_.base_cycles +
      cost_.cycles_per_byte * (er_bytes.size() + or_bytes.size());
  machine_.get_cpu().add_cycles(cost);
  last_swatt_cycles_ = cost;

  // Emulate the final `ret` of the ROM routine.
  auto& regs = machine_.get_cpu().regs();
  const std::uint16_t ret_addr = bus.peek16(regs[isa::REG_SP]);
  regs[isa::REG_SP] = static_cast<std::uint16_t>(regs[isa::REG_SP] + 2);
  regs[isa::REG_PC] = ret_addr;

  swatt_active_ = false;
}

}  // namespace dialed::rot
