// APEX Proof-of-Execution monitor (Nunes et al., USENIX Security'20),
// reproduced as a cycle-level hardware FSM over the emulator's bus signals.
//
// The monitor owns the METADATA register block (ER/OR bounds, challenge and
// the software-read-only EXEC flag) and maintains EXEC according to APEX's
// properties: EXEC=1 only if the code in ER=[er_min, er_max] ran from its
// first to its last instruction with no PC escape, no interrupt, no DMA
// activity, no write into ER, and OR was written only by that execution.
// Any violation — before, during or after the run — clears EXEC.
#ifndef DIALED_ROT_APEX_H
#define DIALED_ROT_APEX_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "emu/bus.h"
#include "emu/memmap.h"

namespace dialed::rot {

enum class apex_violation : std::uint8_t {
  pc_escape,         ///< PC left ER before reaching er_max
  irq_in_exec,       ///< interrupt serviced while ER was executing
  dma_in_exec,       ///< DMA transfer while ER was executing
  code_write,        ///< write into ER (any time)
  or_write_outside,  ///< OR written while ER was not executing
  meta_write,        ///< ER/OR bounds modified (any time)
};

std::string to_string(apex_violation v);

class apex_monitor final : public emu::watcher, public emu::mmio_device {
 public:
  explicit apex_monitor(const emu::memory_map& map) : map_(map) {}

  enum class state : std::uint8_t { idle, running, complete };

  // --- mmio_device over the METADATA block -------------------------------
  bool owns(std::uint16_t addr) const override {
    return addr >= map_.meta_base && addr < map_.meta_base + 32;
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t addr, std::uint8_t value) override;

  // --- watcher (the hardware signals) -------------------------------------
  void on_exec(std::uint16_t pc, const isa::instruction& ins) override;
  void on_access(const emu::bus_access& a) override;
  void on_irq(std::uint16_t vector) override;
  void on_reset() override;

  // --- monitored state -----------------------------------------------------
  state fsm() const { return state_; }
  bool exec_flag() const { return exec_; }
  std::uint16_t er_min() const { return er_min_; }
  std::uint16_t er_max() const { return er_max_; }
  std::uint16_t or_min() const { return or_min_; }
  std::uint16_t or_max() const { return or_max_; }
  std::array<std::uint8_t, emu::META_CHAL_SIZE> challenge() const {
    return chal_;
  }

  struct violation_record {
    apex_violation kind;
    std::uint16_t addr;
  };
  const std::vector<violation_record>& violations() const {
    return violations_;
  }

 private:
  bool in_er(std::uint16_t a) const { return a >= er_min_ && a <= er_max_; }
  bool in_or(std::uint16_t a) const {
    // or_max is the address of the top log slot (a word), hence +1 — in
    // 32-bit arithmetic so an OR abutting 0xffff does not wrap to empty.
    return a >= or_min_ && a <= static_cast<std::uint32_t>(or_max_) + 1;
  }
  void violate(apex_violation v, std::uint16_t addr);

  emu::memory_map map_;
  state state_ = state::idle;
  bool exec_ = false;
  std::uint16_t er_min_ = 0;
  std::uint16_t er_max_ = 0;
  std::uint16_t or_min_ = 0;
  std::uint16_t or_max_ = 0;
  std::array<std::uint8_t, emu::META_CHAL_SIZE> chal_{};
  std::vector<violation_record> violations_;
};

}  // namespace dialed::rot

#endif  // DIALED_ROT_APEX_H
