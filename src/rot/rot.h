// Convenience wrapper wiring the full root of trust (APEX + VRASED) onto an
// emulated machine — the hardware platform the paper assumes (§II-C).
#ifndef DIALED_ROT_ROT_H
#define DIALED_ROT_ROT_H

#include <memory>

#include "emu/machine.h"
#include "rot/apex.h"
#include "rot/vrased.h"

namespace dialed::rot {

class root_of_trust {
 public:
  /// Installs the APEX METADATA device + FSM and the VRASED key device,
  /// monitor and SW-Att ROM handler on `m`. Non-owning reference to `m`.
  explicit root_of_trust(emu::machine& m);

  apex_monitor& apex() { return *apex_; }
  const apex_monitor& apex() const { return *apex_; }
  vrased_rot& vrased() { return *vrased_; }
  const vrased_rot& vrased() const { return *vrased_; }

 private:
  std::unique_ptr<apex_monitor> apex_;
  std::unique_ptr<vrased_rot> vrased_;
};

}  // namespace dialed::rot

#endif  // DIALED_ROT_ROT_H
