#include "rot/apex.h"

namespace dialed::rot {

std::string to_string(apex_violation v) {
  switch (v) {
    case apex_violation::pc_escape: return "pc-escape";
    case apex_violation::irq_in_exec: return "irq-in-exec";
    case apex_violation::dma_in_exec: return "dma-in-exec";
    case apex_violation::code_write: return "code-write";
    case apex_violation::or_write_outside: return "or-write-outside-exec";
    case apex_violation::meta_write: return "meta-write";
  }
  return "?";
}

std::uint8_t apex_monitor::peek8(std::uint16_t addr) const {
  const std::uint16_t off = addr - map_.meta_base;
  auto word_byte = [&](std::uint16_t v) {
    return static_cast<std::uint8_t>((off % 2) ? (v >> 8) : (v & 0xff));
  };
  switch (off & ~1u) {
    case emu::META_ER_MIN: return word_byte(er_min_);
    case emu::META_ER_MAX: return word_byte(er_max_);
    case emu::META_OR_MIN: return word_byte(or_min_);
    case emu::META_OR_MAX: return word_byte(or_max_);
    case emu::META_EXEC: return word_byte(exec_ ? 1 : 0);
    default:
      if (off >= emu::META_CHAL &&
          off < emu::META_CHAL + emu::META_CHAL_SIZE) {
        return chal_[off - emu::META_CHAL];
      }
      return 0;
  }
}

void apex_monitor::write8(std::uint16_t addr, std::uint8_t value) {
  const std::uint16_t off = addr - map_.meta_base;
  auto set_word_byte = [&](std::uint16_t& v) {
    if (off % 2) {
      v = static_cast<std::uint16_t>((v & 0x00ff) | (value << 8));
    } else {
      v = static_cast<std::uint16_t>((v & 0xff00) | value);
    }
  };
  if ((off & ~1u) == emu::META_EXEC) {
    return;  // EXEC is read-only to software; silently ignored as in APEX
  }
  if (off >= emu::META_CHAL && off < emu::META_CHAL + emu::META_CHAL_SIZE) {
    // The challenge may be (re)written freely: it is bound by the MAC at
    // attestation time, so tampering only makes verification fail.
    chal_[off - emu::META_CHAL] = value;
    return;
  }
  switch (off & ~1u) {
    case emu::META_ER_MIN: set_word_byte(er_min_); break;
    case emu::META_ER_MAX: set_word_byte(er_max_); break;
    case emu::META_OR_MIN: set_word_byte(or_min_); break;
    case emu::META_OR_MAX: set_word_byte(or_max_); break;
    default: return;
  }
  // Changing the attested bounds invalidates any proof in flight or already
  // produced; reconfiguring while idle is the normal setup path.
  if (state_ != state::idle) {
    violate(apex_violation::meta_write, addr);
  }
  exec_ = false;
}

void apex_monitor::violate(apex_violation v, std::uint16_t addr) {
  violations_.push_back({v, addr});
  exec_ = false;
  if (state_ == state::running) state_ = state::idle;
  if (state_ == state::complete) state_ = state::idle;
}

void apex_monitor::on_exec(std::uint16_t pc, const isa::instruction&) {
  if (pc == er_min_ && er_min_ != 0) {
    // Legal entry: a fresh execution begins (EXEC only set at completion).
    state_ = state::running;
    exec_ = false;
  } else if (state_ == state::running && !in_er(pc)) {
    violate(apex_violation::pc_escape, pc);
    return;
  }
  if (state_ == state::running && pc == er_max_) {
    // The final instruction is retiring: the run was clean end-to-end.
    state_ = state::complete;
    exec_ = true;
  }
}

void apex_monitor::on_access(const emu::bus_access& a) {
  if (!a.write) return;
  if (state_ == state::running && a.dma) {
    violate(apex_violation::dma_in_exec, a.addr);
    return;
  }
  if (in_er(a.addr) && er_min_ != 0) {
    // Program-memory modification. While idle it merely means the *next*
    // attestation hashes different code (caught by the MAC); during or
    // after a run it defeats the proof.
    if (state_ != state::idle) {
      violate(apex_violation::code_write, a.addr);
    }
    exec_ = false;
    return;
  }
  if (in_or(a.addr) && or_min_ != 0) {
    const bool by_execution = state_ == state::running && !a.dma;
    if (by_execution) return;
    // OR writes while a completed proof exists tamper with the attested
    // output; while idle (e.g. crt0 zeroing OR before the run) they only
    // keep EXEC at 0.
    if (state_ == state::complete || state_ == state::running) {
      violate(apex_violation::or_write_outside, a.addr);
    }
    exec_ = false;
  }
}

void apex_monitor::on_irq(std::uint16_t vector) {
  if (state_ == state::running) {
    violate(apex_violation::irq_in_exec, vector);
  }
}

void apex_monitor::on_reset() {
  state_ = state::idle;
  exec_ = false;
}

}  // namespace dialed::rot
