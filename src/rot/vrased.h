// VRASED root of trust (De Oliveira Nunes et al., USENIX Security'19),
// reproduced as (a) a key-isolation device over the key memory, (b) an
// access monitor for the secure ROM, and (c) the SW-Att routine itself.
//
// SW-Att is modelled natively (see DESIGN.md §1): entering the secure ROM
// at its single legal entry point runs the HMAC computation in host code,
// charges a calibrated cycle cost, writes the MAC to the MAC mailbox and
// returns. VRASED's hardware-verified properties are enforced by the
// monitor: the key is readable only while SW-Att runs, SW-Att cannot be
// entered mid-routine, and it is atomic (no interrupts — native execution
// is atomic by construction, matching the property rather than the gate).
#ifndef DIALED_ROT_VRASED_H
#define DIALED_ROT_VRASED_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "emu/bus.h"
#include "emu/machine.h"
#include "emu/memmap.h"

namespace dialed::rot {

class apex_monitor;

enum class vrased_violation : std::uint8_t {
  key_read_outside_swatt,  ///< software tried to read key memory
  key_write,               ///< software tried to overwrite the key
  srom_mid_entry,          ///< PC entered the secure ROM at a non-entry point
};

std::string to_string(vrased_violation v);

/// Cycle-cost model for SW-Att on a real MSP430. Calibrated against the
/// VRASED paper's reported runtime (HMAC-SHA256 of device memory at a few
/// hundred cycles/byte on a 16-bit MCU); exact constants are documented as
/// model parameters, since Fig. 6(b) measures only the attested op itself.
struct swatt_cost_model {
  std::uint64_t base_cycles = 10'000;
  std::uint64_t cycles_per_byte = 430;
};

class vrased_rot final : public emu::watcher, public emu::mmio_device {
 public:
  vrased_rot(emu::machine& m, apex_monitor& apex);

  /// Install the ROM handler, key device and monitor on the machine.
  void install();

  /// Provision the device master key (factory step; also known to Vrf).
  void provision_key(std::span<const std::uint8_t> key);
  const byte_vec& key() const { return key_; }

  bool swatt_active() const { return swatt_active_; }
  std::uint64_t swatt_runs() const { return swatt_runs_; }
  std::uint64_t last_swatt_cycles() const { return last_swatt_cycles_; }

  const swatt_cost_model& cost_model() const { return cost_; }
  void set_cost_model(const swatt_cost_model& c) { cost_ = c; }

  // --- mmio_device over key memory ---------------------------------------
  bool owns(std::uint16_t addr) const override {
    return map_.in_key(addr);
  }
  std::uint8_t read8(std::uint16_t addr) override;
  /// The gated view read8 returns, without recording a violation: a peek
  /// is the host observing the bus, not software issuing a read.
  std::uint8_t peek8(std::uint16_t addr) const override {
    return swatt_active_ ? key_[addr - map_.key_base] : 0;
  }
  void write8(std::uint16_t addr, std::uint8_t value) override;

  // --- watcher -------------------------------------------------------------
  void on_exec(std::uint16_t pc, const isa::instruction& ins) override;

  struct violation_record {
    vrased_violation kind;
    std::uint16_t addr;
  };
  const std::vector<violation_record>& violations() const {
    return violations_;
  }

 private:
  void run_swatt();

  emu::machine& machine_;
  apex_monitor& apex_;
  emu::memory_map map_;
  byte_vec key_;
  swatt_cost_model cost_;
  bool swatt_active_ = false;
  std::uint64_t swatt_runs_ = 0;
  std::uint64_t last_swatt_cycles_ = 0;
  std::vector<violation_record> violations_;
};

}  // namespace dialed::rot

#endif  // DIALED_ROT_VRASED_H
