#include "rot/attest.h"

#include <array>

namespace dialed::rot {

crypto::hmac_sha256::mac compute_attestation_mac(
    std::span<const std::uint8_t> key, const attest_input& in) {
  // KDF: bind the session challenge into a one-time key (VRASED design).
  const auto derived = crypto::hmac_sha256::compute(key, in.challenge);

  crypto::hmac_sha256 mac(derived);
  std::array<std::uint8_t, 9> header{};
  header[0] = static_cast<std::uint8_t>(in.er_min & 0xff);
  header[1] = static_cast<std::uint8_t>(in.er_min >> 8);
  header[2] = static_cast<std::uint8_t>(in.er_max & 0xff);
  header[3] = static_cast<std::uint8_t>(in.er_max >> 8);
  header[4] = static_cast<std::uint8_t>(in.or_min & 0xff);
  header[5] = static_cast<std::uint8_t>(in.or_min >> 8);
  header[6] = static_cast<std::uint8_t>(in.or_max & 0xff);
  header[7] = static_cast<std::uint8_t>(in.or_max >> 8);
  header[8] = in.exec ? 1 : 0;
  mac.update(header);
  mac.update(in.er_bytes);
  mac.update(in.or_bytes);
  return mac.finish();
}

}  // namespace dialed::rot
