#include "rot/attest.h"

#include <array>

namespace dialed::rot {

std::array<std::uint8_t, 9> attest_mac_header(std::uint16_t er_min,
                                              std::uint16_t er_max,
                                              std::uint16_t or_min,
                                              std::uint16_t or_max,
                                              bool exec) {
  std::array<std::uint8_t, 9> header{};
  header[0] = static_cast<std::uint8_t>(er_min & 0xff);
  header[1] = static_cast<std::uint8_t>(er_min >> 8);
  header[2] = static_cast<std::uint8_t>(er_max & 0xff);
  header[3] = static_cast<std::uint8_t>(er_max >> 8);
  header[4] = static_cast<std::uint8_t>(or_min & 0xff);
  header[5] = static_cast<std::uint8_t>(or_min >> 8);
  header[6] = static_cast<std::uint8_t>(or_max & 0xff);
  header[7] = static_cast<std::uint8_t>(or_max >> 8);
  header[8] = exec ? 1 : 0;
  return header;
}

namespace {

crypto::hmac_sha256::mac mac_with_keystate(
    const crypto::hmac_keystate& key_state, const attest_input& in) {
  // KDF: bind the session challenge into a one-time key (VRASED design).
  const auto derived = crypto::hmac_sha256::compute(key_state, in.challenge);

  crypto::hmac_sha256 mac((std::span<const std::uint8_t>(derived)));
  const auto header = attest_mac_header(in.er_min, in.er_max, in.or_min,
                                        in.or_max, in.exec);
  mac.update(header);
  mac.update(in.er_bytes);
  mac.update(in.or_bytes);
  return mac.finish();
}

}  // namespace

crypto::hmac_sha256::mac compute_attestation_mac(
    std::span<const std::uint8_t> key, const attest_input& in) {
  return mac_with_keystate(crypto::hmac_keystate::derive(key), in);
}

crypto::hmac_sha256::mac compute_attestation_mac(
    const crypto::hmac_keystate& key_state, const attest_input& in) {
  return mac_with_keystate(key_state, in);
}

crypto::hmac_sha256::mac compute_attestation_mac(
    const crypto::hmac_keystate& key_state,
    std::span<const std::uint8_t> challenge,
    std::span<const std::uint8_t> header_and_er,
    std::span<const std::uint8_t> or_bytes) {
  const auto derived = crypto::hmac_sha256::compute(key_state, challenge);
  return compute_attestation_mac_derived(
      crypto::hmac_keystate::derive(derived), header_and_er, or_bytes);
}

crypto::hmac_sha256::mac compute_attestation_mac_derived(
    const crypto::hmac_keystate& derived_key_state,
    std::span<const std::uint8_t> header_and_er,
    std::span<const std::uint8_t> or_bytes) {
  crypto::hmac_sha256 mac(derived_key_state);
  mac.update(header_and_er);
  mac.update(or_bytes);
  return mac.finish();
}

}  // namespace dialed::rot
