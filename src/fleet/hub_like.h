// The hub surface, extracted as an interface: everything the transport
// layer (net/server, net/batcher), the tools, and the stats renderers
// need from "a verifier hub" — issuing challenges, verifying submitted
// frames, the tick clock, and counters. Two implementations:
//
//   * fleet::verifier_hub     one hub, one shard set, one store;
//   * fleet::partition_router N hubs behind a consistent-hash ring
//                             (src/fleet/partition.h), each typically
//                             backed by its own fleet_store.
//
// Callers written against hub_like run unmodified on either — that is
// the point: `dialed-serve --partitions N` is the same server binary
// speaking to the same batcher, just handed a router instead of a hub.
//
// The value types (challenge_grant, hub_stats, attest_result) live here
// rather than in verifier_hub.h so the router does not need the concrete
// hub's header to describe its results.
//
// Threading: implementations must keep verifier_hub's contract — every
// method here is safe to call concurrently from any number of threads.
#ifndef DIALED_FLEET_HUB_LIKE_H
#define DIALED_FLEET_HUB_LIKE_H

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "fleet/persist.h"
#include "obs/obs.h"
#include "proto/errors.h"
#include "verifier/verifier.h"

namespace dialed::fleet {

using proto::proto_error;

/// The issuance half of the protocol: what the hub hands the transport to
/// forward to device `device_id`.
struct challenge_grant {
  proto_error error = proto_error::none;  ///< unknown_device
  /// challenge_superseded when issuing this grant evicted the device's
  /// oldest outstanding challenge (the explicit signal the v1 session
  /// swallowed); the grant itself is still valid.
  proto_error note = proto_error::none;
  device_id device = 0;
  std::uint32_t seq = 0;
  std::array<std::uint8_t, 16> nonce{};
  bool ok() const { return error == proto_error::none; }
};

/// Monotonic per-hub counters (the ROADMAP "hub metrics" item): a
/// consistent-enough snapshot assembled from relaxed atomics — counts
/// never go backwards, but a snapshot taken while traffic is in flight
/// may be mid-update across fields. The per_device breakdown is gathered
/// under the shard locks (briefly, one shard at a time).
struct hub_stats {
  std::uint64_t challenges_issued = 0;
  std::uint64_t challenges_expired = 0;    ///< retired past their TTL
  std::uint64_t challenges_superseded = 0; ///< evicted by capacity
  /// Reports that passed protocol checks AND the full §III verdict.
  std::uint64_t reports_accepted = 0;
  /// Reports that reached verification but failed the §III verdict.
  std::uint64_t reports_rejected_verdict = 0;
  /// Histogram of submissions that never reached verification, indexed by
  /// proto_error (transport damage, unknown device, nonce bookkeeping).
  /// Index 0 (proto_error::none) is always 0.
  std::array<std::uint64_t, proto::proto_error_count> rejected_by_error{};
  /// verify_batch instrumentation — the gauges the service front-end's
  /// adaptive batching is observed (and tuned) through. Process-local:
  /// batching behavior since THIS boot is what an operator wants, so
  /// restore() deliberately leaves them at zero.
  std::uint64_t verify_batches = 0;       ///< verify_batch calls completed
  std::uint64_t verify_batch_frames = 0;  ///< frames fanned out, total
  std::uint64_t last_batch_frames = 0;    ///< size of the newest batch
  std::uint64_t inflight_batches = 0;     ///< gauge: calls running NOW
  /// Replay memoization (hub_config::replay_memo_entries). Process-local
  /// like the batch gauges: restore() leaves them at zero, and a hub with
  /// the memo disabled reports all-zero.
  std::uint64_t replay_memo_hits = 0;
  std::uint64_t replay_memo_misses = 0;
  std::uint64_t replay_memo_entries = 0;  ///< gauge: cached results NOW
  /// Per-device accept/reject/replay breakdown. Only devices that have
  /// hub state appear; submissions for unknown device ids are deliberately
  /// NOT attributed (an attacker spraying bogus ids must not grow this
  /// map). Persisted through the fleet store snapshot.
  std::map<device_id, device_counters> per_device;

  /// Mean verify_batch size since boot (0 before the first batch).
  double mean_batch_frames() const {
    return verify_batches == 0 ? 0.0
                               : static_cast<double>(verify_batch_frames) /
                                     static_cast<double>(verify_batches);
  }

  std::uint64_t reports_rejected_protocol() const {
    std::uint64_t n = 0;
    for (const auto v : rejected_by_error) n += v;
    return n;
  }
  std::uint64_t reports_submitted() const {
    return reports_accepted + reports_rejected_verdict +
           reports_rejected_protocol();
  }
};

/// The rich result of one submitted report: a typed protocol error (if the
/// report never reached verification) plus the full §III verdict.
struct attest_result {
  proto_error error = proto_error::none;
  device_id device = 0;
  std::uint32_t seq = 0;
  verifier::verdict verdict;  ///< meaningful only when error == none
  bool accepted() const {
    return error == proto_error::none && verdict.accepted;
  }
};

class hub_like {
 public:
  virtual ~hub_like() = default;

  /// Draw a fresh challenge for a device. Thread-safe.
  virtual challenge_grant challenge(device_id id) = 0;

  /// Decode a wire frame (any supported version) and verify it.
  /// Thread-safe, reentrant.
  virtual attest_result submit(std::span<const std::uint8_t> frame) = 0;

  /// Verify a batch of independent frames in parallel; results come back
  /// in input order regardless of completion order.
  virtual std::vector<attest_result> verify_batch(
      std::span<const byte_vec> frames) = 0;

  /// Advance the monotonic clock by `n` ticks. Thread-safe.
  virtual void tick(std::uint64_t n) = 0;
  void tick() { tick(1); }

  virtual std::uint64_t now() const = 0;

  /// Outstanding (non-expired) challenges for a device.
  virtual std::size_t outstanding(device_id id) const = 0;

  /// Worker threads backing verify_batch (0 = inline/sequential).
  virtual std::size_t batch_workers() const = 0;

  /// Snapshot of the monotonic counters; pass include_per_device = false
  /// for the cheap lock-free hub-level scalars only.
  virtual hub_stats stats(bool include_per_device = true) const = 0;

  /// Per-partition counter snapshots, for labeled /metrics families.
  /// Empty for an unpartitioned hub (the default); a router returns one
  /// entry per partition, in partition-index order.
  virtual std::vector<hub_stats> partition_stats() const { return {}; }

  // ---- pipeline observability (src/obs) -------------------------------

  /// Aggregate per-stage latency histograms across the whole hub.
  /// Implementations that do not instrument return empty histograms.
  virtual obs::pipeline_snapshot pipeline() const { return {}; }

  /// Per-partition stage histograms, partition-index order. Empty for an
  /// unpartitioned hub (mirrors partition_stats()).
  virtual std::vector<obs::pipeline_snapshot> partition_pipelines() const {
    return {};
  }

  /// Bounded flight-recorder dump (slowest + rejected span traces). A
  /// router merges its partitions' dumps with span_trace::partition set.
  virtual obs::trace_dump traces() const { return {}; }
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_HUB_LIKE_H
