// Fleet firmware catalog: content-addressed interning of verifier-side
// firmware artifacts.
//
// At fleet scale, devices outnumber firmware images by orders of
// magnitude (SAFE^d, OAT: the verifier amortizes per-image state across
// many provers). The catalog keys each verifier::firmware_artifact by its
// SHA-256 firmware id, so:
//
//   * provisioning a million devices on the same image builds ONE
//     artifact — the registry/hub hold shared_ptr copies, turning
//     O(devices) verifier memory into O(firmwares);
//   * two independently built but byte/metadata-identical programs intern
//     to the same artifact (content addressing, not pointer identity);
//   * artifacts are immutable, so handing the same shared_ptr to any
//     number of verifying threads is safe by construction.
//
// Thread-safety: intern/find/size/ids may be called concurrently;
// lookups take a reader lock. Interning a new image builds the artifact
// outside any lock (it is expensive), then inserts under the writer lock —
// when two threads race on the same new image, the first insert wins and
// both get the same pointer.
#ifndef DIALED_FLEET_FIRMWARE_CATALOG_H
#define DIALED_FLEET_FIRMWARE_CATALOG_H

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "verifier/firmware_artifact.h"

namespace dialed::fleet {

class firmware_catalog {
 public:
  using artifact_ptr = std::shared_ptr<const verifier::firmware_artifact>;

  /// Intern `prog`: return the existing artifact for its content id, or
  /// build, register and return a new one.
  artifact_ptr intern(instr::linked_program prog);

  /// nullptr when no artifact with that id was interned.
  artifact_ptr find(const verifier::firmware_id& id) const;

  /// Number of distinct firmware images interned.
  std::size_t size() const;

  std::vector<verifier::firmware_id> ids() const;

  /// Approximate total artifact footprint — the fleet verifier's
  /// O(firmwares) memory term.
  std::size_t footprint_bytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<verifier::firmware_id, artifact_ptr> artifacts_;
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_FIRMWARE_CATALOG_H
