#include "fleet/registry.h"

#include <mutex>

#include "common/error.h"
#include "crypto/hmac.h"

namespace dialed::fleet {

device_registry::device_registry(byte_vec master_key)
    : master_(std::move(master_key)) {
  if (master_.empty()) {
    throw error("fleet: master key must not be empty");
  }
}

byte_vec device_registry::derive_key(device_id id) const {
  std::array<std::uint8_t, 4> msg{};
  store_le32(msg, 0, id);
  const auto mac = crypto::hmac_sha256::compute(master_, msg);
  return byte_vec(mac.begin(), mac.end());
}

device_id device_registry::reserve_free_id_locked() {
  while (devices_.count(next_id_) != 0) ++next_id_;
  return next_id_++;
}

device_id device_registry::provision(instr::linked_program prog) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  const device_id id = reserve_free_id_locked();
  device_record rec;
  rec.id = id;
  rec.key = derive_key(id);
  rec.program =
      std::make_shared<const instr::linked_program>(std::move(prog));
  devices_.emplace(id, std::move(rec));
  return id;
}

device_id device_registry::provision(device_id id,
                                     instr::linked_program prog) {
  if (id == 0) {
    throw error("fleet: device id 0 is reserved");
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (devices_.count(id) != 0) {
    throw error("fleet: device id " + std::to_string(id) +
                " already provisioned");
  }
  device_record rec;
  rec.id = id;
  rec.key = derive_key(id);
  rec.program =
      std::make_shared<const instr::linked_program>(std::move(prog));
  devices_.emplace(id, std::move(rec));
  return id;
}

device_id device_registry::enroll(instr::linked_program prog,
                                  byte_vec device_key) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  const device_id id = reserve_free_id_locked();
  device_record rec;
  rec.id = id;
  rec.key = std::move(device_key);
  rec.program =
      std::make_shared<const instr::linked_program>(std::move(prog));
  devices_.emplace(id, std::move(rec));
  return id;
}

const device_record* device_registry::find(device_id id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  const auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : &it->second;
}

std::size_t device_registry::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return devices_.size();
}

std::vector<device_id> device_registry::ids() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<device_id> out;
  out.reserve(devices_.size());
  for (const auto& [id, rec] : devices_) out.push_back(id);
  return out;
}

}  // namespace dialed::fleet
