#include "fleet/registry.h"

#include <mutex>

#include "crypto/hmac.h"

namespace dialed::fleet {

std::string to_string(registry_error_kind k) {
  switch (k) {
    case registry_error_kind::reserved_id: return "reserved_id";
    case registry_error_kind::duplicate_id: return "duplicate_id";
    case registry_error_kind::empty_key: return "empty_key";
    case registry_error_kind::empty_master_key: return "empty_master_key";
  }
  return "unknown";
}

device_registry::device_registry(byte_vec master_key,
                                 std::shared_ptr<firmware_catalog> catalog)
    : master_(std::move(master_key)), catalog_(std::move(catalog)) {
  if (master_.empty()) {
    throw registry_error(registry_error_kind::empty_master_key,
                         "fleet: master key must not be empty");
  }
  if (catalog_ == nullptr) catalog_ = std::make_shared<firmware_catalog>();
}

byte_vec device_registry::derive_key(device_id id) const {
  std::array<std::uint8_t, 4> msg{};
  store_le32(msg, 0, id);
  const auto mac = crypto::hmac_sha256::compute(master_, msg);
  return byte_vec(mac.begin(), mac.end());
}

device_id device_registry::reserve_free_id_locked() {
  while (devices_.count(next_id_) != 0 ||
         reserved_.count(next_id_) != 0) {
    ++next_id_;
  }
  return next_id_++;
}

device_record device_registry::make_record(
    device_id id, byte_vec key, firmware_catalog::artifact_ptr fw) {
  device_record rec;
  rec.id = id;
  rec.key = std::move(key);
  rec.mac_state = crypto::hmac_keystate::derive(rec.key);
  rec.firmware = std::move(fw);
  // Alias into the artifact — record.program shares its control block and
  // costs no copy.
  rec.program = std::shared_ptr<const instr::linked_program>(
      rec.firmware, &rec.firmware->program());
  return rec;
}

device_id device_registry::provision(instr::linked_program prog) {
  // Intern before taking the registry lock: a first-seen image builds its
  // artifact, and that must not stall concurrent find() readers.
  auto fw = catalog_->intern(std::move(prog));
  std::unique_lock<std::shared_mutex> lk(mu_);
  const device_id id = reserve_free_id_locked();
  device_record rec = make_record(id, derive_key(id), std::move(fw));
  // Journal BEFORE inserting (mirroring verifier_hub::retire): if the
  // append throws, the device must not exist in memory either — a live
  // device the WAL never heard of poisons the next recovery.
  if (sink_ != nullptr) sink_->on_provision(rec);
  devices_.emplace(id, std::move(rec));
  return id;
}

device_id device_registry::provision(device_id id,
                                     instr::linked_program prog) {
  if (id == 0) {
    throw registry_error(registry_error_kind::reserved_id,
                         "fleet: device id 0 is reserved");
  }
  // Claim the id BEFORE interning, so a duplicate provisioning — even a
  // racing one — is rejected without polluting the (possibly shared)
  // catalog with an artifact no device references. The intern itself
  // still runs unlocked.
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    if (devices_.count(id) != 0 || !reserved_.insert(id).second) {
      throw registry_error(registry_error_kind::duplicate_id,
                           "fleet: device id " + std::to_string(id) +
                               " already provisioned");
    }
  }
  firmware_catalog::artifact_ptr fw;
  try {
    fw = catalog_->intern(std::move(prog));
  } catch (...) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    reserved_.erase(id);
    throw;
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  reserved_.erase(id);
  device_record rec = make_record(id, derive_key(id), std::move(fw));
  if (sink_ != nullptr) sink_->on_provision(rec);  // journal-then-insert
  devices_.emplace(id, std::move(rec));
  return id;
}

device_id device_registry::enroll(instr::linked_program prog,
                                  byte_vec device_key) {
  if (device_key.empty()) {
    throw registry_error(registry_error_kind::empty_key,
                         "fleet: enroll requires a non-empty device key");
  }
  auto fw = catalog_->intern(std::move(prog));
  std::unique_lock<std::shared_mutex> lk(mu_);
  const device_id id = reserve_free_id_locked();
  device_record rec =
      make_record(id, std::move(device_key), std::move(fw));
  if (sink_ != nullptr) sink_->on_provision(rec);  // journal-then-insert
  devices_.emplace(id, std::move(rec));
  return id;
}

void device_registry::restore_device(device_id id, byte_vec key,
                                     firmware_catalog::artifact_ptr fw) {
  if (id == 0) {
    throw registry_error(registry_error_kind::reserved_id,
                         "fleet: device id 0 is reserved");
  }
  if (key.empty()) {
    throw registry_error(registry_error_kind::empty_key,
                         "fleet: restored device " + std::to_string(id) +
                             " has an empty key");
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (devices_.count(id) != 0) {
    throw registry_error(registry_error_kind::duplicate_id,
                         "fleet: device id " + std::to_string(id) +
                             " restored twice");
  }
  devices_.emplace(id, make_record(id, std::move(key), std::move(fw)));
}

device_id device_registry::next_id() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return next_id_;
}

void device_registry::set_next_id(device_id id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  next_id_ = id;
}

const device_record* device_registry::find(device_id id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  const auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : &it->second;
}

std::size_t device_registry::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return devices_.size();
}

std::vector<device_id> device_registry::ids() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<device_id> out;
  out.reserve(devices_.size());
  for (const auto& [id, rec] : devices_) out.push_back(id);
  return out;
}

}  // namespace dialed::fleet
