// Fleet verifier hub: the many-device generalization of the paper's §III
// one-verifier/one-prover protocol. One hub serves every provisioned
// device, with a per-device challenge table (many concurrently outstanding
// challenges), expiry on a monotonic tick clock, and per-device
// anti-replay bookkeeping.
//
// Protocol (wire v2; v1 layout documented beside it in src/proto/wire.h):
//
//      Vrf hub                                       Prv (device d)
//        |                                                |
//        |  challenge(d) -> grant {nonce, seq}            |
//        |----------- nonce, seq ------------------------>|
//        |                                                | run attested op,
//        |                                                | SW-Att MACs with
//        |                                                | K_dev over nonce
//        |<---------- wire v2 frame ----------------------|
//        |   [magic|ver=2|flags|device_id|seq|bounds|     |
//        |    result|halt|nonce|MAC|or_len|OR|CRC16]      |
//        |  submit(frame) -> attest_result                |
//        |    - frame damaged        -> transport error   |
//        |    - device_id unknown    -> unknown_device    |
//        |    - v2.1 delta names a baseline the hub does  |
//        |      not hold             -> baseline_mismatch |
//        |      (nonce NOT burned: resend as full frame)  |
//        |    - seq != grant seq     -> sequence_mismatch |
//        |    - nonce consumed       -> replayed_report   |
//        |    - nonce evicted       -> challenge_superseded
//        |    - nonce past TTL       -> challenge_expired |
//        |    - nonce never issued   -> stale_nonce       |
//        |    - else: full §III verification -> verdict   |
//
// Wire v2.1 delta frames (report compression)
// -------------------------------------------
// A v2.1 frame carries the OR as a sparse delta against the OR of the
// last report the hub ACCEPTED for that device — the per-device
// `or_baseline` (sequence-stamped hash + bytes, updated only on an
// accepted verdict, journaled through the persist sink so it survives
// restarts). submit() resolves the baseline under the shard lock,
// reconstructs the full OR OUTSIDE it, and then verifies exactly as if a
// full frame had arrived — the MAC covers the reconstructed OR, so a
// delta that reconstructs the wrong bytes is rejected like any forgery.
// A delta naming a baseline the hub does not hold (fresh device, stale
// seq, hash desync, restart that lost state) is answered with the typed
// baseline_mismatch error WITHOUT consuming the frame's nonce: the
// prover falls back to a full frame for the same challenge.
//
// Challenge lifecycle: issued -> (consumed | superseded | expired), with a
// bounded per-device memory of retired nonces so a late report gets the
// precise typed error instead of a generic rejection.
//
// Firmware sharing (the catalog refactor)
// ---------------------------------------
// The hub holds NO per-device verifier state on the hot path: each
// registry record carries a shared immutable verifier::firmware_artifact
// (interned by fleet::firmware_catalog, one per distinct image), and
// verify runs straight off that artifact with the record's device key.
// Verifier memory is O(firmwares), not O(devices), and the §III replay
// executes on a per-thread recycled emu::machine instead of constructing
// one per report. Only core(id) — the policy-attachment surface —
// materializes a cheap per-device op_verifier context (shared artifact
// pointer + key + policies).
//
// Threading model
// ---------------
// The hub is internally sharded: per-device state (challenge table,
// retired-nonce history, optional policy context) lives in one of
// `hub_config::shards` shards selected by a hash of the device id, each
// with its own mutex and its own challenge-nonce RNG stream. All public
// entry points are safe to call concurrently from any number of threads:
//
//   - `challenge` / `submit` / `verify_report` take only the owning
//     shard's lock, so traffic for different shards never contends.
//   - Nonce bookkeeping (match, seq check, consume) happens under the
//     shard lock; the expensive cryptographic/replay verification runs
//     OUTSIDE it, so one slow report does not stall its shard. The nonce
//     is consumed before the lock is dropped — the §III one-report-per-
//     nonce rule holds even when the same frame is submitted twice
//     concurrently (exactly one submitter sees the nonce; the other gets
//     replayed_report).
//   - `verify_batch` fans the frames out over an internal worker pool
//     (`hub_config::workers` threads; the caller participates too) and
//     returns results in input order.
//   - `tick`/`now`/`stats` use atomics and may race freely.
//   - `core(id)` construction is serialized by the shard lock; the
//     returned op_verifier is verify-const and safe for concurrent
//     `verify` calls — with one caveat: attached policies' hooks
//     (on_write/on_finish) run during replay on whichever thread is
//     verifying, and two reports for the SAME device may verify
//     concurrently, so a policy that keeps internal mutable state must
//     synchronize it itself (the built-in policies are stateless).
//     Mutating the core (add_policy) while traffic is in flight is NOT
//     synchronized either — attach policies before serving.
//
// The one external requirement: the device_registry must outlive the hub,
// and concurrent `provision`/`enroll` calls are the registry's own
// (shared_mutex) problem — records, once provisioned, are immutable.
#ifndef DIALED_FLEET_VERIFIER_HUB_H
#define DIALED_FLEET_VERIFIER_HUB_H

#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <random>

#include "common/thread_pool.h"
#include "fleet/hub_like.h"
#include "fleet/persist.h"
#include "fleet/registry.h"
#include "proto/wire.h"
#include "verifier/verifier.h"

namespace dialed::fleet {

using proto::proto_error;

struct hub_config {
  /// Outstanding challenges a device may hold at once; issuing beyond this
  /// evicts (supersedes) the oldest. 1 reproduces the v1 session behavior.
  std::uint32_t max_outstanding = 8;
  /// Challenge TTL in hub ticks; 0 = challenges never expire.
  std::uint64_t challenge_ttl = 0;
  /// Retired nonces remembered per device (replay/supersede/expiry
  /// classification window).
  std::size_t retired_memory = 64;
  /// Makes challenge generation reproducible in tests. Shard s draws its
  /// nonces from an independent stream seeded with `seed ^ splitmix(s)`.
  std::uint64_t seed = 0x1a2b3c4d5e6f7788ull;
  /// Device-state shards (each its own lock + RNG). 0 = pick a default.
  /// 1 reproduces the old fully-serialized hub.
  std::uint32_t shards = 0;
  /// Worker threads for verify_batch fan-out; the calling thread always
  /// participates as one more worker. 0 = hardware concurrency - 1;
  /// 1 worker thread still means 2-way parallelism. Use
  /// `sequential_batch = true` for a strictly single-threaded hub.
  std::uint32_t workers = 0;
  /// Forces verify_batch to run inline on the calling thread (no pool is
  /// created). The single-device v1 adapter sets this.
  bool sequential_batch = false;
  /// Track per-device wire v2.1 delta baselines (the OR of the last
  /// accepted report, O(or_bytes) memory per device). Off, every v2.1
  /// frame is rejected baseline_mismatch and no baseline state is kept —
  /// for fleets that only ever speak full frames.
  bool or_baselines = true;
  /// Durability sink (src/store/fleet_store): challenge issuance, nonce
  /// retirement and verdicts are journaled through it — issuance and
  /// retirement UNDER the owning shard lock, so the on-disk order matches
  /// the order the hub committed to. nullptr = no persistence. Must
  /// outlive the hub.
  persist_sink* sink = nullptr;
  /// Pipeline observability (src/obs): per-stage latency histograms and
  /// the slow/rejected flight recorder. `obs.enabled = false` removes
  /// every clock read from the verify path (the overhead bench baseline).
  obs::pipeline_config obs{};
  /// Replay-memoization capacity (results, LRU-bounded): repeated rounds
  /// with byte-identical attested inputs skip the §III replay entirely —
  /// the MAC is still verified per report, and devices with policies
  /// attached bypass the memo. 0 disables memoization.
  std::size_t replay_memo_entries = 1024;
};

// challenge_grant, hub_stats, and attest_result moved to
// fleet/hub_like.h — shared with the partition router.

class verifier_hub : public hub_like {
 public:
  explicit verifier_hub(const device_registry& registry,
                        hub_config cfg = {});
  ~verifier_hub() override;

  /// Draw a fresh challenge for a device. Many challenges may be
  /// outstanding per device (up to cfg.max_outstanding). Thread-safe.
  challenge_grant challenge(device_id id) override;

  /// Decode a wire frame (any supported version) and verify it. v1 frames
  /// carry no device id and are rejected with unknown_device — route them
  /// through a proto::verifier_session instead. v2.1 delta frames are
  /// reconstructed against the device's or_baseline first (see the file
  /// comment); a mismatch is the typed baseline_mismatch and leaves the
  /// challenge outstanding. Thread-safe, reentrant: decoding uses a
  /// thread-local scratch frame, so concurrent submits never share a
  /// buffer. Zero-copy: full frames are decoded in borrow mode — the OR
  /// is verified straight out of `frame` (never copied unless the verdict
  /// is accepted and the bytes become the delta baseline); delta frames
  /// reconstruct into the thread-local scratch arena. Either way `frame`
  /// is not read after submit returns.
  attest_result submit(std::span<const std::uint8_t> frame) override;

  /// Verify an already-decoded report for a device, requiring the frame's
  /// sequence number to match the one its challenge was issued with.
  attest_result verify_report(device_id id, std::uint32_t seq,
                              const verifier::attestation_report& report);

  /// Sequence-unchecked variant for v1 adapters that predate sequence
  /// numbers. Deliberately NOT reachable from `submit`: skipping the seq
  /// check must be a caller decision, never an in-band wire value.
  attest_result verify_report(device_id id,
                              const verifier::attestation_report& report);

  /// Verify a batch of independent frames in parallel on the hub's worker
  /// pool (per-shard locking; crypto/replay outside the locks). Results
  /// are returned in input order regardless of completion order.
  std::vector<attest_result> verify_batch(
      std::span<const byte_vec> frames) override;

  /// Advance the monotonic clock; challenges older than cfg.challenge_ttl
  /// ticks are retired as expired. Thread-safe. Journaled (concurrent
  /// ticks may journal out of order; replay keeps the maximum).
  void tick(std::uint64_t n) override {
    const std::uint64_t now =
        now_.fetch_add(n, std::memory_order_relaxed) + n;
    if (cfg_.sink != nullptr) cfg_.sink->on_tick(now);
  }
  using hub_like::tick;  // keep the zero-arg tick() visible here
  std::uint64_t now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Per-device verifier context, e.g. to attach app policies. Devices
  /// without one verify straight off the shared per-firmware artifact;
  /// calling core() materializes the (cheap: artifact pointer + key)
  /// per-device context, which verification then uses instead. Throws
  /// dialed::error for an unknown device. Construction is thread-safe;
  /// mutating the returned context concurrently with verification is not.
  verifier::op_verifier& core(device_id id);

  /// Outstanding challenges for a device, EXCLUDING entries already past
  /// cfg.challenge_ttl (they are dead — merely not yet swept into the
  /// retired history by a challenge/verify on that device).
  std::size_t outstanding(device_id id) const override;

  /// Worker threads backing verify_batch (0 = inline/sequential).
  std::size_t batch_workers() const override {
    return pool_ ? pool_->workers() : 0;
  }

  /// Snapshot of the hub's monotonic counters. Thread-safe; the hub-level
  /// fields are lock-free, the per-device breakdown briefly takes each
  /// shard lock in turn. Pass include_per_device = false for the cheap
  /// lock-free hub-level scalars only (the store's snapshot writer does —
  /// it gets the per-device rows from dump_devices() anyway).
  hub_stats stats(bool include_per_device = true) const override;

  /// Per-stage latency histograms for every report this hub verified.
  obs::pipeline_snapshot pipeline() const override { return obs_.snapshot(); }

  /// Slowest + rejected span traces (bounded flight-recorder rings).
  obs::trace_dump traces() const override { return obs_.traces(); }

  // ---- persistence surface (src/store/fleet_store) --------------------

  /// Re-inject persisted state: the clock, hub-level counters, and every
  /// device's challenge table / retired-nonce history / per-device
  /// counters (retired histories longer than cfg.retired_memory keep only
  /// the newest entries). Call once, before serving traffic — NOT
  /// thread-safe against concurrent hub use, and never journals to the
  /// sink. Also reseeds each shard's nonce stream with
  /// `counters.challenges_issued` as an epoch, so a restarted hub never
  /// re-draws the pre-crash nonce sequence a fixed seed would repeat.
  void restore(std::uint64_t now,
               std::span<const device_restore> devices,
               const hub_stats& counters);

  /// Dump every device's anti-replay state for a snapshot (shard locks
  /// taken one at a time; concurrent traffic lands in the WAL instead —
  /// see fleet_store::compact's quiescence contract).
  std::vector<device_restore> dump_devices() const;

 private:
  struct challenge_entry {
    std::array<std::uint8_t, 16> nonce{};
    std::uint32_t seq = 0;
    std::uint64_t issued_at = 0;
  };

  struct retired_nonce {
    std::array<std::uint8_t, 16> nonce{};
    nonce_fate fate = nonce_fate::consumed;
  };

  /// Per-device counters, written with relaxed atomics: the accept/reject
  /// bumps happen AFTER the shard lock is dropped (phase 2 of
  /// verify_impl), racing only with stats()/dump_devices readers.
  struct atomic_device_counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_verdict{0};
    std::atomic<std::uint64_t> replayed{0};
    std::atomic<std::uint64_t> rejected_protocol{0};

    device_counters snapshot() const {
      device_counters c;
      c.accepted = accepted.load(std::memory_order_relaxed);
      c.rejected_verdict =
          rejected_verdict.load(std::memory_order_relaxed);
      c.replayed = replayed.load(std::memory_order_relaxed);
      c.rejected_protocol =
          rejected_protocol.load(std::memory_order_relaxed);
      return c;
    }
  };

  /// The wire v2.1 delta baseline, guarded by the owning shard's mutex:
  /// written only under the lock (accepted verdicts, restore), read under
  /// the lock (delta resolution copies the bytes out before unlocking —
  /// reconstruction itself never holds the lock).
  struct or_baseline {
    bool valid = false;
    std::uint32_t seq = 0;
    std::array<std::uint8_t, 8> hash{};  ///< proto::or_baseline_hash
    byte_vec bytes;                      ///< full OR of the accepted round
  };

  struct device_state {
    std::deque<challenge_entry> outstanding;  ///< ordered by issue time
    std::deque<retired_nonce> retired;        ///< bounded history
    or_baseline baseline;
    atomic_device_counters counters;
    /// Per-device POLICY context, materialized only by core(id) — the
    /// plain hot path verifies straight off the registry record's shared
    /// firmware artifact and never allocates here. Built under the shard
    /// lock, verified outside it; the pointee's address is stable (map
    /// node + unique_ptr).
    std::unique_ptr<verifier::op_verifier> ctx;
    std::uint32_t next_seq = 1;
  };

  /// One lock domain: a slice of the fleet's devices plus the RNG stream
  /// their nonces are drawn from.
  struct shard {
    mutable std::mutex mu;
    std::map<device_id, device_state> states;
    std::mt19937_64 rng;
  };

  /// Relaxed atomics behind stats(); written from any verify/challenge
  /// thread.
  struct counters {
    std::atomic<std::uint64_t> challenges_issued{0};
    std::atomic<std::uint64_t> challenges_expired{0};
    std::atomic<std::uint64_t> challenges_superseded{0};
    std::atomic<std::uint64_t> reports_accepted{0};
    std::atomic<std::uint64_t> reports_rejected_verdict{0};
    std::array<std::atomic<std::uint64_t>, proto::proto_error_count>
        rejected_by_error{};
    // verify_batch gauges (never restored — process-local by design).
    std::atomic<std::uint64_t> verify_batches{0};
    std::atomic<std::uint64_t> verify_batch_frames{0};
    std::atomic<std::uint64_t> last_batch_frames{0};
    std::atomic<std::uint64_t> inflight_batches{0};
  };

  shard& shard_for(device_id id);
  const shard& shard_for(device_id id) const;
  void retire(device_id id, device_state& st, std::size_t index,
              nonce_fate fate);
  void expire_stale(device_id id, device_state& st, std::uint64_t now);
  /// Bump the hub histogram (and the per-device protocol/replay counter
  /// when `st` is known), then journal the verdict. Returns `r` so reject
  /// paths read `return rejected(...)`.
  attest_result rejected(attest_result r, device_state* st);
  /// Looks up (or lazily builds) the device's policy context. Caller must
  /// hold the shard lock. Returns nullptr for an unknown device.
  verifier::op_verifier* core_locked(shard& sh, device_id id);
  /// The common verification core. Takes a report VIEW: `report.or_bytes`
  /// may borrow the caller's frame buffer (submit's zero-copy path) and is
  /// only read for the duration of the call — adopt_baseline copies the
  /// bytes it keeps.
  attest_result verify_impl(device_id id, std::uint32_t seq,
                            bool check_seq,
                            const verifier::report_view& report,
                            obs::span_recorder& sp);
  /// Fold the finished span into the hub's histograms/flight recorder and
  /// pass the result through — every top-level verify path returns
  /// through this.
  attest_result observed(const obs::span_recorder& sp, attest_result r);
  /// v2.1 path: check the frame's baseline reference against the device's
  /// or_baseline (under the shard lock), copy the baseline bytes out, and
  /// reconstruct the full OR into report.or_bytes (outside the lock).
  /// nullopt on success; the fully-bookkept rejection (unknown_device /
  /// baseline_mismatch) otherwise — in which case NO challenge state was
  /// touched, so the prover can retry the same nonce with a full frame.
  std::optional<attest_result> reconstruct_delta(
      device_id id, std::uint32_t seq, const proto::or_delta& delta,
      verifier::attestation_report& report);
  /// Adopt `or_bytes` as the device's delta baseline for round `seq` if
  /// it is newer than the current one (accepted verdicts only; takes the
  /// shard lock; journals under it). COPIES the bytes — the span may
  /// alias a borrowed frame buffer that dies when submit returns.
  void adopt_baseline(device_id id, std::uint32_t seq,
                      std::span<const std::uint8_t> or_bytes);

  const device_registry& registry_;
  hub_config cfg_;
  std::atomic<std::uint64_t> now_{0};
  std::vector<std::unique_ptr<shard>> shards_;
  std::unique_ptr<thread_pool> pool_;  ///< null when sequential_batch
  mutable counters stats_;
  obs::pipeline_obs obs_;
  /// Shared replay-result cache (null when cfg.replay_memo_entries == 0);
  /// internally synchronized, consulted only on the artifact hot path.
  std::unique_ptr<verifier::replay_memo> memo_;
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_VERIFIER_HUB_H
