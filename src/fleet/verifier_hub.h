// Fleet verifier hub: the many-device generalization of the paper's §III
// one-verifier/one-prover protocol. One hub serves every provisioned
// device, with a per-device challenge table (many concurrently outstanding
// challenges), expiry on a monotonic tick clock, and per-device
// anti-replay bookkeeping.
//
// Protocol (wire v2; v1 layout documented beside it in src/proto/wire.h):
//
//      Vrf hub                                       Prv (device d)
//        |                                                |
//        |  challenge(d) -> grant {nonce, seq}            |
//        |----------- nonce, seq ------------------------>|
//        |                                                | run attested op,
//        |                                                | SW-Att MACs with
//        |                                                | K_dev over nonce
//        |<---------- wire v2 frame ----------------------|
//        |   [magic|ver=2|flags|device_id|seq|bounds|     |
//        |    result|halt|nonce|MAC|or_len|OR|CRC16]      |
//        |  submit(frame) -> attest_result                |
//        |    - frame damaged        -> transport error   |
//        |    - device_id unknown    -> unknown_device    |
//        |    - seq != grant seq     -> sequence_mismatch |
//        |    - nonce consumed       -> replayed_report   |
//        |    - nonce evicted        -> challenge_superseded
//        |    - nonce past TTL       -> challenge_expired |
//        |    - nonce never issued   -> stale_nonce       |
//        |    - else: full §III verification -> verdict   |
//
// Challenge lifecycle: issued -> (consumed | superseded | expired), with a
// bounded per-device memory of retired nonces so a late report gets the
// precise typed error instead of a generic rejection.
#ifndef DIALED_FLEET_VERIFIER_HUB_H
#define DIALED_FLEET_VERIFIER_HUB_H

#include <deque>
#include <random>

#include "fleet/registry.h"
#include "proto/wire.h"
#include "verifier/verifier.h"

namespace dialed::fleet {

using proto::proto_error;

struct hub_config {
  /// Outstanding challenges a device may hold at once; issuing beyond this
  /// evicts (supersedes) the oldest. 1 reproduces the v1 session behavior.
  std::uint32_t max_outstanding = 8;
  /// Challenge TTL in hub ticks; 0 = challenges never expire.
  std::uint64_t challenge_ttl = 0;
  /// Retired nonces remembered per device (replay/supersede/expiry
  /// classification window).
  std::size_t retired_memory = 64;
  /// Makes challenge generation reproducible in tests.
  std::uint64_t seed = 0x1a2b3c4d5e6f7788ull;
};

/// The issuance half of the protocol: what the hub hands the transport to
/// forward to device `device_id`.
struct challenge_grant {
  proto_error error = proto_error::none;  ///< unknown_device
  /// challenge_superseded when issuing this grant evicted the device's
  /// oldest outstanding challenge (the explicit signal the v1 session
  /// swallowed); the grant itself is still valid.
  proto_error note = proto_error::none;
  device_id device = 0;
  std::uint32_t seq = 0;
  std::array<std::uint8_t, 16> nonce{};
  bool ok() const { return error == proto_error::none; }
};

/// The rich result of one submitted report: a typed protocol error (if the
/// report never reached verification) plus the full §III verdict.
struct attest_result {
  proto_error error = proto_error::none;
  device_id device = 0;
  std::uint32_t seq = 0;
  verifier::verdict verdict;  ///< meaningful only when error == none
  bool accepted() const {
    return error == proto_error::none && verdict.accepted;
  }
};

class verifier_hub {
 public:
  explicit verifier_hub(const device_registry& registry,
                        hub_config cfg = {});

  /// Draw a fresh challenge for a device. Many challenges may be
  /// outstanding per device (up to cfg.max_outstanding).
  challenge_grant challenge(device_id id);

  /// Decode a wire frame (any supported version) and verify it. v1 frames
  /// carry no device id and are rejected with unknown_device — route them
  /// through a proto::verifier_session instead.
  attest_result submit(std::span<const std::uint8_t> frame);

  /// Verify an already-decoded report for a device, requiring the frame's
  /// sequence number to match the one its challenge was issued with.
  attest_result verify_report(device_id id, std::uint32_t seq,
                              const verifier::attestation_report& report);

  /// Sequence-unchecked variant for v1 adapters that predate sequence
  /// numbers. Deliberately NOT reachable from `submit`: skipping the seq
  /// check must be a caller decision, never an in-band wire value.
  attest_result verify_report(device_id id,
                              const verifier::attestation_report& report);

  /// Verify a batch of independent frames, reusing one decode scratch
  /// buffer and the per-device cached verifiers across the whole batch.
  std::vector<attest_result> verify_batch(std::span<const byte_vec> frames);

  /// Advance the monotonic clock; challenges older than cfg.challenge_ttl
  /// ticks are retired as expired.
  void tick(std::uint64_t n = 1) { now_ += n; }
  std::uint64_t now() const { return now_; }

  /// Per-device verifier core, e.g. to attach app policies. Throws
  /// dialed::error for an unknown device.
  verifier::op_verifier& core(device_id id);

  std::size_t outstanding(device_id id) const;

 private:
  enum class nonce_fate : std::uint8_t { consumed, superseded, expired };

  struct challenge_entry {
    std::array<std::uint8_t, 16> nonce{};
    std::uint32_t seq = 0;
    std::uint64_t issued_at = 0;
  };

  struct retired_nonce {
    std::array<std::uint8_t, 16> nonce{};
    nonce_fate fate = nonce_fate::consumed;
  };

  struct device_state {
    std::deque<challenge_entry> outstanding;  ///< ordered by issue time
    std::deque<retired_nonce> retired;        ///< bounded history
    std::unique_ptr<verifier::op_verifier> verifier;  ///< built lazily
    std::uint32_t next_seq = 1;
  };

  device_state* state_for(device_id id);
  void retire(device_state& st, std::size_t index, nonce_fate fate);
  void expire_stale(device_state& st);
  attest_result verify_impl(device_id id, std::uint32_t seq,
                            bool check_seq,
                            const verifier::attestation_report& report);

  const device_registry& registry_;
  hub_config cfg_;
  std::mt19937_64 rng_;
  std::uint64_t now_ = 0;
  std::map<device_id, device_state> states_;
  proto::decoded_frame scratch_;  ///< reused by submit/verify_batch
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_VERIFIER_HUB_H
