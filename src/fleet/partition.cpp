#include "fleet/partition.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/error.h"
#include "proto/wire.h"
#include "store/codec.h"
#include "store/state_image.h"

namespace dialed::fleet {

namespace fs = std::filesystem;

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across builds —
/// the ring must be a pure function of (seed, vnodes, N) forever, so no
/// std::hash (whose value is implementation-defined).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::array<std::uint8_t, 4> manifest_magic = {'D', 'L', 'P',
                                                        'M'};
constexpr std::uint32_t manifest_version = 1;

}  // namespace

// ---------------------------------------------------------------------------
// partition_router
// ---------------------------------------------------------------------------

partition_router::partition_router(std::vector<hub_like*> partitions,
                                   router_config cfg)
    : cfg_(cfg), parts_(partitions.size()) {
  if (partitions.empty()) {
    throw error("partition_router: at least one partition required");
  }
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    parts_[i].store(partitions[i], std::memory_order_release);
  }
  ring_.reserve(partitions.size() * cfg_.vnodes);
  for (std::uint32_t p = 0; p < partitions.size(); ++p) {
    const std::uint64_t pmix = mix64(cfg_.seed ^ mix64(p));
    for (std::uint32_t v = 0; v < cfg_.vnodes; ++v) {
      ring_.emplace_back(mix64(pmix ^ v), p);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t partition_router::index_of(device_id id) const {
  if (parts_.size() == 1) return 0;
  const std::uint64_t h = mix64(cfg_.seed ^ mix64(id));
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t v, const auto& e) { return v < e.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

hub_like* partition_router::replace(std::size_t idx, hub_like* hub) {
  return parts_[idx].exchange(hub, std::memory_order_acq_rel);
}

challenge_grant partition_router::challenge(device_id id) {
  return at(index_of(id))->challenge(id);
}

attest_result partition_router::submit(
    std::span<const std::uint8_t> frame) {
  // Route on the sniffed header id; a frame too damaged to sniff goes to
  // partition 0, whose decoder rejects it with the same typed error a
  // bare hub would (a lying-but-sniffable header reaches a partition
  // that does not know the device: unknown_device, again hub-identical).
  const auto id = proto::peek_device_id(frame);
  return at(id ? index_of(*id) : 0)->submit(frame);
}

std::vector<attest_result> partition_router::verify_batch(
    std::span<const byte_vec> frames) {
  if (frames.empty()) return {};

  std::vector<std::size_t> owner(frames.size());
  std::vector<std::size_t> load(parts_.size(), 0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto id = proto::peek_device_id(frames[i]);
    owner[i] = id ? index_of(*id) : 0;
    ++load[owner[i]];
  }

  // Single-partition batch (the common case under per-connection
  // batching): pass the span straight through, zero copies.
  const std::size_t first = owner[0];
  if (load[first] == frames.size()) {
    return at(first)->verify_batch(frames);
  }

  // Scatter: each involved partition verifies its slice on its own
  // worker pool, partitions in parallel with each other; results land
  // back at their original indices.
  std::vector<std::vector<byte_vec>> slice(parts_.size());
  std::vector<std::vector<std::size_t>> positions(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    slice[p].reserve(load[p]);
    positions[p].reserve(load[p]);
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    slice[owner[i]].push_back(frames[i]);
    positions[owner[i]].push_back(i);
  }

  std::vector<attest_result> out(frames.size());
  std::vector<std::thread> workers;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    if (slice[p].empty()) continue;
    workers.emplace_back([this, p, &slice, &positions, &out] {
      const auto results = at(p)->verify_batch(slice[p]);
      for (std::size_t j = 0; j < results.size(); ++j) {
        out[positions[p][j]] = results[j];
      }
    });
  }
  for (auto& w : workers) w.join();
  return out;
}

void partition_router::tick(std::uint64_t n) {
  for (std::size_t p = 0; p < parts_.size(); ++p) at(p)->tick(n);
}

std::uint64_t partition_router::now() const {
  std::uint64_t now = 0;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    now = std::max(now, at(p)->now());
  }
  return now;
}

std::size_t partition_router::outstanding(device_id id) const {
  return at(index_of(id))->outstanding(id);
}

std::size_t partition_router::batch_workers() const {
  return at(0)->batch_workers();
}

hub_stats partition_router::stats(bool include_per_device) const {
  hub_stats total;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const auto s = at(p)->stats(include_per_device);
    total.challenges_issued += s.challenges_issued;
    total.challenges_expired += s.challenges_expired;
    total.challenges_superseded += s.challenges_superseded;
    total.reports_accepted += s.reports_accepted;
    total.reports_rejected_verdict += s.reports_rejected_verdict;
    for (std::size_t i = 0; i < s.rejected_by_error.size(); ++i) {
      total.rejected_by_error[i] += s.rejected_by_error[i];
    }
    total.verify_batches += s.verify_batches;
    total.verify_batch_frames += s.verify_batch_frames;
    total.last_batch_frames =
        std::max(total.last_batch_frames, s.last_batch_frames);
    total.inflight_batches += s.inflight_batches;
    total.replay_memo_hits += s.replay_memo_hits;
    total.replay_memo_misses += s.replay_memo_misses;
    total.replay_memo_entries += s.replay_memo_entries;
    // Disjoint by routing, so merge is insertion.
    for (const auto& [id, c] : s.per_device) {
      total.per_device.emplace(id, c);
    }
  }
  return total;
}

std::vector<hub_stats> partition_router::partition_stats() const {
  std::vector<hub_stats> out;
  out.reserve(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    out.push_back(at(p)->stats(/*include_per_device=*/false));
  }
  return out;
}

obs::pipeline_snapshot partition_router::pipeline() const {
  obs::pipeline_snapshot total;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    total.merge(at(p)->pipeline());
  }
  return total;
}

std::vector<obs::pipeline_snapshot> partition_router::partition_pipelines()
    const {
  std::vector<obs::pipeline_snapshot> out;
  out.reserve(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    out.push_back(at(p)->pipeline());
  }
  return out;
}

obs::trace_dump partition_router::traces() const {
  obs::trace_dump merged;
  std::size_t slow_cap = 0;
  std::size_t rejected_cap = 0;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    auto d = at(p)->traces();
    slow_cap = std::max(slow_cap, d.slow_capacity);
    rejected_cap = std::max(rejected_cap, d.rejected_capacity);
    for (auto& t : d.slow) t.partition = static_cast<std::uint32_t>(p);
    for (auto& t : d.rejected) t.partition = static_cast<std::uint32_t>(p);
    merged.slow.insert(merged.slow.end(), d.slow.begin(), d.slow.end());
    merged.rejected.insert(merged.rejected.end(), d.rejected.begin(),
                           d.rejected.end());
    merged.slowest_ns = std::max(merged.slowest_ns, d.slowest_ns);
    merged.slow_recorded += d.slow_recorded;
    merged.rejected_recorded += d.rejected_recorded;
  }
  // Keep the dump bounded by ONE partition's ring capacity, not N of
  // them: slow traces compete fleet-wide on duration (slowest last),
  // rejected traces keep the newest by start time (oldest first, like a
  // single hub's ring).
  std::sort(merged.slow.begin(), merged.slow.end(),
            [](const obs::span_trace& a, const obs::span_trace& b) {
              return a.total_ns < b.total_ns;
            });
  if (merged.slow.size() > slow_cap) {
    merged.slow.erase(merged.slow.begin(),
                      merged.slow.end() -
                          static_cast<std::ptrdiff_t>(slow_cap));
  }
  std::sort(merged.rejected.begin(), merged.rejected.end(),
            [](const obs::span_trace& a, const obs::span_trace& b) {
              return a.start_ns < b.start_ns;
            });
  if (merged.rejected.size() > rejected_cap) {
    merged.rejected.erase(merged.rejected.begin(),
                          merged.rejected.end() -
                              static_cast<std::ptrdiff_t>(rejected_cap));
  }
  merged.slow_capacity = slow_cap;
  merged.rejected_capacity = rejected_cap;
  return merged;
}

// ---------------------------------------------------------------------------
// partitioned_fleet
// ---------------------------------------------------------------------------

namespace {

void check_or_write_manifest(const std::string& dir, std::size_t n,
                             const router_config& rcfg) {
  const fs::path path = fs::path(dir) / partitioned_fleet::manifest_file;
  if (const auto data = store::read_file(path)) {
    if (data->size() < 8 ||
        !std::equal(manifest_magic.begin(), manifest_magic.end(),
                    data->begin())) {
      throw store_error(store_error_kind::bad_magic,
                        path.string() +
                            ": not a DIALED partition manifest");
    }
    const std::uint32_t stored_crc = load_le32(*data, data->size() - 4);
    const std::span<const std::uint8_t> guarded(data->data(),
                                                data->size() - 4);
    if (store::crc32(guarded) != stored_crc) {
      throw store_error(store_error_kind::crc_mismatch,
                        path.string() + ": manifest CRC mismatch");
    }
    store::reader r(guarded.subspan(4), path.string());
    const std::uint32_t version = r.u32();
    if (version != manifest_version) {
      throw store_error(store_error_kind::bad_version,
                        path.string() + ": manifest version " +
                            std::to_string(version));
    }
    const std::uint32_t parts = r.u32();
    const std::uint32_t vnodes = r.u32();
    const std::uint64_t seed = r.u64();
    if (parts != n || vnodes != rcfg.vnodes || seed != rcfg.seed) {
      // Placement is anti-replay-load-bearing: a device re-hashed onto a
      // partition that never saw its consumed nonces would accept their
      // replays. Refuse, loudly.
      throw store_error(
          store_error_kind::partition_mismatch,
          path.string() + ": fleet was partitioned as " +
              std::to_string(parts) + "x (vnodes " +
              std::to_string(vnodes) + ", seed " + std::to_string(seed) +
              "), reopened as " + std::to_string(n) + "x (vnodes " +
              std::to_string(rcfg.vnodes) + ", seed " +
              std::to_string(rcfg.seed) +
              ") — re-partitioning would strand anti-replay state");
    }
    return;
  }
  store::writer w;
  w.raw(manifest_magic);
  w.u32(manifest_version);
  w.u32(static_cast<std::uint32_t>(n));
  w.u32(rcfg.vnodes);
  w.u64(rcfg.seed);
  w.u32(store::crc32(w.data()));
  store::write_file_atomic(path, w.data());
}

}  // namespace

partitioned_fleet partitioned_fleet::create(std::size_t n,
                                            byte_vec master_key,
                                            hub_config hub_cfg,
                                            router_config rcfg) {
  if (n == 0) throw error("partitioned_fleet: zero partitions");
  partitioned_fleet f;
  f.partitions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    store::fleet_state st;
    st.catalog = std::make_shared<firmware_catalog>();
    st.registry =
        std::make_unique<device_registry>(master_key, st.catalog);
    st.hub = std::make_unique<verifier_hub>(*st.registry, hub_cfg);
    f.partitions_.push_back(std::move(st));
  }
  std::vector<hub_like*> hubs;
  hubs.reserve(n);
  for (auto& p : f.partitions_) hubs.push_back(p.hub.get());
  f.router_ = std::make_unique<partition_router>(std::move(hubs), rcfg);
  return f;
}

partitioned_fleet partitioned_fleet::open(const std::string& dir,
                                          std::size_t n,
                                          store::fleet_store::options opts,
                                          router_config rcfg) {
  if (n == 0) throw error("partitioned_fleet: zero partitions");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw store_error(store_error_kind::io_error,
                      dir + ": create: " + ec.message());
  }
  check_or_write_manifest(dir, n, rcfg);

  partitioned_fleet f;
  f.partitions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string pdir =
        (fs::path(dir) / ("p" + std::to_string(i))).string();
    f.partitions_.push_back(store::fleet_store::open(pdir, opts));
  }
  std::vector<hub_like*> hubs;
  hubs.reserve(n);
  for (auto& p : f.partitions_) hubs.push_back(p.hub.get());
  f.router_ = std::make_unique<partition_router>(std::move(hubs), rcfg);
  return f;
}

std::vector<store::fleet_store*> partitioned_fleet::stores() {
  std::vector<store::fleet_store*> out;
  out.reserve(partitions_.size());
  for (auto& p : partitions_) out.push_back(p.store.get());
  return out;
}

std::size_t partitioned_fleet::provision(device_id id,
                                         instr::linked_program prog) {
  const std::size_t p = router_->index_of(id);
  partitions_[p].registry->provision(id, std::move(prog));
  return p;
}

store::fleet_state partitioned_fleet::release_partition(std::size_t i) {
  return std::move(partitions_[i]);
}

void partitioned_fleet::install_partition(std::size_t i,
                                          store::fleet_state st) {
  partitions_[i] = std::move(st);
  router_->replace(i, partitions_[i].hub.get());
}

}  // namespace dialed::fleet
