// The persistence surface of the fleet layer: the event-sink interface the
// registry and verifier hub emit durable state changes through, and the
// plain-data structs a store hands back to reconstruct that state after a
// restart. Deliberately dependency-free in the store direction — the
// fleet layer knows only this interface; src/store/ implements it, so the
// hub's hot path never includes file-format headers.
//
// Event model (what must survive a crash for the hub to stay sound):
//
//   on_provision  — a device joined the registry (id, key, firmware).
//   on_challenge  — a nonce was issued (the hub now owes it an answer).
//   on_retire     — a nonce left the outstanding set: consumed by a
//                   report, superseded by capacity eviction, or expired.
//                   Emitted UNDER the owning shard lock, before the
//                   expensive verification runs — so a report accepted an
//                   instant before a crash is already consumed on disk
//                   and replays as consumed, never as fresh.
//   on_verdict    — a submission's outcome, for the stats counters only
//                   (the security-relevant consumption already traveled
//                   in on_retire).
//   on_baseline   — an ACCEPTED report's OR became the device's wire
//                   v2.1 delta baseline. Security state: a hub restarted
//                   without it would reconstruct the next delta frame
//                   against the wrong bytes (caught by the baseline hash
//                   and answered with baseline_mismatch — correct but
//                   needlessly forcing a full-frame round) or, worse,
//                   accept nothing until the prover resyncs.
//   on_tick       — the monotonic clock advanced (challenge expiry).
//
// Threading: on_challenge/on_retire arrive under a shard lock and
// on_provision under the registry's writer lock, possibly concurrently
// from different shards — implementations serialize internally (the WAL
// appender's mutex). Causality is preserved per thread: a retire for a
// nonce is always appended after the challenge that issued it.
#ifndef DIALED_FLEET_PERSIST_H
#define DIALED_FLEET_PERSIST_H

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "proto/errors.h"

namespace dialed::fleet {

using device_id = std::uint32_t;
using nonce16 = std::array<std::uint8_t, 16>;

/// How a nonce left the outstanding set (persisted as one byte).
enum class nonce_fate : std::uint8_t {
  consumed,    ///< a report (accepted or not) burned it
  superseded,  ///< evicted by newer challenges (capacity)
  expired,     ///< outlived cfg.challenge_ttl
};

/// Checked decode of a persisted fate byte; a byte naming no fate means
/// the record is corrupt and the caller must fail closed.
constexpr bool nonce_fate_from_u8(std::uint8_t v, nonce_fate& out) {
  if (v > static_cast<std::uint8_t>(nonce_fate::expired)) return false;
  out = static_cast<nonce_fate>(v);
  return true;
}

/// Per-device accept/reject/replay counters (the ROADMAP "per-device
/// breakdown" metrics item). Persisted through the snapshot and rebuilt
/// by WAL verdict replay.
struct device_counters {
  std::uint64_t accepted = 0;
  /// Reached full verification but failed the §III verdict.
  std::uint64_t rejected_verdict = 0;
  /// Classified as replayed_report — the interesting security signal.
  std::uint64_t replayed = 0;
  /// Every other protocol rejection attributable to this (provisioned)
  /// device: stale/expired/superseded nonces, sequence mismatches.
  std::uint64_t rejected_protocol = 0;

  std::uint64_t total() const {
    return accepted + rejected_verdict + replayed + rejected_protocol;
  }
};

/// Snapshot of one device's anti-replay state, as dumped by
/// verifier_hub::dump_devices and re-injected by verifier_hub::restore.
struct device_restore {
  struct outstanding_challenge {
    nonce16 nonce{};
    std::uint32_t seq = 0;
    std::uint64_t issued_at = 0;
  };
  struct retired_nonce {
    nonce16 nonce{};
    nonce_fate fate = nonce_fate::consumed;
  };

  /// The wire v2.1 delta baseline: the OR snapshot of the last ACCEPTED
  /// report (sequence-stamped). `valid == false` means the device has no
  /// baseline yet and every delta frame is answered baseline_mismatch.
  struct or_baseline {
    bool valid = false;
    std::uint32_t seq = 0;
    byte_vec bytes;
  };

  device_id id = 0;
  std::uint32_t next_seq = 1;
  std::vector<outstanding_challenge> outstanding;  ///< oldest first
  std::vector<retired_nonce> retired;              ///< oldest first
  device_counters counters;
  or_baseline baseline;
};

struct device_record;  // registry.h

/// Event sink for durable state changes. All methods must be cheap-ish
/// and exception-safe from the caller's perspective is NOT provided:
/// a throwing sink (e.g. disk full) propagates out of the provisioning /
/// challenge / verify call — persistence failure must be loud, a hub that
/// silently stops journaling is a hub that forgets replays on restart.
class persist_sink {
 public:
  virtual ~persist_sink() = default;

  /// Under the registry writer lock; `rec` is the fully-built record.
  virtual void on_provision(const device_record& rec) = 0;

  /// Under the owning shard lock.
  virtual void on_challenge(device_id id, std::uint32_t seq,
                            const nonce16& nonce,
                            std::uint64_t issued_at) = 0;

  /// Under the owning shard lock.
  virtual void on_retire(device_id id, const nonce16& nonce,
                         nonce_fate fate) = 0;

  /// Stats only; the security-relevant consumption already traveled in
  /// on_retire (same thread, earlier). May arrive WITH or WITHOUT the
  /// shard lock held (reject paths journal under it, accept paths after
  /// dropping it) — implementations must not call back into the hub.
  /// Only fires for devices with hub state: rejections of
  /// unauthenticated garbage (transport damage, unknown ids) are counted
  /// in memory and persist at snapshot time — an attacker spraying junk
  /// frames must not buy a disk append per frame.
  virtual void on_verdict(device_id id, proto::proto_error error,
                          bool accepted) = 0;

  /// Under the owning shard lock, only for ACCEPTED verdicts: `or_bytes`
  /// is the full reconstructed OR that round attested, now the device's
  /// delta baseline for round seq+1 onwards. Emitted BEFORE the matching
  /// on_verdict (same thread), so replay never sees a baseline-less
  /// accept.
  virtual void on_baseline(device_id id, std::uint32_t seq,
                           std::span<const std::uint8_t> or_bytes) = 0;

  /// From tick(); `now` is the post-increment clock value.
  virtual void on_tick(std::uint64_t now) = 0;

  /// Durability barrier: block until every record this THREAD has
  /// journaled so far is as durable as the sink's policy promises. The
  /// hub calls it between consuming a nonce (on_retire, under the shard
  /// lock) and computing the verdict (no locks) — the §III rule that a
  /// report never verifies unless its consumption would survive a crash.
  /// Called WITHOUT any hub lock held, possibly from many verifier
  /// threads at once: a batching store turns those concurrent calls into
  /// one fsync (see fleet_store::sync_barrier). Default no-op for sinks
  /// whose on_retire is already as durable as it will ever be.
  virtual void sync_barrier() {}
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_PERSIST_H
