// Fleet device registry: the verifier-side book of provisioned devices.
//
// Each device gets a stable 32-bit id and a per-device attestation key
// derived from the fleet master key with an HMAC-based KDF:
//
//   K_dev = HMAC-SHA256(K_master, LE32(device_id))
//
// so the verifier stores ONE secret for the whole fleet, the factory can
// derive any device's key at provisioning time, and compromising one
// device never reveals another's key (cross-device isolation). Devices
// enrolled with a factory pre-shared key (the v1 single-device protocol)
// bypass the KDF via `enroll`.
//
// Firmware sharing: every provisioned program is interned into a
// fleet::firmware_catalog (owned by default, injectable so several
// registries can share one), and the record carries the resulting
// shared immutable verifier::firmware_artifact. A fleet of N devices on
// F firmware images costs O(F) verifier memory — record.program is an
// alias into the shared artifact, not a per-device copy.
//
// Misuse is rejected with a typed `registry_error` (duplicate or reserved
// device ids, empty keys) rather than silently overwriting or accepting.
//
// Threading model: provisioning (`provision`/`enroll`) takes a writer
// lock; lookups (`find`/`size`/`ids`) take a reader lock and may run
// concurrently — the verifier hub's sharded hot path does exactly that.
// Records are immutable once provisioned and never erased, and std::map
// nodes are address-stable, so a `device_record*` returned by `find`
// stays valid (and safely readable) for the registry's lifetime even
// while other threads keep provisioning.
#ifndef DIALED_FLEET_REGISTRY_H
#define DIALED_FLEET_REGISTRY_H

#include <map>
#include <memory>
#include <set>
#include <shared_mutex>

#include "common/error.h"
#include "crypto/hmac.h"
#include "fleet/firmware_catalog.h"
#include "fleet/persist.h"
#include "instr/oplink.h"

namespace dialed::fleet {

/// What a provisioning call rejected.
enum class registry_error_kind : std::uint8_t {
  reserved_id,       ///< device id 0 is reserved
  duplicate_id,      ///< id already provisioned (re-provisioning never
                     ///< silently overwrites a record)
  empty_key,         ///< enroll() with an empty device key
  empty_master_key,  ///< registry constructed with an empty master key
};

std::string to_string(registry_error_kind k);

/// Typed provisioning failure; still a dialed::error so existing
/// catch-all handlers keep working.
class registry_error : public error {
 public:
  registry_error(registry_error_kind kind, const std::string& what_arg)
      : error(what_arg), kind_(kind) {}
  registry_error_kind kind() const { return kind_; }

 private:
  registry_error_kind kind_;
};

struct device_record {
  device_id id = 0;
  byte_vec key;  ///< K_dev — what the factory burns into the device
  /// Precomputed HMAC key schedule for `key` (ipad/opad midstates): the
  /// hub MACs every report against this instead of rehashing K_dev.
  /// Derived at provision/restore time, NEVER persisted — the store
  /// snapshots only `key` and this is recomputed on open.
  crypto::hmac_keystate mac_state;
  /// The shared per-firmware verifier artifact (one per distinct image,
  /// interned via the catalog; immutable and safe to verify on from any
  /// thread).
  std::shared_ptr<const verifier::firmware_artifact> firmware;
  /// Vrf's reference build of the deployed program — an alias into
  /// `firmware` (same control block, zero extra copies).
  std::shared_ptr<const instr::linked_program> program;
};

class device_registry {
 public:
  /// `catalog` lets several registries (or a registry plus provisioning
  /// tooling) share one interning domain; by default the registry owns a
  /// fresh catalog. Throws registry_error(empty_master_key) on an empty
  /// key.
  explicit device_registry(byte_vec master_key,
                           std::shared_ptr<firmware_catalog> catalog =
                               nullptr);

  /// Provision a new device running `prog`: assigns the next free id and
  /// derives its key from the master key.
  device_id provision(instr::linked_program prog);

  /// Provision with an explicit id (device ids often come from an external
  /// inventory). Throws registry_error(reserved_id) for id 0 and
  /// registry_error(duplicate_id) when the id is already provisioned.
  device_id provision(device_id id, instr::linked_program prog);

  /// Enroll a device that already owns a key (no KDF) — the migration path
  /// for v1 single-device deployments. Auto-assigns the id. Throws
  /// registry_error(empty_key) on an empty device key.
  device_id enroll(instr::linked_program prog, byte_vec device_key);

  /// nullptr when the id was never provisioned. Safe for concurrent
  /// readers; the returned pointer never dangles (see file comment).
  const device_record* find(device_id id) const;

  /// The KDF, exposed so provisioning tooling can derive K_dev without a
  /// registry instance's record (e.g. to burn keys at the factory).
  /// Touches only the immutable master key — lock-free.
  byte_vec derive_key(device_id id) const;

  std::size_t size() const;
  std::vector<device_id> ids() const;

  /// The interning domain this registry provisions through.
  const std::shared_ptr<firmware_catalog>& catalog() const {
    return catalog_;
  }

  // ---- persistence surface (src/store/fleet_store) --------------------

  /// Journal every future provision/enroll through `sink` (nullptr to
  /// detach). Set before serving traffic; the sink must outlive the
  /// registry. Sink callbacks run under the registry writer lock.
  void set_sink(persist_sink* sink) { sink_ = sink; }

  /// Re-inject a persisted device: the key comes from the snapshot (no
  /// KDF — enrolled devices have non-derived keys) and the firmware is
  /// an already-interned catalog artifact. Never journals. Throws
  /// registry_error on reserved/duplicate ids and empty keys, exactly
  /// like the live paths — a snapshot that trips these is corrupt.
  void restore_device(device_id id, byte_vec key,
                      firmware_catalog::artifact_ptr fw);

  /// The auto-assignment cursor, persisted so ids never regress across a
  /// restart (a reused id would alias two devices' histories).
  device_id next_id() const;
  void set_next_id(device_id id);

  /// The fleet master key, exposed ONLY so the store can persist it —
  /// handle like the secret it is.
  const byte_vec& master_key() const { return master_; }

 private:
  device_id reserve_free_id_locked();
  device_record make_record(device_id id, byte_vec key,
                            firmware_catalog::artifact_ptr fw);

  byte_vec master_;  ///< immutable after construction
  std::shared_ptr<firmware_catalog> catalog_;
  persist_sink* sink_ = nullptr;
  mutable std::shared_mutex mu_;
  device_id next_id_ = 1;
  std::map<device_id, device_record> devices_;
  /// Explicit ids claimed by an in-flight provision(id, prog): the
  /// duplicate check happens BEFORE the (unlocked, expensive) catalog
  /// intern, and the reservation makes that check-then-intern atomic —
  /// a racing provision of the same id loses immediately instead of
  /// interning an artifact no device will reference.
  std::set<device_id> reserved_;
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_REGISTRY_H
