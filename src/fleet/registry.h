// Fleet device registry: the verifier-side book of provisioned devices.
//
// Each device gets a stable 32-bit id and a per-device attestation key
// derived from the fleet master key with an HMAC-based KDF:
//
//   K_dev = HMAC-SHA256(K_master, LE32(device_id))
//
// so the verifier stores ONE secret for the whole fleet, the factory can
// derive any device's key at provisioning time, and compromising one
// device never reveals another's key (cross-device isolation). Devices
// enrolled with a factory pre-shared key (the v1 single-device protocol)
// bypass the KDF via `enroll`.
//
// Threading model: provisioning (`provision`/`enroll`) takes a writer
// lock; lookups (`find`/`size`/`ids`) take a reader lock and may run
// concurrently — the verifier hub's sharded hot path does exactly that.
// Records are immutable once provisioned and never erased, and std::map
// nodes are address-stable, so a `device_record*` returned by `find`
// stays valid (and safely readable) for the registry's lifetime even
// while other threads keep provisioning.
#ifndef DIALED_FLEET_REGISTRY_H
#define DIALED_FLEET_REGISTRY_H

#include <map>
#include <memory>
#include <shared_mutex>

#include "instr/oplink.h"

namespace dialed::fleet {

using device_id = std::uint32_t;

struct device_record {
  device_id id = 0;
  byte_vec key;  ///< K_dev — what the factory burns into the device
  /// Vrf's reference build of the deployed program (shared: records are
  /// cheap to copy and many devices may run the same image).
  std::shared_ptr<const instr::linked_program> program;
};

class device_registry {
 public:
  explicit device_registry(byte_vec master_key);

  /// Provision a new device running `prog`: assigns the next free id and
  /// derives its key from the master key.
  device_id provision(instr::linked_program prog);

  /// Provision with an explicit id (device ids often come from an external
  /// inventory). Throws dialed::error if the id is 0 or already taken.
  device_id provision(device_id id, instr::linked_program prog);

  /// Enroll a device that already owns a key (no KDF) — the migration path
  /// for v1 single-device deployments. Auto-assigns the id.
  device_id enroll(instr::linked_program prog, byte_vec device_key);

  /// nullptr when the id was never provisioned. Safe for concurrent
  /// readers; the returned pointer never dangles (see file comment).
  const device_record* find(device_id id) const;

  /// The KDF, exposed so provisioning tooling can derive K_dev without a
  /// registry instance's record (e.g. to burn keys at the factory).
  /// Touches only the immutable master key — lock-free.
  byte_vec derive_key(device_id id) const;

  std::size_t size() const;
  std::vector<device_id> ids() const;

 private:
  device_id reserve_free_id_locked();

  byte_vec master_;  ///< immutable after construction
  mutable std::shared_mutex mu_;
  device_id next_id_ = 1;
  std::map<device_id, device_record> devices_;
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_REGISTRY_H
