// Partitioned fleet: N verifier hubs behind one consistent-hash router.
//
// DIALED's verifier is logically one party, but one hub / one store /
// one box caps the fleet. The partition_router consistent-hashes device
// ids across N hub_like partitions and exposes the SAME hub_like surface
// itself, so net/server, the batcher, and the tools run unmodified on
// top — `dialed-serve --partitions N` is the same binary handed a router
// instead of a hub.
//
// Routing
// -------
// A deterministic hash ring (cfg.vnodes points per partition, splitmix64
// mixing, seeded) maps device_id -> partition. The ring is a pure
// function of (seed, vnodes, N): every process that agrees on those
// three agrees on the placement, with no coordination. challenge() and
// outstanding() route on the id; submit() routes on the device id
// SNIFFED from the frame header (proto::peek_device_id). A frame too
// damaged to sniff goes to partition 0, whose decoder rejects it with
// exactly the typed error a bare hub would return — routing never
// invents new error surfaces. verify_batch() scatters frames to their
// partitions (single-partition batches pass straight through) and
// reassembles results in input order.
//
// Because placement is part of anti-replay soundness (a device's nonce
// history lives only on its owning partition), the DURABLE layout pins
// it: partitioned_fleet::open persists a manifest (partitions.meta) and
// refuses to reopen under a different partition count, vnode count, or
// seed with store_error(partition_mismatch) — re-partitioning would
// strand consumed nonces on partitions that no longer own the device,
// re-opening the replay window durability closed.
//
// Promotion
// ---------
// Partitions are held through std::atomic pointers; replace(i, hub)
// swaps a crashed partition's hub for its promoted standby (store/ship)
// without touching the others. The router never owns the hubs —
// partitioned_fleet (or the test) does.
#ifndef DIALED_FLEET_PARTITION_H
#define DIALED_FLEET_PARTITION_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fleet/hub_like.h"
#include "fleet/registry.h"
#include "fleet/verifier_hub.h"
#include "store/fleet_store.h"

namespace dialed::fleet {

struct router_config {
  /// Ring points per partition. More points = smoother balance at
  /// slightly larger ring-build cost; 64 keeps the max/mean partition
  /// load within a few percent for any realistic N.
  std::uint32_t vnodes = 64;
  /// Ring seed. Placement is a pure function of (seed, vnodes, N).
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

class partition_router final : public hub_like {
 public:
  /// Router over existing hubs (not owned; must outlive the router).
  /// Throws dialed::error on an empty partition set.
  partition_router(std::vector<hub_like*> partitions,
                   router_config cfg = router_config{});

  /// Owning partition index for a device id. Pure and stable.
  std::size_t index_of(device_id id) const;
  std::size_t partition_count() const { return parts_.size(); }
  const router_config& config() const { return cfg_; }

  /// Swap partition `idx`'s hub (promotion). The old hub is returned;
  /// callers sequence this against traffic TO THAT PARTITION (traffic on
  /// other partitions may continue freely).
  hub_like* replace(std::size_t idx, hub_like* hub);

  // ---- hub_like ------------------------------------------------------
  challenge_grant challenge(device_id id) override;
  attest_result submit(std::span<const std::uint8_t> frame) override;
  std::vector<attest_result> verify_batch(
      std::span<const byte_vec> frames) override;
  /// Ticks every partition: the fleet shares one logical clock.
  void tick(std::uint64_t n) override;
  using hub_like::tick;
  /// Max over partitions (ticks fan out, so they only diverge while a
  /// tick is in flight).
  std::uint64_t now() const override;
  std::size_t outstanding(device_id id) const override;
  std::size_t batch_workers() const override;
  /// Aggregate across partitions: counters sum; per_device maps merge
  /// (disjoint by routing); last_batch_frames takes the max.
  hub_stats stats(bool include_per_device = true) const override;
  std::vector<hub_stats> partition_stats() const override;
  /// Stage histograms summed across partitions.
  obs::pipeline_snapshot pipeline() const override;
  std::vector<obs::pipeline_snapshot> partition_pipelines() const override;
  /// Partition dumps merged, each trace tagged with its partition index;
  /// slow traces are re-ranked fleet-wide (slowest last), both rings
  /// re-bounded to one partition's capacity.
  obs::trace_dump traces() const override;

 private:
  hub_like* at(std::size_t idx) const {
    return parts_[idx].load(std::memory_order_acquire);
  }

  router_config cfg_;
  std::vector<std::atomic<hub_like*>> parts_;
  /// Sorted ring of (hash point, partition index).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// Everything `dialed-serve --partitions N` needs in one object: N
/// {catalog, registry, hub(, store)} partitions plus the router over
/// them. Two modes — create() builds in-memory partitions (no
/// persistence), open() builds fleet_store-backed partitions under
/// dir/p0..p<N-1> with the placement manifest.
class partitioned_fleet {
 public:
  static constexpr const char* manifest_file = "partitions.meta";

  /// In-memory fleet: N hubs over N registries sharing one master key.
  /// Device keys derive from (master key, id), so placement does not
  /// change any device's credentials.
  static partitioned_fleet create(std::size_t n, byte_vec master_key,
                                  hub_config hub_cfg = {},
                                  router_config rcfg = router_config{});

  /// Durable fleet: open (or initialize) dir/p<i> via fleet_store::open
  /// and persist the placement manifest. Reopening with a different
  /// partition count / vnodes / seed throws
  /// store_error(partition_mismatch).
  static partitioned_fleet open(const std::string& dir, std::size_t n,
                                store::fleet_store::options opts,
                                router_config rcfg = router_config{});

  partition_router& router() { return *router_; }
  std::size_t partition_count() const { return router_->partition_count(); }
  std::size_t index_of(device_id id) const { return router_->index_of(id); }

  device_registry& registry_of(std::size_t i) {
    return *partitions_[i].registry;
  }
  verifier_hub& hub_of(std::size_t i) { return *partitions_[i].hub; }
  store::fleet_store* store_of(std::size_t i) {
    return partitions_[i].store.get();
  }
  /// Store pointers in partition order (all nullptr for an in-memory
  /// fleet) — what attest_server's health endpoint takes.
  std::vector<store::fleet_store*> stores();

  /// Provision a device on its owning partition; returns the partition
  /// index. The id must be chosen by the caller (ids are global, the
  /// per-partition registries' auto-assign cursors are not).
  std::size_t provision(device_id id, instr::linked_program prog);

  /// Crash simulation: tear the partition's live objects out of the
  /// fleet and hand them to the caller (usually to be dropped on the
  /// floor). The router still points at the dying hub — callers must not
  /// route traffic to partition `i` until replace() installs a
  /// successor.
  store::fleet_state release_partition(std::size_t i);

  /// Reinstall a partition (promotion): adopts the state and swaps the
  /// router over to its hub.
  void install_partition(std::size_t i, store::fleet_state st);

 private:
  partitioned_fleet() = default;

  std::vector<store::fleet_state> partitions_;
  std::unique_ptr<partition_router> router_;
};

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_PARTITION_H
