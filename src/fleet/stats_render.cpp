#include "fleet/stats_render.h"

#include <sstream>

namespace dialed::fleet {

namespace {

/// One Prometheus family header + sample. Prometheus text format:
/// `name{label="v"} value\n`, families introduced once by HELP/TYPE.
void family(std::string& out, const char* name, const char* type,
            const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const char* name, std::uint64_t value,
            const std::string& labels = {}) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_stats_json(const hub_stats& s) {
  std::ostringstream out;
  const char* sep = "";
  out << "{\n";
  out << "  \"challenges_issued\": " << s.challenges_issued << ",\n";
  out << "  \"challenges_expired\": " << s.challenges_expired << ",\n";
  out << "  \"challenges_superseded\": " << s.challenges_superseded
      << ",\n";
  out << "  \"reports_accepted\": " << s.reports_accepted << ",\n";
  out << "  \"reports_rejected_verdict\": " << s.reports_rejected_verdict
      << ",\n";
  out << "  \"verify_batches\": " << s.verify_batches << ",\n";
  out << "  \"verify_batch_frames\": " << s.verify_batch_frames << ",\n";
  out << "  \"last_batch_frames\": " << s.last_batch_frames << ",\n";
  out << "  \"inflight_batches\": " << s.inflight_batches << ",\n";
  out << "  \"replay_memo_hits\": " << s.replay_memo_hits << ",\n";
  out << "  \"replay_memo_misses\": " << s.replay_memo_misses << ",\n";
  out << "  \"replay_memo_entries\": " << s.replay_memo_entries << ",\n";
  out << "  \"rejected_by_error\": {";
  for (std::size_t i = 1; i < s.rejected_by_error.size(); ++i) {
    const auto e = static_cast<proto::proto_error>(i);
    out << sep << "\n    \"" << proto::to_string(e)
        << "\": " << s.rejected_by_error[i];
    sep = ",";
  }
  out << "\n  },\n";
  out << "  \"devices\": {";
  sep = "";
  for (const auto& [id, c] : s.per_device) {
    out << sep << "\n    \"" << id << "\": {\"accepted\": " << c.accepted
        << ", \"rejected_verdict\": " << c.rejected_verdict
        << ", \"replayed\": " << c.replayed
        << ", \"rejected_protocol\": " << c.rejected_protocol << "}";
    sep = ",";
  }
  out << "\n  }\n}\n";
  return out.str();
}

void render_stats_prometheus(const hub_stats& s, std::string& out) {
  family(out, "dialed_hub_challenges_issued_total", "counter",
         "Challenges drawn from the hub.");
  sample(out, "dialed_hub_challenges_issued_total", s.challenges_issued);
  family(out, "dialed_hub_challenges_expired_total", "counter",
         "Challenges retired past their TTL.");
  sample(out, "dialed_hub_challenges_expired_total", s.challenges_expired);
  family(out, "dialed_hub_challenges_superseded_total", "counter",
         "Challenges evicted by capacity.");
  sample(out, "dialed_hub_challenges_superseded_total",
         s.challenges_superseded);
  family(out, "dialed_hub_reports_accepted_total", "counter",
         "Reports that passed protocol checks and the full verdict.");
  sample(out, "dialed_hub_reports_accepted_total", s.reports_accepted);
  family(out, "dialed_hub_reports_rejected_verdict_total", "counter",
         "Reports that reached verification but failed the verdict.");
  sample(out, "dialed_hub_reports_rejected_verdict_total",
         s.reports_rejected_verdict);
  family(out, "dialed_hub_reports_rejected_protocol_total", "counter",
         "Submissions that never reached verification, by typed error.");
  for (std::size_t i = 1; i < s.rejected_by_error.size(); ++i) {
    const auto e = static_cast<proto::proto_error>(i);
    sample(out, "dialed_hub_reports_rejected_protocol_total",
           s.rejected_by_error[i],
           "{reason=\"" + escape_label_value(proto::to_string(e)) +
               "\"}");
  }
  family(out, "dialed_hub_verify_batches_total", "counter",
         "verify_batch calls completed.");
  sample(out, "dialed_hub_verify_batches_total", s.verify_batches);
  family(out, "dialed_hub_verify_batch_frames_total", "counter",
         "Frames fanned out through verify_batch.");
  sample(out, "dialed_hub_verify_batch_frames_total",
         s.verify_batch_frames);
  family(out, "dialed_hub_last_batch_frames", "gauge",
         "Size of the most recent verify_batch call.");
  sample(out, "dialed_hub_last_batch_frames", s.last_batch_frames);
  family(out, "dialed_hub_inflight_batches", "gauge",
         "verify_batch calls running right now.");
  sample(out, "dialed_hub_inflight_batches", s.inflight_batches);
  family(out, "dialed_replay_memo_hits_total", "counter",
         "Replays served from the memoization cache.");
  sample(out, "dialed_replay_memo_hits_total", s.replay_memo_hits);
  family(out, "dialed_replay_memo_misses_total", "counter",
         "Replays executed because no cached result matched.");
  sample(out, "dialed_replay_memo_misses_total", s.replay_memo_misses);
  family(out, "dialed_replay_memo_entries", "gauge",
         "Replay results currently held in the memoization cache.");
  sample(out, "dialed_replay_memo_entries", s.replay_memo_entries);
  if (!s.per_device.empty()) {
    family(out, "dialed_hub_device_reports_total", "counter",
           "Per-device submissions by outcome.");
    for (const auto& [id, c] : s.per_device) {
      const std::string dev = "device=\"" + std::to_string(id) + "\"";
      sample(out, "dialed_hub_device_reports_total", c.accepted,
             "{" + dev + ",outcome=\"accepted\"}");
      sample(out, "dialed_hub_device_reports_total", c.rejected_verdict,
             "{" + dev + ",outcome=\"rejected_verdict\"}");
      sample(out, "dialed_hub_device_reports_total", c.replayed,
             "{" + dev + ",outcome=\"replayed\"}");
      sample(out, "dialed_hub_device_reports_total", c.rejected_protocol,
             "{" + dev + ",outcome=\"rejected_protocol\"}");
    }
  }
}

void render_latency_samples(const obs::histogram_snapshot& h,
                            const char* name, const std::string& labels,
                            std::string& out) {
  const std::string sep = labels.empty() ? "" : ",";
  char buf[48];
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < obs::latency_buckets; ++i) {
    cum += h.buckets[i];
    std::string le = "+Inf";
    if (i + 1 != obs::latency_buckets) {
      // Bucket bounds are exact powers-of-two nanoseconds; %g in seconds
      // renders them compactly (1.024e-06, 0.00524288, ...).
      std::snprintf(buf, sizeof buf, "%g",
                    static_cast<double>(obs::latency_bucket_bound_ns(i)) *
                        1e-9);
      le = buf;
    }
    sample(out, (std::string(name) + "_bucket").c_str(), cum,
           "{" + labels + sep + "le=\"" + le + "\"}");
  }
  const std::string braced = labels.empty() ? "" : "{" + labels + "}";
  std::snprintf(buf, sizeof buf, "%.9g",
                static_cast<double>(h.sum_ns) * 1e-9);
  out += name;
  out += "_sum";
  out += braced;
  out += ' ';
  out += buf;
  out += '\n';
  sample(out, (std::string(name) + "_count").c_str(), h.count, braced);
}

void render_stage_prometheus(std::span<const obs::pipeline_snapshot> parts,
                             std::string& out) {
  if (parts.empty()) return;
  family(out, "dialed_stage_latency_seconds", "histogram",
         "Per-report pipeline stage latency "
         "(decode/journal/mac/replay/verdict), per partition.");
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (std::size_t s = 0; s < obs::stage_count; ++s) {
      const std::string labels =
          "stage=\"" +
          escape_label_value(obs::to_string(static_cast<obs::stage>(s))) +
          "\",partition=\"" + std::to_string(p) + "\"";
      render_latency_samples(parts[p].stages[s],
                             "dialed_stage_latency_seconds", labels, out);
    }
  }
}

void render_partition_prometheus(std::span<const hub_stats> parts,
                                 std::string& out) {
  if (parts.empty()) return;
  const auto each = [&](const char* name, const char* type,
                        const char* help, auto value_of) {
    family(out, name, type, help);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      sample(out, name, value_of(parts[i]),
             "{partition=\"" +
                 escape_label_value(std::to_string(i)) + "\"}");
    }
  };
  each("dialed_partition_challenges_issued_total", "counter",
       "Challenges drawn, per hub partition.",
       [](const hub_stats& s) { return s.challenges_issued; });
  each("dialed_partition_reports_accepted_total", "counter",
       "Accepted reports, per hub partition.",
       [](const hub_stats& s) { return s.reports_accepted; });
  each("dialed_partition_reports_rejected_total", "counter",
       "Rejected reports (verdict + protocol), per hub partition.",
       [](const hub_stats& s) {
         return s.reports_rejected_verdict + s.reports_rejected_protocol();
       });
  each("dialed_partition_reports_replayed_total", "counter",
       "Replayed reports caught, per hub partition.",
       [](const hub_stats& s) {
         return s.rejected_by_error[static_cast<std::size_t>(
             proto::proto_error::replayed_report)];
       });
}

}  // namespace dialed::fleet
