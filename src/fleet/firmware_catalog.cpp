#include "fleet/firmware_catalog.h"

#include <mutex>

namespace dialed::fleet {

firmware_catalog::artifact_ptr firmware_catalog::intern(
    instr::linked_program prog) {
  const verifier::firmware_id id =
      verifier::firmware_artifact::fingerprint(prog);
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const auto it = artifacts_.find(id);
    if (it != artifacts_.end()) return it->second;
  }
  // Build outside the lock — artifact construction (predecode, flatten)
  // is the expensive part and must not serialize lookups. The fingerprint
  // above is reused, not recomputed.
  auto built = verifier::firmware_artifact::build(std::move(prog), &id);
  std::unique_lock<std::shared_mutex> lk(mu_);
  const auto it = artifacts_.emplace(id, std::move(built)).first;
  return it->second;  // racing interns of the same image: first wins
}

firmware_catalog::artifact_ptr firmware_catalog::find(
    const verifier::firmware_id& id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  const auto it = artifacts_.find(id);
  return it == artifacts_.end() ? nullptr : it->second;
}

std::size_t firmware_catalog::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return artifacts_.size();
}

std::vector<verifier::firmware_id> firmware_catalog::ids() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<verifier::firmware_id> out;
  out.reserve(artifacts_.size());
  for (const auto& [id, fw] : artifacts_) out.push_back(id);
  return out;
}

std::size_t firmware_catalog::footprint_bytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [id, fw] : artifacts_) n += fw->footprint_bytes();
  return n;
}

}  // namespace dialed::fleet
