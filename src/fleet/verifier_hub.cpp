#include "fleet/verifier_hub.h"

#include <algorithm>

#include "common/error.h"

namespace dialed::fleet {

verifier_hub::verifier_hub(const device_registry& registry, hub_config cfg)
    : registry_(registry), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.max_outstanding == 0) cfg_.max_outstanding = 1;
}

verifier_hub::device_state* verifier_hub::state_for(device_id id) {
  if (registry_.find(id) == nullptr) return nullptr;
  return &states_[id];
}

void verifier_hub::retire(device_state& st, std::size_t index,
                          nonce_fate fate) {
  const auto it =
      st.outstanding.begin() + static_cast<std::ptrdiff_t>(index);
  st.retired.push_back({it->nonce, fate});
  while (st.retired.size() > cfg_.retired_memory) st.retired.pop_front();
  st.outstanding.erase(it);
}

void verifier_hub::expire_stale(device_state& st) {
  if (cfg_.challenge_ttl == 0) return;
  // Outstanding is ordered by issue time, so expired entries are a prefix.
  while (!st.outstanding.empty() &&
         now_ - st.outstanding.front().issued_at > cfg_.challenge_ttl) {
    retire(st, 0, nonce_fate::expired);
  }
}

challenge_grant verifier_hub::challenge(device_id id) {
  challenge_grant grant;
  grant.device = id;
  device_state* st = state_for(id);
  if (st == nullptr) {
    grant.error = proto_error::unknown_device;
    return grant;
  }
  expire_stale(*st);
  // Capacity eviction is an explicit, observable event: the grant notes it
  // and a late report for the evicted nonce gets challenge_superseded.
  if (st->outstanding.size() >= cfg_.max_outstanding) {
    retire(*st, 0, nonce_fate::superseded);
    grant.note = proto_error::challenge_superseded;
  }
  challenge_entry entry;
  for (auto& b : entry.nonce) {
    b = static_cast<std::uint8_t>(rng_() & 0xff);
  }
  entry.seq = st->next_seq++;
  entry.issued_at = now_;
  st->outstanding.push_back(entry);
  grant.seq = entry.seq;
  grant.nonce = entry.nonce;
  return grant;
}

verifier::op_verifier& verifier_hub::core(device_id id) {
  const device_record* rec = registry_.find(id);
  if (rec == nullptr) {
    throw error("fleet: unknown device " + std::to_string(id));
  }
  device_state& st = states_[id];
  if (!st.verifier) {
    st.verifier =
        std::make_unique<verifier::op_verifier>(*rec->program, rec->key);
  }
  return *st.verifier;
}

attest_result verifier_hub::verify_report(
    device_id id, std::uint32_t seq,
    const verifier::attestation_report& report) {
  return verify_impl(id, seq, /*check_seq=*/true, report);
}

attest_result verifier_hub::verify_report(
    device_id id, const verifier::attestation_report& report) {
  return verify_impl(id, 0, /*check_seq=*/false, report);
}

attest_result verifier_hub::verify_impl(
    device_id id, std::uint32_t seq, bool check_seq,
    const verifier::attestation_report& report) {
  attest_result r;
  r.device = id;
  r.seq = seq;
  device_state* st = state_for(id);
  if (st == nullptr) {
    r.error = proto_error::unknown_device;
    return r;
  }
  expire_stale(*st);

  const auto match =
      std::find_if(st->outstanding.begin(), st->outstanding.end(),
                   [&](const challenge_entry& e) {
                     return e.nonce == report.challenge;
                   });
  if (match == st->outstanding.end()) {
    // Classify the miss from the retired-nonce history (newest wins: a
    // nonce can only be retired once, so any hit is authoritative).
    for (auto it = st->retired.rbegin(); it != st->retired.rend(); ++it) {
      if (it->nonce != report.challenge) continue;
      switch (it->fate) {
        case nonce_fate::consumed:
          r.error = proto_error::replayed_report;
          break;
        case nonce_fate::superseded:
          r.error = proto_error::challenge_superseded;
          break;
        case nonce_fate::expired:
          r.error = proto_error::challenge_expired;
          break;
      }
      return r;
    }
    r.error = proto_error::stale_nonce;
    return r;
  }
  if (check_seq && seq != match->seq) {
    r.error = proto_error::sequence_mismatch;
    return r;
  }

  // Consume the nonce BEFORE verification: even a rejected report burns
  // its challenge (one report per nonce, §III anti-replay).
  const auto nonce = match->nonce;
  r.seq = match->seq;
  retire(*st, static_cast<std::size_t>(match - st->outstanding.begin()),
         nonce_fate::consumed);
  r.verdict = core(id).verify(report, nonce);
  return r;
}

attest_result verifier_hub::submit(std::span<const std::uint8_t> frame) {
  const proto_error err = proto::decode_frame_into(frame, scratch_);
  if (err != proto_error::none) {
    attest_result r;
    r.error = err;
    return r;
  }
  if (scratch_.info.version != proto::wire_v2) {
    // A v1 frame names no device; the hub cannot route it.
    attest_result r;
    r.error = proto_error::unknown_device;
    return r;
  }
  return verify_report(scratch_.info.device_id, scratch_.info.seq,
                       scratch_.report);
}

std::vector<attest_result> verifier_hub::verify_batch(
    std::span<const byte_vec> frames) {
  std::vector<attest_result> out;
  out.reserve(frames.size());
  for (const auto& f : frames) {
    out.push_back(submit(f));
  }
  return out;
}

std::size_t verifier_hub::outstanding(device_id id) const {
  const auto it = states_.find(id);
  return it == states_.end() ? 0 : it->second.outstanding.size();
}

}  // namespace dialed::fleet
