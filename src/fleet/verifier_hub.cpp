#include "fleet/verifier_hub.h"

#include <algorithm>

#include "common/error.h"
#include "obs/event_log.h"
#include "verifier/replay_cache.h"

namespace dialed::fleet {

namespace {

/// splitmix64 finalizer — decorrelates per-shard RNG seeds and spreads
/// (typically sequential) device ids across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint32_t default_shards = 16;

}  // namespace

verifier_hub::verifier_hub(const device_registry& registry, hub_config cfg)
    : registry_(registry), cfg_(cfg), obs_(cfg.obs) {
  if (cfg_.max_outstanding == 0) cfg_.max_outstanding = 1;
  if (cfg_.shards == 0) cfg_.shards = default_shards;
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    auto sh = std::make_unique<shard>();
    sh->rng.seed(cfg_.seed ^ mix64(s));
    shards_.push_back(std::move(sh));
  }
  if (!cfg_.sequential_batch) {
    const std::size_t workers = cfg_.workers != 0
                                    ? cfg_.workers
                                    : thread_pool::hardware_workers();
    pool_ = std::make_unique<thread_pool>(workers);
  }
  if (cfg_.replay_memo_entries > 0) {
    memo_ =
        std::make_unique<verifier::replay_memo>(cfg_.replay_memo_entries);
  }
}

verifier_hub::~verifier_hub() = default;

verifier_hub::shard& verifier_hub::shard_for(device_id id) {
  return *shards_[mix64(id) % shards_.size()];
}

const verifier_hub::shard& verifier_hub::shard_for(device_id id) const {
  return *shards_[mix64(id) % shards_.size()];
}

void verifier_hub::retire(device_id id, device_state& st,
                          std::size_t index, nonce_fate fate) {
  const auto it =
      st.outstanding.begin() + static_cast<std::ptrdiff_t>(index);
  // Journal BEFORE mutating, still under the shard lock: if the append
  // throws (disk full), the in-memory state stays consistent with what
  // the log can replay.
  if (cfg_.sink != nullptr) cfg_.sink->on_retire(id, it->nonce, fate);
  st.retired.push_back({it->nonce, fate});
  while (st.retired.size() > cfg_.retired_memory) st.retired.pop_front();
  st.outstanding.erase(it);
  if (fate == nonce_fate::expired) {
    stats_.challenges_expired.fetch_add(1, std::memory_order_relaxed);
  } else if (fate == nonce_fate::superseded) {
    stats_.challenges_superseded.fetch_add(1, std::memory_order_relaxed);
  }
}

attest_result verifier_hub::rejected(attest_result r, device_state* st) {
  stats_.rejected_by_error[static_cast<std::size_t>(r.error)].fetch_add(
      1, std::memory_order_relaxed);
  if (st != nullptr) {
    auto& c = st->counters;
    if (r.error == proto_error::replayed_report) {
      c.replayed.fetch_add(1, std::memory_order_relaxed);
    } else {
      c.rejected_protocol.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Journal only rejections attributable to a provisioned device: a
  // garbage frame (bad magic, unknown id) must cost the attacker a
  // decode, not a serialized disk append — unauthenticated traffic gets
  // no write amplification. The in-memory histogram still counts these;
  // they persist at snapshot time rather than per event.
  if (cfg_.sink != nullptr && st != nullptr) {
    cfg_.sink->on_verdict(r.device, r.error, false);
  }
  return r;
}

hub_stats verifier_hub::stats(bool include_per_device) const {
  hub_stats s;
  s.challenges_issued =
      stats_.challenges_issued.load(std::memory_order_relaxed);
  s.challenges_expired =
      stats_.challenges_expired.load(std::memory_order_relaxed);
  s.challenges_superseded =
      stats_.challenges_superseded.load(std::memory_order_relaxed);
  s.reports_accepted =
      stats_.reports_accepted.load(std::memory_order_relaxed);
  s.reports_rejected_verdict =
      stats_.reports_rejected_verdict.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.rejected_by_error.size(); ++i) {
    s.rejected_by_error[i] =
        stats_.rejected_by_error[i].load(std::memory_order_relaxed);
  }
  s.verify_batches = stats_.verify_batches.load(std::memory_order_relaxed);
  s.verify_batch_frames =
      stats_.verify_batch_frames.load(std::memory_order_relaxed);
  s.last_batch_frames =
      stats_.last_batch_frames.load(std::memory_order_relaxed);
  s.inflight_batches =
      stats_.inflight_batches.load(std::memory_order_relaxed);
  if (memo_ != nullptr) {
    s.replay_memo_hits = memo_->hits();
    s.replay_memo_misses = memo_->misses();
    s.replay_memo_entries = memo_->entries();
  }
  if (include_per_device) {
    for (const auto& shp : shards_) {
      std::lock_guard<std::mutex> lk(shp->mu);
      for (const auto& [id, st] : shp->states) {
        s.per_device.emplace(id, st.counters.snapshot());
      }
    }
  }
  return s;
}

void verifier_hub::expire_stale(device_id id, device_state& st,
                                std::uint64_t now) {
  if (cfg_.challenge_ttl == 0) return;
  // Outstanding is ordered by issue time, so expired entries are a
  // prefix. The issued_at <= now guard keeps the unsigned subtraction
  // honest if a restore ever left an issue stamp ahead of the clock.
  while (!st.outstanding.empty() &&
         st.outstanding.front().issued_at <= now &&
         now - st.outstanding.front().issued_at > cfg_.challenge_ttl) {
    retire(id, st, 0, nonce_fate::expired);
  }
}

challenge_grant verifier_hub::challenge(device_id id) {
  challenge_grant grant;
  grant.device = id;
  if (registry_.find(id) == nullptr) {
    grant.error = proto_error::unknown_device;
    return grant;
  }
  shard& sh = shard_for(id);
  std::lock_guard<std::mutex> lk(sh.mu);
  device_state& st = sh.states[id];
  expire_stale(id, st, now());
  // Capacity eviction is an explicit, observable event: the grant notes it
  // and a late report for the evicted nonce gets challenge_superseded.
  // A loop, not an if: a hub restored from a store written under a larger
  // max_outstanding may start over the cap, and the invariant must be
  // re-established, not chased one entry per grant.
  while (st.outstanding.size() >= cfg_.max_outstanding) {
    retire(id, st, 0, nonce_fate::superseded);
    grant.note = proto_error::challenge_superseded;
  }
  challenge_entry entry;
  // Fill the 16-byte nonce from two full 64-bit draws of the shard's own
  // generator (word-at-a-time; no cross-shard RNG sharing to race on).
  for (std::size_t w = 0; w < entry.nonce.size(); w += 8) {
    std::uint64_t v = sh.rng();
    for (std::size_t b = 0; b < 8; ++b) {
      entry.nonce[w + b] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  entry.seq = st.next_seq++;
  entry.issued_at = now();
  // Journal the issuance before handing the nonce out (still under the
  // shard lock): a grant the store never heard of could not be classified
  // after a restart.
  if (cfg_.sink != nullptr) {
    cfg_.sink->on_challenge(id, entry.seq, entry.nonce, entry.issued_at);
  }
  st.outstanding.push_back(entry);
  grant.seq = entry.seq;
  grant.nonce = entry.nonce;
  stats_.challenges_issued.fetch_add(1, std::memory_order_relaxed);
  return grant;
}

verifier::op_verifier* verifier_hub::core_locked(shard& sh, device_id id) {
  const device_record* rec = registry_.find(id);
  if (rec == nullptr) return nullptr;
  device_state& st = sh.states[id];
  if (!st.ctx) {
    // Cheap: the firmware artifact is shared, the context adds only the
    // device key (and, later, attached policies).
    st.ctx =
        std::make_unique<verifier::op_verifier>(rec->firmware, rec->key);
  }
  return st.ctx.get();
}

verifier::op_verifier& verifier_hub::core(device_id id) {
  shard& sh = shard_for(id);
  std::lock_guard<std::mutex> lk(sh.mu);
  verifier::op_verifier* core = core_locked(sh, id);
  if (core == nullptr) {
    throw error("fleet: unknown device " + std::to_string(id));
  }
  return *core;
}

attest_result verifier_hub::observed(const obs::span_recorder& sp,
                                     attest_result r) {
  obs_.record(sp, r.device, r.seq, static_cast<std::uint8_t>(r.error),
              r.accepted());
  if (!r.accepted() && obs::log().should(obs::log_level::debug)) {
    // Rate-limited per process, not per device: a replay flood from one
    // compromised device must not drown the log (the per-device counters
    // and the rejected-trace ring keep the full picture).
    static obs::rate_limit rl(20);
    obs::log().emit(obs::log_level::debug, "report_rejected", rl,
                    {{"device", r.device},
                     {"seq", r.seq},
                     {"error", proto::to_string(r.error)}});
  }
  return r;
}

attest_result verifier_hub::verify_report(
    device_id id, std::uint32_t seq,
    const verifier::attestation_report& report) {
  obs::span_recorder sp(obs_.enabled());
  return observed(sp, verify_impl(id, seq, /*check_seq=*/true, report, sp));
}

attest_result verifier_hub::verify_report(
    device_id id, const verifier::attestation_report& report) {
  obs::span_recorder sp(obs_.enabled());
  return observed(sp, verify_impl(id, 0, /*check_seq=*/false, report, sp));
}

attest_result verifier_hub::verify_impl(
    device_id id, std::uint32_t seq, bool check_seq,
    const verifier::report_view& report, obs::span_recorder& sp) {
  attest_result r;
  r.device = id;
  r.seq = seq;

  // Phase 1 (under the shard lock): nonce bookkeeping. Match the
  // challenge, classify misses, check the sequence number and CONSUME the
  // nonce, capturing the registry record (and the optional per-device
  // policy context) for phase 2. The consumption is journaled under the
  // same lock — a crash after this point replays the nonce as consumed,
  // so the report cannot be re-submitted against the restarted hub.
  const device_record* rec = nullptr;
  verifier::op_verifier* ctx = nullptr;
  device_state* stp = nullptr;
  std::array<std::uint8_t, 16> nonce{};
  {
    shard& sh = shard_for(id);
    std::lock_guard<std::mutex> lk(sh.mu);
    rec = registry_.find(id);
    if (rec == nullptr) {
      r.error = proto_error::unknown_device;
      sp.mark(obs::stage::journal);
      return rejected(r, nullptr);
    }
    device_state& st = sh.states[id];
    expire_stale(id, st, now());

    const auto match =
        std::find_if(st.outstanding.begin(), st.outstanding.end(),
                     [&](const challenge_entry& e) {
                       return e.nonce == report.challenge;
                     });
    if (match == st.outstanding.end()) {
      // Classify the miss from the retired-nonce history (newest wins: a
      // nonce can only be retired once, so any hit is authoritative).
      for (auto it = st.retired.rbegin(); it != st.retired.rend(); ++it) {
        if (it->nonce != report.challenge) continue;
        switch (it->fate) {
          case nonce_fate::consumed:
            r.error = proto_error::replayed_report;
            break;
          case nonce_fate::superseded:
            r.error = proto_error::challenge_superseded;
            break;
          case nonce_fate::expired:
            r.error = proto_error::challenge_expired;
            break;
        }
        sp.mark(obs::stage::journal);
        return rejected(r, &st);
      }
      r.error = proto_error::stale_nonce;
      sp.mark(obs::stage::journal);
      return rejected(r, &st);
    }
    if (check_seq && seq != match->seq) {
      r.error = proto_error::sequence_mismatch;
      sp.mark(obs::stage::journal);
      return rejected(r, &st);
    }

    // Consume the nonce BEFORE verification: even a rejected report burns
    // its challenge (one report per nonce, §III anti-replay). Under
    // concurrency this is also the duplicate-submit tiebreak — exactly
    // one submitter finds the nonce outstanding.
    nonce = match->nonce;
    r.seq = match->seq;
    retire(id, st,
           static_cast<std::size_t>(match - st.outstanding.begin()),
           nonce_fate::consumed);
    ctx = st.ctx.get();  // only if core(id) attached policies earlier
    stp = &st;  // map nodes are address-stable; see threading note below
  }

  // Durability barrier between the phases: the consumption journaled
  // above must be as durable as the store promises BEFORE any verdict is
  // computed — a crash must replay the nonce as consumed, never let the
  // report verify twice. Deliberately outside the shard lock: under a
  // group-commit store, concurrent verifiers park here and one batch
  // fsync releases them all.
  if (cfg_.sink != nullptr) cfg_.sink->sync_barrier();
  // The journal stage: nonce bookkeeping under the shard lock plus the
  // durability barrier the consumption rode out on.
  sp.mark(obs::stage::journal);

  // Phase 2 (no locks held): the expensive MAC + abstract-execution
  // verification, straight off the record's shared per-firmware artifact
  // (immutable, reentrant) — or through the device's policy context when
  // one was materialized. The record pointer is stable and its key/
  // firmware/mac_state immutable, so reading them unlocked is safe. The
  // record's precomputed HMAC key schedule skips the per-report ipad/opad
  // rehash of K_dev.
  verifier::verify_timings vt;
  verifier::verify_timings* const vtp = sp.enabled() ? &vt : nullptr;
  if (ctx != nullptr) {
    r.verdict = ctx->verify(report, nonce, vtp);
  } else {
    static const std::vector<std::shared_ptr<verifier::policy>>
        no_policies;
    // memo_ (when configured) serves repeated-input replays from the
    // LRU; the MAC above always runs per report, so a cache hit is only
    // ever reachable for a freshly authenticated input vector.
    r.verdict = rec->firmware->verify(report, rec->mac_state, no_policies,
                                      nonce, vtp, memo_.get());
  }
  sp.credit(obs::stage::mac, vt.mac_ns);
  sp.credit(obs::stage::replay, vt.replay_ns);
  // stp stays valid unlocked: std::map nodes are address-stable and
  // device states are never erased; the counters are atomics.
  if (r.verdict.accepted) {
    // This OR is now the proven device state: adopt it as the wire v2.1
    // delta baseline (accepted verdicts ONLY — a rejected report must
    // never steer future reconstructions). Re-takes the shard lock and
    // journals before the verdict record below.
    if (cfg_.or_baselines) adopt_baseline(id, r.seq, report.or_bytes);
    stats_.reports_accepted.fetch_add(1, std::memory_order_relaxed);
    stp->counters.accepted.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.reports_rejected_verdict.fetch_add(1,
                                              std::memory_order_relaxed);
    stp->counters.rejected_verdict.fetch_add(1,
                                             std::memory_order_relaxed);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->on_verdict(id, proto_error::none, r.verdict.accepted);
  }
  // Everything since the journal mark that was not MAC or replay work:
  // baseline adoption, counters, the verdict journal entry.
  sp.mark_excluding(obs::stage::verdict, vt.mac_ns + vt.replay_ns);
  return r;
}

std::optional<attest_result> verifier_hub::reconstruct_delta(
    device_id id, std::uint32_t seq, const proto::or_delta& delta,
    verifier::attestation_report& report) {
  attest_result r;
  r.device = id;
  r.seq = seq;
  // Reconstruction scratch: per thread, like the decode frame — the
  // baseline bytes are copied out under the shard lock (another thread's
  // accepted verdict may swap them the instant it is dropped), the splat
  // happens unlocked.
  static thread_local byte_vec baseline_copy;
  {
    shard& sh = shard_for(id);
    std::lock_guard<std::mutex> lk(sh.mu);
    if (registry_.find(id) == nullptr) {
      r.error = proto_error::unknown_device;
      return rejected(r, nullptr);
    }
    device_state& st = sh.states[id];
    const or_baseline& b = st.baseline;
    if (!cfg_.or_baselines || !b.valid || b.seq != delta.baseline_seq ||
        b.hash != delta.baseline_hash) {
      // Fresh device, desynced prover, or a restart that lost the
      // baseline: the typed signal to resend THIS report as a full
      // frame. Deliberately checked before any nonce bookkeeping — the
      // challenge stays outstanding for the retry.
      r.error = proto_error::baseline_mismatch;
      return rejected(r, &st);
    }
    baseline_copy = b.bytes;
  }
  if (proto::apply_or_delta(delta, baseline_copy, report.or_bytes) !=
      proto_error::none) {
    // Unreachable off the decode path (decode_frame validates segment
    // structure), but hand-built deltas fail closed as transport damage.
    r.error = proto_error::bad_length;
    return rejected(r, nullptr);
  }
  return std::nullopt;
}

void verifier_hub::adopt_baseline(device_id id, std::uint32_t seq,
                                  std::span<const std::uint8_t> or_bytes) {
  shard& sh = shard_for(id);
  std::lock_guard<std::mutex> lk(sh.mu);
  device_state& st = sh.states[id];
  // Newest accepted round wins; with concurrent accepts for one device
  // the table converges on the max seq no matter the interleaving.
  if (st.baseline.valid && seq <= st.baseline.seq) return;
  // Journal BEFORE mutating (like retire): a throwing sink leaves the
  // in-memory baseline consistent with what the log can replay.
  if (cfg_.sink != nullptr) cfg_.sink->on_baseline(id, seq, or_bytes);
  st.baseline.valid = true;
  st.baseline.seq = seq;
  st.baseline.bytes.assign(or_bytes.begin(), or_bytes.end());
  st.baseline.hash = proto::or_baseline_hash(seq, st.baseline.bytes);
}

attest_result verifier_hub::submit(std::span<const std::uint8_t> frame) {
  obs::span_recorder sp(obs_.enabled());
  // Reentrancy: one decode scratch per thread, so concurrent submits
  // (and verify_batch workers) never share a buffer but batches still
  // reuse or_bytes capacity across frames.
  static thread_local proto::decoded_frame scratch;
  // Borrow mode: a full frame's OR stays in `frame` (scratch.or_view
  // points into it) and is verified in place; only an ACCEPTED verdict
  // copies it (adopt_baseline). Delta frames reconstruct into the
  // thread-local scratch arena below. submit never reads `frame` after
  // returning, honoring the decode_mode::borrow lifetime contract.
  const proto_error err =
      proto::decode_frame_into(frame, scratch, proto::decode_mode::borrow);
  if (err != proto_error::none) {
    attest_result r;
    r.error = err;
    sp.mark(obs::stage::decode);
    return observed(sp, rejected(r, nullptr));
  }
  if (scratch.info.version != proto::wire_v2 &&
      scratch.info.version != proto::wire_v21) {
    // A v1 frame names no device; the hub cannot route it.
    attest_result r;
    r.error = proto_error::unknown_device;
    sp.mark(obs::stage::decode);
    return observed(sp, rejected(r, nullptr));
  }
  verifier::report_view view(scratch.report);
  if (scratch.delta.present) {
    // v2.1: rebuild the full OR before anything downstream sees the
    // report — verification below is byte-for-byte the full-frame path.
    // Reconstruction lands in the thread-local scratch report's or_bytes
    // (a per-thread arena whose capacity is recycled across frames).
    if (auto rejected_early = reconstruct_delta(
            scratch.info.device_id, scratch.info.seq, scratch.delta,
            scratch.report)) {
      sp.mark(obs::stage::decode);
      return observed(sp, *rejected_early);
    }
    view.or_bytes = scratch.report.or_bytes;
  } else {
    view.or_bytes = scratch.or_view;  // zero-copy: still in `frame`
  }
  // Decode covers the frame parse plus any v2.1 delta reconstruction.
  sp.mark(obs::stage::decode);
  return observed(sp, verify_impl(scratch.info.device_id, scratch.info.seq,
                                  /*check_seq=*/true, view, sp));
}

std::vector<attest_result> verifier_hub::verify_batch(
    std::span<const byte_vec> frames) {
  std::vector<attest_result> out(frames.size());
  stats_.inflight_batches.fetch_add(1, std::memory_order_relaxed);
  try {
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < frames.size(); ++i) {
        out[i] = submit(frames[i]);
      }
    } else {
      // Fan out across the pool; each worker writes only its own slot, so
      // the results land in input order with no post-hoc reordering.
      pool_->parallel_for(
          frames.size(), [&](std::size_t i) { out[i] = submit(frames[i]); });
    }
  } catch (...) {
    stats_.inflight_batches.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  stats_.inflight_batches.fetch_sub(1, std::memory_order_relaxed);
  stats_.verify_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_batch_frames.fetch_add(frames.size(),
                                       std::memory_order_relaxed);
  stats_.last_batch_frames.store(frames.size(), std::memory_order_relaxed);
  return out;
}

void verifier_hub::restore(std::uint64_t now,
                           std::span<const device_restore> devices,
                           const hub_stats& counters) {
  now_.store(now, std::memory_order_relaxed);
  stats_.challenges_issued.store(counters.challenges_issued,
                                 std::memory_order_relaxed);
  stats_.challenges_expired.store(counters.challenges_expired,
                                  std::memory_order_relaxed);
  stats_.challenges_superseded.store(counters.challenges_superseded,
                                     std::memory_order_relaxed);
  stats_.reports_accepted.store(counters.reports_accepted,
                                std::memory_order_relaxed);
  stats_.reports_rejected_verdict.store(counters.reports_rejected_verdict,
                                        std::memory_order_relaxed);
  for (std::size_t i = 0; i < counters.rejected_by_error.size(); ++i) {
    stats_.rejected_by_error[i].store(counters.rejected_by_error[i],
                                      std::memory_order_relaxed);
  }
  // Reseed the nonce streams against the restored issuance epoch: with a
  // fixed cfg.seed, a plainly-reseeded restart would re-draw exactly the
  // pre-crash nonce sequence.
  const std::uint64_t epoch = counters.challenges_issued;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->rng.seed(cfg_.seed ^ mix64(s) ^ mix64(~epoch));
  }
  for (const auto& d : devices) {
    shard& sh = shard_for(d.id);
    std::lock_guard<std::mutex> lk(sh.mu);
    device_state& st = sh.states[d.id];
    st.outstanding.clear();
    st.retired.clear();
    for (const auto& c : d.outstanding) {
      st.outstanding.push_back({c.nonce, c.seq, c.issued_at});
    }
    // A persisted history longer than this hub's window keeps the newest
    // entries (the deque is oldest-first).
    const std::size_t keep = std::min(d.retired.size(),
                                      cfg_.retired_memory);
    for (std::size_t i = d.retired.size() - keep; i < d.retired.size();
         ++i) {
      st.retired.push_back({d.retired[i].nonce, d.retired[i].fate});
    }
    st.next_seq = d.next_seq;
    st.baseline.valid = d.baseline.valid;
    st.baseline.seq = d.baseline.seq;
    st.baseline.bytes = d.baseline.bytes;
    // The hash is derived state: recompute instead of persisting, so the
    // on-disk format stays independent of the hash construction.
    st.baseline.hash = d.baseline.valid
                           ? proto::or_baseline_hash(d.baseline.seq,
                                                     d.baseline.bytes)
                           : std::array<std::uint8_t, 8>{};
    st.counters.accepted.store(d.counters.accepted,
                               std::memory_order_relaxed);
    st.counters.rejected_verdict.store(d.counters.rejected_verdict,
                                       std::memory_order_relaxed);
    st.counters.replayed.store(d.counters.replayed,
                               std::memory_order_relaxed);
    st.counters.rejected_protocol.store(d.counters.rejected_protocol,
                                        std::memory_order_relaxed);
  }
}

std::vector<device_restore> verifier_hub::dump_devices() const {
  std::vector<device_restore> out;
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lk(shp->mu);
    for (const auto& [id, st] : shp->states) {
      device_restore d;
      d.id = id;
      d.next_seq = st.next_seq;
      d.outstanding.reserve(st.outstanding.size());
      for (const auto& e : st.outstanding) {
        d.outstanding.push_back({e.nonce, e.seq, e.issued_at});
      }
      d.retired.reserve(st.retired.size());
      for (const auto& e : st.retired) {
        d.retired.push_back({e.nonce, e.fate});
      }
      d.baseline.valid = st.baseline.valid;
      d.baseline.seq = st.baseline.seq;
      d.baseline.bytes = st.baseline.bytes;
      d.counters = st.counters.snapshot();
      out.push_back(std::move(d));
    }
  }
  // Shard iteration order is hash order; snapshots should be canonical.
  std::sort(out.begin(), out.end(),
            [](const device_restore& a, const device_restore& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t verifier_hub::outstanding(device_id id) const {
  const shard& sh = shard_for(id);
  std::lock_guard<std::mutex> lk(sh.mu);
  const auto it = sh.states.find(id);
  if (it == sh.states.end()) return 0;
  const auto& entries = it->second.outstanding;
  if (cfg_.challenge_ttl == 0) return entries.size();
  // Count only live entries: expiry is swept lazily on the challenge /
  // verify paths, but a dead challenge must never be reported as
  // outstanding in the meantime.
  const std::uint64_t t = now();
  return static_cast<std::size_t>(std::count_if(
      entries.begin(), entries.end(), [&](const challenge_entry& e) {
        return t - e.issued_at <= cfg_.challenge_ttl;
      }));
}

}  // namespace dialed::fleet
