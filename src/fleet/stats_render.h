// Render verifier_hub::stats() for export: one set of counters, two
// serializations. The JSON form is what `dialed-attest --stats-json`
// writes on exit; the Prometheus text form is what `dialed-serve`'s live
// /metrics endpoint scrapes. Keeping both renderers in one place (instead
// of the JSON writer living inside the CLI tool) means a counter added to
// hub_stats shows up in the file export and on the wire in the same PR —
// the two views can never drift apart.
#ifndef DIALED_FLEET_STATS_RENDER_H
#define DIALED_FLEET_STATS_RENDER_H

#include <span>
#include <string>

#include "fleet/hub_like.h"

namespace dialed::fleet {

/// Hub counters (incl. the per-device breakdown and verify_batch gauges)
/// as a pretty-printed JSON document.
std::string render_stats_json(const hub_stats& s);

/// Escape a Prometheus label VALUE per the text exposition format:
/// backslash, double-quote and newline become \\, \" and \n (the only
/// three escapes the format defines — everything else passes through).
/// Every renderer here routes label values through this; callers
/// assembling their own labels should too.
std::string escape_label_value(const std::string& v);

/// Append the hub counters to `out` in Prometheus text exposition format
/// (one HELP/TYPE header per family, `dialed_hub_` prefix). Appends —
/// callers with their own metrics (the net server) concatenate families
/// into one scrape body.
void render_stats_prometheus(const hub_stats& s, std::string& out);

/// Append the per-partition families (`dialed_partition_` prefix, one
/// sample per partition labeled partition="i") for a partitioned hub —
/// `parts` is hub_like::partition_stats(), in partition-index order.
/// Empty input appends nothing, so unpartitioned scrape bodies are
/// unchanged.
void render_partition_prometheus(std::span<const hub_stats> parts,
                                 std::string& out);

/// Append one obs latency histogram's samples (`name_bucket` with
/// cumulative le labels in SECONDS, `name_sum`, `name_count`) — no
/// HELP/TYPE header; the caller emits the family introduction once and
/// may call this repeatedly with different `labels` (comma-joined
/// `k="v"` pairs, no braces; empty for an unlabeled histogram).
void render_latency_samples(const obs::histogram_snapshot& h,
                            const char* name, const std::string& labels,
                            std::string& out);

/// Append the `dialed_stage_latency_seconds{stage,partition}` histogram
/// family: one histogram per pipeline stage per partition. `parts` is
/// hub_like::partition_pipelines() in partition-index order; a
/// single-hub caller passes one snapshot (labeled partition="0").
/// Empty input appends nothing.
void render_stage_prometheus(std::span<const obs::pipeline_snapshot> parts,
                             std::string& out);

}  // namespace dialed::fleet

#endif  // DIALED_FLEET_STATS_RENDER_H
