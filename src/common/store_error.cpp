#include "common/store_error.h"

namespace dialed {

std::string to_string(store_error_kind k) {
  switch (k) {
    case store_error_kind::io_error: return "io_error";
    case store_error_kind::bad_magic: return "bad_magic";
    case store_error_kind::bad_version: return "bad_version";
    case store_error_kind::crc_mismatch: return "crc_mismatch";
    case store_error_kind::truncated_record: return "truncated_record";
    case store_error_kind::bad_record: return "bad_record";
    case store_error_kind::unknown_firmware: return "unknown_firmware";
    case store_error_kind::firmware_mismatch: return "firmware_mismatch";
    case store_error_kind::master_key_mismatch:
      return "master_key_mismatch";
    case store_error_kind::partition_mismatch:
      return "partition_mismatch";
    case store_error_kind::ship_desync: return "ship_desync";
  }
  return "unknown";
}

}  // namespace dialed
