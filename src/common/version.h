#pragma once

// Single source of truth for the service version string, exported through
// the dialed_build_info metric (and anything else that wants to name the
// build). Bump alongside user-visible service changes.

namespace dialed {

inline constexpr const char* dialed_version = "0.9.0";

}  // namespace dialed
