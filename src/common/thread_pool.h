// A small reusable worker pool for data-parallel fan-out (the verifier
// hub's `verify_batch` runs on it). The pool owns `workers()` long-lived
// threads; `parallel_for(n, body)` runs `body(i)` for every i in [0, n)
// across the workers AND the calling thread, returning when all indices
// are done. Indices are handed out one at a time from an atomic counter
// (work stealing), so uneven per-item cost still load-balances.
//
// Threading contract:
//   - `parallel_for` may be called from any thread; concurrent calls on
//     one pool are serialized internally (one batch at a time).
//   - `body` must be safe to invoke concurrently from multiple threads
//     for distinct indices.
//   - If any invocation throws, the batch still drains (every index runs)
//     and the FIRST captured exception is rethrown on the calling thread.
//   - A pool constructed with 0 workers degrades to an inline loop on the
//     calling thread — the cheap way to make "sequential" a config value.
#ifndef DIALED_COMMON_THREAD_POOL_H
#define DIALED_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dialed {

class thread_pool {
 public:
  /// `workers` = number of pool threads to spawn; `hardware_workers()` is
  /// the usual value. Note the calling thread also participates in every
  /// `parallel_for`, so total parallelism is workers + 1.
  explicit thread_pool(std::size_t workers);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Run body(0) .. body(n-1) across the pool; returns when all are done.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// A sensible default worker count: hardware concurrency minus the
  /// calling thread (which parallel_for also uses), at least 1.
  static std::size_t hardware_workers();

 private:
  void worker_loop();
  void drain_batch() noexcept;

  std::vector<std::thread> threads_;

  std::mutex run_mu_;  ///< serializes parallel_for callers

  std::mutex mu_;  ///< guards the batch descriptor below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;    ///< bumped once per batch
  std::size_t active_ = 0;     ///< workers still draining current batch
  std::size_t n_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> next_{0};

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace dialed

#endif  // DIALED_COMMON_THREAD_POOL_H
