#include "common/thread_pool.h"

namespace dialed {

thread_pool::thread_pool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t thread_pool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

void thread_pool::drain_batch() noexcept {
  // n_ and body_ are stable for the whole batch: they are written under
  // mu_ before the epoch bump and read only by threads that synchronized
  // on that bump (workers) or wrote them (the caller).
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
       i < n_; i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void thread_pool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lk.unlock();
    drain_batch();
    lk.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void thread_pool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    // Same exception contract as the pooled path: drain every index,
    // rethrow the first failure afterwards.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  std::lock_guard<std::mutex> run_lk(run_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    n_ = n;
    body_ = &body;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = threads_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  drain_batch();  // the calling thread is a worker too
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    body_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace dialed
