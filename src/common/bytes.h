// Byte-buffer helpers shared across the library: hex formatting, and
// little-endian 16-bit loads/stores (the MSP430 is little-endian).
#ifndef DIALED_COMMON_BYTES_H
#define DIALED_COMMON_BYTES_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dialed {

using byte_vec = std::vector<std::uint8_t>;

/// Lowercase hex string of a byte span ("deadbeef"); no separators.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse a hex string (even length, upper or lower case). Throws
/// dialed::error on malformed input.
byte_vec from_hex(const std::string& hex);

/// Format a 16-bit value as "0x%04x".
std::string hex16(std::uint16_t v);

/// Little-endian 16-bit load from `bytes[offset..offset+1]`.
constexpr std::uint16_t load_le16(std::span<const std::uint8_t> bytes,
                                  std::size_t offset) {
  return static_cast<std::uint16_t>(bytes[offset] |
                                    (bytes[offset + 1] << 8));
}

/// Little-endian 16-bit store to `bytes[offset..offset+1]`.
constexpr void store_le16(std::span<std::uint8_t> bytes, std::size_t offset,
                          std::uint16_t v) {
  bytes[offset] = static_cast<std::uint8_t>(v & 0xff);
  bytes[offset + 1] = static_cast<std::uint8_t>(v >> 8);
}

/// Little-endian 32-bit load from `bytes[offset..offset+3]`.
constexpr std::uint32_t load_le32(std::span<const std::uint8_t> bytes,
                                  std::size_t offset) {
  return static_cast<std::uint32_t>(bytes[offset]) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

/// Little-endian 32-bit store to `bytes[offset..offset+3]`.
constexpr void store_le32(std::span<std::uint8_t> bytes, std::size_t offset,
                          std::uint32_t v) {
  bytes[offset] = static_cast<std::uint8_t>(v & 0xff);
  bytes[offset + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  bytes[offset + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  bytes[offset + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

}  // namespace dialed

#endif  // DIALED_COMMON_BYTES_H
