// Typed failures of the durable fleet-state store (src/store/). Corrupt
// state files must fail CLOSED: the loader either reconstructs exactly the
// persisted state or throws a store_error naming what is wrong and where —
// it never silently loads a partial registry/catalog/hub and serves
// traffic from it (that is precisely the attestation-vs-state gap the
// store exists to close).
//
// The one deliberate exception is a TORN TAIL: an append-only WAL whose
// final record was cut short by a crash mid-write. That is not corruption
// but the expected crash signature of an append-only log, so the reader
// drops the torn record cleanly (see src/store/wal.h for the exact
// distinction between "torn tail" and "corrupt body").
#ifndef DIALED_COMMON_STORE_ERROR_H
#define DIALED_COMMON_STORE_ERROR_H

#include <cstdint>

#include "common/error.h"

namespace dialed {

/// What the store rejected.
enum class store_error_kind : std::uint8_t {
  io_error,           ///< open/read/write/rename on the state dir failed
  bad_magic,          ///< file does not start with the store magic
  bad_version,        ///< format version this build does not speak
  crc_mismatch,       ///< checksum failure: file corrupted at rest
  truncated_record,   ///< a length field points past the end of the data
  bad_record,         ///< well-framed record with an undecodable body
  unknown_firmware,   ///< device references a firmware id never persisted
  firmware_mismatch,  ///< persisted program re-hashes to a different id
  master_key_mismatch,  ///< caller's master key differs from the stored one
  partition_mismatch,  ///< fleet dir partitioned with a different layout
  ship_desync,  ///< shipped WAL stream violated the snapshot/gen protocol
};

std::string to_string(store_error_kind k);

/// Typed store failure; still a dialed::error so existing catch-all
/// handlers keep working.
class store_error : public error {
 public:
  store_error(store_error_kind kind, const std::string& what_arg)
      : error("store: " + what_arg), kind_(kind) {}
  store_error_kind kind() const { return kind_; }

 private:
  store_error_kind kind_;
};

}  // namespace dialed

#endif  // DIALED_COMMON_STORE_ERROR_H
