// Common error type for the DIALED library.
//
// Hard failures (API misuse, malformed images, broken invariants) throw
// dialed::error; user-input problems in the toolchain (mini-C source or
// assembly diagnostics) are instead collected in diagnostic lists so a
// front end can report all of them at once.
#ifndef DIALED_COMMON_ERROR_H
#define DIALED_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace dialed {

/// Library-wide exception type. The `what()` string always names the
/// subsystem that raised it, e.g. "emu: fetch from unmapped address 0x1234".
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

}  // namespace dialed

#endif  // DIALED_COMMON_ERROR_H
