#include "common/bytes.h"

#include <array>
#include <cstdio>

#include "common/error.h"

namespace dialed {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

byte_vec from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw error("common: from_hex requires an even-length string");
  }
  byte_vec out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw error("common: from_hex found a non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string hex16(std::uint16_t v) {
  std::array<char, 8> buf{};
  std::snprintf(buf.data(), buf.size(), "0x%04x", v);
  return std::string(buf.data());
}

}  // namespace dialed
