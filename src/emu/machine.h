// The assembled device: bus + CPU + peripherals, image loading, the DMA
// engine used for adversarial experiments, and the run loop.
#ifndef DIALED_EMU_MACHINE_H
#define DIALED_EMU_MACHINE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "emu/bus.h"
#include "emu/cpu.h"
#include "emu/memmap.h"
#include "emu/peripherals.h"
#include "masm/masm.h"

namespace dialed::emu {

class machine {
 public:
  /// `full` installs every peripheral; `halt_only` installs just the halt
  /// latch — used by the verifier's abstract executor, where peripheral
  /// reads must fall through to plain memory so they can be fed from the
  /// attested I-Log instead of live devices.
  enum class peripheral_set { full, halt_only };

  explicit machine(const memory_map& map = memory_map{},
                   peripheral_set peripherals = peripheral_set::full);

  machine(const machine&) = delete;
  machine& operator=(const machine&) = delete;

  const memory_map& map() const { return bus_.map(); }
  bus& get_bus() { return bus_; }
  cpu& get_cpu() { return cpu_; }

  /// Copy all image segments into memory (unobserved).
  void load(const masm::image& img);

  /// Reset the CPU through the reset vector.
  void reset();

  /// Return the machine to its just-constructed state: memory zeroed, CPU
  /// registers/cycles cleared, halt latch released. Installed devices and
  /// ROM handlers survive; bus watchers registered by callers are NOT
  /// removed (callers own their registration). This is what lets the
  /// verifier keep one machine per thread and reuse it across replays
  /// instead of constructing a fresh machine per report.
  void recycle();

  enum class run_result { halted, cycle_limit };

  /// Run until a halt-port write or until `max_cycles` total CPU cycles.
  run_result run(std::uint64_t max_cycles = 50'000'000);

  bool halted() const { return halt_code_.has_value(); }
  std::uint16_t halt_code() const { return halt_code_.value_or(0); }
  void clear_halt() { halt_code_.reset(); }

  std::uint64_t cycles() const { return cpu_.cycles(); }

  // Peripheral access for hosts/tests.
  gpio_device& gpio() { return *gpio_; }
  net_device& net() { return *net_; }
  adc_device& adc() { return *adc_; }
  mailbox_device& mailbox() { return *mailbox_; }

  /// DMA engine: host-triggered transfer that bypasses the CPU but is
  /// visible to the bus monitors (used to probe APEX's anti-DMA property).
  void dma_write16(std::uint16_t addr, std::uint16_t value);
  std::uint16_t dma_read16(std::uint16_t addr);

  /// Register a native handler that runs instead of fetching from `addr`
  /// (models mask-ROM routines such as VRASED's SW-Att). The handler is
  /// responsible for advancing PC (typically by emulating `ret`).
  void add_rom_handler(std::uint16_t addr, std::function<void()> handler);

  /// Force a halt from a monitor (e.g. VRASED detecting an illegal secure-
  /// ROM entry).
  void force_halt(std::uint16_t code) { halt_code_ = code; }

 private:
  std::map<std::uint16_t, std::function<void()>> rom_handlers_;
  bus bus_;
  cpu cpu_;
  std::optional<std::uint16_t> halt_code_;
  std::unique_ptr<gpio_device> gpio_;
  std::unique_ptr<net_device> net_;
  std::unique_ptr<adc_device> adc_;
  std::unique_ptr<timer_device> timer_;
  std::unique_ptr<halt_device> halt_;
  std::unique_ptr<mailbox_device> mailbox_;
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_MACHINE_H
