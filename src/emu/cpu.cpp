#include "emu/cpu.h"

#include "common/bytes.h"
#include "common/error.h"

namespace dialed::emu {

using isa::addr_mode;
using isa::opcode;

void cpu::reset() {
  regs_.fill(0);
  cycles_ = 0;
  pending_irq_.reset();
  regs_[isa::REG_PC] = bus_.peek16(bus_.map().reset_vector);
  bus_.notify_reset();
}

std::uint16_t cpu::read_operand(const isa::operand& op, bool byte,
                                operand_ref* ref) {
  switch (op.mode) {
    case addr_mode::reg: {
      if (ref) *ref = {true, op.base, 0};
      const std::uint16_t v = regs_[op.base];
      return byte ? static_cast<std::uint16_t>(v & 0xff) : v;
    }
    case addr_mode::immediate:
      if (ref) *ref = {true, op.base, 0};  // immediates are never written
      return byte ? static_cast<std::uint16_t>(op.ext & 0xff) : op.ext;
    case addr_mode::indexed: {
      const std::uint16_t a =
          static_cast<std::uint16_t>(regs_[op.base] + op.ext);
      if (ref) *ref = {false, 0, a};
      return byte ? bus_.read8(a) : bus_.read16(a);
    }
    case addr_mode::symbolic:
    case addr_mode::absolute: {
      const std::uint16_t a = op.ext;
      if (ref) *ref = {false, 0, a};
      return byte ? bus_.read8(a) : bus_.read16(a);
    }
    case addr_mode::indirect: {
      const std::uint16_t a = regs_[op.base];
      if (ref) *ref = {false, 0, a};
      return byte ? bus_.read8(a) : bus_.read16(a);
    }
    case addr_mode::indirect_inc: {
      const std::uint16_t a = regs_[op.base];
      if (ref) *ref = {false, 0, a};
      const std::uint16_t v = byte ? bus_.read8(a) : bus_.read16(a);
      regs_[op.base] = static_cast<std::uint16_t>(a + (byte ? 1 : 2));
      return v;
    }
  }
  throw error("emu: bad source addressing mode");
}

std::uint16_t cpu::read_ref(const operand_ref& ref, bool byte) {
  if (ref.is_reg) {
    const std::uint16_t v = regs_[ref.reg];
    return byte ? static_cast<std::uint16_t>(v & 0xff) : v;
  }
  return byte ? bus_.read8(ref.addr) : bus_.read16(ref.addr);
}

void cpu::write_ref(const operand_ref& ref, std::uint16_t value, bool byte) {
  if (ref.is_reg) {
    // Byte writes to a register clear the high byte (MSP430 semantics).
    regs_[ref.reg] = byte ? static_cast<std::uint16_t>(value & 0xff) : value;
    return;
  }
  if (byte) {
    bus_.write8(ref.addr, static_cast<std::uint8_t>(value & 0xff));
  } else {
    bus_.write16(ref.addr, value);
  }
}

void cpu::set_nz(std::uint16_t result, bool byte) {
  const std::uint16_t sign = byte ? 0x80 : 0x8000;
  set_flag(isa::SR_N, (result & sign) != 0);
  set_flag(isa::SR_Z, (byte ? (result & 0xff) : result) == 0);
}

void cpu::push_word(std::uint16_t v) {
  regs_[isa::REG_SP] = static_cast<std::uint16_t>(regs_[isa::REG_SP] - 2);
  bus_.write16(regs_[isa::REG_SP], v);
}

std::uint16_t cpu::pop_word() {
  const std::uint16_t v = bus_.read16(regs_[isa::REG_SP]);
  regs_[isa::REG_SP] = static_cast<std::uint16_t>(regs_[isa::REG_SP] + 2);
  return v;
}

namespace {
constexpr std::uint32_t mask_of(bool byte) { return byte ? 0xffu : 0xffffu; }
constexpr std::uint32_t sign_of(bool byte) { return byte ? 0x80u : 0x8000u; }
}  // namespace

// Dispatch table in enum order: 12 format-I entries, rrc..call, reti,
// then the 8 jumps. Kept next to the handlers so a reordering of
// isa::opcode is caught by the static_asserts below.
const std::array<cpu::exec_fn, 27> cpu::exec_table_ = {
    // Format I: mov..and_
    &cpu::exec_format1, &cpu::exec_format1, &cpu::exec_format1,
    &cpu::exec_format1, &cpu::exec_format1, &cpu::exec_format1,
    &cpu::exec_format1, &cpu::exec_format1, &cpu::exec_format1,
    &cpu::exec_format1, &cpu::exec_format1, &cpu::exec_format1,
    // Format II: rrc, swpb, rra, sxt, push, call
    &cpu::exec_format2, &cpu::exec_format2, &cpu::exec_format2,
    &cpu::exec_format2, &cpu::exec_format2, &cpu::exec_format2,
    // reti
    &cpu::exec_reti,
    // Jumps: jne..jmp
    &cpu::exec_jump, &cpu::exec_jump, &cpu::exec_jump, &cpu::exec_jump,
    &cpu::exec_jump, &cpu::exec_jump, &cpu::exec_jump, &cpu::exec_jump,
};
static_assert(static_cast<int>(opcode::mov) == 0);
static_assert(static_cast<int>(opcode::and_) == 11);
static_assert(static_cast<int>(opcode::reti) == 18);
static_assert(static_cast<int>(opcode::jmp) == 26);

void cpu::exec_jump(const isa::instruction& ins) {
  bool taken = false;
  const bool n = flag(isa::SR_N), z = flag(isa::SR_Z), c = flag(isa::SR_C),
             v = flag(isa::SR_V);
  switch (ins.op) {
    case opcode::jne: taken = !z; break;
    case opcode::jeq: taken = z; break;
    case opcode::jnc: taken = !c; break;
    case opcode::jc: taken = c; break;
    case opcode::jn: taken = n; break;
    case opcode::jge: taken = !(n ^ v); break;
    case opcode::jl: taken = (n ^ v); break;
    case opcode::jmp: taken = true; break;
    default: throw error("emu: bad jump");
  }
  if (taken) regs_[isa::REG_PC] = ins.target;
}

void cpu::exec_reti(const isa::instruction&) {
  regs_[isa::REG_SR] = pop_word();
  regs_[isa::REG_PC] = pop_word();
}

void cpu::exec_format2(const isa::instruction& ins) {
  const bool byte = ins.byte_op;
  const std::uint32_t mask = mask_of(byte);
  const std::uint32_t sign = sign_of(byte);
  {
    operand_ref ref{};
    const std::uint16_t v16 = read_operand(ins.dst, byte, &ref);
    const std::uint32_t v = v16 & mask;
    switch (ins.op) {
      case opcode::rra: {
        const std::uint32_t res =
            ((v >> 1) | (v & sign)) & mask;  // keep sign bit
        set_flag(isa::SR_C, (v & 1) != 0);
        set_nz(static_cast<std::uint16_t>(res), byte);
        set_flag(isa::SR_V, false);
        write_ref(ref, static_cast<std::uint16_t>(res), byte);
        break;
      }
      case opcode::rrc: {
        const bool old_c = flag(isa::SR_C);
        const std::uint32_t res =
            ((v >> 1) | (old_c ? sign : 0)) & mask;
        set_flag(isa::SR_C, (v & 1) != 0);
        set_nz(static_cast<std::uint16_t>(res), byte);
        set_flag(isa::SR_V, false);
        write_ref(ref, static_cast<std::uint16_t>(res), byte);
        break;
      }
      case opcode::swpb: {
        const std::uint16_t res = static_cast<std::uint16_t>(
            ((v16 & 0xff) << 8) | ((v16 >> 8) & 0xff));
        write_ref(ref, res, false);
        break;
      }
      case opcode::sxt: {
        const std::uint16_t res =
            (v16 & 0x80) ? static_cast<std::uint16_t>(v16 | 0xff00)
                         : static_cast<std::uint16_t>(v16 & 0x00ff);
        set_nz(res, false);
        set_flag(isa::SR_C, res != 0);
        set_flag(isa::SR_V, false);
        write_ref(ref, res, false);
        break;
      }
      case opcode::push:
        push_word(byte ? static_cast<std::uint16_t>(v) : v16);
        break;
      case opcode::call: {
        push_word(regs_[isa::REG_PC]);
        regs_[isa::REG_PC] = v16;
        break;
      }
      default:
        throw error("emu: unhandled format-II opcode");
    }
  }
}

void cpu::exec_format1(const isa::instruction& ins) {
  const bool byte = ins.byte_op;
  const std::uint32_t mask = mask_of(byte);
  const std::uint32_t sign = sign_of(byte);
  const std::uint16_t src16 = read_operand(ins.src, byte, nullptr);
  operand_ref dref{};
  std::uint16_t dst16 = 0;
  const bool reads_dst = ins.op != opcode::mov;
  if (reads_dst) {
    dst16 = read_operand(ins.dst, byte, &dref);
  } else {
    // Resolve the destination without reading it.
    switch (ins.dst.mode) {
      case addr_mode::reg: dref = {true, ins.dst.base, 0}; break;
      case addr_mode::indexed:
        dref = {false, 0,
                static_cast<std::uint16_t>(regs_[ins.dst.base] + ins.dst.ext)};
        break;
      case addr_mode::symbolic:
      case addr_mode::absolute: dref = {false, 0, ins.dst.ext}; break;
      default: throw error("emu: illegal destination mode");
    }
  }

  const std::uint32_t s = src16 & mask;
  const std::uint32_t d = dst16 & mask;
  bool writeback = true;
  std::uint32_t res = 0;

  switch (ins.op) {
    case opcode::mov:
      res = s;
      break;
    case opcode::add:
    case opcode::addc: {
      const std::uint32_t cin =
          (ins.op == opcode::addc && flag(isa::SR_C)) ? 1 : 0;
      const std::uint32_t full = d + s + cin;
      res = full & mask;
      set_flag(isa::SR_C, full > mask);
      set_flag(isa::SR_V, ((d ^ res) & (s ^ res) & sign) != 0);
      set_nz(static_cast<std::uint16_t>(res), byte);
      break;
    }
    case opcode::sub:
    case opcode::subc:
    case opcode::cmp: {
      const std::uint32_t cin =
          (ins.op == opcode::subc) ? (flag(isa::SR_C) ? 1 : 0) : 1;
      const std::uint32_t full = d + ((~s) & mask) + cin;
      res = full & mask;
      set_flag(isa::SR_C, full > mask);  // carry = no borrow
      set_flag(isa::SR_V, ((d ^ s) & (d ^ res) & sign) != 0);
      set_nz(static_cast<std::uint16_t>(res), byte);
      writeback = ins.op != opcode::cmp;
      break;
    }
    case opcode::dadd: {
      std::uint32_t carry = flag(isa::SR_C) ? 1 : 0;
      std::uint32_t out = 0;
      const int nibbles = byte ? 2 : 4;
      for (int i = 0; i < nibbles; ++i) {
        std::uint32_t t = ((d >> (4 * i)) & 0xf) + ((s >> (4 * i)) & 0xf) +
                          carry;
        if (t > 9) {
          t += 6;
          carry = 1;
        } else {
          carry = 0;
        }
        out |= (t & 0xf) << (4 * i);
      }
      res = out & mask;
      set_flag(isa::SR_C, carry != 0);
      set_nz(static_cast<std::uint16_t>(res), byte);
      break;
    }
    case opcode::bit:
    case opcode::and_: {
      res = d & s;
      set_nz(static_cast<std::uint16_t>(res), byte);
      set_flag(isa::SR_C, res != 0);
      set_flag(isa::SR_V, false);
      writeback = ins.op == opcode::and_;
      break;
    }
    case opcode::bic:
      res = d & ~s & mask;
      break;
    case opcode::bis:
      res = d | s;
      break;
    case opcode::xor_: {
      res = (d ^ s) & mask;
      set_nz(static_cast<std::uint16_t>(res), byte);
      set_flag(isa::SR_C, res != 0);
      set_flag(isa::SR_V, (d & sign) != 0 && (s & sign) != 0);
      break;
    }
    default:
      throw error("emu: unhandled format-I opcode");
  }

  if (writeback) {
    write_ref(dref, static_cast<std::uint16_t>(res), byte);
  }
}

cpu::step_info cpu::step() { return step_impl(nullptr); }

cpu::step_info cpu::step(const isa::decoded& pre) { return step_impl(&pre); }

cpu::step_info cpu::step_impl(const isa::decoded* pre) {
  // Interrupt servicing (before fetching the next instruction).
  if (pending_irq_ && flag(isa::SR_GIE)) {
    const int index = *pending_irq_;
    pending_irq_.reset();
    const std::uint16_t vector_addr =
        static_cast<std::uint16_t>(bus_.map().ivt_start + 2 * index);
    const std::uint16_t isr = bus_.peek16(vector_addr);
    push_word(regs_[isa::REG_PC]);
    push_word(regs_[isa::REG_SR]);
    set_flag(isa::SR_GIE, false);
    regs_[isa::REG_PC] = isr;
    cycles_ += isa::interrupt_cycles;
    bus_.notify_irq(vector_addr);
    return {isr, {}, isa::interrupt_cycles, true};
  }

  const std::uint16_t pc = regs_[isa::REG_PC];
  isa::decoded local;
  if (pre == nullptr) {
    std::array<std::uint16_t, 3> words = {
        bus_.peek16(pc), bus_.peek16(static_cast<std::uint16_t>(pc + 2)),
        bus_.peek16(static_cast<std::uint16_t>(pc + 4))};
    local = isa::decode(words, pc);
    pre = &local;
  }
  regs_[isa::REG_PC] = static_cast<std::uint16_t>(pc + 2 * pre->words);
  bus_.notify_exec(pc, pre->ins);
  execute(pre->ins);
  const int cyc = isa::cycles(pre->ins, pre->cg_src);
  cycles_ += cyc;
  return {pc, pre->ins, cyc, false};
}

}  // namespace dialed::emu
