#include "emu/machine.h"

#include "common/error.h"

namespace dialed::emu {

machine::machine(const memory_map& map, peripheral_set peripherals)
    : bus_(map), cpu_(bus_) {
  auto now = [this] { return cpu_.cycles(); };
  halt_ = std::make_unique<halt_device>(
      map, [this](std::uint16_t code) { halt_code_ = code; });
  bus_.add_device(halt_.get());
  if (peripherals == peripheral_set::full) {
    gpio_ = std::make_unique<gpio_device>(map, now);
    net_ = std::make_unique<net_device>(map);
    adc_ = std::make_unique<adc_device>(map);
    timer_ = std::make_unique<timer_device>(map, now);
    mailbox_ = std::make_unique<mailbox_device>(map);
    bus_.add_device(gpio_.get());
    bus_.add_device(net_.get());
    bus_.add_device(adc_.get());
    bus_.add_device(timer_.get());
    bus_.add_device(mailbox_.get());
  }
}

void machine::load(const masm::image& img) {
  for (const auto& seg : img.segments) {
    std::uint32_t a = seg.base;
    for (const std::uint8_t b : seg.bytes) {
      if (a > 0xffff) throw error("emu: image overflows the address space");
      bus_.poke8(static_cast<std::uint16_t>(a++), b);
    }
  }
}

void machine::reset() {
  halt_code_.reset();
  cpu_.reset();
}

void machine::recycle() {
  // The bus page table needs no rebuild here: it is derived purely from
  // the registered devices, which recycle never adds or removes — only
  // backing memory and CPU state return to the constructed state.
  bus_.clear_memory();
  halt_code_.reset();
  cpu_.hard_clear();
}

machine::run_result machine::run(std::uint64_t max_cycles) {
  while (!halted()) {
    if (cpu_.cycles() >= max_cycles) return run_result::cycle_limit;
    if (const auto it = rom_handlers_.find(cpu_.pc());
        it != rom_handlers_.end()) {
      it->second();
      continue;
    }
    cpu_.step();
  }
  return run_result::halted;
}

void machine::add_rom_handler(std::uint16_t addr,
                              std::function<void()> handler) {
  rom_handlers_[addr] = std::move(handler);
}

void machine::dma_write16(std::uint16_t addr, std::uint16_t value) {
  bus_.write16(addr, value, /*dma=*/true);
}

std::uint16_t machine::dma_read16(std::uint16_t addr) {
  return bus_.read16(addr, /*dma=*/true);
}

}  // namespace dialed::emu
