// Memory bus of the emulated MCU: a flat 64 KiB space with memory-mapped
// peripheral devices and per-access observer hooks. The hooks are the
// "hardware signals" that the VRASED/APEX monitor FSMs in src/rot watch
// (Daddr, Ren, Wen, DMA-en in the papers' terminology).
#ifndef DIALED_EMU_BUS_H
#define DIALED_EMU_BUS_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "emu/memmap.h"
#include "isa/isa.h"

namespace dialed::emu {

/// One observed data-memory access (instruction fetches are reported
/// separately via watcher::on_exec).
struct bus_access {
  std::uint16_t addr = 0;
  std::uint16_t value = 0;
  bool byte = false;
  bool write = false;
  bool dma = false;  ///< access came from the DMA engine, not the CPU
};

/// Observer interface for hardware monitors, tracers and tests.
class watcher {
 public:
  virtual ~watcher() = default;
  /// CPU data access or DMA transfer, after the value is known.
  virtual void on_access(const bus_access&) {}
  /// About to execute the instruction at `pc`.
  virtual void on_exec(std::uint16_t pc, const isa::instruction& ins) {
    (void)pc;
    (void)ins;
  }
  /// An interrupt is being serviced (vector address given).
  virtual void on_irq(std::uint16_t vector) { (void)vector; }
  /// Machine reset.
  virtual void on_reset() {}
};

/// A memory-mapped device claiming a byte range.
class mmio_device {
 public:
  virtual ~mmio_device() = default;
  virtual bool owns(std::uint16_t addr) const = 0;
  virtual std::uint8_t read8(std::uint16_t addr) = 0;
  virtual void write8(std::uint16_t addr, std::uint8_t value) = 0;
  /// Side-effect-free observation of the byte a CPU read8 would see.
  /// bus::peek8 routes device-owned addresses here, so the host/loader
  /// view and the CPU view give ONE authoritative answer per address —
  /// previously peeks bypassed devices and returned stale backing bytes.
  /// Devices whose read8 is already idempotent implement read8 in terms
  /// of this.
  virtual std::uint8_t peek8(std::uint16_t addr) const = 0;
};

class bus {
 public:
  explicit bus(const memory_map& map) : map_(map) {}

  const memory_map& map() const { return map_; }

  /// Observed accesses (CPU or DMA). Word accesses are little-endian; the
  /// low bit of the address is ignored for word ops (MSP430 alignment).
  std::uint8_t read8(std::uint16_t addr, bool dma = false);
  std::uint16_t read16(std::uint16_t addr, bool dma = false);
  void write8(std::uint16_t addr, std::uint8_t value, bool dma = false);
  void write16(std::uint16_t addr, std::uint16_t value, bool dma = false);

  /// Unobserved accesses for the host/loader and for instruction fetch
  /// (fetches are reported via watcher::on_exec instead).
  std::uint8_t peek8(std::uint16_t addr) const;
  std::uint16_t peek16(std::uint16_t addr) const;
  void poke8(std::uint16_t addr, std::uint8_t value);
  void poke16(std::uint16_t addr, std::uint16_t value);

  /// Zero all backing memory (devices and watchers are untouched) — the
  /// state a freshly constructed bus starts in. Part of machine::recycle.
  void clear_memory() { mem_.fill(0); }

  /// Device and watcher registration (non-owning). add_device indexes the
  /// device's owns() range into the page table; devices are never removed,
  /// so the table stays coherent across machine::recycle().
  void add_device(mmio_device* dev) {
    devices_.push_back(dev);
    index_device(dev);
  }
  void add_watcher(watcher* w) { watchers_.push_back(w); }
  void remove_watcher(const watcher* w);

  void notify_exec(std::uint16_t pc, const isa::instruction& ins);
  void notify_irq(std::uint16_t vector);
  void notify_reset();

 private:
  /// 64 KiB / 256 B page table entry: the dispatch decision for every
  /// address in the page, precomputed at add_device time so the per-byte
  /// `for (d : devices_) if (d->owns(addr))` scan is gone from the hot
  /// path. `dev == nullptr` (the overwhelmingly common case: all of RAM,
  /// OR and flash) means plain backing memory — a single array index.
  /// One device in the page still needs its per-address owns() check (a
  /// device may claim only a few bytes of the page); `multi` falls back
  /// to the registration-order scan so first-registered keeps priority.
  struct page_entry {
    mmio_device* dev = nullptr;
    bool multi = false;
  };
  static constexpr unsigned page_shift = 8;

  void index_device(mmio_device* dev);
  std::uint8_t raw_read8(std::uint16_t addr);
  void raw_write8(std::uint16_t addr, std::uint8_t value);
  std::uint8_t raw_peek8(std::uint16_t addr) const;
  void notify(const bus_access& a);

  memory_map map_;
  std::array<std::uint8_t, 0x10000> mem_{};
  std::array<page_entry, 0x100> pages_{};
  std::vector<mmio_device*> devices_;
  std::vector<watcher*> watchers_;
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_BUS_H
