// Device memory map for the emulated MSP430-class MCU (DESIGN.md §3).
// Everything is configurable so tests can build odd layouts, but the
// defaults model a low-end MSP430 with 4 KiB SRAM, the APEX METADATA block,
// the VRASED key/MAC storage and a secure ROM holding SW-Att.
#ifndef DIALED_EMU_MEMMAP_H
#define DIALED_EMU_MEMMAP_H

#include <cstdint>
#include <map>
#include <string>

namespace dialed::emu {

struct memory_map {
  // Data RAM.
  std::uint16_t ram_start = 0x0200;
  std::uint16_t ram_end = 0x11ff;  // inclusive

  // APEX output region OR (inside RAM). `or_max` is the address of the
  // topmost 16-bit log slot; the merged CF-Log/I-Log stack grows down from
  // it (paper §III-C, F5). Because that topmost SLOT spans bytes
  // [or_max, or_max+1], every OR snapshot — what SW-Att MACs, what the
  // prover ships in or_bytes, what the verifier replays — covers
  // [or_min, or_max+1] inclusive: or_max - or_min + 2 bytes. See the
  // layout note in src/proto/wire.h.
  std::uint16_t or_min = 0x0600;
  std::uint16_t or_max = 0x0dfe;

  // Initial stack pointer (top of RAM, grows down).
  std::uint16_t stack_init = 0x11fe;

  // VRASED secure storage: attestation key and the MAC output mailbox.
  std::uint16_t key_base = 0x1a00;
  std::uint16_t key_size = 32;
  std::uint16_t mac_base = 0x1a20;
  std::uint16_t mac_size = 32;

  // Secure ROM containing SW-Att; entering `srom_entry` triggers the
  // native SW-Att model in src/rot.
  std::uint16_t srom_start = 0xa000;
  std::uint16_t srom_end = 0xafff;

  // Program flash and interrupt vector table.
  std::uint16_t flash_start = 0xc000;
  std::uint16_t flash_end = 0xffdf;
  std::uint16_t ivt_start = 0xffe0;
  std::uint16_t reset_vector = 0xfffe;

  // Peripheral registers.
  std::uint16_t p3out = 0x0019;      ///< GPIO port 3 output (paper's actuator)
  std::uint16_t p3in = 0x0018;       ///< GPIO port 3 input
  std::uint16_t net_data = 0x0076;   ///< network RX FIFO head (pops on read)
  std::uint16_t net_avail = 0x0077;  ///< bytes available in RX FIFO
  std::uint16_t net_tx = 0x0078;     ///< network TX (host collects)
  std::uint16_t adc_mem = 0x0140;    ///< ADC sample register (16-bit)
  std::uint16_t tar = 0x0172;        ///< timer counter (low 16 bits of cycles)
  std::uint16_t halt_port = 0x01f0;  ///< write -> machine halts with code

  // Hardware argument/result mailboxes used by the generated crt0 to pass
  // embedded-operation arguments (host writes ARGS, reads RESULT).
  std::uint16_t args_base = 0x01a0;  ///< 8 words: arg0..arg7
  std::uint16_t result_addr = 0x01b0;

  // APEX METADATA block (hardware-owned; EXEC is read-only to software).
  std::uint16_t meta_base = 0x0180;

  bool in_ram(std::uint16_t a) const { return a >= ram_start && a <= ram_end; }
  bool in_or(std::uint16_t a) const {
    // 32-bit arithmetic: with or_max = 0xffff the uint16 cast used to wrap
    // or_max + 1 to 0, emptying the region instead of extending it to the
    // top byte. (Such a map is rejected by the verifier — see
    // firmware_artifact — but the predicate must not lie about it.)
    return a >= or_min && a <= static_cast<std::uint32_t>(or_max) + 1;
  }
  bool in_srom(std::uint16_t a) const {
    return a >= srom_start && a <= srom_end;
  }
  bool in_key(std::uint16_t a) const {
    return a >= key_base && a < key_base + key_size;
  }

  /// Symbols injected into every assembly, so sources can reference the
  /// layout by name (OR_MIN, OR_MAX, P3OUT, ...).
  std::map<std::string, std::uint16_t> predefined_symbols() const;

  /// Two maps are equal iff every field matches — used by the verifier's
  /// per-thread machine cache to decide whether a recycled machine can be
  /// reused for a different firmware.
  bool operator==(const memory_map&) const = default;
};

/// METADATA register offsets from memory_map::meta_base (word-aligned).
enum : std::uint16_t {
  META_ER_MIN = 0,
  META_ER_MAX = 2,
  META_OR_MIN = 4,
  META_OR_MAX = 6,
  META_EXEC = 8,      // read-only to software; owned by the APEX FSM
  META_CHAL = 10,     // 16-byte challenge, 10..25
  META_CHAL_SIZE = 16,
};

/// Halt codes written to memory_map::halt_port.
enum : std::uint16_t {
  HALT_CLEAN = 1,    ///< normal end of program
  HALT_ABORT = 2,    ///< instrumentation detected an illegal write/overflow
  HALT_FAULT = 3,    ///< runtime fault path
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_MEMMAP_H
