// MSP430 CPU core: fetch/decode/execute with full flag semantics, interrupt
// servicing and the SLAU049 cycle model. Data accesses go through the bus
// observers so the rot monitors see exactly what hardware would.
#ifndef DIALED_EMU_CPU_H
#define DIALED_EMU_CPU_H

#include <array>
#include <cstdint>
#include <optional>

#include "emu/bus.h"
#include "isa/isa.h"

namespace dialed::emu {

class cpu {
 public:
  explicit cpu(bus& b) : bus_(b) {}

  /// Load PC from the reset vector; clears registers and the cycle count.
  void reset();

  /// Return to the just-constructed state (all registers, the cycle count
  /// and any pending interrupt cleared) WITHOUT touching the bus — unlike
  /// reset(), no reset vector is fetched and no watcher is notified. Part
  /// of machine::recycle.
  void hard_clear() {
    regs_.fill(0);
    cycles_ = 0;
    pending_irq_.reset();
  }

  struct step_info {
    std::uint16_t pc = 0;       ///< address of the executed instruction
    isa::instruction ins{};     ///< decoded instruction (undefined for irq)
    int cycles = 0;
    bool serviced_irq = false;  ///< this step took an interrupt instead
  };

  /// Service a pending interrupt (if GIE) or execute one instruction.
  step_info step();

  /// Same as step(), but `pre` must be the decode of the bytes currently at
  /// PC — the caller already decoded them (e.g. from a firmware artifact's
  /// instruction index) and the fetch/decode is skipped. A pending
  /// interrupt still preempts the instruction exactly as in step().
  step_info step(const isa::decoded& pre);

  std::array<std::uint16_t, 16>& regs() { return regs_; }
  const std::array<std::uint16_t, 16>& regs() const { return regs_; }
  std::uint16_t pc() const { return regs_[isa::REG_PC]; }
  void set_pc(std::uint16_t v) { regs_[isa::REG_PC] = v; }
  std::uint64_t cycles() const { return cycles_; }

  /// Charge extra cycles (used by the native SW-Att model to account for
  /// the cost the routine would have on the real MCU).
  void add_cycles(std::uint64_t n) { cycles_ += n; }

  /// Assert interrupt `index` (vector at ivt_start + 2*index). It is
  /// serviced before the next instruction if GIE is set, otherwise it stays
  /// pending.
  void request_interrupt(int index) { pending_irq_ = index; }
  bool irq_pending() const { return pending_irq_.has_value(); }

 private:
  struct operand_ref {
    bool is_reg = true;
    std::uint8_t reg = 0;
    std::uint16_t addr = 0;
  };

  step_info step_impl(const isa::decoded* pre);
  std::uint16_t read_operand(const isa::operand& op, bool byte,
                             operand_ref* ref);
  std::uint16_t read_ref(const operand_ref& ref, bool byte);
  void write_ref(const operand_ref& ref, std::uint16_t value, bool byte);

  // Execution is direct-threaded: a 27-entry table maps opcode -> handler,
  // replacing the old is_jump/is_format2/format-I branch chain. decode()
  // only ever yields the 27 enumerators, so the table index is total.
  using exec_fn = void (cpu::*)(const isa::instruction&);
  static const std::array<exec_fn, 27> exec_table_;
  void execute(const isa::instruction& ins) {
    (this->*exec_table_[static_cast<std::uint8_t>(ins.op)])(ins);
  }
  void exec_format1(const isa::instruction& ins);
  void exec_format2(const isa::instruction& ins);
  void exec_jump(const isa::instruction& ins);
  void exec_reti(const isa::instruction& ins);

  // Flag helpers (operate on regs_[SR]).
  bool flag(std::uint16_t bit) const { return (regs_[isa::REG_SR] & bit) != 0; }
  void set_flag(std::uint16_t bit, bool v) {
    if (v) {
      regs_[isa::REG_SR] |= bit;
    } else {
      regs_[isa::REG_SR] &= static_cast<std::uint16_t>(~bit);
    }
  }
  void set_nz(std::uint16_t result, bool byte);

  void push_word(std::uint16_t v);
  std::uint16_t pop_word();

  bus& bus_;
  std::array<std::uint16_t, 16> regs_{};
  std::uint64_t cycles_ = 0;
  std::optional<int> pending_irq_;
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_CPU_H
