// Execution tracer + coverage profiler: a bus watcher recording every
// retired instruction. Used for attestation forensics (which ER code ran,
// how often), for the Fig. 6(b)-style hotspot breakdowns, and by tests to
// assert path properties.
#ifndef DIALED_EMU_TRACE_H
#define DIALED_EMU_TRACE_H

#include <cstdint>
#include <map>
#include <vector>

#include "emu/bus.h"
#include "masm/masm.h"

namespace dialed::emu {

class tracer final : public watcher {
 public:
  struct options {
    /// Keep the full instruction sequence (not just counts). Bounded by
    /// `max_trace_entries`; beyond it only counts keep accumulating.
    bool record_sequence = false;
    std::size_t max_trace_entries = 1'000'000;
  };

  struct entry {
    std::uint16_t pc;
    isa::instruction ins;
  };

  tracer() = default;
  explicit tracer(options opts) : opts_(opts) {}

  void on_exec(std::uint16_t pc, const isa::instruction& ins) override {
    ++counts_[pc];
    ++total_;
    if (opts_.record_sequence && seq_.size() < opts_.max_trace_entries) {
      seq_.push_back({pc, ins});
    }
  }
  void on_reset() override {}

  /// Per-address execution counts.
  const std::map<std::uint16_t, std::uint64_t>& counts() const {
    return counts_;
  }
  std::uint64_t total_executed() const { return total_; }
  const std::vector<entry>& sequence() const { return seq_; }
  void clear() {
    counts_.clear();
    seq_.clear();
    total_ = 0;
  }

  /// The `n` most frequently executed addresses (hotspots), descending.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> hotspots(
      std::size_t n) const;

  struct coverage {
    int executed = 0;  ///< listed instructions that ran at least once
    int total = 0;     ///< listed instructions in the range
    std::vector<std::uint16_t> never_executed;

    double percent() const {
      return total == 0 ? 0.0 : 100.0 * executed / total;
    }
  };

  /// Instruction coverage over the image's listing, restricted to
  /// addresses within [lo, hi].
  coverage cover(const masm::image& img, std::uint16_t lo,
                 std::uint16_t hi) const;

 private:
  options opts_{};
  std::map<std::uint16_t, std::uint64_t> counts_;
  std::vector<entry> seq_;
  std::uint64_t total_ = 0;
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_TRACE_H
