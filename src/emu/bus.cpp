#include "emu/bus.h"

#include <algorithm>

namespace dialed::emu {

void bus::index_device(mmio_device* dev) {
  // Probe the device's full claim once at registration (owns() is pure by
  // contract) instead of on every access. Registration is cold; accesses
  // are the emulator's innermost loop.
  for (std::uint32_t a = 0; a <= 0xffff; ++a) {
    if (!dev->owns(static_cast<std::uint16_t>(a))) continue;
    page_entry& p = pages_[a >> page_shift];
    if (p.dev == nullptr) {
      p.dev = dev;
    } else if (p.dev != dev) {
      p.multi = true;
    }
  }
}

std::uint8_t bus::raw_read8(std::uint16_t addr) {
  const page_entry& p = pages_[addr >> page_shift];
  if (p.dev == nullptr) return mem_[addr];
  if (!p.multi) {
    return p.dev->owns(addr) ? p.dev->read8(addr) : mem_[addr];
  }
  for (mmio_device* d : devices_) {
    if (d->owns(addr)) return d->read8(addr);
  }
  return mem_[addr];
}

void bus::raw_write8(std::uint16_t addr, std::uint8_t value) {
  const page_entry& p = pages_[addr >> page_shift];
  if (p.dev == nullptr) {
    mem_[addr] = value;
    return;
  }
  if (!p.multi) {
    if (p.dev->owns(addr)) {
      p.dev->write8(addr, value);
    } else {
      mem_[addr] = value;
    }
    return;
  }
  for (mmio_device* d : devices_) {
    if (d->owns(addr)) {
      d->write8(addr, value);
      return;
    }
  }
  mem_[addr] = value;
}

std::uint8_t bus::raw_peek8(std::uint16_t addr) const {
  // Same page-table dispatch as the CPU path: a peek of a device-owned
  // address reports the device's (side-effect-free) register view, never
  // the stale backing byte underneath it.
  const page_entry& p = pages_[addr >> page_shift];
  if (p.dev == nullptr) return mem_[addr];
  if (!p.multi) {
    return p.dev->owns(addr) ? p.dev->peek8(addr) : mem_[addr];
  }
  for (const mmio_device* d : devices_) {
    if (d->owns(addr)) return d->peek8(addr);
  }
  return mem_[addr];
}

void bus::notify(const bus_access& a) {
  for (watcher* w : watchers_) w->on_access(a);
}

std::uint8_t bus::read8(std::uint16_t addr, bool dma) {
  const std::uint8_t v = raw_read8(addr);
  if (!watchers_.empty()) notify({addr, v, true, false, dma});
  return v;
}

std::uint16_t bus::read16(std::uint16_t addr, bool dma) {
  const std::uint16_t a = addr & 0xfffe;
  const std::uint16_t v = static_cast<std::uint16_t>(
      raw_read8(a) | (raw_read8(static_cast<std::uint16_t>(a + 1)) << 8));
  if (!watchers_.empty()) notify({a, v, false, false, dma});
  return v;
}

void bus::write8(std::uint16_t addr, std::uint8_t value, bool dma) {
  raw_write8(addr, value);
  if (!watchers_.empty()) notify({addr, value, true, true, dma});
}

void bus::write16(std::uint16_t addr, std::uint16_t value, bool dma) {
  const std::uint16_t a = addr & 0xfffe;
  raw_write8(a, static_cast<std::uint8_t>(value & 0xff));
  raw_write8(static_cast<std::uint16_t>(a + 1),
             static_cast<std::uint8_t>(value >> 8));
  if (!watchers_.empty()) notify({a, value, false, true, dma});
}

std::uint8_t bus::peek8(std::uint16_t addr) const { return raw_peek8(addr); }

std::uint16_t bus::peek16(std::uint16_t addr) const {
  const std::uint16_t a = addr & 0xfffe;
  return static_cast<std::uint16_t>(
      raw_peek8(a) | (raw_peek8(static_cast<std::uint16_t>(a + 1)) << 8));
}

void bus::poke8(std::uint16_t addr, std::uint8_t value) { mem_[addr] = value; }

void bus::poke16(std::uint16_t addr, std::uint16_t value) {
  const std::uint16_t a = addr & 0xfffe;
  mem_[a] = static_cast<std::uint8_t>(value & 0xff);
  mem_[a + 1] = static_cast<std::uint8_t>(value >> 8);
}

void bus::remove_watcher(const watcher* w) {
  watchers_.erase(std::remove(watchers_.begin(), watchers_.end(), w),
                  watchers_.end());
}

void bus::notify_exec(std::uint16_t pc, const isa::instruction& ins) {
  for (watcher* w : watchers_) w->on_exec(pc, ins);
}

void bus::notify_irq(std::uint16_t vector) {
  for (watcher* w : watchers_) w->on_irq(vector);
}

void bus::notify_reset() {
  for (watcher* w : watchers_) w->on_reset();
}

}  // namespace dialed::emu
