#include "emu/peripherals.h"

#include "common/error.h"

namespace dialed::emu {

std::uint8_t gpio_device::peek8(std::uint16_t addr) const {
  if (addr == map_.p3in) return p3in_;
  return p3out_;
}

void gpio_device::write8(std::uint16_t addr, std::uint8_t value) {
  if (addr == map_.p3out) {
    p3out_ = value;
    history_.push_back({now_(), value});
  }
  // Writes to the input register are ignored, as on hardware.
}

std::uint8_t net_device::peek8(std::uint16_t addr) const {
  if (addr == map_.net_data) {
    // Idempotent read of the FIFO head: the DIALED logging stub and the
    // instrumented instruction each read the register once (paper Fig. 5
    // reads the source twice), so reads must not self-advance. Software
    // acknowledges the byte by writing NET_DATA.
    return rx_.empty() ? 0 : rx_.front();
  }
  if (addr == map_.net_avail) {
    return static_cast<std::uint8_t>(
        rx_.size() > 0xff ? 0xff : rx_.size());
  }
  return 0;
}

void net_device::write8(std::uint16_t addr, std::uint8_t value) {
  if (addr == map_.net_tx) tx_.push_back(value);
  if (addr == map_.net_data && !rx_.empty()) rx_.pop_front();  // ack/advance
}

std::uint8_t adc_device::peek8(std::uint16_t addr) const {
  // Reads are idempotent (see net_device::peek8): they return the last
  // converted sample. A write to ADC_MEM triggers the next conversion.
  if (addr == map_.adc_mem) {
    return static_cast<std::uint8_t>(last_ & 0xff);
  }
  return static_cast<std::uint8_t>(last_ >> 8);
}

void adc_device::write8(std::uint16_t addr, std::uint8_t) {
  // Only the low-byte (control) write triggers, so a 16-bit store to
  // ADC_MEM converts exactly one sample.
  if (addr != map_.adc_mem) return;
  if (!samples_.empty()) {
    last_ = samples_.front();
    samples_.pop_front();
  }
}

std::uint8_t timer_device::peek8(std::uint16_t addr) const {
  const std::uint16_t t = static_cast<std::uint16_t>(now_() & 0xffff);
  if (addr == map_.tar) return static_cast<std::uint8_t>(t & 0xff);
  return static_cast<std::uint8_t>(t >> 8);
}

void halt_device::write8(std::uint16_t addr, std::uint8_t value) {
  if (addr == map_.halt_port) {
    low_ = value;
    halt_(low_);  // byte write halts immediately with the byte code
  } else {
    halt_(static_cast<std::uint16_t>((value << 8) | low_));
  }
}

std::uint8_t mailbox_device::peek8(std::uint16_t addr) const {
  if (addr >= map_.args_base && addr < map_.args_base + 16) {
    const int off = addr - map_.args_base;
    const std::uint16_t w = args_[static_cast<std::size_t>(off / 2)];
    return static_cast<std::uint8_t>((off % 2) ? (w >> 8) : (w & 0xff));
  }
  if (addr == map_.result_addr) {
    return static_cast<std::uint8_t>(result_ & 0xff);
  }
  return static_cast<std::uint8_t>(result_ >> 8);
}

void mailbox_device::write8(std::uint16_t addr, std::uint8_t value) {
  if (addr == map_.result_addr) {
    result_ = static_cast<std::uint16_t>((result_ & 0xff00) | value);
    return;
  }
  if (addr == static_cast<std::uint16_t>(map_.result_addr + 1)) {
    result_ = static_cast<std::uint16_t>((result_ & 0x00ff) | (value << 8));
    return;
  }
  const int off = addr - map_.args_base;
  auto& w = args_[static_cast<std::size_t>(off / 2)];
  if (off % 2) {
    w = static_cast<std::uint16_t>((w & 0x00ff) | (value << 8));
  } else {
    w = static_cast<std::uint16_t>((w & 0xff00) | value);
  }
}

void mailbox_device::set_arg(int i, std::uint16_t v) {
  if (i < 0 || i > 7) throw error("emu: argument index out of range");
  args_[static_cast<std::size_t>(i)] = v;
}

std::uint16_t mailbox_device::arg(int i) const {
  if (i < 0 || i > 7) throw error("emu: argument index out of range");
  return args_[static_cast<std::size_t>(i)];
}

}  // namespace dialed::emu
