// Memory-mapped peripherals of the emulated device: GPIO (the paper's
// actuation port P3OUT), a network/UART RX-TX mailbox, an ADC sample queue,
// a free-running timer, host argument/result mailboxes and the halt latch.
#ifndef DIALED_EMU_PERIPHERALS_H
#define DIALED_EMU_PERIPHERALS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "emu/bus.h"
#include "emu/memmap.h"

namespace dialed::emu {

/// GPIO port 3 (extendable to other ports). Records every write to P3OUT
/// with its cycle stamp so tests can check actuation behaviour (e.g. "was
/// the medicine pump ever driven?", paper §II-B).
class gpio_device final : public mmio_device {
 public:
  gpio_device(const memory_map& map, std::function<std::uint64_t()> now)
      : map_(map), now_(std::move(now)) {}

  struct write_record {
    std::uint64_t cycle;
    std::uint8_t value;
  };

  bool owns(std::uint16_t addr) const override {
    return addr == map_.p3out || addr == map_.p3in;
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t addr, std::uint8_t value) override;

  void set_input(std::uint8_t v) { p3in_ = v; }
  std::uint8_t output() const { return p3out_; }
  const std::vector<write_record>& history() const { return history_; }
  void clear_history() { history_.clear(); }

 private:
  memory_map map_;
  std::function<std::uint64_t()> now_;
  std::uint8_t p3in_ = 0;
  std::uint8_t p3out_ = 0;
  std::vector<write_record> history_;
};

/// Network / UART mailbox: the host pushes RX bytes; the program reads the
/// FIFO head at net_data (idempotent), acknowledges it by writing net_data,
/// and polls net_avail; TX bytes written to net_tx are collected for the
/// host.
class net_device final : public mmio_device {
 public:
  explicit net_device(const memory_map& map) : map_(map) {}

  bool owns(std::uint16_t addr) const override {
    return addr == map_.net_data || addr == map_.net_avail ||
           addr == map_.net_tx;
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t addr, std::uint8_t value) override;

  void push_rx(std::uint8_t b) { rx_.push_back(b); }
  void push_rx_word(std::uint16_t w) {
    rx_.push_back(static_cast<std::uint8_t>(w & 0xff));
    rx_.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  const std::vector<std::uint8_t>& tx() const { return tx_; }

 private:
  memory_map map_;
  std::deque<std::uint8_t> rx_;
  std::vector<std::uint8_t> tx_;
};

/// ADC with a host-fed sample queue. A write to adc_mem triggers the next
/// conversion (pops the queue into the result register); reads return the
/// last converted sample and are side-effect free, as the read-twice
/// instrumentation requires.
class adc_device final : public mmio_device {
 public:
  explicit adc_device(const memory_map& map) : map_(map) {}

  bool owns(std::uint16_t addr) const override {
    return addr == map_.adc_mem ||
           addr == static_cast<std::uint16_t>(map_.adc_mem + 1);
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t addr, std::uint8_t value) override;

  void push_sample(std::uint16_t s) { samples_.push_back(s); }

 private:
  memory_map map_;
  std::deque<std::uint16_t> samples_;
  std::uint16_t last_ = 0;
};

/// Free-running timer: TAR reads the low 16 bits of the cycle counter.
class timer_device final : public mmio_device {
 public:
  timer_device(const memory_map& map, std::function<std::uint64_t()> now)
      : map_(map), now_(std::move(now)) {}

  bool owns(std::uint16_t addr) const override {
    return addr == map_.tar ||
           addr == static_cast<std::uint16_t>(map_.tar + 1);
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t, std::uint8_t) override {}

 private:
  memory_map map_;
  std::function<std::uint64_t()> now_;
};

/// Halt latch: any write stops the machine with the written value as code.
class halt_device final : public mmio_device {
 public:
  halt_device(const memory_map& map, std::function<void(std::uint16_t)> halt)
      : map_(map), halt_(std::move(halt)) {}

  bool owns(std::uint16_t addr) const override {
    return addr == map_.halt_port ||
           addr == static_cast<std::uint16_t>(map_.halt_port + 1);
  }
  std::uint8_t read8(std::uint16_t) override { return 0; }
  std::uint8_t peek8(std::uint16_t) const override { return 0; }
  void write8(std::uint16_t addr, std::uint8_t value) override;

 private:
  memory_map map_;
  std::function<void(std::uint16_t)> halt_;
  std::uint8_t low_ = 0;
};

/// Host-writable argument words (arg0..arg7) and the result word; the
/// generated crt0 loads r15..r8 from here before calling the attested op.
class mailbox_device final : public mmio_device {
 public:
  explicit mailbox_device(const memory_map& map) : map_(map) {}

  bool owns(std::uint16_t addr) const override {
    return (addr >= map_.args_base && addr < map_.args_base + 16) ||
           addr == map_.result_addr ||
           addr == static_cast<std::uint16_t>(map_.result_addr + 1);
  }
  std::uint8_t read8(std::uint16_t addr) override { return peek8(addr); }
  std::uint8_t peek8(std::uint16_t addr) const override;
  void write8(std::uint16_t addr, std::uint8_t value) override;

  void set_arg(int i, std::uint16_t v);
  std::uint16_t arg(int i) const;
  std::uint16_t result() const { return result_; }

 private:
  memory_map map_;
  std::array<std::uint16_t, 8> args_{};
  std::uint16_t result_ = 0;
};

}  // namespace dialed::emu

#endif  // DIALED_EMU_PERIPHERALS_H
