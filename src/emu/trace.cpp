#include "emu/trace.h"

#include <algorithm>

namespace dialed::emu {

std::vector<std::pair<std::uint16_t, std::uint64_t>> tracer::hotspots(
    std::size_t n) const {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> all(counts_.begin(),
                                                           counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

tracer::coverage tracer::cover(const masm::image& img, std::uint16_t lo,
                               std::uint16_t hi) const {
  coverage c;
  for (const auto& e : img.listing) {
    if (e.address < lo || e.address > hi) continue;
    ++c.total;
    if (counts_.count(e.address)) {
      ++c.executed;
    } else {
      c.never_executed.push_back(e.address);
    }
  }
  return c;
}

}  // namespace dialed::emu
