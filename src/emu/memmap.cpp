#include "emu/memmap.h"

namespace dialed::emu {

std::map<std::string, std::uint16_t> memory_map::predefined_symbols() const {
  return {
      {"RAM_START", ram_start},
      {"RAM_END", ram_end},
      {"OR_MIN", or_min},
      {"OR_MAX", or_max},
      {"STACK_INIT", stack_init},
      {"KEY_BASE", key_base},
      {"MAC_BASE", mac_base},
      {"SROM_ENTRY", srom_start},
      {"FLASH_START", flash_start},
      {"IVT_START", ivt_start},
      {"RESET_VECTOR", reset_vector},
      {"P3OUT", p3out},
      {"P3IN", p3in},
      {"NET_DATA", net_data},
      {"NET_AVAIL", net_avail},
      {"NET_TX", net_tx},
      {"ADC_MEM", adc_mem},
      {"TAR", tar},
      {"HALT_PORT", halt_port},
      {"ARGS_BASE", args_base},
      {"RESULT", result_addr},
      {"META_BASE", meta_base},
      {"META_ER_MIN", static_cast<std::uint16_t>(meta_base + META_ER_MIN)},
      {"META_ER_MAX", static_cast<std::uint16_t>(meta_base + META_ER_MAX)},
      {"META_OR_MIN", static_cast<std::uint16_t>(meta_base + META_OR_MIN)},
      {"META_OR_MAX", static_cast<std::uint16_t>(meta_base + META_OR_MAX)},
      {"META_EXEC", static_cast<std::uint16_t>(meta_base + META_EXEC)},
      {"META_CHAL", static_cast<std::uint16_t>(meta_base + META_CHAL)},
      {"HALT_CLEAN", HALT_CLEAN},
      {"HALT_ABORT", HALT_ABORT},
      {"HALT_FAULT", HALT_FAULT},
  };
}

}  // namespace dialed::emu
