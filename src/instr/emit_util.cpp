#include "instr/emit_util.h"

#include "common/error.h"
#include "instr/passes.h"

namespace dialed::instr::detail {

using masm::imm_operand;
using masm::lit;
using masm::operand_ast;
using masm::symref;

void stub_builder::far_fail() {
  // br #__er_fail  ==  mov #__er_fail, pc
  instr(isa::opcode::mov,
        {imm_operand(symref(er_fail_label)), masm::reg_operand(isa::REG_PC)});
}

void stub_builder::push_log(const operand_ast& value, bool byte_value) {
  const operand_ast slot = masm::idx_operand(isa::REG_LOGPTR, lit(0));
  if (byte_value) {
    instr(isa::opcode::mov, {imm_operand(lit(0)), slot});
    instr(isa::opcode::mov, {value, slot}, /*byte_op=*/true);
  } else {
    instr(isa::opcode::mov, {value, slot});
  }
  // decd r4
  instr(isa::opcode::sub,
        {imm_operand(lit(2)), masm::reg_operand(isa::REG_LOGPTR)});
  // cmp #OR_MIN, r4 ; jhs ok (r4 >= OR_MIN, unsigned) ; br #__er_fail ; ok:
  instr(isa::opcode::cmp,
        {imm_operand(symref("OR_MIN")), masm::reg_operand(isa::REG_LOGPTR)});
  const std::string ok = fresh_label("ok");
  jump(isa::opcode::jc, ok);  // jc == jhs
  far_fail();
  label(ok);
}

bool reads_memory(const operand_ast& o) {
  using isa::addr_mode;
  switch (o.mode) {
    case addr_mode::indexed:
    case addr_mode::symbolic:
    case addr_mode::absolute:
    case addr_mode::indirect:
    case addr_mode::indirect_inc:
      return true;
    default:
      return false;
  }
}

void emit_ea_to_scratch(stub_builder& b, const operand_ast& o,
                        int source_line) {
  using isa::addr_mode;
  const operand_ast scratch = masm::reg_operand(isa::REG_SCRATCH);
  switch (o.mode) {
    case addr_mode::indirect:
    case addr_mode::indirect_inc:
      if (o.reg == isa::REG_SCRATCH || o.reg == isa::REG_LOGPTR) {
        throw error("instr:" + std::to_string(source_line) +
                    ": operand uses a reserved register (r4/r5)");
      }
      b.instr(isa::opcode::mov, {masm::reg_operand(o.reg), scratch});
      return;
    case addr_mode::indexed:
      if (o.reg == isa::REG_SCRATCH || o.reg == isa::REG_LOGPTR) {
        throw error("instr:" + std::to_string(source_line) +
                    ": operand uses a reserved register (r4/r5)");
      }
      b.instr(isa::opcode::mov, {masm::reg_operand(o.reg), scratch});
      b.instr(isa::opcode::add, {imm_operand(o.e), scratch});
      return;
    case addr_mode::absolute:
    case addr_mode::symbolic:
      b.instr(isa::opcode::mov, {imm_operand(o.e), scratch});
      return;
    default:
      throw error("instr:" + std::to_string(source_line) +
                  ": operand has no memory address");
  }
}

std::optional<std::uint16_t> resolve_static_addr(
    const operand_ast& o,
    const std::map<std::string, std::uint16_t>& symbols) {
  using isa::addr_mode;
  if (o.mode != addr_mode::absolute && o.mode != addr_mode::symbolic) {
    return std::nullopt;
  }
  std::int32_t v = o.e.offset;
  if (!o.e.sym.empty()) {
    const auto it = symbols.find(o.e.sym);
    if (it == symbols.end()) return std::nullopt;
    v += it->second;
  }
  return static_cast<std::uint16_t>(v & 0xffff);
}

}  // namespace dialed::instr::detail
