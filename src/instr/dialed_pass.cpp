// DIALED instrumentation (paper §IV; features F3 and F4 of §III-C).
//
// F3 — argument logging (paper Fig. 4): at the ER entry, after Tiny-CFA's
// r4 check, the current stack pointer is saved to the OR_MAX slot (it
// defines the base of the op's stack for the run) and all eight argument
// registers r8..r15 are pushed onto the log, r8 first.
//
// F4 — runtime data-input logging (paper Fig. 5): every instruction that
// reads data memory is preceded by a stub that computes the effective
// address into r5, tests it against the op's current stack [r1, base] with
// base read back from the OR_MAX slot, and logs the read value when the
// address lies outside (Definition 1). Byte reads occupy a zero-extended
// word slot.
//
// Deviations from the paper's listings (documented in DESIGN.md §1): word
// slots use `decd r4`; the Fig. 5 comparison senses are implemented as the
// prose/Definition 1 describe; stubs run before their instruction so that
// read-modify-write destinations are logged with their pre-write value.
#include "common/error.h"
#include "instr/emit_util.h"
#include "instr/passes.h"

namespace dialed::instr {

namespace {

using detail::stub_builder;
using masm::imm_operand;
using masm::lit;
using masm::operand_ast;
using masm::stmt;
using masm::symref;
using isa::addr_mode;
using isa::opcode;

/// Emit the F3 entry block: save SP, then log r8..r15.
void emit_entry_logging(stub_builder& b) {
  b.push_log(masm::reg_operand(isa::REG_SP));
  for (std::uint8_t r = 8; r <= 15; ++r) {
    b.push_log(masm::reg_operand(r));
  }
}

/// Emit the F4 stub for one memory-reading operand of `s`:
///     <ea -> r5>
///     cmp r1, r5        ; r5 - r1
///     jlo log           ; below the stack top -> outside -> input
///     cmp r5, &OR_MAX   ; base - r5
///     jhs skip          ; base >= r5 -> inside [r1, base] -> not an input
///   log:
///     <push_log @r5>
///   skip:
void emit_read_stub(stub_builder& b, const operand_ast& o, bool byte_read,
                    const pass_options& opts, int line) {
  // Static classification (sound under Definition 1; see passes.h).
  if (opts.static_read_filter && !opts.log_all_reads) {
    if ((o.mode == addr_mode::indexed || o.mode == addr_mode::indirect ||
         o.mode == addr_mode::indirect_inc) &&
        o.reg == isa::REG_SP) {
      return;  // frame slot or stack pop: statically inside [r1, base]
    }
    if (const auto addr = detail::resolve_static_addr(o, opts.symbols)) {
      const std::uint16_t stack_lo =
          static_cast<std::uint16_t>(opts.map.or_max + 2);
      const std::uint16_t stack_hi =
          static_cast<std::uint16_t>(opts.map.stack_init + 1);
      if (*addr < stack_lo || *addr > stack_hi) {
        b.push_log(o, byte_read);  // statically an input: log unconditionally
        return;
      }
      // Inside the stack region: fall through to the dynamic check.
    }
  }

  detail::emit_ea_to_scratch(b, o, line);
  const operand_ast scratch = masm::reg_operand(isa::REG_SCRATCH);
  const std::string do_log = b.fresh_label("dfa_log");
  const std::string skip = b.fresh_label("dfa_skip");
  if (!opts.log_all_reads) {
    b.instr(opcode::cmp, {masm::reg_operand(isa::REG_SP), scratch});
    b.jump(opcode::jnc, do_log);  // jlo: r5 < r1
    b.instr(opcode::cmp, {scratch, masm::abs_operand(symref("OR_MAX"))});
    b.jump(opcode::jc, skip);  // jhs: base >= r5 -> inside the stack
    b.label(do_log);
  }
  b.push_log(masm::ind_operand(isa::REG_SCRATCH), byte_read);
  b.label(skip);
}

/// The memory-reading operands of an instruction, in evaluation order.
std::vector<const operand_ast*> reading_operands(const stmt& s) {
  std::vector<const operand_ast*> out;
  if (isa::is_jump(s.op) || s.op == opcode::reti) return out;
  if (isa::is_format2(s.op)) {
    // rra/rrc/sxt read-modify-write their operand; push and call read it.
    if (!s.ops.empty() && detail::reads_memory(s.ops[0])) {
      out.push_back(&s.ops[0]);
    }
    return out;
  }
  // Format I: the source always reads; the destination reads for every
  // opcode except mov (cmp/bit read it too).
  if (s.ops.size() == 2) {
    if (detail::reads_memory(s.ops[0])) out.push_back(&s.ops[0]);
    if (s.op != opcode::mov && detail::reads_memory(s.ops[1])) {
      out.push_back(&s.ops[1]);
    }
  }
  return out;
}

}  // namespace

masm::module_src dialed_pass(const masm::module_src& in,
                             const pass_options& opts) {
  masm::module_src out;
  int label_counter = 100000;  // disjoint from Tiny-CFA's stub labels
  bool entry_emitted = false;

  bool has_tinycfa_entry = false;
  for (const auto& s : in.stmts) {
    if (s.k == stmt::kind::label && s.label == "__tinycfa_entry_done") {
      has_tinycfa_entry = true;
      break;
    }
  }

  for (const auto& s : in.stmts) {
    if (s.k == stmt::kind::label) {
      out.stmts.push_back(s);
      // After Tiny-CFA's entry check if present, else right at the entry.
      if (s.label == "__tinycfa_entry_done" ||
          (s.label == er_entry_label && !has_tinycfa_entry)) {
        stub_builder b(label_counter);
        emit_entry_logging(b);
        for (auto& st : b.take()) out.stmts.push_back(std::move(st));
        entry_emitted = true;
      }
      continue;
    }
    if (s.k != stmt::kind::instruction || s.synthetic) {
      out.stmts.push_back(s);
      continue;
    }
    const auto reads = reading_operands(s);
    if (!reads.empty()) {
      stub_builder b(label_counter);
      for (const operand_ast* o : reads) {
        emit_read_stub(b, *o, s.byte_op, opts, s.line);
      }
      for (auto& st : b.take()) out.stmts.push_back(std::move(st));
    }
    out.stmts.push_back(s);
  }

  if (!entry_emitted) {
    throw error(
        "instr: dialed_pass found no ER entry point (__er_start / "
        "__tinycfa_entry_done)");
  }
  return out;
}

}  // namespace dialed::instr
