#include "instr/oplink.h"

#include <algorithm>

#include "common/error.h"
#include "masm/masm.h"

namespace dialed::instr {

using masm::imm_operand;
using masm::lit;
using masm::stmt;
using masm::symref;
using isa::opcode;

std::string to_string(instrumentation m) {
  switch (m) {
    case instrumentation::none: return "Original";
    case instrumentation::tinycfa: return "Tiny-CFA";
    case instrumentation::dialed: return "DIALED";
  }
  return "?";
}

namespace {

stmt synth(stmt s) {
  s.synthetic = true;
  return s;
}

/// crt0: runtime startup outside the ER (untrusted, unattested — exactly
/// the code whose behaviour the attestation does NOT need to trust).
std::string crt0_text(const cc::compile_result& cr,
                      const std::map<std::string, std::uint16_t>& globals) {
  std::string t;
  t += "__start:\n";
  t += "        mov #STACK_INIT, sp\n";
  // Zero the output region so reports are deterministic and stale logs
  // cannot be replayed.
  t += "        mov #OR_MIN, r13\n";
  t += "__or_clr:\n";
  t += "        mov #0, 0(r13)\n";
  t += "        incd r13\n";
  t += "        cmp #OR_MAX+2, r13\n";
  t += "        jlo __or_clr\n";
  // C semantics: globals are zero-initialized, then explicit initializers
  // are applied element-wise.
  for (const auto& g : cr.globals) {
    const std::uint16_t base = globals.at(g.name);
    const int elem = g.is_char ? 1 : 2;
    const int count = g.size_bytes / elem;
    for (int i = 0; i < count; ++i) {
      const std::uint16_t addr = static_cast<std::uint16_t>(base + i * elem);
      std::int32_t v = 0;
      if (static_cast<std::size_t>(i) < g.init.size()) v = g.init[i];
      if (!g.is_array && !g.init.empty()) v = g.init[0];
      const std::string mn = g.is_char ? "mov.b" : "mov";
      t += "        " + mn + " #" + std::to_string(v) + ", &" +
           std::to_string(addr) + "\n";
    }
  }
  // Log pointer (checked by Tiny-CFA at the ER entry) and arguments.
  t += "        mov #OR_MAX, r4\n";
  for (int i = 0; i < 8; ++i) {
    t += "        mov &ARGS_BASE+" + std::to_string(2 * i) + ", r" +
         std::to_string(15 - i) + "\n";
  }
  t += "        call #__er_start\n";
  t += "        mov r15, &RESULT\n";
  t += "        call #SROM_ENTRY\n";
  t += "        mov #HALT_CLEAN, &HALT_PORT\n";
  t += "__spin:\n";
  t += "        jmp __spin\n";
  return t;
}

}  // namespace

byte_vec linked_program::er_bytes() const {
  for (const auto& seg : image.segments) {
    if (seg.base <= er_min && seg.end() > er_max) {
      const std::size_t off = er_min - seg.base;
      const std::size_t len = static_cast<std::size_t>(er_max) + 2 - er_min;
      return byte_vec(seg.bytes.begin() + static_cast<std::ptrdiff_t>(off),
                      seg.bytes.begin() +
                          static_cast<std::ptrdiff_t>(off + len));
    }
  }
  throw error("instr: ER segment not found in linked image");
}

linked_program link_operation(const cc::compile_result& cr,
                              const link_options& opts) {
  // ---- check the entry ----
  const bool entry_exists =
      std::any_of(cr.functions.begin(), cr.functions.end(),
                  [&](const auto& f) { return f.name == opts.entry; });
  if (!entry_exists) {
    throw error("instr: entry function '" + opts.entry + "' not found");
  }

  // ---- assign global addresses ----
  std::map<std::string, std::uint16_t> global_addrs;
  std::uint32_t ram = opts.map.ram_start;
  for (const auto& g : cr.globals) {
    if (ram % 2 != 0) ++ram;
    global_addrs[g.name] = static_cast<std::uint16_t>(ram);
    ram += static_cast<std::uint32_t>(g.size_bytes);
  }
  if (ram > opts.map.or_min) {
    throw error("instr: globals overflow into the output region");
  }

  // ---- ER module: trampoline + abort handler + helpers + functions ----
  std::string er_body = cc::runtime_asm(cr.helpers);
  for (const auto& [name, text] : cr.function_text) {
    if (name != opts.entry) er_body += text;
  }
  for (const auto& [name, text] : cr.function_text) {
    if (name == opts.entry) er_body += text;
  }

  masm::module_src er;
  {
    stmt org = masm::make_directive("org", {lit(opts.er_base)});
    er.stmts.push_back(std::move(org));
    er.stmts.push_back(masm::make_label(er_entry_label));
    er.stmts.push_back(synth(masm::make_instr(
        opcode::mov,
        {imm_operand(symref(opts.entry)), masm::reg_operand(isa::REG_PC)})));
    er.stmts.push_back(masm::make_label(er_fail_label));
    er.stmts.push_back(synth(masm::make_instr(
        opcode::mov, {imm_operand(lit(emu::HALT_ABORT)),
                      masm::abs_operand(symref("HALT_PORT"))})));
    er.stmts.push_back(synth(masm::make_instr(
        opcode::mov, {imm_operand(symref(er_fail_label)),
                      masm::reg_operand(isa::REG_PC)})));
    masm::module_src body = masm::parse(er_body);
    for (auto& s : body.stmts) er.stmts.push_back(std::move(s));
  }

  // ---- instrumentation ----
  pass_options popts = opts.pass_opts;
  popts.map = opts.map;
  popts.symbols = opts.map.predefined_symbols();
  for (const auto& [name, addr] : global_addrs) popts.symbols[name] = addr;
  if (opts.mode == instrumentation::tinycfa ||
      opts.mode == instrumentation::dialed) {
    er = tinycfa_pass(er, popts);
  }
  if (opts.mode == instrumentation::dialed) {
    er = dialed_pass(er, popts);
  }

  // Render the instrumented ER listing before its statements are moved
  // into the full module below.
  const std::string er_text = masm::to_text(er);

  // ---- full module: crt0, ER, reset vector ----
  masm::module_src full;
  full.stmts.push_back(
      masm::make_directive("org", {lit(opts.map.flash_start)}));
  {
    masm::module_src crt = masm::parse(crt0_text(cr, global_addrs));
    for (auto& s : crt.stmts) full.stmts.push_back(std::move(s));
  }
  for (auto& s : er.stmts) full.stmts.push_back(std::move(s));
  full.stmts.push_back(
      masm::make_directive("org", {lit(opts.map.reset_vector)}));
  full.stmts.push_back(
      masm::make_directive("word", {symref("__start")}));

  // ---- assemble ----
  auto symbols = opts.map.predefined_symbols();
  for (const auto& [name, addr] : global_addrs) {
    if (!symbols.emplace(name, addr).second) {
      throw error("instr: global '" + name + "' collides with a layout symbol");
    }
  }

  linked_program out;
  out.image = masm::assemble(full, symbols);
  out.er_min = opts.er_base;
  out.crt_entry = out.image.symbol("__start");
  out.global_addrs = std::move(global_addrs);
  out.compile_info = cr;
  out.er_asm_text = er_text;
  out.options = opts;

  // ER_max = the last instruction at/above er_base (the entry's final ret).
  std::uint16_t er_max = 0;
  for (const auto& entry : out.image.listing) {
    if (entry.address >= opts.er_base && entry.address > er_max) {
      er_max = entry.address;
    }
  }
  if (er_max == 0) throw error("instr: empty ER after linking");
  out.er_max = er_max;

  // The op's return address in crt0 (the instruction after the call).
  for (std::size_t i = 0; i < out.image.listing.size(); ++i) {
    const auto& entry = out.image.listing[i];
    if (entry.text.find("call #__er_start") != std::string::npos) {
      out.op_return_addr =
          static_cast<std::uint16_t>(entry.address + entry.size_bytes);
      break;
    }
  }
  if (out.op_return_addr == 0) {
    throw error("instr: crt0 call to __er_start not found");
  }
  return out;
}

linked_program build_operation(std::string_view source,
                               const link_options& opts) {
  return link_operation(cc::compile(source), opts);
}

}  // namespace dialed::instr
