// Shared emission helpers for the instrumentation passes (internal header).
#ifndef DIALED_INSTR_EMIT_UTIL_H
#define DIALED_INSTR_EMIT_UTIL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "masm/ast.h"

namespace dialed::instr::detail {

/// Builder collecting synthetic statements.
class stub_builder {
 public:
  explicit stub_builder(int& label_counter) : label_counter_(label_counter) {}

  std::string fresh_label(const std::string& hint) {
    return ".Lstub_" + hint + std::to_string(label_counter_++);
  }

  void instr(isa::opcode op, std::vector<masm::operand_ast> ops,
             bool byte_op = false) {
    masm::stmt s = masm::make_instr(op, std::move(ops), byte_op);
    s.synthetic = true;
    out_.push_back(std::move(s));
  }
  void label(const std::string& name) {
    masm::stmt s = masm::make_label(name);
    s.synthetic = true;
    out_.push_back(std::move(s));
  }

  /// `jxx target` (target must be a label).
  void jump(isa::opcode op, const std::string& target) {
    instr(op, {masm::sym_operand(masm::symref(target))});
  }

  /// `br #__er_fail` — a far branch to the abort handler (mov #addr, pc),
  /// used instead of a short jump so the reachable distance is unlimited.
  void far_fail();

  /// Append the log-push sequence of the paper (store to the slot at r4,
  /// decrement by one word, bounds-check against OR_MIN):
  ///     mov <value>, 0(r4)
  ///     decd r4
  ///     cmp #OR_MIN, r4 ; jhs ok ; br #__er_fail ; ok:
  /// `byte_value` clears the slot first and stores one byte (so byte reads
  /// occupy a full, zero-extended log slot).
  void push_log(const masm::operand_ast& value, bool byte_value = false);

  /// Move the collected statements out.
  std::vector<masm::stmt> take() { return std::move(out_); }

 private:
  int& label_counter_;
  std::vector<masm::stmt> out_;
};

/// True if the operand mode reads data memory when used as a source.
bool reads_memory(const masm::operand_ast& o);

/// Effective-address computation into the scratch register r5:
///     mov rn, r5 [; add #X, r5]      (indirect/indexed)
///     mov #ADDR, r5                  (absolute/symbolic)
/// Throws for operands whose address cannot be computed (immediates).
void emit_ea_to_scratch(stub_builder& b, const masm::operand_ast& o,
                        int source_line);

/// Resolve an absolute/symbolic operand's address from the pass's symbol
/// table; nullopt for other modes or unknown symbols.
std::optional<std::uint16_t> resolve_static_addr(
    const masm::operand_ast& o,
    const std::map<std::string, std::uint16_t>& symbols);

}  // namespace dialed::instr::detail

#endif  // DIALED_INSTR_EMIT_UTIL_H
