// The two instrumentation passes of the paper, implemented over the parsed
// assembly model:
//
//  * tinycfa_pass — Tiny-CFA (paper §II-C, features F2/F5): entry check of
//    the log pointer r4, logging of every control-flow-altering
//    instruction's destination into the OR log stack, and safety checks on
//    every memory write against the live log region [r4, OR_MAX].
//
//  * dialed_pass — DIALED (paper §IV, features F3/F4): at entry, save the
//    base stack pointer to the OR_MAX slot and log the eight argument
//    registers r8..r15 (Fig. 4); before every memory-reading instruction,
//    compute the effective address, compare it against the current stack
//    range [r1, saved base], and log the read value when it lies outside
//    (Fig. 5, following Definition 1 — see DESIGN.md §1 for the two
//    documented deviations from the paper's listings).
//
// Both passes only ever insert `synthetic` statements and never instrument
// them, mirroring the paper's layered instrumentation.
#ifndef DIALED_INSTR_PASSES_H
#define DIALED_INSTR_PASSES_H

#include <map>
#include <string>

#include "emu/memmap.h"
#include "masm/ast.h"

namespace dialed::instr {

/// Label of the ER entry (the op trampoline) and of the abort handler the
/// passes branch to on a detected violation.
inline constexpr const char* er_entry_label = "__er_start";
inline constexpr const char* er_fail_label = "__er_fail";

struct pass_options {
  /// Ablation A2: log only non-deterministic transfers (conditional
  /// outcomes, returns, indirect calls/branches) instead of every transfer.
  bool optimized_cf = false;

  /// Ablation A1: log every memory read, skipping the Definition-1 stack
  /// filter (shows why the paper's input definition keeps I-Log small).
  bool log_all_reads = false;

  /// Static read classification (default on): SP-relative reads are
  /// statically inside the op's stack (never logged, no stub); absolute
  /// reads whose resolved address lies outside the stack region are
  /// statically inputs (logged without the dynamic range check). Only
  /// pointer-based reads keep the full Fig. 5 dynamic check. Turning this
  /// off instruments every read dynamically (ablation A4).
  bool static_read_filter = true;

  /// Statically skip F5 write checks for absolute targets provably outside
  /// the OR (and fail statically for targets provably inside it).
  bool static_write_filter = true;

  /// Memory layout + resolved symbols, used only for the static filters.
  emu::memory_map map{};
  std::map<std::string, std::uint16_t> symbols;
};

/// Apply Tiny-CFA. Throws dialed::error on constructs the instrumentation
/// cannot secure (e.g. computed call through an indexed operand).
masm::module_src tinycfa_pass(const masm::module_src& in,
                              const pass_options& opts = {});

/// Apply DIALED on (typically) Tiny-CFA-instrumented input.
masm::module_src dialed_pass(const masm::module_src& in,
                             const pass_options& opts = {});

}  // namespace dialed::instr

#endif  // DIALED_INSTR_PASSES_H
