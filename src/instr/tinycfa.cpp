// Tiny-CFA instrumentation (paper §II-C; features F2 and F5 of §III-C).
//
// For every control-flow-altering instruction the destination address is
// pushed onto the OR log stack through r4; conditional branches are
// rewritten so that both the taken and the fall-through successor are
// logged (the log then encodes the exact executed path). Every memory write
// is preceded by a safety check that aborts if the target lies inside the
// live log region [r4, OR_MAX] (F5). At the ER entry, r4 must equal OR_MAX.
#include "common/error.h"
#include "instr/emit_util.h"
#include "instr/passes.h"

namespace dialed::instr {

namespace {

using detail::stub_builder;
using masm::imm_operand;
using masm::lit;
using masm::operand_ast;
using masm::stmt;
using masm::symref;
using isa::addr_mode;
using isa::opcode;

/// Label emitted at the end of the Tiny-CFA entry check; the DIALED pass
/// inserts its own entry instrumentation after it (paper Fig. 4 ordering).
constexpr const char* entry_done_label = "__tinycfa_entry_done";

bool is_return(const stmt& s) {
  // ret == mov @sp+, pc
  return s.op == opcode::mov && s.ops.size() == 2 &&
         s.ops[1].mode == addr_mode::reg && s.ops[1].reg == isa::REG_PC &&
         s.ops[0].mode == addr_mode::indirect_inc &&
         s.ops[0].reg == isa::REG_SP;
}

bool is_branch_via_pc(const stmt& s) {
  return s.op == opcode::mov && s.ops.size() == 2 &&
         s.ops[1].mode == addr_mode::reg && s.ops[1].reg == isa::REG_PC;
}

bool writes_pc(const stmt& s) {
  return !s.ops.empty() && s.ops.back().mode == addr_mode::reg &&
         s.ops.back().reg == isa::REG_PC && isa::is_format1(s.op) &&
         s.op != opcode::cmp && s.op != opcode::bit;
}

/// Emit the entry check: cmp #OR_MAX, r4 ; jeq ok ; br #__er_fail ; ok:.
void emit_entry_check(stub_builder& b) {
  b.instr(opcode::cmp,
          {imm_operand(symref("OR_MAX")), masm::reg_operand(isa::REG_LOGPTR)});
  const std::string ok = b.fresh_label("entry_ok");
  b.jump(opcode::jeq, ok);
  b.far_fail();
  b.label(ok);
  b.label(entry_done_label);
}

/// Emit the F5 write check for the effective address already in r5:
///     cmp r4, r5            ; r5 - r4
///     jlo ok                ; below the live log region
///     cmp #OR_MAX+2, r5     ; r5 - (OR_MAX+2)
///     jhs ok                ; above the log region
///     br #__er_fail
///   ok:
void emit_write_check_on_scratch(stub_builder& b) {
  const operand_ast scratch = masm::reg_operand(isa::REG_SCRATCH);
  const std::string ok = b.fresh_label("w_ok");
  b.instr(opcode::cmp, {masm::reg_operand(isa::REG_LOGPTR), scratch});
  b.jump(opcode::jnc, ok);  // jlo
  b.instr(opcode::cmp, {imm_operand(symref("OR_MAX", 2)), scratch});
  b.jump(opcode::jc, ok);  // jhs
  b.far_fail();
  b.label(ok);
}

/// Does this instruction write data memory through its destination operand?
bool has_memory_write(const stmt& s) {
  if (!isa::is_format1(s.op)) return false;
  if (s.op == opcode::cmp || s.op == opcode::bit) return false;
  if (s.ops.size() != 2) return false;
  const addr_mode m = s.ops[1].mode;
  return m == addr_mode::indexed || m == addr_mode::symbolic ||
         m == addr_mode::absolute;
}

class tinycfa {
 public:
  tinycfa(const masm::module_src& in, const pass_options& opts)
      : in_(in), opts_(opts) {}

  masm::module_src run() {
    masm::module_src out;
    for (const auto& s : in_.stmts) {
      if (s.k == stmt::kind::label) {
        out.stmts.push_back(s);
        if (s.label == er_entry_label) {
          stub_builder b(label_counter_);
          emit_entry_check(b);
          append(out, b);
        }
        continue;
      }
      if (s.k != stmt::kind::instruction || s.synthetic) {
        out.stmts.push_back(s);
        continue;
      }
      instrument(out, s);
    }
    return out;
  }

 private:
  void append(masm::module_src& out, stub_builder& b) {
    for (auto& st : b.take()) out.stmts.push_back(std::move(st));
  }

  void instrument(masm::module_src& out, const stmt& s) {
    stub_builder b(label_counter_);

    // ---- control-flow logging (F2) ----
    if (isa::is_jump(s.op)) {
      if (s.op == opcode::jmp) {
        if (!opts_.optimized_cf) {
          b.push_log(imm_operand(s.ops[0].e));
        }
        append(out, b);
        out.stmts.push_back(s);
        return;
      }
      // Conditional: rewrite so both outcomes are logged.
      const std::string taken = b.fresh_label("cfa_taken");
      const std::string fall = b.fresh_label("cfa_fall");
      stmt cond = s;  // same condition, new target
      cond.synthetic = true;
      cond.ops[0] = masm::sym_operand(symref(taken));
      out.stmts.push_back(std::move(cond));
      b.push_log(imm_operand(symref(fall)));
      b.jump(opcode::jmp, fall);
      b.label(taken);
      b.push_log(imm_operand(s.ops[0].e));
      // br #target (unlimited range)
      b.instr(opcode::mov,
              {imm_operand(s.ops[0].e), masm::reg_operand(isa::REG_PC)});
      b.label(fall);
      append(out, b);
      return;
    }

    if (s.op == opcode::call) {
      const operand_ast& t = s.ops[0];
      switch (t.mode) {
        case addr_mode::immediate:
          if (!opts_.optimized_cf) b.push_log(t);
          break;
        case addr_mode::reg:
          b.push_log(t);
          break;
        case addr_mode::indirect:
          b.push_log(t);
          break;
        case addr_mode::indexed:
          detail::emit_ea_to_scratch(b, t, s.line);
          b.push_log(masm::ind_operand(isa::REG_SCRATCH));
          break;
        default:
          throw error("instr:" + std::to_string(s.line) +
                      ": unsupported call operand for CFA logging");
      }
      append(out, b);
      out.stmts.push_back(s);
      return;
    }

    if (is_return(s)) {
      // The return address is at the top of the stack right before `ret`.
      b.push_log(masm::ind_operand(isa::REG_SP));
      append(out, b);
      out.stmts.push_back(s);
      return;
    }

    if (is_branch_via_pc(s)) {
      const operand_ast& src = s.ops[0];
      switch (src.mode) {
        case addr_mode::immediate:
          if (!opts_.optimized_cf) b.push_log(src);
          break;
        case addr_mode::reg:
        case addr_mode::indirect:
          b.push_log(src);
          break;
        case addr_mode::indexed:
          detail::emit_ea_to_scratch(b, src, s.line);
          b.push_log(masm::ind_operand(isa::REG_SCRATCH));
          break;
        default:
          throw error("instr:" + std::to_string(s.line) +
                      ": unsupported branch-via-pc source");
      }
      append(out, b);
      out.stmts.push_back(s);
      return;
    }

    if (writes_pc(s)) {
      throw error("instr:" + std::to_string(s.line) +
                  ": computed write to PC is not supported by Tiny-CFA");
    }

    // ---- write checks (F5) ----
    if (has_memory_write(s)) {
      // Static filter: an absolute target provably outside the OR can
      // never hit the log region; one provably inside it always does.
      if (opts_.static_write_filter) {
        if (const auto addr =
                detail::resolve_static_addr(s.ops[1], opts_.symbols)) {
          // 32-bit compare: a uint16 cast of or_max + 1 would wrap to 0
          // for a top-of-memory OR and mark EVERY write "outside",
          // silently disabling the F5 check.
          const bool outside_or =
              *addr > static_cast<std::uint32_t>(opts_.map.or_max) + 1 ||
              *addr + 1 < opts_.map.or_min;
          if (outside_or) {
            out.stmts.push_back(s);
            return;
          }
          b.far_fail();  // statically always-illegal write into the OR
          append(out, b);
          out.stmts.push_back(s);
          return;
        }
      }
      detail::emit_ea_to_scratch(b, s.ops[1], s.line);
      emit_write_check_on_scratch(b);
      append(out, b);
      out.stmts.push_back(s);
      return;
    }
    if (s.op == opcode::push) {
      // Implicit write at SP-2.
      b.instr(opcode::mov,
              {masm::reg_operand(isa::REG_SP),
               masm::reg_operand(isa::REG_SCRATCH)});
      b.instr(opcode::sub,
              {imm_operand(lit(2)), masm::reg_operand(isa::REG_SCRATCH)});
      emit_write_check_on_scratch(b);
      append(out, b);
      out.stmts.push_back(s);
      return;
    }

    out.stmts.push_back(s);
  }

  const masm::module_src& in_;
  pass_options opts_;
  int label_counter_ = 0;
};

}  // namespace

masm::module_src tinycfa_pass(const masm::module_src& in,
                              const pass_options& opts) {
  return tinycfa(in, opts).run();
}

}  // namespace dialed::instr
