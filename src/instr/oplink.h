// The op-linker: turns a compiled translation unit into a complete,
// loadable device program with the attested embedded operation laid out in
// an APEX Executable Range.
//
// Layout (DESIGN.md §3/§4):
//   flash_start:  crt0 — set SP, zero OR, initialize globals, set r4=OR_MAX,
//                 load the op's arguments from the host mailbox into
//                 r15..r8, call the ER, store the result, invoke SW-Att,
//                 halt cleanly.
//   er_base:      __er_start: <entry instrumentation> ; br #<entry>
//                 __er_fail:  abort handler (halts with HALT_ABORT)
//                 runtime helpers, callees, and the entry function LAST so
//                 that its final `ret` is the instruction at ER_max (APEX's
//                 single legal exit).
//   reset_vector: .word __start
//
// Globals are assigned RAM addresses from ram_start upward in declaration
// order (which is what makes the paper's Fig. 2 adjacent-overflow concrete).
#ifndef DIALED_INSTR_OPLINK_H
#define DIALED_INSTR_OPLINK_H

#include <cstdint>
#include <map>
#include <string>

#include "cc/compiler.h"
#include "emu/memmap.h"
#include "instr/passes.h"
#include "masm/masm.h"

namespace dialed::instr {

enum class instrumentation : std::uint8_t {
  none,     ///< plain compilation (the paper's "Original" bars)
  tinycfa,  ///< CFA only
  dialed,   ///< Tiny-CFA + DIALED (CFA + DFA)
};

std::string to_string(instrumentation m);

struct link_options {
  std::string entry;  ///< name of the attested embedded operation
  instrumentation mode = instrumentation::none;
  emu::memory_map map{};
  std::uint16_t er_base = 0xe000;
  pass_options pass_opts{};
};

struct linked_program {
  masm::image image;         ///< full program: crt0 + ER + reset vector
  std::uint16_t er_min = 0;  ///< == er_base == address of __er_start
  std::uint16_t er_max = 0;  ///< address of the op's final `ret`
  std::uint16_t crt_entry = 0;  ///< __start
  /// The crt0 instruction following `call #__er_start` — the return
  /// address the op's final `ret` consumes (and logs). The verifier's
  /// abstract executor uses it as the known caller continuation.
  std::uint16_t op_return_addr = 0;
  std::map<std::string, std::uint16_t> global_addrs;
  cc::compile_result compile_info;  ///< carried for the verifier's analysis
  std::string er_asm_text;          ///< instrumented ER assembly (listing)
  link_options options;

  /// Bytes of [er_min, er_max+1] — the attested code.
  byte_vec er_bytes() const;
  /// ER size in bytes (the paper's Fig. 6(a) "code size" metric).
  std::size_t code_size() const { return er_bytes().size(); }
};

/// Compile-result → device program. Throws dialed::error on layout or
/// instrumentation failures (e.g. unknown entry function).
linked_program link_operation(const cc::compile_result& cr,
                              const link_options& opts);

/// Convenience: compile + link.
linked_program build_operation(std::string_view source,
                               const link_options& opts);

}  // namespace dialed::instr

#endif  // DIALED_INSTR_OPLINK_H
