#include "obs/obs.h"

#include <algorithm>

namespace dialed::obs {

const char* to_string(stage s) {
  switch (s) {
    case stage::decode:
      return "decode";
    case stage::journal:
      return "journal";
    case stage::mac:
      return "mac";
    case stage::replay:
      return "replay";
    case stage::verdict:
      return "verdict";
  }
  return "unknown";
}

flight_recorder::flight_recorder(recorder_config cfg)
    : cfg_(cfg), slow_(cfg.slow_capacity), rejected_(cfg.rejected_capacity) {}

void flight_recorder::ring::copy_to(std::vector<span_trace>& out) const {
  // Oldest first: the cursor points at the oldest live slot once the ring
  // has wrapped; before that, slots [0, next) are in insertion order.
  const std::size_t n = slots.size();
  if (n == 0) return;
  const bool wrapped = total >= n;
  const std::size_t live = wrapped ? n : next;
  out.reserve(live);
  const std::size_t first = wrapped ? next : 0;
  for (std::size_t i = 0; i < live; ++i) out.push_back(slots[(first + i) % n]);
}

void flight_recorder::record(const span_trace& t) {
  bool slow = false;
  if (t.accepted) {
    // Adaptive bar: keep the ring focused on the current tail. A trace at
    // least half as slow as the slowest ever seen is tail-worthy.
    auto prev = slowest_ns_.load(std::memory_order_relaxed);
    while (t.total_ns > prev && !slowest_ns_.compare_exchange_weak(
                                    prev, t.total_ns, std::memory_order_relaxed)) {
    }
    const auto bar = std::max(cfg_.slow_floor_ns,
                              slowest_ns_.load(std::memory_order_relaxed) / 2);
    slow = t.total_ns >= bar;
  }
  if (!slow && t.accepted) return;  // common case: fast + accepted, no lock
  std::lock_guard<std::mutex> lk(mu_);
  if (slow) slow_.push(t);
  if (!t.accepted) rejected_.push(t);
}

trace_dump flight_recorder::snapshot() const {
  trace_dump d;
  std::lock_guard<std::mutex> lk(mu_);
  slow_.copy_to(d.slow);
  rejected_.copy_to(d.rejected);
  d.slowest_ns = slowest_ns_.load(std::memory_order_relaxed);
  d.slow_recorded = slow_.total;
  d.rejected_recorded = rejected_.total;
  d.slow_capacity = slow_.slots.size();
  d.rejected_capacity = rejected_.slots.size();
  return d;
}

void pipeline_obs::record(const span_recorder& sp, std::uint32_t device,
                          std::uint32_t seq, std::uint8_t error, bool accepted) {
  if (!cfg_.enabled || !sp.enabled()) return;
  const auto& ns = sp.stage_ns();
  const auto marked = sp.marked();
  for (std::size_t i = 0; i < stage_count; ++i) {
    if (marked & (1u << i)) stages_[i].record(ns[i]);
  }
  span_trace t;
  t.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  t.start_ns = sp.start_ns();
  t.total_ns = sp.total_ns();
  t.stage_ns = ns;
  t.device = device;
  t.seq = seq;
  t.error = error;
  t.accepted = accepted;
  recorder_.record(t);
}

}  // namespace dialed::obs
