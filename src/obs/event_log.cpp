#include "obs/event_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "obs/obs.h"

namespace dialed::obs {
namespace {

std::mutex g_write_mu;  // serialises formatted writes, not formatting

void append_timestamp(std::string& out) {
  // Wall-clock UTC with millisecond precision: 2026-08-07T10:11:12.345Z
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  const std::time_t secs = static_cast<std::time_t>(ms / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                              tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                              tm.tm_hour, tm.tm_min, tm.tm_sec,
                              static_cast<int>(ms % 1000));
  out.append(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

bool logfmt_needs_quotes(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '=' || c == '"' || c == '\\' || c == '\n' || c == '\r' ||
        c == '\t')
      return true;
  }
  return false;
}

void append_logfmt_string(std::string& out, std::string_view v) {
  if (!logfmt_needs_quotes(v)) {
    out.append(v);
    return;
  }
  out.push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_json_string(std::string& out, std::string_view v) {
  out.push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, const kv& f) {
  char buf[40];
  int n = 0;
  switch (f.k) {
    case kv::kind::u64:
      n = std::snprintf(buf, sizeof buf, "%" PRIu64, f.u);
      break;
    case kv::kind::i64:
      n = std::snprintf(buf, sizeof buf, "%" PRId64, f.i);
      break;
    case kv::kind::f64:
      n = std::snprintf(buf, sizeof buf, "%.6g", f.f);
      break;
    default:
      break;
  }
  out.append(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

void append_field_logfmt(std::string& out, const kv& f) {
  out.push_back(' ');
  out.append(f.key);
  out.push_back('=');
  switch (f.k) {
    case kv::kind::str:
      append_logfmt_string(out, f.str);
      break;
    case kv::kind::boolean:
      out.append(f.b ? "true" : "false");
      break;
    default:
      append_number(out, f);
  }
}

void append_field_json(std::string& out, const kv& f) {
  out.push_back(',');
  append_json_string(out, f.key);
  out.push_back(':');
  switch (f.k) {
    case kv::kind::str:
      append_json_string(out, f.str);
      break;
    case kv::kind::boolean:
      out.append(f.b ? "true" : "false");
      break;
    default:
      append_number(out, f);
  }
}

}  // namespace

const char* to_string(log_level l) {
  switch (l) {
    case log_level::trace:
      return "trace";
    case log_level::debug:
      return "debug";
    case log_level::info:
      return "info";
    case log_level::warn:
      return "warn";
    case log_level::error:
      return "error";
    case log_level::off:
      return "off";
  }
  return "unknown";
}

bool parse_log_level(std::string_view s, log_level& out) {
  for (const auto l : {log_level::trace, log_level::debug, log_level::info,
                       log_level::warn, log_level::error, log_level::off}) {
    if (s == to_string(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

void event_logger::set_sink(sink_fn fn, void* ctx) {
  // Order matters for racy readers: publish the ctx before the fn that
  // will consume it (write() reads fn first).
  sink_ctx_.store(ctx, std::memory_order_release);
  sink_.store(fn, std::memory_order_release);
}

void event_logger::emit(log_level l, std::string_view event,
                        std::initializer_list<kv> fields) {
  if (!should(l)) return;
  write(l, event, fields, 0);
}

void event_logger::emit(log_level l, std::string_view event, rate_limit& rl,
                        std::initializer_list<kv> fields) {
  if (!should(l)) return;
  const auto now = now_ns();
  auto start = rl.window_start.load(std::memory_order_relaxed);
  if (now - start >= rl.window_ns) {
    if (rl.window_start.compare_exchange_strong(start, now,
                                                std::memory_order_relaxed)) {
      rl.emitted.store(0, std::memory_order_relaxed);
    }
  }
  if (rl.emitted.fetch_add(1, std::memory_order_relaxed) >= rl.max_per_window) {
    rl.suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto suppressed = rl.suppressed.exchange(0, std::memory_order_relaxed);
  write(l, event, fields, suppressed);
}

void event_logger::write(log_level l, std::string_view event,
                         std::initializer_list<kv> fields,
                         std::uint64_t suppressed) {
  std::string line;
  line.reserve(128);
  const bool as_json = json();
  if (as_json) {
    std::string ts;
    append_timestamp(ts);
    line.append("{\"ts\":");
    append_json_string(line, ts);
    line.append(",\"level\":");
    append_json_string(line, to_string(l));
    line.append(",\"event\":");
    append_json_string(line, event);
    for (const auto& f : fields) append_field_json(line, f);
    if (suppressed != 0) append_field_json(line, kv{"suppressed", suppressed});
    line.append("}\n");
  } else {
    line.append("ts=");
    append_timestamp(line);
    line.append(" level=");
    line.append(to_string(l));
    line.append(" event=");
    append_logfmt_string(line, event);
    for (const auto& f : fields) append_field_logfmt(line, f);
    if (suppressed != 0) append_field_logfmt(line, kv{"suppressed", suppressed});
    line.push_back('\n');
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  const auto fn = sink_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lk(g_write_mu);
  if (fn != nullptr) {
    fn(sink_ctx_.load(std::memory_order_acquire), line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

event_logger& log() {
  static event_logger logger;
  return logger;
}

}  // namespace dialed::obs
