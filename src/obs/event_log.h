#pragma once

// Structured, leveled event log for the service layers (net/store/fleet).
// Events are key=value logfmt lines (or JSON objects with --log-json) on
// stderr, carrying device/partition/nonce context instead of free-form
// prose. The library default level is `off`: linking dialed never makes a
// test or bench chatty; tools opt in (dialed-serve --log-level info).
//
// Emission is cheap to skip (one relaxed load) and safe from any thread
// (one mutex around the formatted write). High-frequency callsites guard
// themselves with a token-bucket rate_limit so a misbehaving peer cannot
// turn the log into the bottleneck — suppressed counts are reported when
// the window reopens.

#include <atomic>
#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace dialed::obs {

enum class log_level : std::uint8_t { trace, debug, info, warn, error, off };

const char* to_string(log_level l);
bool parse_log_level(std::string_view s, log_level& out);

/// One typed key=value field. Constructors cover the value types events
/// actually carry; integrals keep their signedness.
struct kv {
  enum class kind : std::uint8_t { str, u64, i64, f64, boolean };

  std::string_view key;
  kind k = kind::str;
  std::string_view str{};
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0;
  bool b = false;

  kv(std::string_view key_, std::string_view v) : key(key_), str(v) {}
  kv(std::string_view key_, const char* v) : key(key_), str(v) {}
  kv(std::string_view key_, bool v) : key(key_), k(kind::boolean), b(v) {}
  kv(std::string_view key_, double v) : key(key_), k(kind::f64), f(v) {}
  template <std::unsigned_integral T>
    requires(!std::same_as<T, bool>)
  kv(std::string_view key_, T v) : key(key_), k(kind::u64), u(v) {}
  template <std::signed_integral T>
  kv(std::string_view key_, T v)
      : key(key_), k(kind::i64), i(static_cast<std::int64_t>(v)) {}
};

/// Per-callsite token bucket: at most `max_per_window` events per window,
/// then the callsite goes quiet and counts what it dropped.
struct rate_limit {
  explicit rate_limit(std::uint32_t max_per_window_,
                      std::uint64_t window_ns_ = 1'000'000'000ull)
      : max_per_window(max_per_window_), window_ns(window_ns_) {}

  std::uint32_t max_per_window;
  std::uint64_t window_ns;
  std::atomic<std::uint64_t> window_start{0};
  std::atomic<std::uint32_t> emitted{0};
  std::atomic<std::uint64_t> suppressed{0};
};

class event_logger {
 public:
  using sink_fn = void (*)(void* ctx, std::string_view line);

  void configure(log_level level, bool json) {
    level_.store(level, std::memory_order_relaxed);
    json_.store(json, std::memory_order_relaxed);
  }
  /// Redirect output (tests). nullptr restores the stderr default.
  void set_sink(sink_fn fn, void* ctx);

  log_level level() const { return level_.load(std::memory_order_relaxed); }
  bool json() const { return json_.load(std::memory_order_relaxed); }
  bool should(log_level l) const { return l >= level() && l != log_level::off; }

  /// Format and write one event. No-op below the configured level.
  void emit(log_level l, std::string_view event, std::initializer_list<kv> fields);
  /// Rate-limited variant: drops (and counts) events past the limit; the
  /// first event of a new window carries a `suppressed=` field with the
  /// number dropped in between.
  void emit(log_level l, std::string_view event, rate_limit& rl,
            std::initializer_list<kv> fields);

  std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }

 private:
  void write(log_level l, std::string_view event, std::initializer_list<kv> fields,
             std::uint64_t suppressed);

  std::atomic<log_level> level_{log_level::off};
  std::atomic<bool> json_{false};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<sink_fn> sink_{nullptr};
  std::atomic<void*> sink_ctx_{nullptr};
};

/// The process-wide logger every layer emits through.
event_logger& log();

}  // namespace dialed::obs
