#pragma once

// Pipeline observability core: lock-free log2-bucket latency histograms,
// a per-report span recorder, and a bounded flight recorder keeping full
// traces for the slowest and every rejected report.
//
// Design constraints (this header is included from the verify hot path):
//  - fixed footprint: histograms are flat atomic arrays, the flight
//    recorder is a pair of preallocated rings — no allocation per report;
//  - lock-free recording: histogram bumps are relaxed atomic adds; only
//    the flight recorder takes a (short, uncontended) mutex, and only for
//    reports that qualify as slow or rejected;
//  - zero cost when disabled: a span_recorder constructed disabled never
//    reads the clock.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dialed::obs {

/// Monotonic nanoseconds (steady clock). The one clock every span uses.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

/// The submit -> verify -> journal pipeline, in execution order.
///  - decode: wire frame parse (+ v2.1 delta reconstruction)
///  - journal: nonce lookup/retire under the shard lock + WAL sync barrier
///  - mac: HMAC check over the report (key schedule cached)
///  - replay: MSP430 emulator replay of the execution record
///  - verdict: result compare, baseline adoption, counters, sink notify
enum class stage : std::uint8_t { decode, journal, mac, replay, verdict };

inline constexpr std::size_t stage_count = 5;

const char* to_string(stage s);

// ---------------------------------------------------------------------------
// Latency histogram (log2 ns buckets)
// ---------------------------------------------------------------------------

/// Bucket i has upper bound 1024ns << i; the last bucket is +Inf.
/// 24 buckets span 1.024us .. ~8.6s, which brackets everything from a
/// sub-microsecond decode to a pathologically stalled fsync.
inline constexpr std::size_t latency_buckets = 24;

constexpr std::uint64_t latency_bucket_bound_ns(std::size_t i) {
  return std::uint64_t{1024} << i;
}

/// Smallest bucket whose upper bound covers `ns`.
inline std::size_t latency_bucket(std::uint64_t ns) {
  if (ns <= 1024) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width((ns - 1) >> 10));
  return b < latency_buckets ? b : latency_buckets - 1;
}

/// Point-in-time copy of one histogram. Counts are per-bucket (not
/// cumulative); `count` is derived from the buckets so one snapshot is
/// always self-consistent (sum of buckets == count), and every field is
/// monotone across successive snapshots of a live histogram.
struct histogram_snapshot {
  std::array<std::uint64_t, latency_buckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  void merge(const histogram_snapshot& o) {
    for (std::size_t i = 0; i < latency_buckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum_ns += o.sum_ns;
  }
};

/// Fixed-size concurrent histogram. record() is wait-free (two relaxed
/// fetch_adds); snapshot() is a plain relaxed read per bucket.
class latency_histogram {
 public:
  void record(std::uint64_t ns) {
    buckets_[latency_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  histogram_snapshot snapshot() const {
    histogram_snapshot s;
    for (std::size_t i = 0; i < latency_buckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, latency_buckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// One histogram per pipeline stage, snapshotted together.
struct pipeline_snapshot {
  std::array<histogram_snapshot, stage_count> stages{};

  void merge(const pipeline_snapshot& o) {
    for (std::size_t i = 0; i < stage_count; ++i) stages[i].merge(o.stages[i]);
  }
};

// ---------------------------------------------------------------------------
// Span traces
// ---------------------------------------------------------------------------

/// Full per-report trace: where each stage's time went, plus enough
/// identity (device/seq/partition/error) to find the report in the logs.
struct span_trace {
  std::uint64_t trace_id = 0;  ///< monotone per hub; router keeps them unique per partition
  std::uint64_t start_ns = 0;  ///< steady-clock start (ordering only)
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, stage_count> stage_ns{};
  std::uint32_t device = 0;
  std::uint32_t seq = 0;
  std::uint32_t partition = 0;
  std::uint8_t error = 0;  ///< proto::proto_error numeric value
  bool accepted = false;
};

/// Stack-allocated stage stopwatch threaded through one report's verify.
/// When disabled it never touches the clock — the hot path's only cost is
/// the branch on enabled_.
class span_recorder {
 public:
  explicit span_recorder(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = last_ = now_ns();
  }

  bool enabled() const { return enabled_; }

  /// Attribute everything since the previous mark to `s`.
  void mark(stage s) {
    if (!enabled_) return;
    const auto t = now_ns();
    attribute(s, t - last_);
    last_ = t;
  }

  /// mark(), minus `exclude_ns` already attributed elsewhere (the verify
  /// call reports its internal mac/replay split; the remainder since the
  /// previous mark is the verdict stage).
  void mark_excluding(stage s, std::uint64_t exclude_ns) {
    if (!enabled_) return;
    const auto t = now_ns();
    const auto span = t - last_;
    attribute(s, span > exclude_ns ? span - exclude_ns : 0);
    last_ = t;
  }

  /// Attribute externally measured time to `s` (no clock read).
  void credit(stage s, std::uint64_t ns) {
    if (enabled_) attribute(s, ns);
  }

  std::uint64_t start_ns() const { return start_; }
  std::uint64_t total_ns() const { return enabled_ ? last_ - start_ : 0; }
  const std::array<std::uint64_t, stage_count>& stage_ns() const { return ns_; }
  /// Bitmask of stages that were marked (a marked stage with 0ns still
  /// counts in its histogram — clock granularity must not drop samples).
  std::uint8_t marked() const { return marked_; }

 private:
  void attribute(stage s, std::uint64_t ns) {
    const auto i = static_cast<std::size_t>(s);
    ns_[i] += ns;
    marked_ |= static_cast<std::uint8_t>(1u << i);
  }

  std::array<std::uint64_t, stage_count> ns_{};
  std::uint64_t start_ = 0;
  std::uint64_t last_ = 0;
  std::uint8_t marked_ = 0;
  bool enabled_;
};

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

struct recorder_config {
  std::size_t slow_capacity = 64;      ///< ring of slowest/near-slowest traces
  std::size_t rejected_capacity = 64;  ///< ring of every rejected report
  /// Traces at/above max(slow_floor_ns, slowest_seen/2) enter the slow
  /// ring: the adaptive bar keeps the ring focused on the current tail
  /// instead of filling with warm-up noise, while the floor suppresses
  /// recording entirely until something is actually slow.
  std::uint64_t slow_floor_ns = 0;
};

/// Everything /debug/traces returns: bounded, point-in-time.
struct trace_dump {
  std::vector<span_trace> slow;      ///< oldest first
  std::vector<span_trace> rejected;  ///< oldest first
  std::uint64_t slowest_ns = 0;
  std::uint64_t slow_recorded = 0;      ///< lifetime admissions to the slow ring
  std::uint64_t rejected_recorded = 0;  ///< lifetime admissions to the rejected ring
  std::size_t slow_capacity = 0;      ///< ring bound the dump came from
  std::size_t rejected_capacity = 0;  ///< (merges stay bounded by ONE ring)
};

/// Two bounded rings behind one mutex. The mutex is only taken for
/// qualifying traces (slow or rejected) and for snapshots; the common
/// accepted-and-fast report pays one relaxed atomic load.
class flight_recorder {
 public:
  explicit flight_recorder(recorder_config cfg = {});

  void record(const span_trace& t);
  trace_dump snapshot() const;
  std::uint64_t slowest_ns() const {
    return slowest_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct ring {
    explicit ring(std::size_t cap) : slots(cap) {}
    std::vector<span_trace> slots;
    std::size_t next = 0;       ///< insertion cursor
    std::uint64_t total = 0;    ///< lifetime admissions
    void push(const span_trace& t) {
      if (slots.empty()) return;
      slots[next] = t;
      next = (next + 1) % slots.size();
      ++total;
    }
    void copy_to(std::vector<span_trace>& out) const;
  };

  recorder_config cfg_;
  std::atomic<std::uint64_t> slowest_ns_{0};
  mutable std::mutex mu_;
  ring slow_;
  ring rejected_;
};

// ---------------------------------------------------------------------------
// Pipeline observer (one per hub)
// ---------------------------------------------------------------------------

struct pipeline_config {
  /// Master switch: false removes every clock read from the hot path
  /// (the overhead bench's baseline).
  bool enabled = true;
  recorder_config recorder{};
};

/// Aggregates one hub's stage histograms and flight recorder. Fixed
/// footprint (a few KB); safe to record from any number of threads.
class pipeline_obs {
 public:
  explicit pipeline_obs(pipeline_config cfg = {})
      : cfg_(cfg), recorder_(cfg.recorder) {}

  bool enabled() const { return cfg_.enabled; }

  /// Fold one report's span into the histograms and, when it qualifies,
  /// the flight recorder.
  void record(const span_recorder& sp, std::uint32_t device, std::uint32_t seq,
              std::uint8_t error, bool accepted);

  pipeline_snapshot snapshot() const {
    pipeline_snapshot s;
    for (std::size_t i = 0; i < stage_count; ++i)
      s.stages[i] = stages_[i].snapshot();
    return s;
  }

  trace_dump traces() const { return recorder_.snapshot(); }

 private:
  pipeline_config cfg_;
  std::array<latency_histogram, stage_count> stages_;
  flight_recorder recorder_;
  std::atomic<std::uint64_t> next_trace_id_{1};
};

}  // namespace dialed::obs
