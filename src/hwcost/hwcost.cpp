#include "hwcost/hwcost.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace dialed::hwcost {

cost_estimate estimate(const hw_structure& s, const cost_params& p) {
  cost_estimate c;
  c.luts = s.comparators16 * p.luts_per_cmp16 +
           s.state_bits * p.luts_per_state_bit +
           s.hash_cores * p.luts_per_hash +
           s.hash_cores_lite * p.luts_per_hash_lite +
           s.branch_monitors * p.luts_per_branch_monitor;
  c.registers = s.state_bits + s.config_bits + s.hash_cores * p.regs_per_hash +
                s.hash_cores_lite * p.regs_per_hash_lite +
                s.branch_monitors * p.regs_per_branch_monitor;
  return c;
}

cost_estimate msp430_baseline() { return {1904, 691}; }

std::vector<technique> table1_techniques() {
  std::vector<technique> out;

  technique cflat;
  cflat.name = "C-FLAT";
  cflat.supports_cfa = true;
  cflat.trustzone = true;
  out.push_back(cflat);

  technique oat;
  oat.name = "OAT";
  oat.supports_cfa = true;
  oat.supports_dfa = true;
  oat.trustzone = true;
  out.push_back(oat);

  technique atrium;
  atrium.name = "Atrium";
  atrium.supports_cfa = true;
  atrium.published_luts = 10640;
  atrium.published_regs = 15960;
  // Instruction-stream hashing at fetch rate: parallel hash datapaths plus
  // fetch-side comparators and wide pipeline buffers.
  atrium.structure = hw_structure{12, 6, 754, 4, 0, 0};
  out.push_back(atrium);

  technique lofat;
  lofat.name = "LO-FAT";
  lofat.supports_cfa = true;
  lofat.published_luts = 3192;
  lofat.published_regs = 4256;
  // One full hash engine plus a branch monitor snooping the pipeline.
  lofat.structure = hw_structure{12, 10, 36, 1, 0, 1};
  out.push_back(lofat);

  technique litehax;
  litehax.name = "LiteHAX";
  litehax.supports_cfa = true;
  litehax.supports_dfa = true;
  litehax.published_luts = 1596;
  litehax.published_regs = 2128;
  // Serialized lightweight hash plus bus comparators.
  litehax.structure = hw_structure{12, 10, 218, 0, 1, 0};
  out.push_back(litehax);

  technique tinycfa;
  tinycfa.name = "Tiny-CFA";
  tinycfa.supports_cfa = true;
  tinycfa.published_luts = 302;
  tinycfa.published_regs = 44;
  // The VRASED + APEX monitors: pure comparator/FSM logic, no datapath —
  // the same signals our src/rot FSMs watch per cycle.
  tinycfa.structure = hw_structure{16, 6, 38, 0, 0, 0};
  out.push_back(tinycfa);

  technique dled;
  dled.name = "DIALED";
  dled.supports_cfa = true;
  dled.supports_dfa = true;
  dled.published_luts = 302;  // identical hardware: instrumentation only
  dled.published_regs = 44;
  dled.structure = hw_structure{16, 6, 38, 0, 0, 0};
  out.push_back(dled);

  return out;
}

double overhead_percent(int absolute, int baseline) {
  return 100.0 * absolute / baseline;
}

namespace {
const technique& dialed_row(const std::vector<technique>& rows) {
  for (const auto& r : rows) {
    if (r.name == "DIALED") return r;
  }
  throw error("hwcost: DIALED row missing");
}
}  // namespace

double ratio_vs_dialed_luts(const technique& other) {
  const auto rows = table1_techniques();
  const auto& d = dialed_row(rows);
  if (!other.published_luts || !d.published_luts) return 0.0;
  return static_cast<double>(*other.published_luts) / *d.published_luts;
}

double ratio_vs_dialed_regs(const technique& other) {
  const auto rows = table1_techniques();
  const auto& d = dialed_row(rows);
  if (!other.published_regs || !d.published_regs) return 0.0;
  return static_cast<double>(*other.published_regs) / *d.published_regs;
}

std::string render_table1() {
  const auto base = msp430_baseline();
  const auto rows = table1_techniques();
  std::string out;
  char buf[256];

  out += "Table I: functionality and hardware overhead of run-time "
         "attestation architectures\n";
  std::snprintf(buf, sizeof buf, "%-10s %-5s %-5s %-22s %-22s %-10s %-10s\n",
                "Technique", "CFA", "DFA", "LUTs (pub, +% base)",
                "Regs (pub, +% base)", "LUTs(mod)", "Regs(mod)");
  out += buf;
  std::snprintf(buf, sizeof buf, "%-10s %-5s %-5s %-22s %-22s %-10s %-10s\n",
                "MSP430", "-", "-", "1904 (baseline)", "691 (baseline)", "-",
                "-");
  out += buf;

  for (const auto& t : rows) {
    std::string luts, regs, mluts = "-", mregs = "-";
    if (t.trustzone) {
      luts = regs = "ARM-TrustZone";
    } else if (t.published_luts && t.published_regs) {
      std::snprintf(buf, sizeof buf, "%d (+%.0f%%)", *t.published_luts,
                    overhead_percent(*t.published_luts, base.luts));
      luts = buf;
      std::snprintf(buf, sizeof buf, "%d (+%.0f%%)", *t.published_regs,
                    overhead_percent(*t.published_regs, base.registers));
      regs = buf;
    }
    if (t.structure) {
      const auto m = estimate(*t.structure);
      mluts = std::to_string(m.luts);
      mregs = std::to_string(m.registers);
    }
    std::snprintf(buf, sizeof buf, "%-10s %-5s %-5s %-22s %-22s %-10s %-10s\n",
                  t.name.c_str(), t.supports_cfa ? "yes" : "-",
                  t.supports_dfa ? "yes" : "-", luts.c_str(), regs.c_str(),
                  mluts.c_str(), mregs.c_str());
    out += buf;
  }

  // The paper's headline ratios.
  for (const auto& t : rows) {
    if (t.name == "LiteHAX") {
      std::snprintf(buf, sizeof buf,
                    "\nDIALED vs LiteHAX (cheapest prior CFA+DFA): %.1fx "
                    "fewer LUTs, %.1fx fewer registers\n",
                    ratio_vs_dialed_luts(t), ratio_vs_dialed_regs(t));
      out += buf;
    }
  }
  return out;
}

}  // namespace dialed::hwcost
