// Hardware-cost model reproducing Table I of the paper: functionality and
// synthesis cost (LUTs / registers) of run-time attestation architectures
// against the MSP430 baseline.
//
// Two layers:
//  * published numbers, straight from the paper's Table I (the table's
//    authoritative content);
//  * a structural estimator that prices each architecture's block diagram
//    (comparators, FSM bits, hash datapaths, branch monitors, config
//    flops). Its constants are calibrated once, globally — not per row —
//    and the bench prints model-vs-published error as validation that the
//    *ratios* (DIALED ≈5× fewer LUTs / ≈50× fewer registers than the
//    cheapest prior CFA+DFA design, LiteHAX) follow from structure.
#ifndef DIALED_HWCOST_HWCOST_H
#define DIALED_HWCOST_HWCOST_H

#include <optional>
#include <string>
#include <vector>

namespace dialed::hwcost {

/// Block-diagram description of a monitor architecture.
struct hw_structure {
  int comparators16 = 0;    ///< 16-bit address comparators on bus signals
  int state_bits = 0;       ///< FSM state flops
  int config_bits = 0;      ///< configuration/shadow/pipeline flops
  int hash_cores = 0;       ///< full hash datapaths (SHA/Keccak class)
  int hash_cores_lite = 0;  ///< lightweight/serialized hash datapaths
  int branch_monitors = 0;  ///< pipeline branch-snooping units
};

struct cost_estimate {
  int luts = 0;
  int registers = 0;
};

/// Shared calibration constants (single global set; see header comment).
struct cost_params {
  int luts_per_cmp16 = 16;
  int luts_per_state_bit = 8;
  int luts_per_hash = 2600;
  int regs_per_hash = 3800;
  int luts_per_hash_lite = 1300;
  int regs_per_hash_lite = 1900;
  int luts_per_branch_monitor = 320;
  int regs_per_branch_monitor = 410;
};

cost_estimate estimate(const hw_structure& s, const cost_params& p = {});

/// One Table I row.
struct technique {
  std::string name;
  bool supports_cfa = false;
  bool supports_dfa = false;
  bool trustzone = false;  ///< cost reported as "ARM-TrustZone" in the paper
  std::optional<int> published_luts;  ///< absolute, when the paper gives one
  std::optional<int> published_regs;
  std::optional<hw_structure> structure;  ///< for the model columns
};

/// MSP430 openMSP430 baseline from the paper: 1904 LUTs, 691 registers.
cost_estimate msp430_baseline();

/// All Table I techniques in the paper's row order (C-FLAT, OAT, Atrium,
/// LO-FAT, LiteHAX, Tiny-CFA, DIALED).
std::vector<technique> table1_techniques();

/// Percentage overhead over the MSP430 baseline ("+16%" style).
double overhead_percent(int absolute, int baseline);

/// Ratio of another technique's cost to DIALED's (the ≈5× / ≈50× claims).
double ratio_vs_dialed_luts(const technique& other);
double ratio_vs_dialed_regs(const technique& other);

/// Render the full Table I reproduction (published + model validation).
std::string render_table1();

}  // namespace dialed::hwcost

#endif  // DIALED_HWCOST_HWCOST_H
