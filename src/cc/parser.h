// Recursive-descent parser for the mini-C subset.
#ifndef DIALED_CC_PARSER_H
#define DIALED_CC_PARSER_H

#include <string_view>

#include "cc/ast.h"

namespace dialed::cc {

/// Parse a full translation unit. Throws dialed::error ("cc:<line>: ...")
/// on the first syntax error.
translation_unit parse(std::string_view source);

}  // namespace dialed::cc

#endif  // DIALED_CC_PARSER_H
