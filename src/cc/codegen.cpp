// MSP430 code generation for the mini-C subset.
//
// Model: stack-machine evaluation with r15 as the accumulator and the
// hardware stack for temporaries (push/pop), so every temporary lives in
// the op's stack region and is — per DIALED's Definition 1 — never treated
// as an external input. r12..r14 are transient scratch inside a single
// expression step; r4/r5 are never touched (reserved for instrumentation).
//
// The generator deliberately avoids read-modify-write instructions with
// memory destinations: all arithmetic goes through registers, which keeps
// the DIALED read-instrumentation story identical between compiled code and
// the paper's examples.
#include <map>
#include <optional>

#include "cc/compiler.h"
#include "cc/parser.h"
#include "common/error.h"

namespace dialed::cc {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw error("cc:" + std::to_string(line) + ": " + msg);
}

struct local_slot {
  int offset = 0;
  type ty{};
};

class codegen {
 public:
  explicit codegen(const translation_unit& tu) : tu_(tu) {}

  compile_result run() {
    compile_result out;
    for (const auto& g : tu_.globals) {
      if (globals_.count(g.name)) fail(g.line, "global redefined: " + g.name);
      globals_[g.name] = &g;
      global_var_info gi;
      gi.name = g.name;
      gi.size_bytes = g.ty.size();
      gi.is_array = g.ty.is_array();
      gi.is_char = g.ty.is_array() ? g.ty.elem->is_char() : g.ty.is_char();
      gi.init = g.init;
      out.globals.push_back(std::move(gi));
    }
    for (const auto& f : tu_.functions) {
      if (functions_.count(f.name)) {
        fail(f.line, "function redefined: " + f.name);
      }
      functions_[f.name] = &f;
    }
    for (const auto& f : tu_.functions) {
      text_.clear();
      out.functions.push_back(emit_function(f));
      out.function_text.emplace_back(f.name, text_);
      out.asm_text += text_;
    }
    out.helpers = helpers_;
    out.access_sites = std::move(sites_);
    return out;
  }

 private:
  // ---- emission helpers ----
  void emit(const std::string& line) { text_ += "        " + line + "\n"; }
  void emit_label(const std::string& l) { text_ += l + ":\n"; }
  std::string new_label(const std::string& hint) {
    return ".L" + fn_->name + "_" + hint + std::to_string(label_counter_++);
  }

  void push_acc() {
    emit("push r15");
    ++push_depth_;
  }
  void pop_to(const std::string& reg) {
    emit("pop " + reg);
    --push_depth_;
  }

  // ---- variables ----
  const local_slot* find_local(const std::string& name) const {
    const auto it = locals_.find(name);
    return it == locals_.end() ? nullptr : &it->second;
  }

  int sp_offset(const local_slot& slot) const {
    return slot.offset + 2 * push_depth_;
  }

  // ---- lvalues ----
  struct lvalue {
    enum class kind { frame, global, computed } k = kind::computed;
    const local_slot* slot = nullptr;  // frame
    std::string global;                // global
    type ty{};                         // type of the object designated
  };

  /// Resolve an lvalue. For `computed`, code is emitted that leaves the
  /// address in r15.
  lvalue resolve_lvalue(const expr& e) {
    switch (e.k) {
      case expr::kind::ident: {
        if (const local_slot* s = find_local(e.name)) {
          if (s->ty.is_array()) fail(e.line, "array is not assignable");
          return {lvalue::kind::frame, s, "", s->ty};
        }
        const auto git = globals_.find(e.name);
        if (git != globals_.end()) {
          if (git->second->ty.is_array()) {
            fail(e.line, "array is not assignable");
          }
          return {lvalue::kind::global, nullptr, e.name, git->second->ty};
        }
        fail(e.line, "undefined variable '" + e.name + "'");
      }
      case expr::kind::unary:
        if (e.uop == unop::deref) {
          const type pt = eval(*e.lhs);  // address in r15
          if (!pt.is_pointer() && !pt.is_array()) {
            fail(e.line, "dereference of non-pointer");
          }
          return {lvalue::kind::computed, nullptr, "", *pt.elem};
        }
        fail(e.line, "expression is not assignable");
      case expr::kind::index: {
        const type et = emit_index_address(e);  // address in r15
        return {lvalue::kind::computed, nullptr, "", et};
      }
      default:
        fail(e.line, "expression is not assignable");
    }
  }

  /// Load the object designated by an lvalue into r15 (address for
  /// `computed` must already be in r15).
  void load_lvalue(const lvalue& lv) {
    const bool byte = lv.ty.is_char();
    const char* suffix = byte ? ".b" : "";
    switch (lv.k) {
      case lvalue::kind::frame:
        emit(std::string("mov") + suffix + " " +
             std::to_string(sp_offset(*lv.slot)) + "(sp), r15");
        break;
      case lvalue::kind::global:
        emit(std::string("mov") + suffix + " &" + lv.global + ", r15");
        break;
      case lvalue::kind::computed:
        emit(std::string("mov") + suffix + " @r15, r15");
        break;
    }
  }

  /// Store `reg` into the lvalue; for `computed` the address must be in
  /// `addr_reg`.
  void store_lvalue(const lvalue& lv, const std::string& reg,
                    const std::string& addr_reg = "r15") {
    const bool byte = lv.ty.is_char();
    const char* suffix = byte ? ".b" : "";
    switch (lv.k) {
      case lvalue::kind::frame:
        emit(std::string("mov") + suffix + " " + reg + ", " +
             std::to_string(sp_offset(*lv.slot)) + "(sp)");
        break;
      case lvalue::kind::global:
        emit(std::string("mov") + suffix + " " + reg + ", &" + lv.global);
        break;
      case lvalue::kind::computed:
        emit(std::string("mov") + suffix + " " + reg + ", 0(" + addr_reg +
             ")");
        break;
    }
  }

  /// a[i]: leaves the element address in r15, returns the element type.
  /// When the base names an array object directly, an access site is
  /// recorded for the verifier's bounds analysis (see access_site).
  type emit_index_address(const expr& e) {
    const type base = eval_address_of_base(*e.lhs);
    if (!base.is_pointer() && !base.is_array()) {
      fail(e.line, "indexing a non-array");
    }
    const type elem = *base.elem;
    push_acc();               // base address
    const type it = eval(*e.rhs);
    if (!it.is_scalar()) fail(e.line, "index must be scalar");
    if (elem.size() == 2) emit("rla r15");
    pop_to("r14");
    emit("add r14, r15");
    record_access_site(*e.lhs);
    return elem;
  }

  /// If `base` is an identifier naming an array, emit a site label (r15
  /// holds the effective address there) and record its extent metadata.
  void record_access_site(const expr& base) {
    if (base.k != expr::kind::ident) return;
    access_site site;
    if (const local_slot* s = find_local(base.name)) {
      if (!s->ty.is_array()) return;
      site.is_global = false;
      site.local_offset_adj = sp_offset(*s);
      site.size_bytes = s->ty.size();
    } else {
      const auto git = globals_.find(base.name);
      if (git == globals_.end() || !git->second->ty.is_array()) return;
      site.is_global = true;
      site.size_bytes = git->second->ty.size();
    }
    site.object = base.name;
    site.function = fn_->name;
    site.label = ".Lbnd_" + std::to_string(site_counter_++);
    emit_label(site.label);
    sites_.push_back(std::move(site));
  }

  /// Evaluate something usable as an array/pointer base: arrays yield their
  /// address, pointers their value.
  type eval_address_of_base(const expr& e) {
    if (e.k == expr::kind::ident) {
      if (const local_slot* s = find_local(e.name)) {
        if (s->ty.is_array()) {
          emit("mov sp, r15");
          emit("add #" + std::to_string(sp_offset(*s)) + ", r15");
          return s->ty;
        }
        if (s->ty.is_pointer()) {
          emit("mov " + std::to_string(sp_offset(*s)) + "(sp), r15");
          return s->ty;
        }
        fail(e.line, "'" + e.name + "' is not an array or pointer");
      }
      const auto git = globals_.find(e.name);
      if (git != globals_.end()) {
        const type& gt = git->second->ty;
        if (gt.is_array()) {
          emit("mov #" + e.name + ", r15");
          return gt;
        }
        if (gt.is_pointer()) {
          emit("mov &" + e.name + ", r15");
          return gt;
        }
        fail(e.line, "'" + e.name + "' is not an array or pointer");
      }
      fail(e.line, "undefined variable '" + e.name + "'");
    }
    return eval(e);
  }

  // ---- expressions ----

  /// Generate code leaving the (word) value of `e` in r15; returns its type.
  type eval(const expr& e) {
    switch (e.k) {
      case expr::kind::literal:
        emit("mov #" + std::to_string(e.value) + ", r15");
        return make_int();
      case expr::kind::ident: {
        if (const local_slot* s = find_local(e.name)) {
          if (s->ty.is_array()) {
            emit("mov sp, r15");
            emit("add #" + std::to_string(sp_offset(*s)) + ", r15");
            return make_pointer(*s->ty.elem);
          }
          lvalue lv{lvalue::kind::frame, s, "", s->ty};
          load_lvalue(lv);
          return s->ty;
        }
        const auto git = globals_.find(e.name);
        if (git != globals_.end()) {
          const type& gt = git->second->ty;
          if (gt.is_array()) {
            emit("mov #" + e.name + ", r15");
            return make_pointer(*gt.elem);
          }
          lvalue lv{lvalue::kind::global, nullptr, e.name, gt};
          load_lvalue(lv);
          return gt;
        }
        fail(e.line, "undefined variable '" + e.name + "'");
      }
      case expr::kind::assign: {
        const type rt = eval(*e.rhs);
        // Fast path: direct stores for plain variables.
        if (e.lhs->k == expr::kind::ident) {
          lvalue lv = resolve_lvalue(*e.lhs);
          store_lvalue(lv, "r15");
          return lv.ty.is_char() ? rt : lv.ty;
        }
        push_acc();
        lvalue lv = resolve_lvalue(*e.lhs);  // computed: address in r15
        pop_to("r14");
        store_lvalue(lv, "r14");
        emit("mov r14, r15");
        return lv.ty;
      }
      case expr::kind::index: {
        const type elem = emit_index_address(e);
        lvalue lv{lvalue::kind::computed, nullptr, "", elem};
        load_lvalue(lv);
        return elem;
      }
      case expr::kind::unary:
        return eval_unary(e);
      case expr::kind::binary:
        return eval_binary(e);
      case expr::kind::call:
        return eval_call(e);
      case expr::kind::pre_incdec:
      case expr::kind::post_incdec:
        return eval_incdec(e);
    }
    fail(e.line, "unsupported expression");
  }

  type eval_unary(const expr& e) {
    switch (e.uop) {
      case unop::neg: {
        eval(*e.lhs);
        emit("inv r15");
        emit("inc r15");
        return make_int();
      }
      case unop::bnot: {
        eval(*e.lhs);
        emit("inv r15");
        return make_int();
      }
      case unop::lnot: {
        eval(*e.lhs);
        const std::string t = new_label("not_t");
        const std::string end = new_label("not_e");
        emit("tst r15");
        emit("jeq " + t);
        emit("mov #0, r15");
        emit("jmp " + end);
        emit_label(t);
        emit("mov #1, r15");
        emit_label(end);
        return make_int();
      }
      case unop::deref: {
        const type pt = eval(*e.lhs);
        if (!pt.is_pointer() && !pt.is_array()) {
          fail(e.line, "dereference of non-pointer");
        }
        const type elem = *pt.elem;
        emit(elem.is_char() ? "mov.b @r15, r15" : "mov @r15, r15");
        return elem;
      }
      case unop::addr: {
        const expr& target = *e.lhs;
        if (target.k == expr::kind::ident) {
          if (const local_slot* s = find_local(target.name)) {
            emit("mov sp, r15");
            emit("add #" + std::to_string(sp_offset(*s)) + ", r15");
            return make_pointer(s->ty);
          }
          const auto git = globals_.find(target.name);
          if (git != globals_.end()) {
            emit("mov #" + target.name + ", r15");
            return make_pointer(git->second->ty);
          }
          fail(e.line, "undefined variable '" + target.name + "'");
        }
        if (target.k == expr::kind::index) {
          const type elem = emit_index_address(target);
          return make_pointer(elem);
        }
        fail(e.line, "cannot take the address of this expression");
      }
    }
    fail(e.line, "unsupported unary operator");
  }

  type eval_binary(const expr& e) {
    // Short-circuit operators first (no stack temp).
    if (e.op == binop::land || e.op == binop::lor) {
      const std::string out_false = new_label("sc_f");
      const std::string out_true = new_label("sc_t");
      const std::string end = new_label("sc_e");
      eval(*e.lhs);
      emit("tst r15");
      if (e.op == binop::land) {
        emit("jeq " + out_false);
      } else {
        emit("jne " + out_true);
      }
      eval(*e.rhs);
      emit("tst r15");
      emit("jeq " + out_false);
      emit_label(out_true);
      emit("mov #1, r15");
      emit("jmp " + end);
      emit_label(out_false);
      emit("mov #0, r15");
      emit_label(end);
      return make_int();
    }

    const type lt = eval(*e.lhs);
    push_acc();
    const type rt = eval(*e.rhs);

    // Pointer arithmetic scaling (int16 elements scale by 2).
    const bool lp = lt.is_pointer() || lt.is_array();
    const bool rp = rt.is_pointer() || rt.is_array();
    if ((e.op == binop::add || e.op == binop::sub)) {
      if (lp && !rp && lt.elem_size() == 2) emit("rla r15");
    }
    pop_to("r14");
    if ((e.op == binop::add) && rp && !lp && rt.elem_size() == 2) {
      emit("rla r14");
    }

    // lhs in r14, rhs in r15.
    switch (e.op) {
      case binop::add: emit("add r14, r15"); break;
      case binop::sub:
        emit("sub r15, r14");
        emit("mov r14, r15");
        break;
      case binop::band: emit("and r14, r15"); break;
      case binop::bor: emit("bis r14, r15"); break;
      case binop::bxor: emit("xor r14, r15"); break;
      case binop::mul:
        helpers_.insert("__mulhi");
        emit("call #__mulhi");
        break;
      case binop::div:
      case binop::mod: {
        // Helpers take dividend in r15, divisor in r14: swap.
        emit("mov r15, r13");
        emit("mov r14, r15");
        emit("mov r13, r14");
        helpers_.insert(e.op == binop::div ? "__divhi" : "__modhi");
        emit(e.op == binop::div ? "call #__divhi" : "call #__modhi");
        break;
      }
      case binop::shl:
      case binop::shr: {
        emit("mov r15, r13");
        emit("mov r14, r15");
        emit("mov r13, r14");
        helpers_.insert(e.op == binop::shl ? "__shlhi" : "__shrhi");
        emit(e.op == binop::shl ? "call #__shlhi" : "call #__shrhi");
        break;
      }
      case binop::eq:
      case binop::ne:
      case binop::lt:
      case binop::le:
      case binop::gt:
      case binop::ge: {
        const std::string t = new_label("cmp_t");
        const std::string end = new_label("cmp_e");
        switch (e.op) {
          case binop::eq:
            emit("cmp r15, r14");
            emit("jeq " + t);
            break;
          case binop::ne:
            emit("cmp r15, r14");
            emit("jne " + t);
            break;
          case binop::lt:  // lhs < rhs  <=>  r14 - r15 < 0
            emit("cmp r15, r14");
            emit("jl " + t);
            break;
          case binop::ge:  // lhs >= rhs
            emit("cmp r15, r14");
            emit("jge " + t);
            break;
          case binop::gt:  // lhs > rhs  <=>  rhs < lhs  <=>  r15 - r14 < 0
            emit("cmp r14, r15");
            emit("jl " + t);
            break;
          case binop::le:  // lhs <= rhs  <=>  r15 - r14 >= 0
            emit("cmp r14, r15");
            emit("jge " + t);
            break;
          default: break;
        }
        emit("mov #0, r15");
        emit("jmp " + end);
        emit_label(t);
        emit("mov #1, r15");
        emit_label(end);
        return make_int();
      }
      default:
        fail(e.line, "unsupported binary operator");
    }
    if ((e.op == binop::add || e.op == binop::sub) && (lp || rp)) {
      return lp ? lt : rt;
    }
    return make_int();
  }

  type eval_incdec(const expr& e) {
    const bool post = e.k == expr::kind::post_incdec;
    // Fast path for plain variables.
    if (e.lhs->k == expr::kind::ident) {
      lvalue lv = resolve_lvalue(*e.lhs);
      load_lvalue(lv);  // old -> r15
      emit("mov r15, r14");
      emit(e.value > 0 ? "add #1, r14" : "sub #1, r14");
      store_lvalue(lv, "r14");
      if (!post) emit("mov r14, r15");
      return lv.ty;
    }
    // General path through a computed address.
    lvalue lv = resolve_lvalue(*e.lhs);  // address in r15
    if (lv.k != lvalue::kind::computed) fail(e.line, "internal incdec state");
    emit("mov r15, r13");
    emit(lv.ty.is_char() ? "mov.b @r13, r15" : "mov @r13, r15");
    emit("mov r15, r14");
    emit(e.value > 0 ? "add #1, r14" : "sub #1, r14");
    store_lvalue(lv, "r14", "r13");
    if (!post) emit("mov r14, r15");
    return lv.ty;
  }

  type eval_call(const expr& e) {
    // ---- intrinsics ----
    auto args = [&](std::size_t n) {
      if (e.args.size() != n) {
        fail(e.line, e.name + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    if (e.name == "__mmio_r8" || e.name == "__mmio_r16") {
      args(1);
      eval(*e.args[0]);
      emit(e.name == "__mmio_r8" ? "mov.b @r15, r15" : "mov @r15, r15");
      return make_int();
    }
    if (e.name == "__mmio_w8" || e.name == "__mmio_w16") {
      args(2);
      eval(*e.args[0]);
      push_acc();
      eval(*e.args[1]);
      pop_to("r14");
      emit(e.name == "__mmio_w8" ? "mov.b r15, 0(r14)" : "mov r15, 0(r14)");
      return make_void();
    }
    if (e.name == "__delay_cycles") {
      args(1);
      eval(*e.args[0]);
      helpers_.insert("__delay");
      emit("call #__delay");
      return make_void();
    }
    if (e.name == "__halt") {
      args(1);
      eval(*e.args[0]);
      emit("mov r15, &HALT_PORT");
      return make_void();
    }
    if (e.name == "memcpy") {
      args(3);
      return emit_user_call(e, "__memcpy", 3);
    }

    // ---- user functions ----
    const auto fit = functions_.find(e.name);
    if (fit == functions_.end()) {
      fail(e.line, "call to undefined function '" + e.name + "'");
    }
    if (e.args.size() != fit->second->params.size()) {
      fail(e.line, "wrong number of arguments to '" + e.name + "'");
    }
    if (e.args.size() > 8) fail(e.line, "more than 8 arguments");
    emit_user_call(e, e.name, static_cast<int>(e.args.size()));
    return fit->second->ret;
  }

  type emit_user_call(const expr& e, const std::string& target, int n) {
    if (n > 8) fail(e.line, "more than 8 arguments");
    for (int i = 0; i < n; ++i) {
      eval(*e.args[static_cast<std::size_t>(i)]);
      push_acc();
    }
    // Pop into the argument registers: argk ends up in r(15-k).
    for (int i = n - 1; i >= 0; --i) {
      pop_to("r" + std::to_string(15 - i));
    }
    if (target == "__memcpy") helpers_.insert("__memcpy");
    emit("call #" + target);
    return make_int();
  }

  // ---- statements ----
  struct loop_labels {
    std::string break_label;
    std::string continue_label;
  };

  void gen_stmt(const stmt& s) {
    switch (s.k) {
      case stmt::kind::expression:
        eval(*s.e);
        return;
      case stmt::kind::decl: {
        if (s.decl_init) {
          const local_slot* slot = find_local(s.decl_name);
          eval(*s.decl_init);
          lvalue lv{lvalue::kind::frame, slot, "", slot->ty};
          store_lvalue(lv, "r15");
        }
        return;
      }
      case stmt::kind::block:
        for (const auto& c : s.body) gen_stmt(*c);
        return;
      case stmt::kind::if_: {
        const std::string else_l = new_label("else");
        const std::string end_l = new_label("fi");
        eval(*s.e);
        emit("tst r15");
        emit("jeq " + else_l);
        for (const auto& c : s.body) gen_stmt(*c);
        if (!s.else_body.empty()) {
          emit("jmp " + end_l);
          emit_label(else_l);
          for (const auto& c : s.else_body) gen_stmt(*c);
          emit_label(end_l);
        } else {
          emit_label(else_l);
        }
        return;
      }
      case stmt::kind::while_: {
        const std::string head = new_label("wh");
        const std::string end = new_label("we");
        emit_label(head);
        eval(*s.e);
        emit("tst r15");
        emit("jeq " + end);
        loops_.push_back({end, head});
        for (const auto& c : s.body) gen_stmt(*c);
        loops_.pop_back();
        emit("jmp " + head);
        emit_label(end);
        return;
      }
      case stmt::kind::do_while_: {
        const std::string head = new_label("dw");
        const std::string cond_l = new_label("dwc");
        const std::string end = new_label("dwe");
        emit_label(head);
        loops_.push_back({end, cond_l});
        for (const auto& c : s.body) gen_stmt(*c);
        loops_.pop_back();
        emit_label(cond_l);
        eval(*s.e);
        emit("tst r15");
        emit("jne " + head);
        emit_label(end);
        return;
      }
      case stmt::kind::for_: {
        const std::string head = new_label("fh");
        const std::string step_l = new_label("fs");
        const std::string end = new_label("fe");
        if (s.init) gen_stmt(*s.init);
        emit_label(head);
        if (s.e) {
          eval(*s.e);
          emit("tst r15");
          emit("jeq " + end);
        }
        loops_.push_back({end, step_l});
        for (const auto& c : s.body) gen_stmt(*c);
        loops_.pop_back();
        emit_label(step_l);
        if (s.step) eval(*s.step);
        emit("jmp " + head);
        emit_label(end);
        return;
      }
      case stmt::kind::return_:
        if (s.e) eval(*s.e);
        emit("jmp " + epilogue_);
        return;
      case stmt::kind::break_:
        if (loops_.empty()) fail(s.line, "break outside a loop");
        emit("jmp " + loops_.back().break_label);
        return;
      case stmt::kind::continue_:
        if (loops_.empty()) fail(s.line, "continue outside a loop");
        emit("jmp " + loops_.back().continue_label);
        return;
    }
  }

  // ---- functions ----
  void collect_locals(const std::vector<stmt_ptr>& body,
                      function_info& info, int& frame, int line) {
    for (const auto& sp : body) {
      const stmt& s = *sp;
      if (s.k == stmt::kind::decl) {
        if (locals_.count(s.decl_name)) {
          fail(s.line, "local redefined: " + s.decl_name +
                           " (shadowing is not supported)");
        }
        int size = s.decl_type.size();
        if (size % 2 != 0) ++size;  // keep the frame word-aligned
        if (s.decl_type.is_scalar() && size < 2) size = 2;
        locals_[s.decl_name] = {frame, s.decl_type};
        local_var_info li;
        li.name = s.decl_name;
        li.frame_offset = frame;
        li.size_bytes = s.decl_type.size();
        li.is_array = s.decl_type.is_array();
        li.is_char = s.decl_type.is_array() ? s.decl_type.elem->is_char()
                                            : s.decl_type.is_char();
        info.locals.push_back(li);
        frame += size;
      }
      collect_locals(s.body, info, frame, line);
      collect_locals(s.else_body, info, frame, line);
      if (s.init) {
        std::vector<stmt_ptr> tmp;  // visit for-init declaration
        if (s.init->k == stmt::kind::decl) {
          if (locals_.count(s.init->decl_name)) {
            fail(s.init->line, "local redefined: " + s.init->decl_name);
          }
          int size = s.init->decl_type.size();
          if (size % 2 != 0) ++size;
          if (s.init->decl_type.is_scalar() && size < 2) size = 2;
          locals_[s.init->decl_name] = {frame, s.init->decl_type};
          local_var_info li;
          li.name = s.init->decl_name;
          li.frame_offset = frame;
          li.size_bytes = s.init->decl_type.size();
          li.is_array = s.init->decl_type.is_array();
          li.is_char = s.init->decl_type.is_char();
          info.locals.push_back(li);
          frame += size;
        }
      }
    }
  }

  function_info emit_function(const function_decl& f) {
    fn_ = &f;
    locals_.clear();
    loops_.clear();
    push_depth_ = 0;
    label_counter_ = 0;
    epilogue_ = ".L" + f.name + "_epilogue";

    function_info info;
    info.name = f.name;
    info.num_params = static_cast<int>(f.params.size());
    info.returns_value = !f.ret.is_void();

    int frame = 0;
    // Parameters become the first frame slots.
    if (f.params.size() > 8) fail(f.line, "more than 8 parameters");
    for (const auto& p : f.params) {
      if (locals_.count(p.name)) fail(f.line, "parameter redefined: " + p.name);
      locals_[p.name] = {frame, p.ty};
      local_var_info li;
      li.name = p.name;
      li.frame_offset = frame;
      li.size_bytes = p.ty.size() < 2 ? 2 : p.ty.size();
      li.is_array = false;
      li.is_char = p.ty.is_char();
      info.locals.push_back(li);
      frame += 2;
    }
    collect_locals(f.body, info, frame, f.line);
    info.frame_size = frame;

    emit_label(f.name);
    if (frame > 0) emit("sub #" + std::to_string(frame) + ", sp");
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      emit("mov r" + std::to_string(15 - i) + ", " +
           std::to_string(2 * static_cast<int>(i)) + "(sp)");
    }
    for (const auto& s : f.body) gen_stmt(*s);
    emit_label(epilogue_);
    if (frame > 0) emit("add #" + std::to_string(frame) + ", sp");
    emit("ret");

    if (push_depth_ != 0) {
      fail(f.line, "internal: unbalanced expression stack");
    }
    fn_ = nullptr;
    return info;
  }

  const translation_unit& tu_;
  std::string text_;
  std::map<std::string, const global_decl*> globals_;
  std::map<std::string, const function_decl*> functions_;
  std::set<std::string> helpers_;
  std::vector<access_site> sites_;
  int site_counter_ = 0;

  // Per-function state.
  const function_decl* fn_ = nullptr;
  std::map<std::string, local_slot> locals_;
  std::vector<loop_labels> loops_;
  std::string epilogue_;
  int push_depth_ = 0;
  int label_counter_ = 0;
};

}  // namespace

compile_result compile(std::string_view source) {
  const translation_unit tu = parse(source);
  return codegen(tu).run();
}

}  // namespace dialed::cc
