#include "cc/lexer.h"

#include <array>
#include <cctype>

#include "common/error.h"

namespace dialed::cc {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw error("cc:" + std::to_string(line) + ": " + msg);
}

// Longest-match punctuation table (order matters: longest first).
constexpr std::array<std::string_view, 33> puncts = {
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++",
    "--",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+",  "-",
    "*",   "/",   "%",  "&",  "|",  "^",  "!",  "~",  "<",  ">",  "="};

}  // namespace

std::vector<token> lex(std::string_view src) {
  std::vector<token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (src.substr(i).starts_with("//")) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (src.substr(i).starts_with("/*")) {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) fail(line, "unterminated comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      out.push_back({token::kind::identifier,
                     std::string(src.substr(start, i - start)), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      if (src.substr(i).starts_with("0x") || src.substr(i).starts_with("0X")) {
        i += 2;
        std::size_t digits = 0;
        while (i < n && std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char d = static_cast<char>(
              std::tolower(static_cast<unsigned char>(src[i])));
          value = value * 16 + (d <= '9' ? d - '0' : d - 'a' + 10);
          ++i;
          ++digits;
        }
        if (digits == 0) fail(line, "malformed hex literal");
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) {
          value = value * 10 + (src[i] - '0');
          ++i;
        }
      }
      out.push_back({token::kind::number, "", static_cast<std::int32_t>(value),
                     line});
      continue;
    }
    if (c == '\'') {
      if (i + 2 >= n) fail(line, "unterminated character literal");
      char v = src[i + 1];
      std::size_t adv = 3;
      if (v == '\\') {
        if (i + 3 >= n) fail(line, "unterminated character literal");
        switch (src[i + 2]) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default: fail(line, "unknown escape in character literal");
        }
        adv = 4;
      }
      if (src[i + adv - 1] != '\'') fail(line, "unterminated character literal");
      out.push_back({token::kind::number, "", v, line});
      i += adv;
      continue;
    }
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == '[' ||
        c == ']' || c == ';' || c == ',') {
      out.push_back({token::kind::punct, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    bool matched = false;
    for (const auto p : puncts) {
      if (src.substr(i).starts_with(p)) {
        out.push_back({token::kind::punct, std::string(p), 0, line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) fail(line, std::string("unexpected character '") + c + "'");
  }
  out.push_back({token::kind::eof, "", 0, line});
  return out;
}

}  // namespace dialed::cc
