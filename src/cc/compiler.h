// Public facade of the mini-C compiler: source text in, MSP430 assembly out,
// together with the debug information the verifier's memory-safety analysis
// consumes (global extents and per-function frame layouts).
//
// ABI (matches the paper §IV): arguments in r15..r8 (first in r15), return
// value in r15; r11..r15 caller-saved; r4 (DIALED log pointer) and r5
// (instrumentation scratch) are never allocated.
#ifndef DIALED_CC_COMPILER_H
#define DIALED_CC_COMPILER_H

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cc/ast.h"

namespace dialed::cc {

/// A named memory object, for the verifier's bounds analysis.
struct global_var_info {
  std::string name;
  int size_bytes = 0;
  bool is_char = false;
  bool is_array = false;
  std::vector<std::int32_t> init;  ///< element initializers (may be short)
};

struct local_var_info {
  std::string name;
  int frame_offset = 0;  ///< bytes from SP after the prologue
  int size_bytes = 0;
  bool is_array = false;
  bool is_char = false;
};

struct function_info {
  std::string name;
  int frame_size = 0;
  int num_params = 0;
  bool returns_value = false;
  std::vector<local_var_info> locals;  ///< params first, then locals
};

/// One compiler-recorded array access: at the instruction labelled `label`
/// the register r15 holds the effective address of an access into `object`.
/// The verifier checks it against the object's extent during abstract
/// execution — this is what detects data-only attacks like the paper's
/// Fig. 2 without any programmer annotation (DIALED's key advantage over
/// OAT, §I).
struct access_site {
  std::string label;  ///< ".Lbnd_<n>", resolvable via the image symbol table
  std::string object;
  std::string function;
  bool is_global = false;
  int local_offset_adj = 0;  ///< locals: extent base = r1 + this, at the site
  int size_bytes = 0;
};

struct compile_result {
  std::string asm_text;  ///< functions only; runtime helpers are separate
  std::vector<global_var_info> globals;
  std::vector<function_info> functions;  ///< in source order
  std::set<std::string> helpers;  ///< runtime helpers referenced (__mulhi...)
  std::vector<access_site> access_sites;

  /// Per-function assembly, so the op-linker can order the entry function
  /// last (its final `ret` becomes the instruction at ER_max).
  std::vector<std::pair<std::string, std::string>> function_text;
};

/// Compile a translation unit. Throws dialed::error ("cc:<line>: ...") on
/// the first front-end or codegen error.
compile_result compile(std::string_view source);

/// Assembly text of the requested runtime helpers (plus their transitive
/// dependencies), suitable for placing inside the attested ER.
std::string runtime_asm(const std::set<std::string>& helpers);

/// All helpers the runtime provides (for tests).
const std::set<std::string>& all_runtime_helpers();

}  // namespace dialed::cc

#endif  // DIALED_CC_COMPILER_H
