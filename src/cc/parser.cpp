#include "cc/parser.h"

#include <optional>

#include "cc/lexer.h"
#include "common/error.h"

namespace dialed::cc {

int type::size() const {
  switch (k) {
    case kind::void_t: return 0;
    case kind::char_t: return 1;
    case kind::int_t:
    case kind::pointer: return 2;
    case kind::array: return array_len * elem->size();
  }
  return 0;
}

int type::elem_size() const {
  if ((is_pointer() || is_array()) && elem) return elem->size();
  return is_char() ? 1 : 2;
}

type make_int() { return {type::kind::int_t, nullptr, 0}; }
type make_char() { return {type::kind::char_t, nullptr, 0}; }
type make_void() { return {type::kind::void_t, nullptr, 0}; }
type make_pointer(type elem) {
  return {type::kind::pointer, std::make_shared<type>(std::move(elem)), 0};
}
type make_array(type elem, int len) {
  return {type::kind::array, std::make_shared<type>(std::move(elem)), len};
}

std::string to_string(const type& t) {
  switch (t.k) {
    case type::kind::void_t: return "void";
    case type::kind::int_t: return "int";
    case type::kind::char_t: return "char";
    case type::kind::pointer: return to_string(*t.elem) + "*";
    case type::kind::array:
      return to_string(*t.elem) + "[" + std::to_string(t.array_len) + "]";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw error("cc:" + std::to_string(line) + ": " + msg);
}

class parser {
 public:
  explicit parser(std::vector<token> toks) : toks_(std::move(toks)) {}

  translation_unit run() {
    translation_unit tu;
    while (!peek().is("") && peek().k != token::kind::eof) {
      parse_top_level(tu);
    }
    return tu;
  }

 private:
  const token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  token next() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(std::string_view p) {
    if (peek().is(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(std::string_view p) {
    if (!accept(p)) {
      fail(peek().line,
           "expected '" + std::string(p) + "', got '" + peek().text + "'");
    }
  }
  std::string expect_ident() {
    if (peek().k != token::kind::identifier) {
      fail(peek().line, "expected identifier");
    }
    return next().text;
  }

  // type := ("void"|"int"|"unsigned"|"char") "*"*
  std::optional<type> try_type() {
    const token& t = peek();
    if (t.k != token::kind::identifier) return std::nullopt;
    type base;
    if (t.text == "void") {
      base = make_void();
    } else if (t.text == "int" || t.text == "unsigned") {
      base = make_int();
    } else if (t.text == "char") {
      base = make_char();
    } else {
      return std::nullopt;
    }
    ++pos_;
    if (peek().is_ident("int") && base.k == type::kind::int_t) {
      ++pos_;  // "unsigned int"
    }
    if (peek().is_ident("char")) {
      ++pos_;  // "unsigned char"
      base = make_char();
    }
    while (accept("*")) base = make_pointer(base);
    return base;
  }

  void parse_top_level(translation_unit& tu) {
    const int line = peek().line;
    auto ty = try_type();
    if (!ty) fail(line, "expected declaration");
    const std::string name = expect_ident();

    if (peek().is("(")) {
      tu.functions.push_back(parse_function(*ty, name, line));
      return;
    }

    // Global variable (possibly an array, possibly initialized).
    global_decl g;
    g.name = name;
    g.ty = *ty;
    g.line = line;
    if (accept("[")) {
      if (peek().k != token::kind::number) {
        fail(line, "array length must be a literal");
      }
      const int len = next().value;
      expect("]");
      g.ty = make_array(*ty, len);
    }
    if (accept("=")) {
      if (accept("{")) {
        if (!peek().is("}")) {
          do {
            g.init.push_back(parse_const_expr());
          } while (accept(","));
        }
        expect("}");
      } else {
        g.init.push_back(parse_const_expr());
      }
    }
    expect(";");
    tu.globals.push_back(std::move(g));
  }

  std::int32_t parse_const_expr() {
    bool neg = accept("-");
    if (peek().k != token::kind::number) {
      fail(peek().line, "expected constant expression");
    }
    const std::int32_t v = next().value;
    return neg ? -v : v;
  }

  function_decl parse_function(type ret, std::string name, int line) {
    function_decl f;
    f.name = std::move(name);
    f.ret = std::move(ret);
    f.line = line;
    expect("(");
    if (!peek().is(")")) {
      if (peek().is_ident("void") && peek(1).is(")")) {
        ++pos_;
      } else {
        do {
          auto pty = try_type();
          if (!pty) fail(peek().line, "expected parameter type");
          if (pty->is_void()) fail(peek().line, "void parameter");
          param p;
          p.ty = *pty;
          p.name = expect_ident();
          if (accept("[")) {  // array parameter decays to pointer
            expect("]");
            p.ty = make_pointer(*pty);
          }
          f.params.push_back(std::move(p));
        } while (accept(","));
      }
    }
    expect(")");
    expect("{");
    while (!peek().is("}")) f.body.push_back(parse_stmt());
    expect("}");
    return f;
  }

  stmt_ptr parse_stmt() {
    auto s = std::make_unique<stmt>();
    s->line = peek().line;

    if (accept("{")) {
      s->k = stmt::kind::block;
      while (!peek().is("}")) s->body.push_back(parse_stmt());
      expect("}");
      return s;
    }
    if (peek().is_ident("if")) {
      ++pos_;
      s->k = stmt::kind::if_;
      expect("(");
      s->e = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      if (peek().is_ident("else")) {
        ++pos_;
        s->else_body.push_back(parse_stmt());
      }
      return s;
    }
    if (peek().is_ident("while")) {
      ++pos_;
      s->k = stmt::kind::while_;
      expect("(");
      s->e = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      return s;
    }
    if (peek().is_ident("do")) {
      ++pos_;
      s->k = stmt::kind::do_while_;
      s->body.push_back(parse_stmt());
      if (!peek().is_ident("while")) fail(peek().line, "expected 'while'");
      ++pos_;
      expect("(");
      s->e = parse_expr();
      expect(")");
      expect(";");
      return s;
    }
    if (peek().is_ident("for")) {
      ++pos_;
      s->k = stmt::kind::for_;
      expect("(");
      if (!peek().is(";")) {
        s->init = parse_simple_stmt();
      } else {
        ++pos_;
      }
      if (!peek().is(";")) s->e = parse_expr();
      expect(";");
      if (!peek().is(")")) s->step = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      return s;
    }
    if (peek().is_ident("return")) {
      ++pos_;
      s->k = stmt::kind::return_;
      if (!peek().is(";")) s->e = parse_expr();
      expect(";");
      return s;
    }
    if (peek().is_ident("break")) {
      ++pos_;
      s->k = stmt::kind::break_;
      expect(";");
      return s;
    }
    if (peek().is_ident("continue")) {
      ++pos_;
      s->k = stmt::kind::continue_;
      expect(";");
      return s;
    }
    return parse_simple_stmt();
  }

  /// declaration-or-expression statement, consuming the trailing ';'.
  stmt_ptr parse_simple_stmt() {
    auto s = std::make_unique<stmt>();
    s->line = peek().line;
    // Try a local declaration.
    {
      const std::size_t save = pos_;
      if (auto ty = try_type()) {
        if (peek().k == token::kind::identifier) {
          s->k = stmt::kind::decl;
          s->decl_type = *ty;
          s->decl_name = expect_ident();
          if (accept("[")) {
            if (peek().k != token::kind::number) {
              fail(s->line, "array length must be a literal");
            }
            const int len = next().value;
            expect("]");
            s->decl_type = make_array(*ty, len);
          }
          if (accept("=")) s->decl_init = parse_expr();
          expect(";");
          return s;
        }
        pos_ = save;
      }
    }
    s->k = stmt::kind::expression;
    s->e = parse_expr();
    expect(";");
    return s;
  }

  // ---- expressions (precedence climbing) ----
  expr_ptr parse_expr() { return parse_assign(); }

  expr_ptr parse_assign() {
    expr_ptr lhs = parse_logical_or();
    const int line = peek().line;
    static constexpr struct {
      std::string_view tok;
      binop op;
    } compound[] = {{"+=", binop::add},  {"-=", binop::sub},
                    {"*=", binop::mul},  {"/=", binop::div},
                    {"%=", binop::mod},  {"&=", binop::band},
                    {"|=", binop::bor},  {"^=", binop::bxor},
                    {"<<=", binop::shl}, {">>=", binop::shr}};
    if (accept("=")) {
      auto e = std::make_unique<expr>();
      e->k = expr::kind::assign;
      e->line = line;
      e->lhs = std::move(lhs);
      e->rhs = parse_assign();
      return e;
    }
    for (const auto& c : compound) {
      if (peek().is(c.tok)) {
        ++pos_;
        // a op= b  ==>  a = (a op b), duplicating the lvalue AST.
        auto dup = clone(*lhs);
        auto bin = std::make_unique<expr>();
        bin->k = expr::kind::binary;
        bin->line = line;
        bin->op = c.op;
        bin->lhs = std::move(dup);
        bin->rhs = parse_assign();
        auto e = std::make_unique<expr>();
        e->k = expr::kind::assign;
        e->line = line;
        e->lhs = std::move(lhs);
        e->rhs = std::move(bin);
        return e;
      }
    }
    return lhs;
  }

  expr_ptr clone(const expr& src) {
    auto e = std::make_unique<expr>();
    e->k = src.k;
    e->line = src.line;
    e->value = src.value;
    e->name = src.name;
    e->op = src.op;
    e->uop = src.uop;
    if (src.lhs) e->lhs = clone(*src.lhs);
    if (src.rhs) e->rhs = clone(*src.rhs);
    for (const auto& a : src.args) e->args.push_back(clone(*a));
    return e;
  }

  expr_ptr binary_chain(expr_ptr (parser::*sub)(),
                        std::initializer_list<std::pair<std::string_view, binop>>
                            table) {
    expr_ptr lhs = (this->*sub)();
    for (;;) {
      bool matched = false;
      for (const auto& [tok, op] : table) {
        if (peek().is(tok)) {
          const int line = peek().line;
          ++pos_;
          auto e = std::make_unique<expr>();
          e->k = expr::kind::binary;
          e->line = line;
          e->op = op;
          e->lhs = std::move(lhs);
          e->rhs = (this->*sub)();
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  expr_ptr parse_logical_or() {
    return binary_chain(&parser::parse_logical_and, {{"||", binop::lor}});
  }
  expr_ptr parse_logical_and() {
    return binary_chain(&parser::parse_bit_or, {{"&&", binop::land}});
  }
  expr_ptr parse_bit_or() {
    return binary_chain(&parser::parse_bit_xor, {{"|", binop::bor}});
  }
  expr_ptr parse_bit_xor() {
    return binary_chain(&parser::parse_bit_and, {{"^", binop::bxor}});
  }
  expr_ptr parse_bit_and() {
    return binary_chain(&parser::parse_equality, {{"&", binop::band}});
  }
  expr_ptr parse_equality() {
    return binary_chain(&parser::parse_relational,
                        {{"==", binop::eq}, {"!=", binop::ne}});
  }
  expr_ptr parse_relational() {
    return binary_chain(&parser::parse_shift, {{"<=", binop::le},
                                               {">=", binop::ge},
                                               {"<", binop::lt},
                                               {">", binop::gt}});
  }
  expr_ptr parse_shift() {
    return binary_chain(&parser::parse_additive,
                        {{"<<", binop::shl}, {">>", binop::shr}});
  }
  expr_ptr parse_additive() {
    return binary_chain(&parser::parse_multiplicative,
                        {{"+", binop::add}, {"-", binop::sub}});
  }
  expr_ptr parse_multiplicative() {
    return binary_chain(
        &parser::parse_unary,
        {{"*", binop::mul}, {"/", binop::div}, {"%", binop::mod}});
  }

  expr_ptr parse_unary() {
    const int line = peek().line;
    auto mk_unary = [&](unop u) {
      ++pos_;
      auto e = std::make_unique<expr>();
      e->k = expr::kind::unary;
      e->line = line;
      e->uop = u;
      e->lhs = parse_unary();
      return e;
    };
    if (peek().is("-")) return mk_unary(unop::neg);
    if (peek().is("!")) return mk_unary(unop::lnot);
    if (peek().is("~")) return mk_unary(unop::bnot);
    if (peek().is("*")) return mk_unary(unop::deref);
    if (peek().is("&")) return mk_unary(unop::addr);
    if (peek().is("++") || peek().is("--")) {
      const int delta = peek().is("++") ? 1 : -1;
      ++pos_;
      auto e = std::make_unique<expr>();
      e->k = expr::kind::pre_incdec;
      e->line = line;
      e->value = delta;
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  expr_ptr parse_postfix() {
    expr_ptr e = parse_primary();
    for (;;) {
      const int line = peek().line;
      if (accept("[")) {
        auto idx = std::make_unique<expr>();
        idx->k = expr::kind::index;
        idx->line = line;
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        expect("]");
        e = std::move(idx);
        continue;
      }
      if (peek().is("++") || peek().is("--")) {
        const int delta = peek().is("++") ? 1 : -1;
        ++pos_;
        auto p = std::make_unique<expr>();
        p->k = expr::kind::post_incdec;
        p->line = line;
        p->value = delta;
        p->lhs = std::move(e);
        e = std::move(p);
        continue;
      }
      return e;
    }
  }

  expr_ptr parse_primary() {
    const token& t = peek();
    auto e = std::make_unique<expr>();
    e->line = t.line;
    if (t.k == token::kind::number) {
      e->k = expr::kind::literal;
      e->value = next().value;
      return e;
    }
    if (accept("(")) {
      e = parse_expr();
      expect(")");
      return e;
    }
    if (t.k == token::kind::identifier) {
      const std::string name = next().text;
      if (accept("(")) {
        e->k = expr::kind::call;
        e->name = name;
        if (!peek().is(")")) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(","));
        }
        expect(")");
        return e;
      }
      e->k = expr::kind::ident;
      e->name = name;
      return e;
    }
    fail(t.line, "expected expression, got '" + t.text + "'");
  }

  std::vector<token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

translation_unit parse(std::string_view source) {
  return parser(lex(source)).run();
}

}  // namespace dialed::cc
