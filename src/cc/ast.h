// Abstract syntax tree of the mini-C language used to write the embedded
// operations (DESIGN.md §2). The subset covers what the paper's three
// evaluation applications and its Fig. 1/Fig. 2 listings need: 16-bit ints,
// 8-bit chars, pointers, arrays, the usual statements and operators, and a
// handful of MMIO/delay intrinsics.
#ifndef DIALED_CC_AST_H
#define DIALED_CC_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dialed::cc {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// int = 16-bit word, ch = 8-bit byte; pointers are 16-bit.
struct type {
  enum class kind : std::uint8_t { void_t, int_t, char_t, pointer, array };
  kind k = kind::int_t;
  std::shared_ptr<type> elem;  ///< pointee/element for pointer/array
  int array_len = 0;

  bool is_void() const { return k == kind::void_t; }
  bool is_pointer() const { return k == kind::pointer; }
  bool is_array() const { return k == kind::array; }
  bool is_char() const { return k == kind::char_t; }
  bool is_scalar() const {
    return k == kind::int_t || k == kind::char_t || k == kind::pointer;
  }

  /// Size in bytes (void = 0).
  int size() const;
  /// Size of the pointed-to / element type (1 for char, else 2).
  int elem_size() const;
};

type make_int();
type make_char();
type make_void();
type make_pointer(type elem);
type make_array(type elem, int len);
std::string to_string(const type& t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class binop : std::uint8_t {
  add, sub, mul, div, mod,
  band, bor, bxor, shl, shr,
  eq, ne, lt, le, gt, ge,
  land, lor,
};

enum class unop : std::uint8_t { neg, lnot, bnot, deref, addr };

struct expr;
using expr_ptr = std::unique_ptr<expr>;

struct expr {
  enum class kind : std::uint8_t {
    literal,    ///< value
    ident,      ///< name
    binary,     ///< op, lhs, rhs
    unary,      ///< uop, lhs
    assign,     ///< lhs = rhs
    index,      ///< lhs[rhs]
    call,       ///< name(args...)
    pre_incdec, ///< ++x / --x   (delta = +1/-1)
    post_incdec,///< x++ / x--
  };

  kind k = kind::literal;
  int line = 0;

  std::int32_t value = 0;  ///< literal / incdec delta
  std::string name;        ///< ident / call target
  binop op = binop::add;
  unop uop = unop::neg;
  expr_ptr lhs;
  expr_ptr rhs;
  std::vector<expr_ptr> args;

  /// Filled by the code generator's type checker.
  type ty{};
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct stmt;
using stmt_ptr = std::unique_ptr<stmt>;

struct stmt {
  enum class kind : std::uint8_t {
    expression,  ///< e;
    decl,        ///< local declaration (possibly with init)
    block,       ///< { body... }
    if_,         ///< cond, then_body, else_body
    while_,      ///< cond, body(=then_body)
    do_while_,   ///< body, cond (condition tested after the body)
    for_,        ///< init(stmt), cond, step(expr), body
    return_,     ///< optional value
    break_,
    continue_,
  };

  kind k = kind::expression;
  int line = 0;

  expr_ptr e;        ///< expression / condition / return value
  expr_ptr step;     ///< for-step
  stmt_ptr init;     ///< for-init
  std::vector<stmt_ptr> body;       ///< block / then / loop body
  std::vector<stmt_ptr> else_body;  ///< else branch

  // kind::decl
  std::string decl_name;
  type decl_type{};
  expr_ptr decl_init;
};

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

struct param {
  std::string name;
  type ty;
};

struct function_decl {
  std::string name;
  type ret{};
  std::vector<param> params;
  std::vector<stmt_ptr> body;
  int line = 0;
};

struct global_decl {
  std::string name;
  type ty{};
  std::vector<std::int32_t> init;  ///< scalar: 1 entry; array: up to len
  int line = 0;
};

struct translation_unit {
  std::vector<global_decl> globals;
  std::vector<function_decl> functions;
};

}  // namespace dialed::cc

#endif  // DIALED_CC_AST_H
