// Assembly runtime for compiled operations. The MSP430 has no hardware
// multiply/divide, so the compiler lowers *, /, %, << and >> to these
// helpers, exactly as msp430-gcc's libgcc does. The helpers live inside the
// attested ER and are instrumented together with the op (their reads are
// register-only, so they add no I-Log entries — only CF-Log ones).
//
// ABI: first operand r15, second r14; result r15; r12/r13 scratch.
#include <map>
#include <vector>

#include "cc/compiler.h"
#include "common/error.h"

namespace dialed::cc {

namespace {

struct helper_def {
  const char* text;
  std::vector<std::string> deps;
};

const std::map<std::string, helper_def>& helper_table() {
  static const std::map<std::string, helper_def> table = {
      {"__mulhi",
       {R"(__mulhi:                       ; r15 = r15 * r14 (shift-add)
        mov r15, r13
        mov #0, r15
__mulhi_loop:
        tst r14
        jeq __mulhi_done
        bit #1, r14
        jeq __mulhi_noadd
        add r13, r15
__mulhi_noadd:
        rla r13
        clrc
        rrc r14
        jmp __mulhi_loop
__mulhi_done:
        ret
)",
        {}}},
      {"__udivhi",
       {R"(__udivhi:                      ; r15 = r15 / r14 (unsigned), r13 = remainder
        mov #0, r13
        mov #16, r12
__udivhi_loop:
        rla r15
        rlc r13
        cmp r14, r13
        jlo __udivhi_skip
        sub r14, r13
        bis #1, r15
__udivhi_skip:
        dec r12
        jne __udivhi_loop
        ret
)",
        {}}},
      {"__divhi",
       {R"(__divhi:                       ; r15 = r15 / r14 (signed)
        mov #0, r12
        tst r15
        jge __divhi_p1
        inv r15
        inc r15
        xor #1, r12
__divhi_p1:
        tst r14
        jge __divhi_p2
        inv r14
        inc r14
        xor #1, r12
__divhi_p2:
        push r12
        call #__udivhi
        pop r12
        tst r12
        jeq __divhi_done
        inv r15
        inc r15
__divhi_done:
        ret
)",
        {"__udivhi"}}},
      {"__modhi",
       {R"(__modhi:                       ; r15 = r15 % r14 (sign follows dividend)
        mov #0, r12
        tst r15
        jge __modhi_p1
        inv r15
        inc r15
        mov #1, r12
__modhi_p1:
        tst r14
        jge __modhi_p2
        inv r14
        inc r14
__modhi_p2:
        push r12
        call #__udivhi
        pop r12
        mov r13, r15
        tst r12
        jeq __modhi_done
        inv r15
        inc r15
__modhi_done:
        ret
)",
        {"__udivhi"}}},
      {"__shlhi",
       {R"(__shlhi:                       ; r15 = r15 << r14
        tst r14
        jeq __shlhi_done
__shlhi_loop:
        rla r15
        dec r14
        jne __shlhi_loop
__shlhi_done:
        ret
)",
        {}}},
      {"__shrhi",
       {R"(__shrhi:                       ; r15 = r15 >> r14 (logical)
        tst r14
        jeq __shrhi_done
__shrhi_loop:
        clrc
        rrc r15
        dec r14
        jne __shrhi_loop
__shrhi_done:
        ret
)",
        {}}},
      {"__delay",
       {R"(__delay:                       ; busy-wait r15 iterations
        tst r15
        jeq __delay_done
__delay_loop:
        dec r15
        jne __delay_loop
__delay_done:
        ret
)",
        {}}},
      {"__memcpy",
       {R"(__memcpy:                      ; copy r13 bytes from r14 to r15
        tst r13
        jeq __memcpy_done
__memcpy_loop:
        mov.b @r14+, 0(r15)
        inc r15
        dec r13
        jne __memcpy_loop
__memcpy_done:
        ret
)",
        {}}},
  };
  return table;
}

void add_with_deps(const std::string& name, std::set<std::string>& closed,
                   std::string& out) {
  if (closed.count(name)) return;
  const auto it = helper_table().find(name);
  if (it == helper_table().end()) {
    throw error("cc: unknown runtime helper '" + name + "'");
  }
  closed.insert(name);
  for (const auto& d : it->second.deps) add_with_deps(d, closed, out);
  out += it->second.text;
}

}  // namespace

std::string runtime_asm(const std::set<std::string>& helpers) {
  std::string out;
  std::set<std::string> closed;
  for (const auto& h : helpers) add_with_deps(h, closed, out);
  return out;
}

const std::set<std::string>& all_runtime_helpers() {
  static const std::set<std::string> names = [] {
    std::set<std::string> n;
    for (const auto& [name, def] : helper_table()) n.insert(name);
    return n;
  }();
  return names;
}

}  // namespace dialed::cc
