// Token stream for the mini-C front end.
#ifndef DIALED_CC_LEXER_H
#define DIALED_CC_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dialed::cc {

struct token {
  enum class kind : std::uint8_t {
    identifier,
    number,
    punct,  ///< operators and separators, text holds the spelling
    eof,
  };
  kind k = kind::eof;
  std::string text;
  std::int32_t value = 0;
  int line = 1;

  bool is(std::string_view p) const {
    return k == kind::punct && text == p;
  }
  bool is_ident(std::string_view name) const {
    return k == kind::identifier && text == name;
  }
};

/// Tokenize mini-C source. Supports //- and /*-style comments, decimal,
/// hex (0x...) and character ('a') literals. Throws dialed::error with
/// "cc:<line>:" context on malformed input.
std::vector<token> lex(std::string_view source);

}  // namespace dialed::cc

#endif  // DIALED_CC_LEXER_H
