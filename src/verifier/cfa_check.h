// Standalone Tiny-CFA verification (paper §II-C): reconstruct the exact
// control-flow path of the attested run from CF-Log alone, without data.
//
// The walker interprets the *instrumented* binary structurally:
//  * every `mov <src>, 0(r4)` is a log push — it consumes the next OR slot
//    and, for immediate sources, must match it exactly;
//  * rewritten application conditionals (branches to ".Lstub_cfa_taken*"
//    labels) are resolved by matching the next slot against the push in
//    each arm;
//  * synthetic check conditionals (overflow/write checks) converge at
//    their target on every non-aborting run, so the walker jumps there;
//  * returns compare the logged destination against a shadow call stack —
//    a mismatch is precisely a control-flow attack (paper Fig. 1).
//
// Only CFA-mode programs are walkable: DIALED's dynamic input checks make
// log consumption data-dependent, which is what the full abstract executor
// (replay.h) handles.
#ifndef DIALED_VERIFIER_CFA_CHECK_H
#define DIALED_VERIFIER_CFA_CHECK_H

#include <vector>

#include "instr/oplink.h"
#include "verifier/report.h"

namespace dialed::verifier {

class firmware_artifact;  // firmware_artifact.h

struct cfa_result {
  bool ok = false;
  std::vector<finding> findings;
  /// Reconstructed instruction-block path (entry points of each straight
  /// run the walker followed).
  std::vector<std::uint16_t> path;
  int entries_consumed = 0;
};

/// Walk `report`'s CF-Log against the known Tiny-CFA-instrumented binary,
/// using the artifact's precomputed flattened image, stub-label set and
/// decoded-instruction index (the walker never mutates memory, so the
/// index is always valid). Requires mode == instrumentation::tinycfa;
/// throws dialed::error otherwise. Const over the artifact — safe from
/// many threads at once.
cfa_result check_cfa_log(const firmware_artifact& fw,
                         const report_view& report);

/// Convenience for one-shot callers (tests/tools): builds a throwaway
/// artifact for `prog` first. Fleet code verifies through a shared
/// artifact instead.
cfa_result check_cfa_log(const instr::linked_program& prog,
                         const report_view& report);

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_CFA_CHECK_H
