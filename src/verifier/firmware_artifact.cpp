#include "verifier/firmware_artifact.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/hmac.h"
#include "obs/obs.h"
#include "crypto/sha256.h"
#include "rot/attest.h"
#include "verifier/cfa_check.h"
#include "verifier/replay.h"
#include "verifier/replay_cache.h"

namespace dialed::verifier {

namespace {

/// Canonical serializer feeding the fingerprint hash: every multi-byte
/// value little-endian, every string/byte-run length-prefixed, so field
/// boundaries are unambiguous and the id is stable across builds.
class fingerprint_hasher {
 public:
  void u8(std::uint8_t v) { h_.update({&v, 1}); }
  void u16(std::uint16_t v) {
    std::array<std::uint8_t, 2> b{};
    store_le16(b, 0, v);
    h_.update(b);
  }
  void u32(std::uint32_t v) {
    std::array<std::uint8_t, 4> b{};
    store_le32(b, 0, v);
    h_.update(b);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    h_.update(b);
  }
  void str(const std::string& s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  crypto::sha256::digest finish() { return h_.finish(); }

 private:
  crypto::sha256 h_;
};

/// Rough per-entry overhead of a node-based container (map/set node plus
/// allocator slack) — the footprint numbers are a capacity model for the
/// bench/ROADMAP accounting, not an allocator audit.
constexpr std::size_t node_overhead = 48;

std::size_t string_bytes(const std::string& s) {
  return s.capacity() <= sizeof(std::string) ? 0 : s.capacity();
}

}  // namespace

firmware_id firmware_artifact::fingerprint(
    const instr::linked_program& prog) {
  fingerprint_hasher h;
  h.str("dialed-firmware-fp-v1");

  // Layout + instrumentation configuration.
  h.u8(static_cast<std::uint8_t>(prog.options.mode));
  h.str(prog.options.entry);
  h.u16(prog.options.er_base);
  h.u16(prog.er_min);
  h.u16(prog.er_max);
  h.u16(prog.crt_entry);
  h.u16(prog.op_return_addr);

  const auto& m = prog.options.map;
  for (const std::uint16_t v :
       {m.ram_start, m.ram_end, m.or_min, m.or_max, m.stack_init,
        m.key_base, m.key_size, m.mac_base, m.mac_size, m.srom_start,
        m.srom_end, m.flash_start, m.flash_end, m.ivt_start,
        m.reset_vector, m.p3out, m.p3in, m.net_data, m.net_avail, m.net_tx,
        m.adc_mem, m.tar, m.halt_port, m.args_base, m.result_addr,
        m.meta_base}) {
    h.u16(v);
  }

  // The image: segment bytes plus the symbol table (the CF-Log walker
  // interprets ".Lstub_cfa_taken*" labels, so symbols are id-relevant).
  h.u32(static_cast<std::uint32_t>(prog.image.segments.size()));
  for (const auto& seg : prog.image.segments) {
    h.u16(seg.base);
    h.bytes(seg.bytes);
  }
  h.u32(static_cast<std::uint32_t>(prog.image.symbols.size()));
  for (const auto& [name, addr] : prog.image.symbols) {
    h.str(name);
    h.u16(addr);
  }

  // Verifier-side metadata: global extents and access-site bounds.
  h.u32(static_cast<std::uint32_t>(prog.global_addrs.size()));
  for (const auto& [name, addr] : prog.global_addrs) {
    h.str(name);
    h.u16(addr);
  }
  h.u32(static_cast<std::uint32_t>(prog.compile_info.access_sites.size()));
  for (const auto& s : prog.compile_info.access_sites) {
    h.str(s.label);
    h.str(s.object);
    h.str(s.function);
    h.u8(s.is_global ? 1 : 0);
    h.i32(s.local_offset_adj);
    h.i32(s.size_bytes);
  }
  return h.finish();
}

firmware_artifact::firmware_artifact(instr::linked_program prog,
                                     const firmware_id* precomputed_id)
    : prog_(std::move(prog)) {
  if (precomputed_id != nullptr) {
    id_ = *precomputed_id;
    id_precomputed_ = true;
  }

  // Fail closed on layouts that abut the top of the address space. The
  // topmost OR slot spans [or_max, or_max+1] and an instruction fetch at
  // pc reads [pc, pc+5]; or_max = 0xffff or er_max > 0xfffa would make
  // those windows wrap to 0x0000 in 16-bit arithmetic. Rather than give
  // every downstream loop a wrapping special case, reject the layout at
  // artifact build time — no real map needs it (flash tops out below the
  // IVT) and a forged report attesting such bounds is already caught by
  // the bounds_mismatch check in verify().
  if (prog_.options.map.or_max == 0xffff) {
    throw error(
        "verifier: or_max = 0xffff — the topmost OR slot would wrap past "
        "the top of the address space");
  }
  if (prog_.er_max > 0xfffa) {
    throw error(
        "verifier: er_max > 0xfffa — the instruction fetch window would "
        "wrap past the top of the address space");
  }

  er_bytes_ = prog_.er_bytes();

  // Prebuild the fixed MAC-message prefix (header ‖ ER) for both EXEC
  // values — per report only the challenge KDF and the OR bytes vary.
  const auto& map0 = prog_.options.map;
  for (const bool exec : {true, false}) {
    const auto header = rot::attest_mac_header(
        prog_.er_min, prog_.er_max, map0.or_min, map0.or_max, exec);
    byte_vec& prefix = exec ? mac_prefix_exec1_ : mac_prefix_exec0_;
    prefix.reserve(header.size() + er_bytes_.size());
    prefix.assign(header.begin(), header.end());
    prefix.insert(prefix.end(), er_bytes_.begin(), er_bytes_.end());
  }

  // Flatten the image once — the bytes the bus holds right after load.
  flat_.assign(0x10000, 0);
  for (const auto& seg : prog_.image.segments) {
    std::uint32_t a = seg.base;
    for (const std::uint8_t b : seg.bytes) {
      flat_[a++ & 0xffff] = b;
    }
  }

  // Predecode [er_min, er_max]: the only range replayed code executes from
  // until an attack overwrites it (then callers must decode live).
  const auto word_at = [this](std::uint16_t a) {
    return static_cast<std::uint16_t>(
        flat_[a] | (flat_[static_cast<std::uint16_t>(a + 1)] << 8));
  };
  if (prog_.er_max >= prog_.er_min) {
    const std::size_t n =
        static_cast<std::size_t>(prog_.er_max - prog_.er_min) / 2 + 1;
    decoded_.resize(n);
    decoded_valid_.assign(n, 0);
    decoded_flags_.assign(n, 0);
    site_index_.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      const auto pc =
          static_cast<std::uint16_t>(prog_.er_min + 2 * i);
      const std::array<std::uint16_t, 3> words = {
          word_at(pc), word_at(static_cast<std::uint16_t>(pc + 2)),
          word_at(static_cast<std::uint16_t>(pc + 4))};
      try {
        decoded_[i] = isa::decode(words, pc);
        decoded_valid_[i] = 1;
        if (is_ret_instruction(decoded_[i].ins)) decoded_flags_[i] |= df_ret;
        if (decoded_[i].ins.op == isa::opcode::call) {
          decoded_flags_[i] |= df_call;
        }
      } catch (const error&) {
        // Not every even address is an instruction boundary; callers that
        // land here decode live and get the identical error.
      }
    }
  }

  // Resolve the compiler's access sites to code addresses, then index
  // the in-ER ones into the flat per-pc array site_at() serves from.
  for (const auto& s : prog_.compile_info.access_sites) {
    bounds_site info;
    info.object = s.object;
    info.is_global = s.is_global;
    info.local_offset_adj = s.local_offset_adj;
    info.size_bytes = s.size_bytes;
    if (s.is_global) {
      info.global_base = prog_.global_addrs.at(s.object);
    }
    sites_[prog_.image.symbol(s.label)] = info;
  }
  for (const auto& [pc, site] : sites_) {
    if (pc >= prog_.er_min && pc <= prog_.er_max &&
        ((pc - prog_.er_min) & 1) == 0) {
      site_index_[static_cast<std::size_t>(pc - prog_.er_min) / 2] = &site;
    } else {
      sites_outside_er_ = true;
    }
  }

  // Stub labels the CF-Log walker classifies conditionals by.
  for (const auto& [name, addr] : prog_.image.symbols) {
    if (name.rfind(".Lstub_cfa_taken", 0) == 0) {
      taken_labels_.push_back(addr);
    }
  }
  std::sort(taken_labels_.begin(), taken_labels_.end());
}

std::shared_ptr<const firmware_artifact> firmware_artifact::build(
    instr::linked_program prog, const firmware_id* precomputed_id) {
  return std::make_shared<const firmware_artifact>(std::move(prog),
                                                   precomputed_id);
}

const firmware_id& firmware_artifact::id() const {
  std::call_once(id_once_, [this] {
    if (!id_precomputed_) id_ = fingerprint(prog_);
  });
  return id_;
}

std::string firmware_artifact::id_hex() const { return to_hex(id()); }

bool firmware_artifact::is_taken_label(std::uint16_t addr) const {
  return std::binary_search(taken_labels_.begin(), taken_labels_.end(),
                            addr);
}

verdict firmware_artifact::verify(
    const report_view& report, std::span<const std::uint8_t> key,
    const std::vector<std::shared_ptr<policy>>& policies,
    std::optional<std::array<std::uint8_t, 16>> expected_challenge) const {
  return verify(report, crypto::hmac_keystate::derive(key), policies,
                expected_challenge);
}

verdict firmware_artifact::verify(
    const report_view& report, const crypto::hmac_keystate& key_state,
    const std::vector<std::shared_ptr<policy>>& policies,
    std::optional<std::array<std::uint8_t, 16>> expected_challenge,
    verify_timings* timings, replay_memo* memo) const {
  verdict v;

  // ---- 1. configuration ----
  const auto& map = prog_.options.map;
  if (report.er_min != prog_.er_min || report.er_max != prog_.er_max ||
      report.or_min != map.or_min || report.or_max != map.or_max) {
    v.findings.push_back(
        {attack_kind::bounds_mismatch,
         "report attests different ER/OR bounds than the deployed program",
         0, report.er_min});
    return v;
  }
  if (expected_challenge && report.challenge != *expected_challenge) {
    v.findings.push_back({attack_kind::stale_challenge,
                          "challenge does not match the outstanding nonce",
                          0, 0});
    return v;
  }

  // ---- 2. MAC + EXEC ----
  // KDF once per report (k' is challenge-bound), then MAC over the
  // prebuilt header‖ER prefix and the viewed OR. Vrf only ever accepts
  // proofs of violation-free runs, so EXEC=1 is what the expected MAC
  // asserts. Bounds already matched the program's, so the artifact's
  // prefix is exactly this report's header‖ER.
  const std::uint64_t t_mac = timings != nullptr ? obs::now_ns() : 0;
  const auto derived = crypto::hmac_sha256::compute(key_state,
                                                    report.challenge);
  const auto derived_state = crypto::hmac_keystate::derive(derived);
  const auto expected_mac = rot::compute_attestation_mac_derived(
      derived_state, mac_prefix_exec1_, report.or_bytes);
  if (!crypto::hmac_sha256::equal(expected_mac, report.mac)) {
    // Distinguish an authentic EXEC=0 report from an outright forgery —
    // purely diagnostic; both are rejected. Reuses the derived key
    // schedule: only the one-byte exec flag in the prefix differs.
    const auto mac_exec0 = rot::compute_attestation_mac_derived(
        derived_state, mac_prefix_exec0_, report.or_bytes);
    if (crypto::hmac_sha256::equal(mac_exec0, report.mac)) {
      v.findings.push_back(
          {attack_kind::exec_cleared,
           report.halt_code == emu::HALT_ABORT
               ? "EXEC=0 and the device aborted: the instrumentation "
                 "detected an illegal write or log overflow"
               : "EXEC=0: APEX observed an execution violation "
                 "(code write, PC escape, interrupt or DMA)",
           0, 0});
      if (report.halt_code == emu::HALT_ABORT) {
        v.findings.push_back({attack_kind::instrumentation_abort,
                              "device halted with HALT_ABORT", 0, 0});
      }
    } else {
      v.findings.push_back(
          {attack_kind::mac_invalid,
           "MAC verification failed: modified code, forged logs, wrong key "
           "or tampered challenge",
           0, 0});
      if (report.halt_code == emu::HALT_ABORT) {
        // The device never reached SW-Att: its instrumentation aborted the
        // run (illegal write into the log region or log overflow).
        v.findings.push_back({attack_kind::instrumentation_abort,
                              "device halted with HALT_ABORT before "
                              "attestation",
                              0, 0});
      }
    }
    if (timings != nullptr) timings->mac_ns = obs::now_ns() - t_mac;
    return v;
  }
  if (timings != nullptr) timings->mac_ns = obs::now_ns() - t_mac;

  // Everything from here is replay-shaped work (CFA reconstruction or the
  // full ER replay); stamp it on every exit path below.
  const std::uint64_t t_replay = timings != nullptr ? obs::now_ns() : 0;
  const auto stamp_replay = [&] {
    if (timings != nullptr) timings->replay_ns = obs::now_ns() - t_replay;
  };

  // ---- 3a. CFA-only verification (Tiny-CFA deployments) ----
  if (prog_.options.mode == instr::instrumentation::tinycfa) {
    // Without DIALED's I-Log the execution cannot be replayed, but the
    // control-flow path can still be reconstructed and checked from
    // CF-Log alone (Tiny-CFA's own guarantee; catches Fig. 1, blind to
    // Fig. 2 — the paper's motivation for DIALED).
    auto cfa = check_cfa_log(*this, report);
    v.findings.insert(v.findings.end(), cfa.findings.begin(),
                      cfa.findings.end());
    v.log_slots_consumed = cfa.entries_consumed;
    v.log_bytes = 2 * cfa.entries_consumed;
    v.accepted = cfa.ok;
    stamp_replay();
    return v;
  }
  if (prog_.options.mode != instr::instrumentation::dialed) {
    // Uninstrumented: the MAC and EXEC guarantees above are all this
    // configuration can offer.
    v.accepted = true;
    stamp_replay();
    return v;
  }

  // Replay is a pure function of (artifact, attested inputs): the memo is
  // only consulted when no policies run (policies may carry state the
  // cache cannot key on).
  replay_result rr = (memo != nullptr && policies.empty())
                         ? memo->get_or_replay(*this, report)
                         : replay_operation(*this, report, policies);
  v.findings.insert(v.findings.end(), rr.findings.begin(),
                    rr.findings.end());
  v.replay_instructions = rr.instructions;
  v.annotated_log = std::move(rr.annotated_log);
  v.io_trace = std::move(rr.io_trace);
  v.result_tainted = rr.result_tainted;

  if (!rr.completed) {
    if (rr.findings.empty()) {
      v.findings.push_back({attack_kind::replay_divergence,
                            "replay did not reach the op's return", 0, 0});
    }
    stamp_replay();
    return v;
  }

  v.replayed_result = rr.final_r15;
  logfmt::log_view log(report.or_min, report.or_max, report.or_bytes);
  v.log_slots_consumed = log.used_slots(rr.final_r4);
  v.log_bytes = log.used_bytes(rr.final_r4);

  // Replayed OR must byte-match the attested OR over the consumed region.
  const std::size_t lo = static_cast<std::size_t>(rr.final_r4) + 2 -
                         report.or_min;
  for (std::size_t i = lo; i < report.or_bytes.size(); ++i) {
    if (report.or_bytes[i] != rr.replay_or_bytes[i]) {
      v.findings.push_back(
          {attack_kind::replay_divergence,
           "attested OR differs from the replayed OR at " +
               hex16(static_cast<std::uint16_t>(report.or_min + i)),
           0, static_cast<std::uint16_t>(report.or_min + i)});
      break;
    }
  }

  if (report.claimed_result != rr.final_r15) {
    v.findings.push_back(
        {attack_kind::result_forged,
         "device claimed result " + hex16(report.claimed_result) +
             " but the attested execution produced " + hex16(rr.final_r15),
         0, 0});
  }

  v.accepted = v.findings.empty();
  stamp_replay();
  return v;
}

std::size_t firmware_artifact::program_footprint_bytes(
    const instr::linked_program& prog) {
  std::size_t n = sizeof(instr::linked_program);
  for (const auto& seg : prog.image.segments) {
    n += sizeof(seg) + seg.bytes.capacity();
  }
  for (const auto& [name, addr] : prog.image.symbols) {
    (void)addr;
    n += node_overhead + string_bytes(name);
  }
  for (const auto& e : prog.image.listing) {
    n += sizeof(e) + string_bytes(e.text);
  }
  for (const auto& [name, addr] : prog.global_addrs) {
    (void)addr;
    n += node_overhead + string_bytes(name);
  }
  const auto& ci = prog.compile_info;
  n += string_bytes(ci.asm_text);
  for (const auto& g : ci.globals) {
    n += sizeof(g) + string_bytes(g.name) +
         g.init.capacity() * sizeof(std::int32_t);
  }
  for (const auto& f : ci.functions) {
    n += sizeof(f) + string_bytes(f.name);
    for (const auto& l : f.locals) n += sizeof(l) + string_bytes(l.name);
  }
  for (const auto& h : ci.helpers) n += node_overhead + string_bytes(h);
  for (const auto& s : ci.access_sites) {
    n += sizeof(s) + string_bytes(s.label) + string_bytes(s.object) +
         string_bytes(s.function);
  }
  for (const auto& [name, text] : ci.function_text) {
    n += node_overhead + string_bytes(name) + string_bytes(text);
  }
  n += string_bytes(prog.er_asm_text);
  n += string_bytes(prog.options.entry);
  for (const auto& [name, addr] : prog.options.pass_opts.symbols) {
    (void)addr;
    n += node_overhead + string_bytes(name);
  }
  return n;
}

std::size_t firmware_artifact::footprint_bytes() const {
  std::size_t n = sizeof(*this) + program_footprint_bytes(prog_);
  n += er_bytes_.capacity();
  n += flat_.capacity();
  n += decoded_.capacity() * sizeof(isa::decoded);
  n += decoded_valid_.capacity();
  n += decoded_flags_.capacity();
  n += site_index_.capacity() * sizeof(const bounds_site*);
  n += taken_labels_.capacity() * sizeof(std::uint16_t);
  for (const auto& [pc, s] : sites_) {
    (void)pc;
    n += node_overhead + sizeof(s) + string_bytes(s.object);
  }
  return n;
}

}  // namespace dialed::verifier
