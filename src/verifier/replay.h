// The abstract executor (paper §III-A): Vrf re-executes the known
// instrumented binary locally. Reads from addresses outside the op's
// current stack — peripherals, globals, network buffers — are fed from the
// attested I-Log, so the replay reconstructs the device execution exactly,
// including any memory-safety attack the inputs triggered. Detectors run on
// the replayed execution:
//
//  * return-address witness   — every call records the pushed return
//    address; the matching ret must pop the same value, otherwise a
//    control-flow attack (paper Fig. 1) corrupted the stack.
//  * access-site bounds       — at each compiler-recorded array access the
//    effective address must fall inside the object's extent; a violation is
//    a data-only attack (paper Fig. 2), detected with no code annotations.
//  * OR equality              — the replay re-produces the CF/I-Log; any
//    byte difference from the attested OR means the logs are inconsistent
//    with the known binary (tamper/divergence).
//  * app policies             — optional safety assertions over the replay.
#ifndef DIALED_VERIFIER_REPLAY_H
#define DIALED_VERIFIER_REPLAY_H

#include <bitset>
#include <functional>
#include <memory>

#include "emu/machine.h"
#include "instr/oplink.h"
#include "logfmt/logfmt.h"
#include "verifier/report.h"

namespace dialed::verifier {

class firmware_artifact;  // firmware_artifact.h

/// Read-only view of the replay for policies.
class replay_state {
 public:
  explicit replay_state(emu::machine& m,
                        const instr::linked_program& prog)
      : m_(m), prog_(prog) {}

  std::uint16_t reg(int i) const { return m_.get_cpu().regs()[i]; }
  std::uint16_t word_at(std::uint16_t addr) const {
    return m_.get_bus().peek16(addr);
  }
  /// Current value of a compiled global variable.
  std::uint16_t global(const std::string& name) const;

 private:
  emu::machine& m_;
  const instr::linked_program& prog_;
};

/// App-specific safety policy, evaluated over the replayed execution.
class policy {
 public:
  virtual ~policy() = default;
  virtual std::string name() const = 0;
  /// Called on every replayed memory write (after it took effect).
  virtual void on_write(const replay_state& st, std::uint16_t addr,
                        std::uint16_t value, std::uint16_t pc,
                        std::vector<finding>& out) {
    (void)st; (void)addr; (void)value; (void)pc; (void)out;
  }
  /// Called once when the op's final return retires.
  virtual void on_finish(const replay_state& st, std::vector<finding>& out) {
    (void)st;
    (void)out;
  }
};

struct replay_result {
  bool completed = false;  ///< reached the op's final return
  std::uint16_t final_r15 = 0;
  std::uint16_t final_r4 = 0;
  std::uint64_t instructions = 0;
  std::vector<finding> findings;
  std::vector<logfmt::annotated_entry> annotated_log;

  /// The OR as re-produced by the replay ([or_min, or_max+1]); byte-equal
  /// to the attested OR over the consumed region iff the logs are
  /// consistent with the known binary.
  byte_vec replay_or_bytes;

  /// Peripheral writes observed during replay, with taint provenance
  /// (sources: the logged entry arguments and every I-Log-fed value).
  std::vector<io_event> io_trace;
  /// Whether the op's returned value derives from attested inputs.
  bool result_tainted = false;
};

/// Replay one attested invocation of `fw`'s program against `report`'s
/// logs. `policies` may be empty. Throws only on internal errors; attack
/// conditions come back as findings.
///
/// The replay executes on a per-THREAD reusable emu::machine (recycled
/// between reports, constructed only when a thread first replays — or
/// replays a firmware with a different memory map), and decodes through
/// the artifact's predecoded instruction index, falling back to live
/// decode once replayed code has been overwritten. Safe to call from many
/// threads concurrently; each thread has its own machine.
replay_result replay_operation(
    const firmware_artifact& fw, const report_view& report,
    const std::vector<std::shared_ptr<policy>>& policies);

/// Test hook: pin the replay main loop to one dispatch path. `fast` (the
/// default) decodes through the artifact's predecoded index and skips the
/// CPU's re-fetch via step(pre); `legacy` re-decodes every instruction
/// live from the bus and re-fetches inside step() — the historical loop,
/// kept selectable so the differential suite can assert the two produce
/// field-identical verdicts. Process-global, like sha256_force_backend.
enum class replay_dispatch : std::uint8_t { fast, legacy };
void replay_force_dispatch(replay_dispatch d);
replay_dispatch replay_forced_dispatch();

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_REPLAY_H
