// Replay memoization (PR 10 tentpole, layer 3). At fleet scale the same
// firmware is attested over and over, and across rounds a device that did
// not change state produces byte-identical attested inputs. replay_result
// is a PURE function of (artifact, ER/OR bounds, OR bytes):
//
//   * the artifact's content id covers the image, the memory map, the
//     instrumentation mode and the access-site table — everything the
//     abstract executor derives behavior from;
//   * the OR bytes carry the entry argument registers, the saved SP and
//     every I-Log-fed value, i.e. the entire attested input vector the
//     replay consumes.
//
// The challenge nonce and the MAC are deliberately NOT part of the key:
// replay is independent of both. The MAC binds the OR bytes to the device
// key and nonce and is verified per report BEFORE the memo is consulted
// (firmware_artifact::verify), so a cache hit can only be served for an
// input vector that freshly authenticated — memoization never weakens
// anti-replay. Policies are also outside the key: verify() bypasses the
// memo whenever policies run.
#ifndef DIALED_VERIFIER_REPLAY_CACHE_H
#define DIALED_VERIFIER_REPLAY_CACHE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "verifier/replay.h"

namespace dialed::verifier {

class firmware_artifact;

/// Bounded LRU cache of replay results, safe for concurrent use by the
/// hub's verify workers. A miss runs the replay OUTSIDE the lock (replays
/// are the expensive part; concurrent misses on the same key simply both
/// replay — identical pure results, last insert wins).
class replay_memo {
 public:
  /// `max_entries` bounds the cache; 0 disables it (every call replays).
  explicit replay_memo(std::size_t max_entries)
      : max_entries_(max_entries) {}

  replay_memo(const replay_memo&) = delete;
  replay_memo& operator=(const replay_memo&) = delete;

  /// Serve `(fw, report)` from the cache, or replay (no policies) and
  /// remember the result.
  replay_result get_or_replay(const firmware_artifact& fw,
                              const report_view& report);

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  using key_t = std::array<std::uint8_t, 32>;

  /// SHA-256 over (artifact id ‖ bounds ‖ OR bytes) — see the header
  /// comment for what that covers and what it deliberately excludes.
  static key_t make_key(const firmware_artifact& fw,
                        const report_view& report);

  struct key_hash {
    std::size_t operator()(const key_t& k) const {
      // The key is itself a SHA-256 digest: its first bytes are already
      // uniformly distributed.
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(h); ++i) {
        h = (h << 8) | k[i];
      }
      return h;
    }
  };

  struct entry {
    key_t key;
    replay_result result;
  };

  const std::size_t max_entries_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  ///< front = most recently used
  std::unordered_map<key_t, std::list<entry>::iterator, key_hash> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_REPLAY_CACHE_H
