#include "verifier/replay_cache.h"

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "verifier/firmware_artifact.h"

namespace dialed::verifier {

replay_memo::key_t replay_memo::make_key(const firmware_artifact& fw,
                                         const report_view& report) {
  crypto::sha256 h;
  const auto& id = fw.id();
  h.update({id.data(), id.size()});
  std::array<std::uint8_t, 8> bounds{};
  store_le16(bounds, 0, report.er_min);
  store_le16(bounds, 2, report.er_max);
  store_le16(bounds, 4, report.or_min);
  store_le16(bounds, 6, report.or_max);
  h.update(bounds);
  // or_bytes is the full attested input vector: entry registers, saved SP
  // and every I-Log slot the replay will feed from.
  h.update(report.or_bytes);
  return h.finish();
}

replay_result replay_memo::get_or_replay(const firmware_artifact& fw,
                                         const report_view& report) {
  static const std::vector<std::shared_ptr<policy>> no_policies;
  if (max_entries_ == 0) {
    return replay_operation(fw, report, no_policies);
  }

  const key_t key = make_key(fw, report);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->result;  // copy out under the lock
    }
  }

  // Miss: replay outside the lock — this is the multi-millisecond part,
  // and two racing misses on one key just produce the same pure result.
  misses_.fetch_add(1, std::memory_order_relaxed);
  replay_result result = replay_operation(fw, report, no_policies);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing miss inserted first; refresh recency and keep its copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return result;
  }
  lru_.push_front({key, result});
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return result;
}

}  // namespace dialed::verifier
