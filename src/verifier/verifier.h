// Vrf-side verification of one attestation report (paper §III):
//   1. the ER/OR bounds must match the deployed program,
//   2. the MAC must verify against the KNOWN binary's ER bytes, the
//      received OR, the challenge — and EXEC = 1 (a device whose execution
//      was violated cannot produce this MAC),
//   3. the operation is abstractly executed from the attested logs; the
//      replayed OR must byte-match the attested OR, and the detectors
//      (return-address witness, access-site bounds, app policies) classify
//      any runtime attack the inputs triggered.
//
// Since the firmware-catalog refactor the heavy lifting lives in
// verifier::firmware_artifact (firmware_artifact.h): one immutable,
// shareable precomputation per firmware IMAGE. op_verifier is now only the
// cheap per-device context — a shared_ptr to the artifact plus the device
// key and any attached policies — so a fleet of N devices on F firmwares
// costs O(F) verifier memory, not O(N).
//
// Thread-safety: verify() is const and reentrant; one op_verifier may
// serve concurrent verifies. add_policy() is NOT synchronized against
// in-flight verifies — attach policies before serving traffic. Policies
// themselves run on whichever thread is verifying and must synchronize any
// internal mutable state (the built-in policies are stateless).
#ifndef DIALED_VERIFIER_VERIFIER_H
#define DIALED_VERIFIER_VERIFIER_H

#include <memory>
#include <optional>
#include <vector>

#include "instr/oplink.h"
#include "verifier/firmware_artifact.h"
#include "verifier/replay.h"
#include "verifier/report.h"

namespace dialed::verifier {

class op_verifier {
 public:
  /// `prog` is Vrf's reference copy of the deployed program; `key` the
  /// device master key shared at provisioning. Builds a private artifact —
  /// fleet callers share one via the artifact constructor instead.
  op_verifier(instr::linked_program prog, byte_vec key);

  /// Share `fw` (typically from fleet::firmware_catalog::intern) across
  /// every device running that firmware; this context adds only the key.
  op_verifier(std::shared_ptr<const firmware_artifact> fw, byte_vec key);

  /// Register an app-specific safety policy evaluated during replay.
  void add_policy(std::shared_ptr<policy> p);

  /// Verify a report (owning reports convert to the view implicitly). If
  /// `expected_challenge` is given, the report must carry exactly that
  /// nonce (anti-replay). Runs on the key schedule cached at construction.
  /// `timings`, when non-null, receives the MAC/replay wall split.
  verdict verify(const report_view& report,
                 std::optional<std::array<std::uint8_t, 16>>
                     expected_challenge = std::nullopt,
                 verify_timings* timings = nullptr) const;

  const instr::linked_program& program() const { return fw_->program(); }

  /// The shared per-firmware artifact this verifier runs on.
  const std::shared_ptr<const firmware_artifact>& artifact() const {
    return fw_;
  }

  /// Approximate footprint of this context alone — EXCLUDING the shared
  /// artifact (count that once per firmware, via artifact's
  /// footprint_bytes).
  std::size_t context_footprint_bytes() const;

 private:
  std::shared_ptr<const firmware_artifact> fw_;
  byte_vec key_;
  /// Precomputed ipad/opad schedule for key_ (never persisted).
  crypto::hmac_keystate key_state_;
  std::vector<std::shared_ptr<policy>> policies_;
};

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_VERIFIER_H
