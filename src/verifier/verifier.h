// Vrf-side verification of one attestation report (paper §III):
//   1. the ER/OR bounds must match the deployed program,
//   2. the MAC must verify against the KNOWN binary's ER bytes, the
//      received OR, the challenge — and EXEC = 1 (a device whose execution
//      was violated cannot produce this MAC),
//   3. the operation is abstractly executed from the attested logs; the
//      replayed OR must byte-match the attested OR, and the detectors
//      (return-address witness, access-site bounds, app policies) classify
//      any runtime attack the inputs triggered.
#ifndef DIALED_VERIFIER_VERIFIER_H
#define DIALED_VERIFIER_VERIFIER_H

#include <memory>
#include <optional>
#include <vector>

#include "instr/oplink.h"
#include "verifier/replay.h"
#include "verifier/report.h"

namespace dialed::verifier {

class op_verifier {
 public:
  /// `prog` is Vrf's reference copy of the deployed program; `key` the
  /// device master key shared at provisioning.
  op_verifier(instr::linked_program prog, byte_vec key);

  /// Register an app-specific safety policy evaluated during replay.
  void add_policy(std::shared_ptr<policy> p);

  /// Verify a report. If `expected_challenge` is given, the report must
  /// carry exactly that nonce (anti-replay).
  verdict verify(const attestation_report& report,
                 std::optional<std::array<std::uint8_t, 16>>
                     expected_challenge = std::nullopt) const;

  const instr::linked_program& program() const { return prog_; }

 private:
  instr::linked_program prog_;
  byte_vec key_;
  std::vector<std::shared_ptr<policy>> policies_;
};

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_VERIFIER_H
