// Immutable, content-addressed, per-FIRMWARE verifier state (the fleet
// refactor's tentpole). At fleet scale most devices run one of a handful of
// firmware images; everything the §III verification pipeline can derive
// from the image alone — rather than from a particular device or report —
// is precomputed ONCE here and shared by every device on that firmware:
//
//   * the canonical ER byte range the attestation MAC covers,
//   * the decoded-instruction index over [er_min, er_max] (the abstract
//     executor and the Tiny-CFA walker previously re-decoded every
//     instruction of every report),
//   * the compiler's access-site bounds table resolved to code addresses,
//   * the flattened 64 KiB image, the ".Lstub_cfa_taken*" label set and
//     the log-push site map the CF-Log walker interprets.
//
// Thread-safety contract: a firmware_artifact is deeply immutable after
// construction — every member is written only by the constructor and only
// read afterwards, so any number of threads may call verify()/accessors
// concurrently with no synchronization. Share it as
// shared_ptr<const firmware_artifact> (what firmware_catalog::intern and
// device_registry hand out) and never cast the const away.
//
// Content addressing: id() is a SHA-256 over every verification-relevant
// input (image bytes + symbols, ER/crt layout, memory map, globals,
// access sites, instrumentation mode/entry). Two independently built
// programs with identical inputs intern to the same artifact.
#ifndef DIALED_VERIFIER_FIRMWARE_ARTIFACT_H
#define DIALED_VERIFIER_FIRMWARE_ARTIFACT_H

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "instr/oplink.h"
#include "isa/isa.h"
#include "verifier/report.h"

namespace dialed::verifier {

class policy;       // replay.h
class replay_memo;  // replay_cache.h

/// Content address of a firmware image (SHA-256).
using firmware_id = std::array<std::uint8_t, 32>;

/// The instrumented `ret` idiom (`mov @SP+, PC`) — the pattern both the
/// replay loop's return-address witness and the artifact's predecoded
/// flags classify by. One definition so the cached and live-decode paths
/// can never disagree.
constexpr bool is_ret_instruction(const isa::instruction& ins) {
  return ins.op == isa::opcode::mov &&
         ins.src.mode == isa::addr_mode::indirect_inc &&
         ins.src.base == isa::REG_SP &&
         ins.dst.mode == isa::addr_mode::reg &&
         ins.dst.base == isa::REG_PC;
}

/// One compiler-recorded array access, resolved to its code address: at
/// this site r15 holds the effective address of an access into `object`,
/// whose extent the abstract executor checks (paper Fig. 2 detection).
struct bounds_site {
  std::string object;
  bool is_global = false;
  std::uint16_t global_base = 0;  ///< globals: extent base
  int local_offset_adj = 0;       ///< locals: extent base = r1 + this
  int size_bytes = 0;
};

class firmware_artifact {
 public:
  /// Build the shared artifact for `prog` (the usual entry point; use
  /// fleet::firmware_catalog::intern to also deduplicate by id).
  /// `precomputed_id` as in the constructor.
  static std::shared_ptr<const firmware_artifact> build(
      instr::linked_program prog,
      const firmware_id* precomputed_id = nullptr);

  /// The content address of `prog` without building an artifact — what
  /// the catalog keys its dedup map on.
  static firmware_id fingerprint(const instr::linked_program& prog);

  /// `precomputed_id`, when given, must be fingerprint(prog) — lets a
  /// caller that already hashed the program for a dedup lookup (the
  /// catalog) skip the second canonical SHA-256 pass.
  explicit firmware_artifact(instr::linked_program prog,
                             const firmware_id* precomputed_id = nullptr);

  firmware_artifact(const firmware_artifact&) = delete;
  firmware_artifact& operator=(const firmware_artifact&) = delete;

  const instr::linked_program& program() const { return prog_; }
  /// Computed lazily (thread-safe) unless the constructor got a
  /// precomputed id — one-shot artifacts that are never interned skip the
  /// canonical SHA-256 pass entirely.
  const firmware_id& id() const;
  std::string id_hex() const;

  /// Bytes of [er_min, er_max+1] — the exact range the attestation MAC
  /// covers, precomputed so verify() never re-extracts it per report.
  std::span<const std::uint8_t> er_bytes() const { return er_bytes_; }

  /// Access-site bounds table keyed by code address.
  const std::map<std::uint16_t, bounds_site>& sites() const {
    return sites_;
  }

  /// Flattened 64 KiB image (what the bus holds right after load) — the
  /// CF-Log walker reads code through this instead of re-flattening.
  const std::vector<std::uint8_t>& flat_image() const { return flat_; }

  /// True when `addr` is a ".Lstub_cfa_taken*" label (an instrumented
  /// application conditional's taken arm).
  bool is_taken_label(std::uint16_t addr) const;

  /// Predecoded instruction at `pc`, or nullptr when pc is outside
  /// [er_min, er_max] / unaligned / not decodable as laid out in the
  /// image. Callers fall back to a live decode (identical bytes, so
  /// identical result or identical error) — and MUST do so for every pc
  /// once replayed code has been overwritten (see replay.cpp's dirty
  /// tracking). Header-inline: this sits on the replay loop's
  /// per-instruction path.
  const isa::decoded* decoded_at(std::uint16_t pc) const {
    if (pc < prog_.er_min || pc > prog_.er_max ||
        ((pc - prog_.er_min) & 1) != 0) {
      return nullptr;
    }
    const std::size_t i = static_cast<std::size_t>(pc - prog_.er_min) / 2;
    return decoded_valid_[i] ? &decoded_[i] : nullptr;
  }

  /// Classification bits precomputed alongside the decode cache; only
  /// meaningful where decoded_at(pc) is non-null.
  enum : std::uint8_t { df_ret = 1, df_call = 2 };
  std::uint8_t decoded_flags(std::uint16_t pc) const {
    return decoded_flags_[static_cast<std::size_t>(pc - prog_.er_min) / 2];
  }

  /// Access-site lookup for one code address, O(1) for sites inside ER
  /// (the only place instrumented code executes from) — the replay loop
  /// asks this once per instruction, and the old per-pc map::find was
  /// measurable at fleet batch rates.
  const bounds_site* site_at(std::uint16_t pc) const {
    if (pc >= prog_.er_min && pc <= prog_.er_max &&
        ((pc - prog_.er_min) & 1) == 0) {
      return site_index_[static_cast<std::size_t>(pc - prog_.er_min) / 2];
    }
    if (!sites_outside_er_) return nullptr;
    const auto it = sites_.find(pc);
    return it == sites_.end() ? nullptr : &it->second;
  }

  /// Full §III verification of one report against this firmware, under a
  /// given device key. `policies` may be empty; `expected_challenge`
  /// enforces anti-replay. Const, reentrant, and safe to call from many
  /// threads at once. Takes a report_view (owning reports convert
  /// implicitly); the viewed OR storage must stay alive for the call.
  verdict verify(const report_view& report,
                 std::span<const std::uint8_t> key,
                 const std::vector<std::shared_ptr<policy>>& policies,
                 std::optional<std::array<std::uint8_t, 16>>
                     expected_challenge = std::nullopt) const;

  /// Same, from a cached HMAC key schedule for the device key (what
  /// fleet::device_record carries) — skips four key-block compressions
  /// per report. `timings`, when non-null, receives the MAC/replay stage
  /// split for pipeline stage attribution (no clock reads when null).
  /// `memo`, when non-null AND `policies` is empty, serves the replay
  /// stage from the memo's cache keyed on (artifact id, attested-input
  /// digest) — see replay_cache.h for why nonce/MAC stay outside the key.
  verdict verify(const report_view& report,
                 const crypto::hmac_keystate& key_state,
                 const std::vector<std::shared_ptr<policy>>& policies,
                 std::optional<std::array<std::uint8_t, 16>>
                     expected_challenge = std::nullopt,
                 verify_timings* timings = nullptr,
                 replay_memo* memo = nullptr) const;

  /// Approximate heap+object footprint of this artifact (metrics: fleet
  /// verifier memory is artifacts * this, not devices * program).
  std::size_t footprint_bytes() const;

  /// Approximate footprint of a standalone linked_program copy — the
  /// per-DEVICE cost of the pre-catalog design, kept for the before/after
  /// memory accounting in bench/ROADMAP.
  static std::size_t program_footprint_bytes(
      const instr::linked_program& prog);

 private:
  instr::linked_program prog_;
  /// Lazy content id (see id()); `mutable` only for the once-guarded
  /// fill — observably the artifact stays deeply immutable.
  mutable std::once_flag id_once_;
  mutable firmware_id id_{};
  bool id_precomputed_ = false;
  byte_vec er_bytes_;
  /// attest_mac_header(..., exec) ‖ ER as one contiguous buffer per EXEC
  /// value — the fixed prefix of every MAC'd message for this firmware,
  /// prebuilt so verify() absorbs it in a single unbroken hash run.
  byte_vec mac_prefix_exec1_;
  byte_vec mac_prefix_exec0_;
  std::vector<std::uint8_t> flat_;
  std::map<std::uint16_t, bounds_site> sites_;
  std::vector<std::uint16_t> taken_labels_;  ///< sorted
  /// Decode cache over [er_min, er_max]: entry (pc - er_min)/2; a parallel
  /// validity bitmap marks addresses that do not decode as laid out, a
  /// parallel flags array carries df_* classification bits, and a parallel
  /// pointer array resolves access sites without the map.
  std::vector<isa::decoded> decoded_;
  std::vector<std::uint8_t> decoded_valid_;
  std::vector<std::uint8_t> decoded_flags_;
  std::vector<const bounds_site*> site_index_;
  bool sites_outside_er_ = false;
};

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_FIRMWARE_ARTIFACT_H
