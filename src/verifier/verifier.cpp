#include "verifier/verifier.h"

namespace dialed::verifier {

op_verifier::op_verifier(instr::linked_program prog, byte_vec key)
    : fw_(firmware_artifact::build(std::move(prog))),
      key_(std::move(key)),
      key_state_(crypto::hmac_keystate::derive(key_)) {}

op_verifier::op_verifier(std::shared_ptr<const firmware_artifact> fw,
                         byte_vec key)
    : fw_(std::move(fw)),
      key_(std::move(key)),
      key_state_(crypto::hmac_keystate::derive(key_)) {}

void op_verifier::add_policy(std::shared_ptr<policy> p) {
  policies_.push_back(std::move(p));
}

verdict op_verifier::verify(
    const report_view& report,
    std::optional<std::array<std::uint8_t, 16>> expected_challenge,
    verify_timings* timings) const {
  return fw_->verify(report, key_state_, policies_, expected_challenge,
                     timings);
}

std::size_t op_verifier::context_footprint_bytes() const {
  return sizeof(*this) + key_.capacity() +
         policies_.capacity() * sizeof(policies_[0]);
}

}  // namespace dialed::verifier
