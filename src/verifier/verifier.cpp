#include "verifier/verifier.h"

#include "common/error.h"
#include "emu/memmap.h"
#include "rot/attest.h"
#include "verifier/cfa_check.h"

namespace dialed::verifier {

op_verifier::op_verifier(instr::linked_program prog, byte_vec key)
    : prog_(std::move(prog)), key_(std::move(key)) {}

void op_verifier::add_policy(std::shared_ptr<policy> p) {
  policies_.push_back(std::move(p));
}

verdict op_verifier::verify(
    const attestation_report& report,
    std::optional<std::array<std::uint8_t, 16>> expected_challenge) const {
  verdict v;

  // ---- 1. configuration ----
  const auto& map = prog_.options.map;
  if (report.er_min != prog_.er_min || report.er_max != prog_.er_max ||
      report.or_min != map.or_min || report.or_max != map.or_max) {
    v.findings.push_back(
        {attack_kind::bounds_mismatch,
         "report attests different ER/OR bounds than the deployed program",
         0, report.er_min});
    return v;
  }
  if (expected_challenge && report.challenge != *expected_challenge) {
    v.findings.push_back({attack_kind::stale_challenge,
                          "challenge does not match the outstanding nonce",
                          0, 0});
    return v;
  }

  // ---- 2. MAC + EXEC ----
  const byte_vec er = prog_.er_bytes();
  rot::attest_input in;
  in.er_min = report.er_min;
  in.er_max = report.er_max;
  in.or_min = report.or_min;
  in.or_max = report.or_max;
  in.exec = true;  // Vrf only ever accepts proofs of violation-free runs
  in.challenge = report.challenge;
  in.er_bytes = er;
  in.or_bytes = report.or_bytes;
  const auto expected_mac = rot::compute_attestation_mac(key_, in);
  if (!crypto::hmac_sha256::equal(expected_mac, report.mac)) {
    // Distinguish an authentic EXEC=0 report from an outright forgery —
    // purely diagnostic; both are rejected.
    in.exec = false;
    const auto mac_exec0 = rot::compute_attestation_mac(key_, in);
    if (crypto::hmac_sha256::equal(mac_exec0, report.mac)) {
      v.findings.push_back(
          {attack_kind::exec_cleared,
           report.halt_code == emu::HALT_ABORT
               ? "EXEC=0 and the device aborted: the instrumentation "
                 "detected an illegal write or log overflow"
               : "EXEC=0: APEX observed an execution violation "
                 "(code write, PC escape, interrupt or DMA)",
           0, 0});
      if (report.halt_code == emu::HALT_ABORT) {
        v.findings.push_back({attack_kind::instrumentation_abort,
                              "device halted with HALT_ABORT", 0, 0});
      }
    } else {
      v.findings.push_back(
          {attack_kind::mac_invalid,
           "MAC verification failed: modified code, forged logs, wrong key "
           "or tampered challenge",
           0, 0});
      if (report.halt_code == emu::HALT_ABORT) {
        // The device never reached SW-Att: its instrumentation aborted the
        // run (illegal write into the log region or log overflow).
        v.findings.push_back({attack_kind::instrumentation_abort,
                              "device halted with HALT_ABORT before "
                              "attestation",
                              0, 0});
      }
    }
    return v;
  }

  // ---- 3a. CFA-only verification (Tiny-CFA deployments) ----
  if (prog_.options.mode == instr::instrumentation::tinycfa) {
    // Without DIALED's I-Log the execution cannot be replayed, but the
    // control-flow path can still be reconstructed and checked from
    // CF-Log alone (Tiny-CFA's own guarantee; catches Fig. 1, blind to
    // Fig. 2 — the paper's motivation for DIALED).
    auto cfa = check_cfa_log(prog_, report);
    v.findings.insert(v.findings.end(), cfa.findings.begin(),
                      cfa.findings.end());
    v.log_slots_consumed = cfa.entries_consumed;
    v.log_bytes = 2 * cfa.entries_consumed;
    v.accepted = cfa.ok;
    return v;
  }
  if (prog_.options.mode != instr::instrumentation::dialed) {
    // Uninstrumented: the MAC and EXEC guarantees above are all this
    // configuration can offer.
    v.accepted = true;
    return v;
  }

  replay_result rr = replay_operation(prog_, report, policies_);
  v.findings.insert(v.findings.end(), rr.findings.begin(),
                    rr.findings.end());
  v.replay_instructions = rr.instructions;
  v.annotated_log = std::move(rr.annotated_log);
  v.io_trace = std::move(rr.io_trace);
  v.result_tainted = rr.result_tainted;

  if (!rr.completed) {
    if (rr.findings.empty()) {
      v.findings.push_back({attack_kind::replay_divergence,
                            "replay did not reach the op's return", 0, 0});
    }
    return v;
  }

  v.replayed_result = rr.final_r15;
  logfmt::log_view log(report.or_min, report.or_max, report.or_bytes);
  v.log_slots_consumed = log.used_slots(rr.final_r4);
  v.log_bytes = log.used_bytes(rr.final_r4);

  // Replayed OR must byte-match the attested OR over the consumed region.
  const std::size_t lo = static_cast<std::size_t>(rr.final_r4) + 2 -
                         report.or_min;
  for (std::size_t i = lo; i < report.or_bytes.size(); ++i) {
    if (report.or_bytes[i] != rr.replay_or_bytes[i]) {
      v.findings.push_back(
          {attack_kind::replay_divergence,
           "attested OR differs from the replayed OR at " +
               hex16(static_cast<std::uint16_t>(report.or_min + i)),
           0, static_cast<std::uint16_t>(report.or_min + i)});
      break;
    }
  }

  if (report.claimed_result != rr.final_r15) {
    v.findings.push_back(
        {attack_kind::result_forged,
         "device claimed result " + hex16(report.claimed_result) +
             " but the attested execution produced " + hex16(rr.final_r15),
         0, 0});
  }

  v.accepted = v.findings.empty();
  return v;
}

}  // namespace dialed::verifier
