#include "verifier/report.h"

namespace dialed::verifier {

std::string to_string(attack_kind k) {
  switch (k) {
    case attack_kind::none: return "none";
    case attack_kind::mac_invalid: return "mac-invalid";
    case attack_kind::exec_cleared: return "exec-cleared";
    case attack_kind::instrumentation_abort: return "instrumentation-abort";
    case attack_kind::replay_divergence: return "replay-divergence";
    case attack_kind::control_flow_attack: return "control-flow-attack";
    case attack_kind::data_only_attack: return "data-only-attack";
    case attack_kind::policy_violation: return "policy-violation";
    case attack_kind::uninitialized_read: return "uninitialized-read";
    case attack_kind::stale_challenge: return "stale-challenge";
    case attack_kind::bounds_mismatch: return "bounds-mismatch";
    case attack_kind::result_forged: return "result-forged";
  }
  return "?";
}

std::string render(const verdict& v) {
  char buf[160];
  std::string out;
  out += v.accepted ? "VERDICT: ACCEPTED\n" : "VERDICT: REJECTED\n";
  for (const auto& f : v.findings) {
    std::snprintf(buf, sizeof buf, "  finding: %-22s %s (pc=0x%04x)\n",
                  to_string(f.kind).c_str(), f.detail.c_str(), f.pc);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  replayed result: 0x%04x%s; %llu instructions; "
                "%d log slots (%d bytes)\n",
                v.replayed_result,
                v.result_tainted ? " (input-derived)" : "",
                static_cast<unsigned long long>(v.replay_instructions),
                v.log_slots_consumed, v.log_bytes);
  out += buf;
  for (const auto& e : v.io_trace) {
    std::snprintf(buf, sizeof buf,
                  "  io: pc=0x%04x [0x%04x] <- 0x%04x %s\n", e.pc, e.addr,
                  e.value, e.tainted ? "(input-derived)" : "(constant)");
    out += buf;
  }
  return out;
}

}  // namespace dialed::verifier
