#include "verifier/replay.h"

#include <algorithm>
#include <atomic>
#include <bitset>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "common/error.h"
#include "verifier/firmware_artifact.h"

namespace dialed::verifier {

namespace {
std::atomic<replay_dispatch> forced_dispatch{replay_dispatch::fast};
}  // namespace

void replay_force_dispatch(replay_dispatch d) {
  forced_dispatch.store(d, std::memory_order_relaxed);
}

replay_dispatch replay_forced_dispatch() {
  return forced_dispatch.load(std::memory_order_relaxed);
}

std::uint16_t replay_state::global(const std::string& name) const {
  const auto it = prog_.global_addrs.find(name);
  if (it == prog_.global_addrs.end()) {
    throw error("verifier: unknown global '" + name + "'");
  }
  return m_.get_bus().peek16(it->second);
}

namespace {

constexpr std::uint64_t max_replay_instructions = 20'000'000;

// ---------------------------------------------------------------------------
// Per-thread reusable replay machine. Constructing an emu::machine per
// report (64 KiB bus + peripherals on the heap) was a fixed cost on every
// verify; instead each thread — including the hub's verify_batch pool
// workers — keeps ONE machine and recycles it (memory zeroed, CPU/halt
// cleared: exactly the just-constructed state) between replays. The slot
// is re-keyed when a firmware with a different memory map comes through,
// and a busy flag falls back to a throwaway machine on (impossible today)
// same-thread reentry rather than corrupting a replay in flight.
// ---------------------------------------------------------------------------
struct machine_slot {
  bool busy = false;
  emu::memory_map map;
  std::unique_ptr<emu::machine> machine;
};

machine_slot& thread_machine_slot() {
  static thread_local machine_slot slot;
  return slot;
}

class machine_lease {
 public:
  explicit machine_lease(const emu::memory_map& map) {
    machine_slot& slot = thread_machine_slot();
    if (!slot.busy) {
      if (slot.machine == nullptr || !(slot.map == map)) {
        slot.machine = std::make_unique<emu::machine>(
            map, emu::machine::peripheral_set::halt_only);
        slot.map = map;
      } else {
        slot.machine->recycle();
      }
      slot.busy = true;
      cached_ = true;
      m_ = slot.machine.get();
    } else {
      owned_ = std::make_unique<emu::machine>(
          map, emu::machine::peripheral_set::halt_only);
      m_ = owned_.get();
    }
  }
  ~machine_lease() {
    if (cached_) thread_machine_slot().busy = false;
  }
  machine_lease(const machine_lease&) = delete;
  machine_lease& operator=(const machine_lease&) = delete;

  emu::machine& machine() { return *m_; }

 private:
  emu::machine* m_ = nullptr;
  std::unique_ptr<emu::machine> owned_;
  bool cached_ = false;
};

/// Removes the engine's bus watcher even when a replay throws, so the
/// recycled machine never keeps a dangling watcher pointer.
struct watcher_guard {
  emu::bus& bus;
  emu::watcher* w;
  ~watcher_guard() { bus.remove_watcher(w); }
};

class replay_engine final : public emu::watcher {
 public:
  replay_engine(const firmware_artifact& fw,
                const report_view& report,
                const std::vector<std::shared_ptr<policy>>& policies,
                emu::machine& m)
      : fw_(fw),
        prog_(fw.program()),
        report_(report),
        policies_(policies),
        m_(m),
        state_(m_, prog_),
        log_(report.or_min, report.or_max, report.or_bytes) {}

  replay_result run();

  // --- emu::watcher ---
  void on_access(const emu::bus_access& a) override {
    if (!a.write) return;
    mark_code_dirty(a.addr, a.byte ? 1 : 2);
    if (a.addr < prog_.options.map.ram_start) {
      result_.io_trace.push_back(
          {a.addr, a.value, current_pc_, current_write_taint_});
      // Peripheral space: a write drives the device (FIFO ack, conversion
      // trigger, output latch) — it does NOT define the value of the next
      // read. Invalidate so subsequent reads are fed from the I-Log, which
      // is exactly where the device logged them.
      for (int i = 0; i < (a.byte ? 1 : 2); ++i) {
        known_[static_cast<std::uint16_t>(a.addr + i)] = false;
      }
    } else {
      mark_known(a.addr, a.byte ? 1 : 2);
    }
    if (a.addr >= report_.or_min && a.addr <= report_.or_max + 1) {
      annotate_or_write(a);
    }
    for (const auto& p : policies_) {
      p->on_write(state_, a.addr, a.value, current_pc_, result_.findings);
    }
  }

 private:
  void mark_known(std::uint16_t addr, int n) {
    for (int i = 0; i < n; ++i) {
      known_[static_cast<std::uint16_t>(addr + i)] = true;
    }
  }

  /// The artifact's decode cache reads the bytes an instruction in
  /// [er_min, er_max] may fetch ([er_min, er_max+5]). Any write landing
  /// there — a code-overwriting attack being replayed — retires the cache
  /// for the rest of this replay; decoding falls back to the live bus.
  void mark_code_dirty(std::uint16_t addr, int n) {
    if (code_dirty_) return;
    const std::uint32_t lo = addr;
    const std::uint32_t hi = lo + static_cast<std::uint32_t>(n);
    if (hi > prog_.er_min &&
        lo <= static_cast<std::uint32_t>(prog_.er_max) + 5) {
      code_dirty_ = true;
    }
  }

  /// Unobserved poke used when feeding values into the replayed memory;
  /// still has to honor the decode-cache invalidation rule above.
  void feed_poke(std::uint16_t addr, std::uint8_t value) {
    m_.get_bus().poke8(addr, value);
    mark_code_dirty(addr, 1);
  }

  void add_finding(attack_kind k, std::string detail, std::uint16_t pc = 0,
                   std::uint16_t addr = 0) {
    if (result_.findings.size() < 200) {
      result_.findings.push_back({k, std::move(detail), pc, addr});
    }
  }

  std::uint16_t reg(int i) { return m_.get_cpu().regs()[i]; }

  // ---- I-Log feeding ----
  void feed_unknown(std::uint16_t ea, int width, std::uint16_t pc) {
    bool any_unknown = false;
    for (int i = 0; i < width; ++i) {
      if (!known_[static_cast<std::uint16_t>(ea + i)]) any_unknown = true;
    }
    if (!any_unknown) return;

    const std::uint16_t r1 = reg(isa::REG_SP);
    const bool outside_stack = ea < r1 || ea > saved_sp_;
    if (!outside_stack) {
      add_finding(attack_kind::uninitialized_read,
                  "op read uninitialized stack memory at " + hex16(ea), pc,
                  ea);
      for (int i = 0; i < width; ++i) {
        const std::uint16_t b = static_cast<std::uint16_t>(ea + i);
        if (!known_[b]) {
          feed_poke(b, 0);
          known_[b] = true;
        }
      }
      return;
    }

    // Outside the op's stack: the device logged this read; the next I-Log
    // slot — at the replay's current r4 — holds the value it saw.
    const std::uint16_t r4 = reg(isa::REG_LOGPTR);
    if (r4 < report_.or_min || r4 > report_.or_max) {
      add_finding(attack_kind::replay_divergence,
                  "log pointer " + hex16(r4) + " outside the OR during feed",
                  pc, ea);
      for (int i = 0; i < width; ++i) {
        const std::uint16_t b = static_cast<std::uint16_t>(ea + i);
        feed_poke(b, 0);
        known_[b] = true;
      }
      return;
    }
    const std::uint16_t slot = log_.word_at(r4);
    for (int i = 0; i < width; ++i) {
      const std::uint16_t b = static_cast<std::uint16_t>(ea + i);
      if (!known_[b]) {
        const std::uint8_t v = static_cast<std::uint8_t>(
            (i == 0) ? (slot & 0xff) : (slot >> 8));
        feed_poke(b, v);
        known_[b] = true;
        mem_taint_[b] = true;  // I-Log-fed values are input-derived
      }
    }
  }

  /// Pre-execution feeding: resolve every memory address the instruction is
  /// about to read and make the bytes known.
  void feed_for(const isa::instruction& ins, std::uint16_t pc) {
    using isa::addr_mode;
    using isa::opcode;
    const auto& regs = m_.get_cpu().regs();
    auto ea_of = [&](const isa::operand& o)
        -> std::optional<std::uint16_t> {
      switch (o.mode) {
        case addr_mode::indexed:
          return static_cast<std::uint16_t>(regs[o.base] + o.ext);
        case addr_mode::symbolic:
        case addr_mode::absolute:
          return o.ext;
        case addr_mode::indirect:
        case addr_mode::indirect_inc:
          return regs[o.base];
        default:
          return std::nullopt;
      }
    };
    const int width = ins.byte_op ? 1 : 2;

    if (isa::is_jump(ins.op)) return;
    if (ins.op == opcode::reti) {
      feed_unknown(regs[isa::REG_SP], 2, pc);
      feed_unknown(static_cast<std::uint16_t>(regs[isa::REG_SP] + 2), 2, pc);
      return;
    }
    if (isa::is_format2(ins.op)) {
      if (const auto ea = ea_of(ins.dst)) {
        feed_unknown(*ea, ins.op == opcode::call ? 2 : width, pc);
      }
      return;
    }
    if (const auto ea = ea_of(ins.src)) feed_unknown(*ea, width, pc);
    if (ins.op != isa::opcode::mov) {
      if (const auto ea = ea_of(ins.dst)) feed_unknown(*ea, width, pc);
    }
  }

  // ---- OR annotation (forensics) ----
  void annotate_or_write(const emu::bus_access& a) {
    const int slot = (report_.or_max - a.addr) / 2;
    logfmt::entry_kind kind = logfmt::entry_kind::unknown;
    using isa::addr_mode;
    const isa::operand& src = current_ins_.src;
    if (current_ins_.op == isa::opcode::mov) {
      if (src.mode == addr_mode::indirect &&
          src.base == isa::REG_SCRATCH) {
        kind = logfmt::entry_kind::data_input;
      } else if (src.mode == addr_mode::absolute ||
                 src.mode == addr_mode::symbolic ||
                 src.mode == addr_mode::indexed) {
        kind = logfmt::entry_kind::data_input;
      } else if (src.mode == addr_mode::reg) {
        if (src.base == isa::REG_SP) {
          kind = logfmt::entry_kind::saved_sp;
        } else if (src.base >= 8) {
          kind = slot >= 1 && slot <= 8 ? logfmt::entry_kind::entry_arg
                                        : logfmt::entry_kind::cf_destination;
        } else {
          kind = logfmt::entry_kind::cf_destination;
        }
      } else if (src.mode == addr_mode::indirect &&
                 src.base == isa::REG_SP) {
        kind = logfmt::entry_kind::cf_destination;  // ret target
      } else if (src.mode == addr_mode::immediate) {
        kind = logfmt::entry_kind::cf_destination;
      }
    }
    // Two-stage byte logging rewrites the same slot (clear, then mov.b):
    // keep the latest classification.
    if (!result_.annotated_log.empty() &&
        result_.annotated_log.back().slot == slot) {
      result_.annotated_log.back() = {slot, a.value, kind, current_pc_};
      return;
    }
    result_.annotated_log.push_back({slot, a.value, kind, current_pc_});
  }

  // ---- detectors ----
  void check_site(std::uint16_t pc) {
    const bounds_site* sp = fw_.site_at(pc);
    if (sp == nullptr) return;
    const bounds_site& s = *sp;
    const std::uint16_t ea = reg(15);
    std::uint16_t lo, hi;
    if (s.is_global) {
      lo = s.global_base;
      hi = static_cast<std::uint16_t>(lo + s.size_bytes);
    } else {
      lo = static_cast<std::uint16_t>(reg(isa::REG_SP) + s.local_offset_adj);
      hi = static_cast<std::uint16_t>(lo + s.size_bytes);
    }
    if (ea < lo || ea >= hi) {
      add_finding(attack_kind::data_only_attack,
                  "out-of-bounds access to '" + s.object + "': address " +
                      hex16(ea) + " outside [" + hex16(lo) + ", " +
                      hex16(hi) + ")",
                  pc, ea);
    }
  }

  // ---- taint tracking (value provenance from attested inputs) ----
  bool reg_taint_[16] = {};
  std::bitset<0x10000> mem_taint_;
  bool current_write_taint_ = false;

  void taint_bytes(std::uint16_t addr, int n, bool t) {
    for (int i = 0; i < n; ++i) {
      mem_taint_[static_cast<std::uint16_t>(addr + i)] = t;
    }
  }
  bool bytes_tainted(std::uint16_t addr, int n) const {
    for (int i = 0; i < n; ++i) {
      if (mem_taint_[static_cast<std::uint16_t>(addr + i)]) return true;
    }
    return false;
  }

  /// Taint of a source operand's value (address-taint of the base register
  /// is included, so attacker-chosen indices taint what they select).
  bool operand_taint(const isa::operand& o, int width) {
    using isa::addr_mode;
    const auto& regs = m_.get_cpu().regs();
    switch (o.mode) {
      case addr_mode::reg: return reg_taint_[o.base];
      case addr_mode::immediate: return false;
      case addr_mode::indexed:
        return reg_taint_[o.base] ||
               bytes_tainted(static_cast<std::uint16_t>(regs[o.base] + o.ext),
                             width);
      case addr_mode::symbolic:
      case addr_mode::absolute:
        return bytes_tainted(o.ext, width);
      case addr_mode::indirect:
      case addr_mode::indirect_inc:
        return reg_taint_[o.base] || bytes_tainted(regs[o.base], width);
    }
    return false;
  }

  /// Pre-step taint propagation for the instruction about to execute;
  /// uses the same effective addresses the CPU will use.
  void propagate_taint(const isa::instruction& ins) {
    using isa::addr_mode;
    using isa::opcode;
    current_write_taint_ = false;
    const auto& regs = m_.get_cpu().regs();
    const int width = ins.byte_op ? 1 : 2;
    auto dst_ea = [&](const isa::operand& o) -> std::optional<std::uint16_t> {
      switch (o.mode) {
        case addr_mode::indexed:
          return static_cast<std::uint16_t>(regs[o.base] + o.ext);
        case addr_mode::symbolic:
        case addr_mode::absolute:
          return o.ext;
        default:
          return std::nullopt;
      }
    };

    if (isa::is_jump(ins.op) || ins.op == opcode::reti) return;

    if (isa::is_format2(ins.op)) {
      if (ins.op == opcode::push) {
        const bool t = operand_taint(ins.dst, width);
        taint_bytes(static_cast<std::uint16_t>(regs[isa::REG_SP] - 2), 2, t);
        current_write_taint_ = t;
      } else if (ins.op != opcode::call) {
        // rra/rrc/swpb/sxt: in-place transform keeps its own taint.
      }
      return;
    }

    // Format I.
    const bool src_t = operand_taint(ins.src, width);
    const bool reads_dst =
        ins.op != opcode::mov;
    const bool dst_t = reads_dst ? operand_taint(ins.dst, width) : false;
    const bool result_t = src_t || dst_t;
    if (ins.op == opcode::cmp || ins.op == opcode::bit) return;

    if (ins.dst.mode == addr_mode::reg) {
      reg_taint_[ins.dst.base] = result_t;
    } else if (const auto ea = dst_ea(ins.dst)) {
      taint_bytes(*ea, width, result_t);
      current_write_taint_ = result_t;
    }
  }

  const firmware_artifact& fw_;
  const instr::linked_program& prog_;
  report_view report_;
  const std::vector<std::shared_ptr<policy>>& policies_;
  emu::machine& m_;
  replay_state state_;
  logfmt::log_view log_;
  std::bitset<0x10000> known_;
  /// Replayed code overwrote bytes the decode cache covers; decode live
  /// from the bus for the rest of the run.
  bool code_dirty_ = false;
  /// Sampled once per replay so a mid-run flip of the test hook cannot
  /// mix dispatch paths within one execution.
  const bool legacy_decode_ =
      replay_forced_dispatch() == replay_dispatch::legacy;
  std::uint16_t saved_sp_ = 0;
  std::uint16_t current_pc_ = 0;
  isa::instruction current_ins_{};
  std::vector<std::pair<std::uint16_t, std::uint16_t>> ra_stack_;
  std::vector<bool> call_taint_stack_;
  replay_result result_;
};

replay_result replay_engine::run() {
  // ---- setup ----
  m_.load(prog_.image);
  for (const auto& seg : prog_.image.segments) {
    mark_known(seg.base, static_cast<int>(seg.bytes.size()));
  }
  m_.get_bus().add_watcher(this);
  watcher_guard guard{m_.get_bus(), this};

  saved_sp_ = log_.saved_sp();
  auto& regs = m_.get_cpu().regs();
  regs.fill(0);
  regs[isa::REG_PC] = report_.er_min;
  regs[isa::REG_SP] = saved_sp_;
  regs[isa::REG_LOGPTR] = report_.or_max;
  for (int i = 0; i < 8; ++i) {
    regs[static_cast<std::size_t>(8 + i)] = log_.entry_reg(i);
    reg_taint_[8 + i] = true;  // the op's arguments are attested inputs
  }
  // The caller's pushed return address (which the final `ret` consumes and
  // Tiny-CFA logs): the crt0 continuation after `call #__er_start`.
  const std::uint16_t ret_sentinel = prog_.op_return_addr;
  m_.get_bus().poke16(saved_sp_, ret_sentinel);
  mark_code_dirty(saved_sp_, 2);  // adversarial saved SP may alias code
  mark_known(saved_sp_, 2);

  // ---- main loop ----
  for (;;) {
    if (m_.halted()) {
      if (m_.halt_code() == emu::HALT_ABORT) {
        add_finding(attack_kind::instrumentation_abort,
                    "replayed instrumentation aborted (F5 check or log "
                    "overflow)",
                    current_pc_);
      } else {
        add_finding(attack_kind::replay_divergence,
                    "replay halted unexpectedly with code " +
                        std::to_string(m_.halt_code()),
                    current_pc_);
      }
      break;
    }
    const std::uint16_t pc = m_.get_cpu().pc();
    if (pc == ret_sentinel) {
      result_.completed = true;
      result_.final_r15 = reg(15);
      result_.final_r4 = reg(isa::REG_LOGPTR);
      result_.result_tainted = reg_taint_[15];
      for (const auto& p : policies_) {
        p->on_finish(state_, result_.findings);
      }
      break;
    }
    if (result_.instructions >= max_replay_instructions) {
      add_finding(attack_kind::replay_divergence,
                  "replay exceeded the instruction budget", pc);
      break;
    }

    check_site(pc);

    try {
      // Decode (for feeding) without executing — through the artifact's
      // predecoded index while the code bytes are pristine, live from the
      // bus once an attack overwrote them (identical bytes -> identical
      // decode, so the cache can never change a verdict). The legacy pin
      // (test hook) forces the live path for every instruction.
      const isa::decoded* dp = (legacy_decode_ || code_dirty_)
                                   ? nullptr
                                   : fw_.decoded_at(pc);
      isa::decoded live;
      if (dp == nullptr) {
        if (pc > 0xfffa) {
          // The 6-byte fetch window [pc, pc+5] would wrap past 0xffff to
          // 0x0000; the real MCU has no code there (flash tops out below
          // the IVT), so fail closed instead of decoding wrapped bytes.
          add_finding(attack_kind::replay_divergence,
                      "instruction fetch window at " + hex16(pc) +
                          " wraps past the top of memory",
                      pc);
          break;
        }
        std::array<std::uint16_t, 3> words = {
            m_.get_bus().peek16(pc),
            m_.get_bus().peek16(static_cast<std::uint16_t>(pc + 2)),
            m_.get_bus().peek16(static_cast<std::uint16_t>(pc + 4))};
        live = isa::decode(words, pc);
        dp = &live;
      }
      const isa::decoded& d = *dp;
      current_pc_ = pc;
      current_ins_ = d.ins;
      feed_for(d.ins, pc);
      propagate_taint(d.ins);

      // Return-address witness: `ret` must pop what the call pushed. The
      // predecoded index carries the classification as a flag; the live
      // path computes the same shared predicate.
      const bool is_ret =
          dp != &live
              ? (fw_.decoded_flags(pc) & firmware_artifact::df_ret) != 0
              : is_ret_instruction(d.ins);
      if (is_ret) {
        const std::uint16_t sp = reg(isa::REG_SP);
        const std::uint16_t actual = m_.get_bus().peek16(sp);
        if (!ra_stack_.empty() && ra_stack_.back().first == sp) {
          if (ra_stack_.back().second != actual) {
            add_finding(attack_kind::control_flow_attack,
                        "return address at " + hex16(sp) +
                            " was corrupted: expected " +
                            hex16(ra_stack_.back().second) + ", found " +
                            hex16(actual),
                        pc, sp);
          }
          ra_stack_.pop_back();
        } else if (ra_stack_.empty() && actual != ret_sentinel) {
          add_finding(attack_kind::control_flow_attack,
                      "final return address corrupted to " + hex16(actual),
                      pc, sp);
        }
      }

      if (is_ret && !call_taint_stack_.empty()) {
        // Function-level implicit-flow approximation: a call's return
        // value is input-derived if any argument register was (explicit
        // dataflow alone misses loop-steered helpers like __mulhi).
        reg_taint_[15] = reg_taint_[15] || call_taint_stack_.back();
        call_taint_stack_.pop_back();
      }

      // Cached decode with the window still pristine -> the instruction
      // bytes cannot have changed since decoding; skip the CPU's
      // re-fetch. Otherwise keep the historical re-fetch inside step():
      // feeding may legally mutate fetchable bytes (an attacker-steered
      // operand landing in the instruction's own ext-word window, or a pc
      // outside the pristine ER), and the device executed the post-feed
      // bytes. code_dirty_ may have been set by THIS iteration's
      // feed_for, so it is re-checked here, not where dp was chosen.
      const auto info = (dp == &live || code_dirty_)
                            ? m_.get_cpu().step()
                            : m_.get_cpu().step(d);
      ++result_.instructions;

      if (info.ins.op == isa::opcode::call && !info.serviced_irq) {
        const std::uint16_t sp = reg(isa::REG_SP);
        ra_stack_.emplace_back(sp, m_.get_bus().peek16(sp));
        bool arg_taint = false;
        for (int r = 8; r <= 15; ++r) {
          arg_taint = arg_taint || reg_taint_[r];
        }
        call_taint_stack_.push_back(arg_taint);
      }
    } catch (const error& e) {
      add_finding(attack_kind::replay_divergence,
                  std::string("replay fault: ") + e.what(), pc);
      break;
    }
  }

  // Extract the replayed OR snapshot [or_min, or_max+1]. The clamp keeps
  // the loop inside the address space even for an (elsewhere-rejected)
  // or_max of 0xffff — without it the uint16 cast would wrap the tail
  // read to 0x0000 and the loop bound would overflow.
  const std::uint32_t or_top = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(report_.or_max) + 1, 0xffff);
  for (std::uint32_t a = report_.or_min; a <= or_top; ++a) {
    result_.replay_or_bytes.push_back(
        m_.get_bus().peek8(static_cast<std::uint16_t>(a)));
  }
  return std::move(result_);
}

}  // namespace

replay_result replay_operation(
    const firmware_artifact& fw, const report_view& report,
    const std::vector<std::shared_ptr<policy>>& policies) {
  if (report.or_max == 0xffff || report.er_max > 0xfffa) {
    // Fail closed before touching a machine: the OR snapshot covers
    // [or_min, or_max+1] and a fetch reads [pc, pc+5]; these bounds would
    // wrap past 0xffff. Unreachable through verify() — the artifact
    // constructor rejects such layouts and verify() requires the report's
    // bounds to match the program's — but the pure entry point must not
    // rely on its callers for that.
    replay_result r;
    r.findings.push_back(
        {attack_kind::bounds_mismatch,
         "attested region abuts the top of the address space", 0,
         report.er_max > 0xfffa ? report.er_max : report.or_max});
    return r;
  }
  machine_lease lease(fw.program().options.map);
  replay_engine engine(fw, report, policies, lease.machine());
  return engine.run();
}

}  // namespace dialed::verifier
