// The attestation report a prover returns for one attested invocation, and
// the verifier's verdict structure.
#ifndef DIALED_VERIFIER_REPORT_H
#define DIALED_VERIFIER_REPORT_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "logfmt/logfmt.h"

namespace dialed::verifier {

/// Everything Prv ships back: the claimed configuration, the OR snapshot
/// (CF-Log + I-Log), the EXEC claim and the VRASED MAC binding them all.
struct attestation_report {
  std::uint16_t er_min = 0;
  std::uint16_t er_max = 0;
  std::uint16_t or_min = 0;
  std::uint16_t or_max = 0;
  bool exec = false;
  std::array<std::uint8_t, 16> challenge{};
  byte_vec or_bytes;  ///< [or_min, or_max+1]
  crypto::hmac_sha256::mac mac{};

  // Unattested device claims (useful for diagnosis; never trusted).
  std::uint16_t claimed_result = 0;
  std::uint16_t halt_code = 0;
};

/// Non-owning view of an attestation report: the scalar fields by value,
/// `or_bytes` as a span into storage the CALLER keeps alive — a decoded
/// wire frame, a WAL buffer, or an owning attestation_report (the implicit
/// conversion below, so every existing owning call site still compiles).
/// The whole verification pipeline consumes this view, which is what lets
/// a full-frame v2 submission verify without ever copying its OR.
struct report_view {
  std::uint16_t er_min = 0;
  std::uint16_t er_max = 0;
  std::uint16_t or_min = 0;
  std::uint16_t or_max = 0;
  bool exec = false;
  std::array<std::uint8_t, 16> challenge{};
  std::span<const std::uint8_t> or_bytes;  ///< [or_min, or_max+1]
  crypto::hmac_sha256::mac mac{};
  std::uint16_t claimed_result = 0;
  std::uint16_t halt_code = 0;

  report_view() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit view.
  report_view(const attestation_report& r)
      : er_min(r.er_min),
        er_max(r.er_max),
        or_min(r.or_min),
        or_max(r.or_max),
        exec(r.exec),
        challenge(r.challenge),
        or_bytes(r.or_bytes),
        mac(r.mac),
        claimed_result(r.claimed_result),
        halt_code(r.halt_code) {}
};

enum class attack_kind : std::uint8_t {
  none,
  mac_invalid,           ///< MAC mismatch: code/OR/EXEC/challenge forged
  exec_cleared,          ///< EXEC=0: APEX detected an execution violation
  instrumentation_abort, ///< device aborted via the F5/log-overflow checks
  replay_divergence,     ///< replayed OR differs from the attested OR
  control_flow_attack,   ///< corrupted return address / CF target observed
  data_only_attack,      ///< out-of-bounds object access during replay
  policy_violation,      ///< app-specific safety policy failed
  uninitialized_read,    ///< op consumed an uninitialized stack value
  stale_challenge,       ///< challenge does not match the outstanding nonce
  bounds_mismatch,       ///< report's ER/OR bounds differ from expected
  result_forged,         ///< claimed result differs from the replayed output
};

std::string to_string(attack_kind k);

struct finding {
  attack_kind kind = attack_kind::none;
  std::string detail;
  std::uint16_t pc = 0;
  std::uint16_t addr = 0;
};

/// One replayed write into peripheral space, with input-taint provenance:
/// `tainted` means the written value (or the address selecting it) derives
/// from attested inputs — i.e. it was attacker-influencable.
struct io_event {
  std::uint16_t addr = 0;
  std::uint16_t value = 0;
  std::uint16_t pc = 0;
  bool tainted = false;
};

/// Optional out-param of verify(): wall time the call spent in the MAC
/// check vs the ER replay, for per-stage latency attribution. Written only
/// when a non-null pointer is passed — the clock is never read otherwise.
struct verify_timings {
  std::uint64_t mac_ns = 0;
  std::uint64_t replay_ns = 0;
};

struct verdict {
  bool accepted = false;
  std::vector<finding> findings;

  /// The trustworthy op output derived from replay (r15 at the op's final
  /// return) — the value Vrf should use instead of the device's claim.
  std::uint16_t replayed_result = 0;

  // Replay statistics.
  std::uint64_t replay_instructions = 0;
  int log_slots_consumed = 0;
  int log_bytes = 0;

  /// Verifier-side annotation of the attested log (forensics).
  std::vector<logfmt::annotated_entry> annotated_log;

  /// Replayed peripheral writes with input-taint provenance; populated by
  /// the abstract executor (DIALED-mode verification only).
  std::vector<io_event> io_trace;
  /// Whether the replayed result derives from attested inputs.
  bool result_tainted = false;

  bool has(attack_kind k) const {
    for (const auto& f : findings) {
      if (f.kind == k) return true;
    }
    return false;
  }
};

/// Human-readable multi-line report of a verdict (status, findings, replay
/// statistics, peripheral-write provenance) for operator consoles/logs.
std::string render(const verdict& v);

}  // namespace dialed::verifier

#endif  // DIALED_VERIFIER_REPORT_H
