#include "verifier/cfa_check.h"

#include <optional>

#include "common/bytes.h"
#include "common/error.h"
#include "logfmt/logfmt.h"
#include "verifier/firmware_artifact.h"

namespace dialed::verifier {

namespace {

constexpr std::uint64_t max_walk_steps = 5'000'000;

class cfa_walker {
 public:
  cfa_walker(const firmware_artifact& fw, const report_view& report)
      : fw_(fw),
        prog_(fw.program()),
        report_(report),
        mem_(fw.flat_image()),
        log_(report.or_min, report.or_max, report.or_bytes) {}

  cfa_result run() {
    std::uint16_t pc = prog_.er_min;
    std::uint64_t steps = 0;
    result_.path.push_back(pc);

    while (pc != prog_.op_return_addr) {
      if (++steps > max_walk_steps) {
        fail(attack_kind::replay_divergence,
             "CF-Log walk exceeded the step budget", pc);
        break;
      }
      if (pc < prog_.er_min || pc > prog_.er_max) {
        fail(attack_kind::control_flow_attack,
             "reconstructed path left ER at " + hex16(pc), pc);
        break;
      }
      isa::decoded d{};
      try {
        d = decode_at(pc);
      } catch (const error& e) {
        fail(attack_kind::replay_divergence,
             std::string("undecodable instruction on path: ") + e.what(),
             pc);
        break;
      }
      const std::uint16_t next =
          static_cast<std::uint16_t>(pc + 2 * d.words);

      if (!step(d.ins, pc, next)) break;
      if (pc_ != next) result_.path.push_back(pc_);
      pc = pc_;
    }

    result_.ok = result_.findings.empty() && pc == prog_.op_return_addr;
    result_.entries_consumed = cursor_;
    return std::move(result_);
  }

 private:
  std::uint16_t word_at(std::uint16_t a) const {
    return static_cast<std::uint16_t>(
        mem_[a] | (mem_[static_cast<std::uint16_t>(a + 1)] << 8));
  }

  /// Decode through the artifact's instruction index; the walk never
  /// mutates memory, so the index is always usable. Outside its range,
  /// decode from the flattened image (identical bytes, identical result
  /// or error).
  isa::decoded decode_at(std::uint16_t pc) const {
    if (const isa::decoded* d = fw_.decoded_at(pc)) return *d;
    const std::array<std::uint16_t, 3> words = {
        word_at(pc), word_at(static_cast<std::uint16_t>(pc + 2)),
        word_at(static_cast<std::uint16_t>(pc + 4))};
    return isa::decode(words, pc);
  }

  void fail(attack_kind k, std::string detail, std::uint16_t pc) {
    result_.findings.push_back({k, std::move(detail), pc, 0});
  }

  bool consume(std::uint16_t* out, std::uint16_t pc) {
    if (cursor_ >= log_.capacity()) {
      fail(attack_kind::replay_divergence, "CF-Log exhausted mid-walk", pc);
      return false;
    }
    *out = log_.slot(cursor_++);
    return true;
  }

  bool is_log_push(const isa::instruction& ins) const {
    return ins.op == isa::opcode::mov &&
           ins.dst.mode == isa::addr_mode::indexed &&
           ins.dst.base == isa::REG_LOGPTR && ins.dst.ext == 0;
  }

  /// Process one instruction; sets pc_ to the successor. Returns false to
  /// stop the walk.
  bool step(const isa::instruction& ins, std::uint16_t pc,
            std::uint16_t next) {
    pc_ = next;

    if (is_log_push(ins)) {
      std::uint16_t e = 0;
      if (!consume(&e, pc)) return false;
      last_entry_ = e;
      if (ins.src.mode == isa::addr_mode::immediate && ins.src.ext != e) {
        fail(attack_kind::replay_divergence,
             "CF-Log entry " + hex16(e) + " does not match the logged " +
                 "destination " + hex16(ins.src.ext),
             pc);
        return false;
      }
      if (ins.src.mode == isa::addr_mode::indirect &&
          ins.src.base == isa::REG_SP) {
        // Return-target push: validate against the shadow call stack.
        if (!shadow_.empty()) {
          if (shadow_.back() != e) {
            fail(attack_kind::control_flow_attack,
                 "return destination " + hex16(e) +
                     " does not match the call site's return address " +
                     hex16(shadow_.back()),
                 pc);
            // keep walking along the attacker's path for forensics
          }
          shadow_.pop_back();
        } else if (e != prog_.op_return_addr) {
          fail(attack_kind::control_flow_attack,
               "final return redirected to " + hex16(e), pc);
        }
        pending_ret_target_ = e;
        has_pending_ret_ = true;
      }
      return true;
    }

    if (isa::is_jump(ins.op)) {
      if (ins.op == isa::opcode::jmp) {
        pc_ = ins.target;
        return true;
      }
      // Conditional. Application conditionals were rewritten to target a
      // ".Lstub_cfa_taken*" label; everything else is a check stub that
      // converges at its target on non-aborting runs.
      if (!fw_.is_taken_label(ins.target)) {
        pc_ = ins.target;
        return true;
      }
      return resolve_app_conditional(ins, pc, next);
    }

    if (ins.op == isa::opcode::call) {
      std::uint16_t dest = 0;
      if (ins.dst.mode == isa::addr_mode::immediate) {
        dest = ins.dst.ext;
      } else {
        dest = last_entry_;  // indirect call: the stub logged the target
      }
      shadow_.push_back(next);
      pc_ = dest;
      return true;
    }

    // ret == mov @sp+, pc  /  br == mov <src>, pc
    if (ins.op == isa::opcode::mov && ins.dst.mode == isa::addr_mode::reg &&
        ins.dst.base == isa::REG_PC) {
      if (ins.src.mode == isa::addr_mode::immediate) {
        pc_ = ins.src.ext;  // br #label (trampoline / stub arm)
        return true;
      }
      if (has_pending_ret_) {
        pc_ = pending_ret_target_;
        has_pending_ret_ = false;
        return true;
      }
      // Indirect branch: the stub logged the destination.
      pc_ = last_entry_;
      return true;
    }

    return true;  // ordinary instruction: fall through
  }

  /// An application conditional: peek the next entry and match it against
  /// the push in the fall-through arm, else the taken arm.
  bool resolve_app_conditional(const isa::instruction& ins, std::uint16_t pc,
                               std::uint16_t next) {
    std::uint16_t e = 0;
    if (!consume(&e, pc)) return false;
    const auto arm_push = [&](std::uint16_t arm_pc)
        -> std::optional<std::pair<std::uint16_t, std::uint16_t>> {
      // The arm begins with `mov #dest, 0(r4)`; returns {dest, arm_pc}.
      try {
        const auto d = decode_at(arm_pc);
        if (is_log_push(d.ins) &&
            d.ins.src.mode == isa::addr_mode::immediate) {
          return {{d.ins.src.ext, arm_pc}};
        }
      } catch (const error&) {
      }
      return std::nullopt;
    };
    const auto fall = arm_push(next);
    const auto taken = arm_push(ins.target);
    if (fall && e == fall->first) {
      pc_ = e;  // the fall arm logs the convergence label and jumps to it
      return true;
    }
    if (taken && e == taken->first) {
      pc_ = e;  // the taken arm logs the original destination
      return true;
    }
    fail(attack_kind::replay_divergence,
         "CF-Log entry " + hex16(e) +
             " matches neither outcome of the conditional at " + hex16(pc),
         pc);
    return false;
  }

  const firmware_artifact& fw_;
  const instr::linked_program& prog_;
  report_view report_;
  const std::vector<std::uint8_t>& mem_;  ///< artifact's flattened image
  logfmt::log_view log_;
  std::vector<std::uint16_t> shadow_;
  cfa_result result_;
  std::uint16_t pc_ = 0;
  std::uint16_t last_entry_ = 0;
  std::uint16_t pending_ret_target_ = 0;
  bool has_pending_ret_ = false;
  int cursor_ = 0;
};

}  // namespace

cfa_result check_cfa_log(const firmware_artifact& fw,
                         const report_view& report) {
  if (fw.program().options.mode != instr::instrumentation::tinycfa) {
    throw error(
        "verifier: check_cfa_log requires a Tiny-CFA-instrumented program "
        "(DIALED programs are verified by abstract execution)");
  }
  return cfa_walker(fw, report).run();
}

cfa_result check_cfa_log(const instr::linked_program& prog,
                         const report_view& report) {
  const firmware_artifact fw(prog);
  return check_cfa_log(fw, report);
}

}  // namespace dialed::verifier
