// A minimal single-threaded epoll reactor: the event-demultiplexing core
// of the attestation service. One thread owns the reactor and runs
// poll(); every registered fd carries a handler pointer that is invoked
// with the ready events. Level-triggered — handlers read/write until
// EAGAIN anyway for throughput, and level-triggering means a handler that
// leaves bytes behind (backpressure pause, bounded work per tick) is
// re-notified instead of wedging, which is the property the per-
// connection backpressure design leans on.
//
// Cross-thread wakeups (the verify dispatcher finishing a batch, a signal
// handler requesting shutdown) go through wake(): an eventfd registered
// internally; write(2) to it is async-signal-safe, so wake() may be
// called from anywhere, including signal context.
//
// Ownership: the reactor never owns handlers or fds — registration is
// borrowing. Handlers deregister (and close) their fd themselves;
// deregistering a fd whose events are still queued in the current
// dispatch round is safe (the round looks handlers up by fd and skips
// ones that vanished). The server defers actual close(2) to the end of
// the round so a closed fd's number cannot be reused (by accept) and
// aliased by a stale queued event mid-round.
#ifndef DIALED_NET_REACTOR_H
#define DIALED_NET_REACTOR_H

#include <cstdint>
#include <map>

namespace dialed::net {

class reactor_handler {
 public:
  virtual ~reactor_handler() = default;
  /// `events` is the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  virtual void on_event(std::uint32_t events) = 0;
};

class reactor {
 public:
  reactor();
  ~reactor();

  reactor(const reactor&) = delete;
  reactor& operator=(const reactor&) = delete;

  void add(int fd, std::uint32_t events, reactor_handler* h);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  bool watching(int fd) const { return handlers_.count(fd) != 0; }

  /// Wait up to `timeout_ms` (-1 = forever) and dispatch ready events.
  /// Returns the number of fd events dispatched (0 on timeout). Must be
  /// called from the owning thread only.
  int poll(int timeout_ms);

  /// Make a running/future poll() return promptly. Thread- AND
  /// async-signal-safe.
  void wake();

  /// True when a wake() arrived since the last poll that observed one.
  /// poll() drains the eventfd; this flag tells the loop to run its
  /// cross-thread work (completion queues, stop checks).
  bool take_wake() {
    const bool w = woke_;
    woke_ = false;
    return w;
  }

 private:
  int epfd_ = -1;
  int wakefd_ = -1;
  bool woke_ = false;
  std::map<int, reactor_handler*> handlers_;
};

}  // namespace dialed::net

#endif  // DIALED_NET_REACTOR_H
