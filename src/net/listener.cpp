#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <cerrno>
#include <cstring>

namespace dialed::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw error("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    throw error("net: not an IPv4 address: " + addr);
  }
  return sa;
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

int listen_tcp(const std::string& addr, std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(tcp)");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const auto sa = make_addr(addr, port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    throw_errno("bind " + addr + ":" + std::to_string(port));
  }
  if (listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

int bind_udp(const std::string& addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(udp)");
  const auto sa = make_addr(addr, port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    throw_errno("bind udp " + addr + ":" + std::to_string(port));
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

int accept_connection(int listen_fd) {
  const int fd =
      accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return -1;  // EAGAIN / transient aborts: caller retries
  set_nodelay(fd);
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(tcp)");
  const auto sa = make_addr(host, port);
  if (timeout_ms <= 0) {
    if (connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
        0) {
      ::close(fd);
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
  } else {
    // Non-blocking connect bounded by poll, then back to blocking mode
    // (the client library is a plain blocking API).
    try {
      set_nonblocking(fd);
    } catch (...) {
      ::close(fd);
      throw;
    }
    if (connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
            0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
    pollfd p{fd, POLLOUT, 0};
    int r;
    do {
      r = ::poll(&p, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (r <= 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      ::close(fd);
      if (r == 0) {
        throw timeout_error("net: connect " + host + ":" +
                            std::to_string(port) + ": timed out after " +
                            std::to_string(timeout_ms) + "ms");
      }
      errno = soerr != 0 ? soerr : errno;
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
      ::close(fd);
      throw_errno("fcntl(blocking)");
    }
  }
  set_nodelay(fd);
  return fd;
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
}

int udp_socket() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(udp)");
  return fd;
}

void send_udp_to(int fd, const std::string& host, std::uint16_t port,
                 std::span<const std::uint8_t> datagram) {
  const auto sa = make_addr(host, port);
  const auto n =
      sendto(fd, datagram.data(), datagram.size(), 0,
             reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (n < 0 || static_cast<std::size_t>(n) != datagram.size()) {
    throw_errno("sendto " + host + ":" + std::to_string(port));
  }
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::send(fd, bytes.data() + off, bytes.size() - off,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw timeout_error("net: send: timed out");
      }
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace dialed::net
