#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.h"

namespace dialed::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw error(std::string("net: ") + what + ": " + std::strerror(errno));
}

}  // namespace

reactor::reactor() {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw_errno("epoll_create1");
  wakefd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakefd_ < 0) {
    ::close(epfd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    ::close(wakefd_);
    ::close(epfd_);
    throw_errno("epoll_ctl(wakefd)");
  }
}

reactor::~reactor() {
  if (wakefd_ >= 0) ::close(wakefd_);
  if (epfd_ >= 0) ::close(epfd_);
}

void reactor::add(int fd, std::uint32_t events, reactor_handler* h) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  handlers_[fd] = h;
}

void reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void reactor::remove(int fd) {
  // DEL before close: the fd must leave the interest list while it is
  // still a valid descriptor.
  (void)epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

int reactor::poll(int timeout_ms) {
  std::array<epoll_event, 64> events;
  int n;
  do {
    n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                   timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wakefd_) {
      std::uint64_t v;
      while (::read(wakefd_, &v, sizeof v) > 0) {
      }
      woke_ = true;
      continue;
    }
    // A handler earlier in this round may have deregistered this fd.
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    it->second->on_event(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  return dispatched;
}

void reactor::wake() {
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; a full counter (EAGAIN) already means
  // a wake is pending, so the result is deliberately ignored.
  [[maybe_unused]] const auto r = ::write(wakefd_, &one, sizeof one);
}

}  // namespace dialed::net
