// attest_server: the DIALED attestation service front-end. One reactor
// thread multiplexes
//
//   * a TCP listener for the length-prefixed binary protocol (challenge
//     requests + report frames) AND one-shot HTTP scrapes (/metrics,
//     /healthz, /debug/traces) — protocol sniffed per connection (see
//     connection.h);
//   * a UDP socket for connectionless fire-and-forget report ingest
//     (one raw wire frame per datagram, no response);
//   * the batcher's completion queue (verification happens on the
//     batcher's dispatcher thread + the hub's worker pool — the reactor
//     never blocks on crypto).
//
// Backpressure, two levels:
//   * per-connection write-queue watermarks (connection.h) — a peer that
//     won't drain responses stops being read;
//   * a global ingest cap: when frames accepted-but-unverified exceed
//     `max_pending_frames`, EVERY connection's reads pause until the
//     backlog drains to half — memory stays bounded no matter how many
//     clients push.
//
// Closing a connection is always deferred to the end of the reactor turn
// (doomed list): epoll may still hold queued events for the fd this
// round, and closing it early would let accept() reuse the number and
// alias them onto a different peer.
//
// Thread-safety surface: run() (or start()'s internal thread) owns all
// connection state. request_stop() is thread- AND async-signal-safe.
// stats(), tcp_port(), udp_port() are safe from any thread.
#ifndef DIALED_NET_SERVER_H
#define DIALED_NET_SERVER_H

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/batcher.h"
#include "net/connection.h"
#include "net/http_metrics.h"
#include "net/listener.h"
#include "store/fleet_store.h"

namespace dialed::net {

struct server_config {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral
  bool enable_udp = true;
  std::uint16_t udp_port = 0;  ///< 0 = ephemeral
  batcher_config batching;
  connection_limits limits;
  /// Global ingest cap: frames accepted but not yet verified before all
  /// reads pause. Resumes at half.
  std::size_t max_pending_frames = 4096;
  std::size_t max_connections = 1024;
  /// Cadence of the write-stall/idle timeout sweep (and traffic-counter
  /// fold into the atomic stats).
  std::uint32_t sweep_interval_ms = 200;
};

class attest_server final : public connection_host {
 public:
  /// `hub` is any hub_like — a bare verifier_hub or a partition_router
  /// (the server is how `--partitions N` serves unmodified). `stores`
  /// (optional) powers /healthz depth — one entry per backing store, in
  /// partition order; the hub(s) must already be wired to them as their
  /// persist sinks by the caller. `shippers` (optional, same indexing)
  /// powers the dialed_ship_* families and the standby half of /healthz
  /// — once any tracked follower latches ship_desync, /healthz answers
  /// 503. All must outlive the server. Binds the sockets immediately
  /// (throws dialed::error).
  attest_server(fleet::hub_like& hub, server_config cfg,
                std::vector<store::fleet_store*> stores = {},
                std::vector<const store::wal_shipper*> shippers = {});
  ~attest_server();  ///< stops and joins if still running

  attest_server(const attest_server&) = delete;
  attest_server& operator=(const attest_server&) = delete;

  /// Run the reactor loop on the calling thread until request_stop().
  void run();

  /// Run the reactor loop on an internal thread; returns once it is
  /// serving.
  void start();

  /// request_stop() + join the internal thread (no-op without start()).
  void stop();

  /// Thread- and async-signal-safe: usable from a SIGINT/SIGTERM handler.
  void request_stop();

  std::uint16_t tcp_port() const { return tcp_port_; }
  std::uint16_t udp_port() const { return udp_port_; }

  /// Snapshot of the service counters (atomics; safe from any thread).
  /// Live connections' traffic is folded in every sweep interval, so
  /// bytes may trail reality by up to sweep_interval_ms.
  server_stats stats() const;

  // ---- connection_host (reactor thread only) --------------------------
  void on_challenge_req(connection& c, const challenge_req& m) override;
  void on_report_frame(connection& c, byte_vec frame) override;
  std::string handle_http(const http_request& req) override;
  void request_close(connection& c, close_reason why) override;

 private:
  struct member_handler final : reactor_handler {
    attest_server* srv = nullptr;
    void (attest_server::*fn)(std::uint32_t) = nullptr;
    void on_event(std::uint32_t events) override { (srv->*fn)(events); }
  };

  void on_accept(std::uint32_t events);
  void on_udp(std::uint32_t events);
  void deliver_completions();
  void check_backpressure();
  void sweep(std::chrono::steady_clock::time_point now);
  void fold_traffic(connection& c);
  void process_doomed();

  fleet::hub_like& hub_;
  server_config cfg_;
  std::vector<store::fleet_store*> stores_;
  std::vector<const store::wal_shipper*> shippers_;

  int listen_fd_ = -1;
  int udp_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::uint16_t udp_port_ = 0;

  reactor loop_;
  batcher batcher_;  ///< after loop_: its dispatcher wakes the reactor
  member_handler accept_handler_;
  member_handler udp_handler_;

  // Reactor-thread-only state.
  std::map<int, std::unique_ptr<connection>> conns_;         ///< by fd
  std::map<std::uint64_t, connection*> conns_by_id_;
  std::vector<int> doomed_;  ///< fds to tear down at end of turn
  std::uint64_t next_conn_id_ = 1;  ///< 0 is the UDP pseudo-connection
  bool ingest_paused_ = false;
  bool sweeps_enabled_ = false;
  std::chrono::steady_clock::time_point last_sweep_;

  // Counters (relaxed atomics; see stats()).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> tcp_frames_{0};
  std::atomic<std::uint64_t> udp_datagrams_{0};
  std::atomic<std::uint64_t> challenge_reqs_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> dropped_conn_gone_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::uint64_t> closed_stalled_{0};
  std::atomic<std::uint64_t> closed_idle_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};

  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace dialed::net

#endif  // DIALED_NET_SERVER_H
