// Socket plumbing for the attestation service: non-blocking TCP listen
// sockets, the connectionless UDP ingest socket, and the small helpers
// (local port discovery, full-write loops) the rest of src/net leans on.
// Everything throws dialed::error with the errno string on failure —
// socket setup problems are configuration errors, not traffic.
#ifndef DIALED_NET_LISTENER_H
#define DIALED_NET_LISTENER_H

#include <cstdint>
#include <span>
#include <string>

#include "common/error.h"

namespace dialed::net {

/// A blocking socket operation exceeded its deadline. Typed so callers
/// (dialed-attest, tests) can tell "the host is dead/slow" from protocol
/// or transport failures and report it as such instead of hanging.
class timeout_error : public error {
 public:
  using error::error;
};

/// Create a non-blocking, CLOEXEC TCP listen socket bound to addr:port
/// (port 0 = kernel-assigned ephemeral; SO_REUSEADDR set). Returns the
/// fd; the caller owns it.
int listen_tcp(const std::string& addr, std::uint16_t port,
               int backlog = 128);

/// Create a non-blocking, CLOEXEC UDP socket bound to addr:port
/// (port 0 = ephemeral).
int bind_udp(const std::string& addr, std::uint16_t port);

/// The port a bound socket actually landed on (resolves ephemeral 0).
std::uint16_t local_port(int fd);

/// Accept one pending connection: non-blocking, CLOEXEC, TCP_NODELAY.
/// Returns -1 when the queue is drained (EAGAIN) or on a transient
/// per-connection error (ECONNABORTED etc. — the listener stays up).
int accept_connection(int listen_fd);

/// Blocking connect to host:port with TCP_NODELAY (the client library's
/// entry point). `timeout_ms` bounds the connect (timeout_error on
/// expiry); 0 = OS default.
int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms = 0);

/// Bound every subsequent blocking read/write on `fd` to `timeout_ms`
/// (SO_RCVTIMEO/SO_SNDTIMEO). 0 clears the bound. Reads and writes that
/// expire surface as timeout_error from recv paths and write_all.
void set_io_timeout(int fd, int timeout_ms);

/// Create an unconnected UDP socket for send_udp_to (client side).
int udp_socket();

/// Send one datagram to host:port (fire-and-forget ingest).
void send_udp_to(int fd, const std::string& host, std::uint16_t port,
                 std::span<const std::uint8_t> datagram);

/// Write the whole buffer to a BLOCKING fd (client side; loops over
/// partial writes, throws on error — timeout_error when an fd bounded by
/// set_io_timeout expires mid-write).
void write_all(int fd, std::span<const std::uint8_t> bytes);

}  // namespace dialed::net

#endif  // DIALED_NET_LISTENER_H
