// Adaptive frame batching for the attestation service: arriving report
// frames are coalesced into verify_batch calls, trading latency against
// throughput with two knobs —
//
//   batch_max        flush when this many frames have accumulated
//                    (throughput: amortize batch fan-out overhead)
//   batch_latency_ms flush when the OLDEST pending frame has waited this
//                    long (latency bound: no frame waits forever for a
//                    batch to fill)
//
// plus the adaptive rule that makes light load fast WITHOUT burning the
// latency budget: when the verify dispatcher is idle, pending frames
// flush at the end of the current reactor turn (so frames arriving in
// one readiness burst still coalesce), and only while a batch is already
// verifying do new arrivals accumulate toward batch_max/latency. Under
// load the dispatcher is always busy, so batches grow toward batch_max;
// idle, a lone frame's latency is one reactor turn.
//
// Threading: enqueue/maybe_flush/timeout_ms/drain_completions are
// reactor-thread-only. One internal dispatcher thread pulls flushed
// batches and runs hub.verify_batch (which fans out over the hub's own
// worker pool); finished results come back through drain_completions
// after the dispatcher wake()s the reactor. The reactor never blocks on
// verification — that is the point.
#ifndef DIALED_NET_BATCHER_H
#define DIALED_NET_BATCHER_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/hub_like.h"
#include "net/reactor.h"
#include "obs/obs.h"

namespace dialed::net {

struct batcher_config {
  std::size_t batch_max = 64;
  std::uint32_t batch_latency_ms = 5;
};

/// One verified frame's way home: which connection gets the response
/// (conn_id 0 = fire-and-forget ingest, no response owed).
struct completion {
  std::uint64_t conn_id = 0;
  fleet::attest_result result;
};

/// Batch-size histogram: bucket i counts batches of size in
/// (2^(i-1), 2^i]; the last bucket is unbounded.
constexpr std::size_t batch_hist_buckets = 11;

/// Why a batch left the pending buffer: it filled (size), the oldest
/// frame hit the latency bound (deadline), or the dispatcher was idle at
/// end of turn (idle — the adaptive fast path under light load).
enum class flush_cause : std::uint8_t { size, deadline, idle };
constexpr std::size_t flush_cause_count = 3;
const char* to_string(flush_cause c);

class batcher {
 public:
  batcher(fleet::hub_like& hub, batcher_config cfg, reactor& r);
  ~batcher();

  batcher(const batcher&) = delete;
  batcher& operator=(const batcher&) = delete;

  // ---- reactor thread ------------------------------------------------

  void enqueue(std::uint64_t conn_id, byte_vec frame);

  /// Apply the flush policy; call once per reactor turn.
  void maybe_flush(std::chrono::steady_clock::time_point now);

  /// Epoll timeout needed to honor the latency bound: ms until the
  /// oldest pending frame's deadline, or -1 when nothing is pending.
  int timeout_ms(std::chrono::steady_clock::time_point now) const;

  std::vector<completion> drain_completions();

  /// Frames accepted but not yet verified (pending + queued + in the
  /// batch being verified) — the ingest-side backpressure signal.
  std::size_t backlog() const {
    return backlog_.load(std::memory_order_relaxed);
  }

  // ---- any thread ----------------------------------------------------

  struct stats {
    std::uint64_t batches = 0;
    std::uint64_t batch_frames = 0;
    std::uint64_t backlog = 0;  ///< gauge
    std::array<std::uint64_t, batch_hist_buckets> batch_size_hist{};
    /// Batches flushed, by cause (sums to `batches`).
    std::array<std::uint64_t, flush_cause_count> flush_by_cause{};
    /// Per-frame wait from enqueue to the start of its verify_batch call
    /// (pending buffer + job queue time — the batching latency cost).
    obs::histogram_snapshot queue_wait;
  };
  stats snapshot() const;

 private:
  struct batch {
    std::vector<std::uint64_t> conn_ids;
    std::vector<byte_vec> frames;
    std::vector<std::uint64_t> enqueued_ns;  ///< obs::now_ns at enqueue
  };

  void flush_pending(flush_cause cause);
  void dispatcher_loop();

  fleet::hub_like& hub_;
  batcher_config cfg_;
  reactor& reactor_;

  // Reactor-thread state.
  batch pending_;
  std::chrono::steady_clock::time_point oldest_;

  // Dispatcher handoff.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<batch> jobs_;
  std::vector<completion> completions_;
  bool stop_ = false;
  std::atomic<bool> busy_{false};

  std::atomic<std::size_t> backlog_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_frames_{0};
  std::array<std::atomic<std::uint64_t>, batch_hist_buckets> hist_{};
  std::array<std::atomic<std::uint64_t>, flush_cause_count> flushes_{};
  obs::latency_histogram queue_wait_;

  std::thread dispatcher_;
};

}  // namespace dialed::net

#endif  // DIALED_NET_BATCHER_H
