#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/http_metrics.h"

namespace dialed::net {

connection::connection(int fd, std::uint64_t id, connection_host& host,
                       reactor& loop, const connection_limits& limits)
    : fd_(fd), id_(id), host_(host), loop_(loop), limits_(limits) {
  const auto now = std::chrono::steady_clock::now();
  last_activity_ = now;
  last_write_progress_ = now;
  registered_events_ = EPOLLIN;
  loop_.add(fd_, registered_events_, this);
}

connection::~connection() {
  if (loop_.watching(fd_)) loop_.remove(fd_);
  ::close(fd_);
}

void connection::on_event(std::uint32_t events) {
  if (close_requested_) return;
  if (events & EPOLLERR) {
    host_.request_close(*this, close_reason::io_error);
    return;
  }
  if ((events & EPOLLIN) && want_read()) do_read();
  if (close_requested_) return;
  if (events & EPOLLOUT) flush_writes();
  if (close_requested_) return;
  // HUP with nothing left to read or write: the peer is gone.
  if ((events & EPOLLHUP) && queued_ == 0) {
    host_.request_close(*this, close_reason::peer_eof);
  }
}

void connection::do_read() {
  std::uint8_t buf[16 * 1024];
  while (want_read()) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_in += static_cast<std::uint64_t>(n);
      last_activity_ = std::chrono::steady_clock::now();
      std::span<const std::uint8_t> got(buf, static_cast<std::size_t>(n));
      if (mode_ == mode::sniffing) {
        http_buf_.insert(http_buf_.end(), got.begin(), got.end());
        if (http_buf_.size() < 4) continue;
        const bool http =
            std::memcmp(http_buf_.data(), "GET ", 4) == 0 ||
            std::memcmp(http_buf_.data(), "HEAD", 4) == 0 ||
            std::memcmp(http_buf_.data(), "POST", 4) == 0 ||
            std::memcmp(http_buf_.data(), "PUT ", 4) == 0 ||
            std::memcmp(http_buf_.data(), "DELE", 4) == 0 ||
            std::memcmp(http_buf_.data(), "OPTI", 4) == 0 ||
            std::memcmp(http_buf_.data(), "PATC", 4) == 0;
        if (http) {
          mode_ = mode::http;
          dispatch_http();
        } else {
          mode_ = mode::binary;
          framer_.feed(http_buf_);
          http_buf_.clear();
          http_buf_.shrink_to_fit();
          dispatch_binary();
        }
      } else if (mode_ == mode::binary) {
        if (!framer_.feed(got)) {
          host_.request_close(*this, close_reason::framing_error);
          return;
        }
        dispatch_binary();
      } else {
        http_buf_.insert(http_buf_.end(), got.begin(), got.end());
        dispatch_http();
      }
      continue;
    }
    if (n == 0) {
      read_closed_ = true;
      if (queued_ > 0) {
        // Finish writing what the peer is owed, then close.
        close_after_flush_ = true;
        after_flush_why_ = close_reason::peer_eof;
        update_interest();
      } else {
        host_.request_close(*this, close_reason::peer_eof);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    host_.request_close(*this, close_reason::io_error);
    return;
  }
}

void connection::dispatch_binary() {
  while (!close_requested_ && framer_.next(frame_)) {
    if (is_svc_message(frame_)) {
      const auto req = decode_challenge_req(frame_);
      if (!req) {
        // The only request-direction control message is challenge_req;
        // anything else under the service magic is a protocol violation.
        host_.request_close(*this, close_reason::framing_error);
        return;
      }
      host_.on_challenge_req(*this, *req);
    } else {
      host_.on_report_frame(*this, std::move(frame_));
      frame_.clear();
    }
  }
  if (!close_requested_ &&
      framer_.error() != proto::proto_error::none) {
    host_.request_close(*this, close_reason::framing_error);
  }
}

void connection::dispatch_http() {
  const auto req =
      parse_http_request(http_buf_, limits_.http_max_header);
  if (req.too_large) {
    send_and_close(render_http_response(431, "text/plain",
                                        "header too large\n"));
    return;
  }
  if (!req.complete) return;  // keep reading
  if (req.malformed) {
    host_.request_close(*this, close_reason::framing_error);
    return;
  }
  send_and_close(host_.handle_http(req));
}

void connection::send(std::span<const std::uint8_t> bytes) {
  if (close_requested_ || bytes.empty()) return;
  out_.emplace_back(bytes.begin(), bytes.end());
  queued_ += bytes.size();
  flush_writes();
}

void connection::send_frame(std::span<const std::uint8_t> frame) {
  if (close_requested_) return;
  byte_vec framed;
  proto::append_stream_frame(framed, frame);
  queued_ += framed.size();
  out_.push_back(std::move(framed));
  flush_writes();
}

void connection::send_and_close(std::span<const std::uint8_t> bytes) {
  send(bytes);
  if (close_requested_) return;
  close_after_flush_ = true;
  after_flush_why_ = close_reason::http_done;
  if (queued_ == 0) {
    host_.request_close(*this, after_flush_why_);
  } else {
    update_interest();
  }
}

void connection::send_and_close(const std::string& bytes) {
  send_and_close(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

void connection::flush_writes() {
  while (!out_.empty()) {
    const byte_vec& front = out_.front();
    const ssize_t n = ::send(fd_, front.data() + out_head_,
                             front.size() - out_head_, MSG_NOSIGNAL);
    if (n > 0) {
      out_head_ += static_cast<std::size_t>(n);
      queued_ -= static_cast<std::size_t>(n);
      bytes_out += static_cast<std::uint64_t>(n);
      const auto now = std::chrono::steady_clock::now();
      last_write_progress_ = now;
      last_activity_ = now;
      if (out_head_ == front.size()) {
        out_.pop_front();
        out_head_ = 0;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    host_.request_close(*this, close_reason::io_error);
    return;
  }
  if (out_.empty() && close_after_flush_) {
    host_.request_close(*this, after_flush_why_);
    return;
  }
  // Write-queue watermarks: a peer that won't drain responses must not
  // keep feeding work.
  if (!paused_ && queued_ >= limits_.write_high_water) {
    paused_ = true;
    ++pause_events;
  } else if (paused_ && queued_ <= limits_.write_low_water) {
    paused_ = false;
  }
  update_interest();
}

void connection::pause_ingest() {
  if (ingest_paused_ || close_requested_) return;
  ingest_paused_ = true;
  ++pause_events;
  update_interest();
}

void connection::resume_ingest() {
  if (!ingest_paused_ || close_requested_) return;
  ingest_paused_ = false;
  update_interest();
}

connection::sweep_verdict connection::sweep(
    std::chrono::steady_clock::time_point now) const {
  if (close_requested_) return {};
  if (queued_ > 0 && limits_.write_stall_ms != 0 &&
      now - last_write_progress_ >=
          std::chrono::milliseconds(limits_.write_stall_ms)) {
    return {true, close_reason::write_stalled};
  }
  if (limits_.idle_timeout_ms != 0 && queued_ == 0 &&
      now - last_activity_ >=
          std::chrono::milliseconds(limits_.idle_timeout_ms)) {
    return {true, close_reason::idle};
  }
  return {};
}

void connection::update_interest() {
  if (close_requested_) return;
  std::uint32_t events = 0;
  if (want_read()) events |= EPOLLIN;
  if (!out_.empty()) events |= EPOLLOUT;
  if (events != registered_events_) {
    loop_.modify(fd_, events);
    registered_events_ = events;
  }
}

bool connection::want_read() const {
  return !read_closed_ && !close_requested_ && !close_after_flush_ &&
         !paused_ && !ingest_paused_;
}

void connection::mark_close_requested() { close_requested_ = true; }

}  // namespace dialed::net
