#include "net/batcher.h"

#include <algorithm>

namespace dialed::net {

namespace {

std::size_t hist_bucket(std::size_t n) {
  std::size_t b = 0;
  std::size_t cap = 1;
  while (b + 1 < batch_hist_buckets && n > cap) {
    cap <<= 1;
    ++b;
  }
  return b;
}

}  // namespace

const char* to_string(flush_cause c) {
  switch (c) {
    case flush_cause::size:
      return "size";
    case flush_cause::deadline:
      return "deadline";
    case flush_cause::idle:
      return "idle";
  }
  return "unknown";
}

batcher::batcher(fleet::hub_like& hub, batcher_config cfg, reactor& r)
    : hub_(hub), cfg_(cfg), reactor_(r) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

batcher::~batcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

void batcher::enqueue(std::uint64_t conn_id, byte_vec frame) {
  if (pending_.frames.empty()) {
    oldest_ = std::chrono::steady_clock::now();
  }
  pending_.conn_ids.push_back(conn_id);
  pending_.frames.push_back(std::move(frame));
  pending_.enqueued_ns.push_back(obs::now_ns());
  backlog_.fetch_add(1, std::memory_order_relaxed);
}

void batcher::maybe_flush(std::chrono::steady_clock::time_point now) {
  while (pending_.frames.size() >= cfg_.batch_max) {
    flush_pending(flush_cause::size);
  }
  if (pending_.frames.empty()) return;
  const bool idle = [&] {
    if (busy_.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lk(mu_);
    return jobs_.empty();
  }();
  const bool deadline =
      now - oldest_ >= std::chrono::milliseconds(cfg_.batch_latency_ms);
  if (idle || deadline) {
    // Deadline wins the label when both hold: the batch was already owed
    // to the latency bound regardless of dispatcher state.
    flush_pending(deadline ? flush_cause::deadline : flush_cause::idle);
  }
}

int batcher::timeout_ms(std::chrono::steady_clock::time_point now) const {
  if (pending_.frames.empty()) return -1;
  const auto deadline =
      oldest_ + std::chrono::milliseconds(cfg_.batch_latency_ms);
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  // +1: round up so the wakeup lands past the deadline, not just short
  // of it (a 0.4 ms remainder would otherwise spin).
  return static_cast<int>(ms) + 1;
}

void batcher::flush_pending(flush_cause cause) {
  if (pending_.frames.empty()) return;
  batch b;
  const std::size_t take =
      std::min(pending_.frames.size(), cfg_.batch_max);
  if (take == pending_.frames.size()) {
    b = std::move(pending_);
    pending_ = {};
  } else {
    b.conn_ids.assign(pending_.conn_ids.begin(),
                      pending_.conn_ids.begin() + static_cast<long>(take));
    b.frames.assign(std::make_move_iterator(pending_.frames.begin()),
                    std::make_move_iterator(pending_.frames.begin() +
                                            static_cast<long>(take)));
    b.enqueued_ns.assign(
        pending_.enqueued_ns.begin(),
        pending_.enqueued_ns.begin() + static_cast<long>(take));
    pending_.conn_ids.erase(
        pending_.conn_ids.begin(),
        pending_.conn_ids.begin() + static_cast<long>(take));
    pending_.frames.erase(
        pending_.frames.begin(),
        pending_.frames.begin() + static_cast<long>(take));
    pending_.enqueued_ns.erase(
        pending_.enqueued_ns.begin(),
        pending_.enqueued_ns.begin() + static_cast<long>(take));
    oldest_ = std::chrono::steady_clock::now();
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_frames_.fetch_add(b.frames.size(), std::memory_order_relaxed);
  hist_[hist_bucket(b.frames.size())].fetch_add(1,
                                                std::memory_order_relaxed);
  flushes_[static_cast<std::size_t>(cause)].fetch_add(
      1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_.push_back(std::move(b));
  }
  cv_.notify_one();
}

std::vector<completion> batcher::drain_completions() {
  std::vector<completion> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.swap(completions_);
  }
  return out;
}

batcher::stats batcher::snapshot() const {
  stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_frames = batch_frames_.load(std::memory_order_relaxed);
  s.backlog = backlog_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < batch_hist_buckets; ++i) {
    s.batch_size_hist[i] = hist_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < flush_cause_count; ++i) {
    s.flush_by_cause[i] = flushes_[i].load(std::memory_order_relaxed);
  }
  s.queue_wait = queue_wait_.snapshot();
  return s;
}

void batcher::dispatcher_loop() {
  for (;;) {
    batch b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ with nothing left to verify
      b = std::move(jobs_.front());
      jobs_.pop_front();
      busy_.store(true, std::memory_order_release);
    }
    // Queue wait ends here: the frame is about to be verified. Recording
    // on the dispatcher thread keeps the reactor's flush path clean.
    const auto start = obs::now_ns();
    for (const auto enq : b.enqueued_ns) {
      queue_wait_.record(start > enq ? start - enq : 0);
    }
    auto results = hub_.verify_batch(b.frames);
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < results.size(); ++i) {
        completions_.push_back({b.conn_ids[i], std::move(results[i])});
      }
      busy_.store(false, std::memory_order_release);
    }
    backlog_.fetch_sub(b.frames.size(), std::memory_order_relaxed);
    reactor_.wake();
  }
}

}  // namespace dialed::net
