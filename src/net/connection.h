// One accepted TCP connection of the attestation service: a small state
// machine owned by the server and driven by the reactor.
//
// Protocol sniffing: the service multiplexes its binary framing AND the
// HTTP observability endpoints on one port. The first four bytes decide:
// "GET "/"HEAD"/"POST"/"PUT " switch the connection to HTTP mode;
// anything else is the [u32 len | frame] binary stream. The sniff is
// unambiguous because those ASCII method prefixes, read as a LE32 length
// prefix, all exceed proto::max_stream_frame_bytes — no legal binary
// stream can start with them.
//
// Write path: responses are queued (deque of buffers + head offset) and
// flushed with partial-write/EAGAIN handling; EPOLLOUT interest exists
// only while the queue is non-empty. When the queue crosses
// `write_high_water` the connection stops reading (EPOLLIN off) — a peer
// that won't drain its responses must not keep feeding work — and
// resumes below `write_low_water`. A queue that makes no progress for
// `write_stall_ms` is a dead peer: the connection is closed.
//
// The connection never closes its own fd mid-round; it asks the host to,
// and the host defers the close(2) to the end of the reactor turn (see
// reactor.h on fd aliasing).
#ifndef DIALED_NET_CONNECTION_H
#define DIALED_NET_CONNECTION_H

#include <chrono>
#include <deque>

#include "net/framer.h"
#include "net/http_metrics.h"
#include "net/reactor.h"

namespace dialed::net {

class connection;

enum class close_reason : std::uint8_t {
  peer_eof,       ///< orderly shutdown from the peer
  io_error,       ///< read/write error (reset, broken pipe)
  framing_error,  ///< poisoned stream / malformed control message
  http_done,      ///< HTTP response fully written (Connection: close)
  write_stalled,  ///< peer stopped draining responses
  idle,           ///< no traffic within the idle timeout
  server_stop,
};

/// What the server gives every connection: frame/request dispatch and
/// deferred close. Implemented by attest_server.
class connection_host {
 public:
  virtual ~connection_host() = default;
  virtual void on_challenge_req(connection& c, const challenge_req& m) = 0;
  /// Ownership of the frame bytes moves to the host (into the batcher).
  virtual void on_report_frame(connection& c, byte_vec frame) = 0;
  /// Render the full HTTP response (status line through body).
  virtual std::string handle_http(const http_request& req) = 0;
  /// Schedule the connection for close at end of the reactor turn.
  virtual void request_close(connection& c, close_reason why) = 0;
};

struct connection_limits {
  std::size_t write_high_water = 256 * 1024;
  std::size_t write_low_water = 64 * 1024;
  std::uint32_t write_stall_ms = 5000;
  std::uint32_t idle_timeout_ms = 0;  ///< 0 = never
  std::size_t http_max_header = 8 * 1024;
  /// SO_SNDBUF for accepted sockets (0 = kernel default). Bounding the
  /// kernel's own buffering is what makes the user-space write queue —
  /// and therefore the high-water/stall machinery — actually engage
  /// against slow readers instead of hiding behind auto-tuned wmem.
  std::size_t sndbuf = 0;
};

class connection final : public reactor_handler {
 public:
  connection(int fd, std::uint64_t id, connection_host& host,
             reactor& loop, const connection_limits& limits);
  ~connection() override;  ///< closes the fd

  connection(const connection&) = delete;
  connection& operator=(const connection&) = delete;

  void on_event(std::uint32_t events) override;

  /// Queue `bytes` and flush as far as the socket allows. Applies the
  /// write high-water pause when crossed.
  void send(std::span<const std::uint8_t> bytes);

  /// Queue a response frame with its stream length prefix.
  void send_frame(std::span<const std::uint8_t> frame);

  /// Send, then close once the queue drains (the HTTP path).
  void send_and_close(std::span<const std::uint8_t> bytes);
  void send_and_close(const std::string& bytes);

  /// Called by the host when it accepts a request_close: freezes the
  /// state machine until the deferred teardown at end of turn.
  void mark_close_requested();

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }
  std::size_t queued_bytes() const { return queued_; }
  bool reading_paused() const { return paused_; }
  bool close_requested() const { return close_requested_; }

  /// Backpressure from the ingest side (global backlog cap): pause/resume
  /// EPOLLIN independently of the write-queue watermark.
  void pause_ingest();
  void resume_ingest();

  /// Timeout sweep, called by the server; returns the reason to close
  /// this connection now, if any.
  struct sweep_verdict {
    bool close = false;
    close_reason why = close_reason::idle;
  };
  sweep_verdict sweep(std::chrono::steady_clock::time_point now) const;

  // Cumulative per-connection traffic counters, read by the server when
  // aggregating stats (single-threaded: reactor only).
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t pause_events = 0;  ///< high-water + ingest pauses entered
  // Portions already folded into the server's atomic totals (server-
  // managed; lets live connections contribute to /metrics incrementally).
  std::uint64_t folded_in = 0;
  std::uint64_t folded_out = 0;
  std::uint64_t folded_pauses = 0;

 private:
  enum class mode : std::uint8_t { sniffing, binary, http };

  void do_read();
  void flush_writes();
  void dispatch_binary();
  void dispatch_http();
  void update_interest();
  bool want_read() const;

  int fd_;
  std::uint64_t id_;
  connection_host& host_;
  reactor& loop_;
  const connection_limits& limits_;

  mode mode_ = mode::sniffing;
  stream_framer framer_;
  byte_vec http_buf_;   ///< sniff bytes, then HTTP request accumulation
  byte_vec frame_;      ///< scratch for framer_.next
  bool read_closed_ = false;
  bool close_requested_ = false;
  bool close_after_flush_ = false;
  close_reason after_flush_why_ = close_reason::http_done;
  bool paused_ = false;         ///< write-queue high-water pause
  bool ingest_paused_ = false;  ///< global-backlog pause
  std::uint32_t registered_events_ = 0;

  std::deque<byte_vec> out_;
  std::size_t out_head_ = 0;  ///< consumed bytes of out_.front()
  std::size_t queued_ = 0;

  std::chrono::steady_clock::time_point last_activity_;
  std::chrono::steady_clock::time_point last_write_progress_;
};

}  // namespace dialed::net

#endif  // DIALED_NET_CONNECTION_H
