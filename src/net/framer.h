// Stream framing for the attestation service: incremental reassembly of
// the `[u32 len | frame bytes]` transport framing (src/proto/wire.h), and
// the codec for the service's own small control messages.
//
// Reassembly (the stream-split bugfix)
// ------------------------------------
// `decode_frame_into` requires a complete frame; a TCP read hands back
// whatever the kernel has — half a length prefix, three frames and a
// tail, one byte. `stream_framer` buffers arbitrary splits and yields
// whole frames in order. A length prefix larger than
// proto::max_stream_frame_bytes is a typed bad_length and poisons the
// framer: there is no resync point in a length-prefixed stream, so the
// connection must be dropped — crucially, the oversized prefix is
// rejected BEFORE any buffer grows to meet it, so garbage prefixes never
// buy an attacker an allocation.
//
// Service messages
// ----------------
// Report frames travel as-is (they carry their own 0xD1A7 magic). The
// request/response control plane is three fixed-size messages under a
// distinct magic, so a router can tell them apart from report frames by
// the first two bytes:
//
//   challenge_req  [magic 0x5ED1 | type 1 | device_id u32]            = 7 B
//   challenge_resp [magic | type 2 | error u8 | note u8 | device u32
//                   | seq u32 | nonce 16]                             = 29 B
//   attest_resp    [magic | type 3 | error u8 | accepted u8
//                   | device u32 | seq u32]                           = 13 B
//
// All integers little-endian, like the wire format they ride beside.
// attest_resp carries the frame's device/seq so a pipelining client can
// match responses to submissions even when the server's adaptive batching
// completes them out of order.
#ifndef DIALED_NET_FRAMER_H
#define DIALED_NET_FRAMER_H

#include <optional>

#include "proto/wire.h"

namespace dialed::net {

/// First two bytes of a service control message (LE on the wire), chosen
/// so it can never be confused with a report frame's 0xD1A7.
constexpr std::uint16_t svc_magic = 0x5ed1;

enum class svc_type : std::uint8_t {
  challenge_req = 1,
  challenge_resp = 2,
  attest_resp = 3,
};

struct challenge_req {
  std::uint32_t device_id = 0;
};

struct challenge_resp {
  proto::proto_error error = proto::proto_error::none;
  /// challenge_superseded when issuing evicted the oldest outstanding
  /// challenge (mirrors fleet::challenge_grant::note).
  proto::proto_error note = proto::proto_error::none;
  std::uint32_t device_id = 0;
  std::uint32_t seq = 0;
  std::array<std::uint8_t, 16> nonce{};
};

struct attest_resp {
  proto::proto_error error = proto::proto_error::none;
  bool accepted = false;
  std::uint32_t device_id = 0;
  std::uint32_t seq = 0;
};

byte_vec encode_challenge_req(const challenge_req& m);
byte_vec encode_challenge_resp(const challenge_resp& m);
byte_vec encode_attest_resp(const attest_resp& m);

/// True when `frame` starts with the service magic (vs a report frame).
bool is_svc_message(std::span<const std::uint8_t> frame);
/// nullopt when `frame` is not a well-formed message of that exact type
/// and size (a malformed control message is a protocol violation, not
/// something to limp past).
std::optional<challenge_req> decode_challenge_req(
    std::span<const std::uint8_t> frame);
std::optional<challenge_resp> decode_challenge_resp(
    std::span<const std::uint8_t> frame);
std::optional<attest_resp> decode_attest_resp(
    std::span<const std::uint8_t> frame);

/// Incremental reassembler for the length-prefixed stream framing. Feed
/// raw received bytes; pull complete frames. Single-owner (one per
/// connection / client socket), not thread-safe.
class stream_framer {
 public:
  /// Append raw stream bytes. Returns false (and consumes nothing) once
  /// the stream is poisoned by an oversized length prefix.
  bool feed(std::span<const std::uint8_t> bytes);

  /// Move the next complete frame into `frame` (capacity reused).
  /// Returns false when no complete frame is buffered — distinguish
  /// "waiting for more bytes" from a poisoned stream via error().
  bool next(byte_vec& frame);

  /// bad_length after an oversized length prefix; none otherwise.
  proto::proto_error error() const { return error_; }

  /// Bytes buffered but not yet consumed (observability/tests). Bounded
  /// by max_stream_frame_bytes + one read's worth of tail.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  byte_vec buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  proto::proto_error error_ = proto::proto_error::none;
};

}  // namespace dialed::net

#endif  // DIALED_NET_FRAMER_H
