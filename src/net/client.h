// Blocking client for the attestation service — the library behind
// `dialed-attest --connect` and the loopback integration tests. One
// instance owns one TCP connection speaking the length-prefixed framing
// of server.h.
//
// Two usage styles:
//   * request/response: get_challenge() / submit_report() each send one
//     message and block for its reply — the simple sequential loop;
//   * pipelined: send_report() many frames, then recv_result() for each.
//     The server's adaptive batching may complete them out of order;
//     responses carry device/seq for matching (attest_resp in framer.h).
//
// Errors are thrown as dialed::error (socket failure, peer close,
// protocol violation) — a client with a broken stream cannot limp on.
// Every blocking operation is DEADLINED: `timeout_ms` bounds the connect
// AND each subsequent read/write (net::timeout_error on expiry), so a
// dead or wedged host fails the call in bounded time instead of hanging
// it forever.
#ifndef DIALED_NET_CLIENT_H
#define DIALED_NET_CLIENT_H

#include <string>

#include "net/framer.h"

namespace dialed::net {

class attest_client {
 public:
  /// Connects immediately (throws dialed::error on failure,
  /// net::timeout_error on deadline). `timeout_ms` also bounds every
  /// later read/write on the connection; 0 = unbounded.
  attest_client(const std::string& host, std::uint16_t port,
                int timeout_ms = 5000);
  ~attest_client();

  attest_client(const attest_client&) = delete;
  attest_client& operator=(const attest_client&) = delete;

  /// Request a challenge for `device_id` and block for the grant.
  challenge_resp get_challenge(std::uint32_t device_id);

  /// Submit one report frame and block for its result.
  attest_resp submit_report(std::span<const std::uint8_t> frame);

  // ---- pipelined style -----------------------------------------------
  void send_report(std::span<const std::uint8_t> frame);
  attest_resp recv_result();

  /// Next complete frame off the stream (blocking). Throws on EOF or a
  /// poisoned stream. Exposed for tests that want raw access.
  byte_vec recv_frame();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  stream_framer framer_;
};

/// One-shot HTTP GET against the service's observability endpoints.
/// Returns the raw response (status line through body).
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms = 5000);

}  // namespace dialed::net

#endif  // DIALED_NET_CLIENT_H
