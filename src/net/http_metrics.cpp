#include "net/http_metrics.h"

#include <algorithm>

#include "proto/errors.h"

namespace dialed::net {

namespace {

void family(std::string& out, const char* name, const char* type,
            const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const char* name, std::uint64_t value,
            const std::string& labels = {}) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

http_request parse_http_request(std::span<const std::uint8_t> buf,
                                std::size_t max_header) {
  http_request req;
  static constexpr char term[] = "\r\n\r\n";
  const auto end = std::search(buf.begin(), buf.end(), term, term + 4);
  if (end == buf.end()) {
    req.too_large = buf.size() >= max_header;
    return req;
  }
  req.complete = true;
  // Request line: METHOD SP PATH SP VERSION
  const auto eol =
      std::find(buf.begin(), buf.end(), static_cast<std::uint8_t>('\r'));
  std::string line(buf.begin(), eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    req.malformed = true;
    return req;
  }
  req.method = line.substr(0, sp1);
  req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Scrapers may append a query string; route on the bare path.
  if (const auto q = req.path.find('?'); q != std::string::npos) {
    req.path.resize(q);
  }
  return req;
}

std::string render_http_response(int status,
                                 const std::string& content_type,
                                 const std::string& body,
                                 const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_text(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string strip_http_body(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  if (pos == std::string::npos) return response;
  return response.substr(0, pos + 4);
}

std::string render_metrics_body(
    const fleet::hub_stats& hub, const server_stats& net,
    std::span<const fleet::hub_stats> partitions,
    const store_metrics& store,
    std::span<const obs::pipeline_snapshot> pipelines,
    std::span<const store::ship_stats> ship,
    const build_info_metrics& build) {
  std::string out;
  out.reserve(8192);
  fleet::render_stats_prometheus(hub, out);
  fleet::render_partition_prometheus(partitions, out);
  fleet::render_stage_prometheus(pipelines, out);

  family(out, "dialed_net_connections_accepted_total", "counter",
         "TCP connections accepted.");
  sample(out, "dialed_net_connections_accepted_total",
         net.connections_accepted);
  family(out, "dialed_net_connections_open", "gauge",
         "TCP connections currently open.");
  sample(out, "dialed_net_connections_open", net.connections_open);
  family(out, "dialed_net_frames_total", "counter",
         "Report frames ingested, by transport.");
  sample(out, "dialed_net_frames_total", net.tcp_frames,
         "{transport=\"tcp\"}");
  sample(out, "dialed_net_frames_total", net.udp_datagrams,
         "{transport=\"udp\"}");
  family(out, "dialed_net_challenge_requests_total", "counter",
         "Challenge requests served.");
  sample(out, "dialed_net_challenge_requests_total", net.challenge_reqs);
  family(out, "dialed_net_http_requests_total", "counter",
         "HTTP requests served.");
  sample(out, "dialed_net_http_requests_total", net.http_requests);
  family(out, "dialed_net_responses_total", "counter",
         "Binary responses written back.");
  sample(out, "dialed_net_responses_total", net.responses_sent);
  family(out, "dialed_net_framing_errors_total", "counter",
         "Connections dropped for unrecoverable framing.");
  sample(out, "dialed_net_framing_errors_total", net.framing_errors);
  family(out, "dialed_net_dropped_results_total", "counter",
         "Verify results whose connection had already closed.");
  sample(out, "dialed_net_dropped_results_total", net.dropped_conn_gone);
  family(out, "dialed_net_backpressure_pauses_total", "counter",
         "Times a connection's reads were paused at the write high-water "
         "mark or the ingest backlog cap.");
  sample(out, "dialed_net_backpressure_pauses_total",
         net.backpressure_pauses);
  family(out, "dialed_net_connections_closed_total", "counter",
         "Connections closed, by cause (subset: stalled, idle).");
  sample(out, "dialed_net_connections_closed_total", net.connections_closed,
         "{cause=\"any\"}");
  sample(out, "dialed_net_connections_closed_total", net.closed_stalled,
         "{cause=\"write_stalled\"}");
  sample(out, "dialed_net_connections_closed_total", net.closed_idle,
         "{cause=\"idle\"}");
  family(out, "dialed_net_bytes_total", "counter",
         "Socket bytes, by direction.");
  sample(out, "dialed_net_bytes_total", net.bytes_in,
         "{direction=\"in\"}");
  sample(out, "dialed_net_bytes_total", net.bytes_out,
         "{direction=\"out\"}");
  family(out, "dialed_net_ingest_backlog", "gauge",
         "Frames accepted but not yet verified.");
  sample(out, "dialed_net_ingest_backlog", net.batching.backlog);
  family(out, "dialed_net_batches_total", "counter",
         "Batches flushed to verify_batch.");
  sample(out, "dialed_net_batches_total", net.batching.batches);
  family(out, "dialed_net_batch_frames_total", "counter",
         "Frames flushed to verify_batch.");
  sample(out, "dialed_net_batch_frames_total", net.batching.batch_frames);
  // Batch-size histogram in Prometheus cumulative-bucket form.
  family(out, "dialed_net_batch_size", "histogram",
         "verify_batch sizes (frames per flushed batch).");
  std::uint64_t cum = 0;
  std::size_t bound = 1;
  for (std::size_t i = 0; i < batch_hist_buckets; ++i) {
    cum += net.batching.batch_size_hist[i];
    const std::string le =
        i + 1 == batch_hist_buckets ? "+Inf" : std::to_string(bound);
    sample(out, "dialed_net_batch_size_bucket", cum,
           "{le=\"" + le + "\"}");
    bound <<= 1;
  }
  sample(out, "dialed_net_batch_size_sum", net.batching.batch_frames);
  sample(out, "dialed_net_batch_size_count", net.batching.batches);
  family(out, "dialed_net_batch_flush_total", "counter",
         "Batch flushes by trigger (size cap, deadline, queue idle).");
  for (std::size_t i = 0; i < flush_cause_count; ++i) {
    sample(out, "dialed_net_batch_flush_total", net.batching.flush_by_cause[i],
           std::string("{cause=\"") +
               to_string(static_cast<flush_cause>(i)) + "\"}");
  }
  // Queue wait: enqueue on the reactor to verify start on the dispatcher
  // — the latency the batcher itself adds in front of the pipeline.
  family(out, "dialed_net_queue_wait_seconds", "histogram",
         "Frame wait from ingest enqueue to verify start.");
  fleet::render_latency_samples(net.batching.queue_wait,
                                "dialed_net_queue_wait_seconds", "", out);

  if (store.present) {
    family(out, "dialed_store_wal_sync_policy", "gauge",
           "Configured WAL durability policy (1 on the active label).");
    sample(out, "dialed_store_wal_sync_policy", 1,
           std::string("{policy=\"") + store.sync_policy + "\"}");
    family(out, "dialed_store_wal_records", "gauge",
           "WAL records since the last snapshot (all partitions).");
    sample(out, "dialed_store_wal_records", store.wal_records);
    family(out, "dialed_store_wal_bytes", "gauge",
           "WAL bytes since the last snapshot (all partitions).");
    sample(out, "dialed_store_wal_bytes", store.wal_bytes);
    // Group-commit batch histogram: how many records each fsync made
    // durable. Batches of 1 mean no absorption (lone writers or
    // per_record policy); the right-hand buckets are group commit
    // earning its keep under concurrency.
    family(out, "dialed_store_group_commit_batch", "histogram",
           "Records made durable per WAL fsync.");
    std::uint64_t gcum = 0;
    std::size_t gbound = 1;
    const auto& gh = store.group_commit.batch_hist;
    for (std::size_t i = 0; i < gh.size(); ++i) {
      gcum += gh[i];
      const std::string le =
          i + 1 == gh.size() ? "+Inf" : std::to_string(gbound);
      sample(out, "dialed_store_group_commit_batch_bucket", gcum,
             "{le=\"" + le + "\"}");
      gbound <<= 1;
    }
    sample(out, "dialed_store_group_commit_batch_sum",
           store.group_commit.records);
    sample(out, "dialed_store_group_commit_batch_count",
           store.group_commit.syncs);
  }
  if (!ship.empty()) {
    const auto each = [&](const char* name, const char* type,
                          const char* help, auto value_of) {
      family(out, name, type, help);
      for (std::size_t i = 0; i < ship.size(); ++i) {
        sample(out, name, value_of(ship[i]),
               "{partition=\"" + std::to_string(i) + "\"}");
      }
    };
    each("dialed_ship_records_total", "counter",
         "WAL records shipped to standbys, per partition.",
         [](const store::ship_stats& s) { return s.records_shipped; });
    each("dialed_ship_bytes_total", "counter",
         "WAL bytes shipped to standbys, per partition.",
         [](const store::ship_stats& s) { return s.bytes_shipped; });
    each("dialed_ship_snapshots_total", "counter",
         "Snapshots shipped to standbys, per partition.",
         [](const store::ship_stats& s) { return s.snapshots_shipped; });
    each("dialed_ship_followers", "gauge",
         "Tracked standby followers, per partition.",
         [](const store::ship_stats& s) { return s.followers; });
    each("dialed_ship_lag_records", "gauge",
         "Max standby apply lag in records, per partition.",
         [](const store::ship_stats& s) { return s.max_lag_records; });
    each("dialed_ship_desync", "gauge",
         "1 while any standby of the partition has latched a stream "
         "error.",
         [](const store::ship_stats& s) {
           return static_cast<std::uint64_t>(s.any_desync ? 1 : 0);
         });
  }
  if (build.version != nullptr && build.version[0] != '\0') {
    family(out, "dialed_build_info", "gauge",
           "Build identity: constant 1, the labels are the data.");
    sample(out, "dialed_build_info", 1,
           "{version=\"" + fleet::escape_label_value(build.version) +
               "\",sha256_backend=\"" +
               fleet::escape_label_value(build.sha256_backend) +
               "\",wal_sync=\"" +
               fleet::escape_label_value(build.wal_sync) + "\"}");
  }
  return out;
}

std::string render_healthz_body(std::span<const partition_health> parts) {
  bool any_store = false;
  bool any_desync = false;
  std::uint64_t wal_records = 0;
  std::uint64_t generation = 0;
  for (const auto& p : parts) {
    if (p.has_store) {
      any_store = true;
      wal_records += p.wal_records;
      generation = std::max(generation, p.generation);
    }
    if (p.ship_desync) any_desync = true;
  }
  // Legacy aggregate fields first (existing probes grep for them), then
  // the per-partition detail.
  std::string out = "{\"hub\": \"ok\", \"status\": ";
  out += any_desync ? "\"degraded\"" : "\"ok\"";
  out += ", \"store\": ";
  if (!any_store) {
    out += "\"none\"";
  } else {
    out += any_desync ? "\"degraded\"" : "\"ok\"";
    out += ", \"wal_records\": " + std::to_string(wal_records) +
           ", \"generation\": " + std::to_string(generation);
  }
  if (!parts.empty()) {
    out += ", \"partitions\": [";
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const auto& p = parts[i];
      if (i != 0) out += ", ";
      out += "{\"partition\": " + std::to_string(i) + ", \"store\": ";
      if (!p.has_store) {
        out += "\"none\"";
      } else {
        out += p.ship_desync ? "\"degraded\"" : "\"ok\"";
        out += ", \"generation\": " + std::to_string(p.generation) +
               ", \"wal_records\": " + std::to_string(p.wal_records);
      }
      if (p.has_standby) {
        out += ", \"standby\": {\"synced\": ";
        out += p.standby_synced ? "true" : "false";
        out += ", \"lag_records\": " +
               std::to_string(p.ship_lag_records) + ", \"desync\": ";
        out += p.ship_desync ? "true" : "false";
        out += "}";
      }
      out += "}";
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

namespace {

void render_trace(std::string& out, const obs::span_trace& t) {
  out += "{\"trace_id\": " + std::to_string(t.trace_id) +
         ", \"partition\": " + std::to_string(t.partition) +
         ", \"device\": " + std::to_string(t.device) +
         ", \"seq\": " + std::to_string(t.seq) + ", \"accepted\": ";
  out += t.accepted ? "true" : "false";
  out += ", \"error\": \"";
  out += t.error < proto::proto_error_count
             ? proto::to_string(static_cast<proto::proto_error>(t.error))
             : "unknown";
  out += "\", \"total_ns\": " + std::to_string(t.total_ns) +
         ", \"stages\": {";
  for (std::size_t s = 0; s < obs::stage_count; ++s) {
    if (s != 0) out += ", ";
    out += std::string("\"") +
           obs::to_string(static_cast<obs::stage>(s)) +
           "\": " + std::to_string(t.stage_ns[s]);
  }
  out += "}}";
}

}  // namespace

std::string render_traces_body(const obs::trace_dump& d) {
  std::string out;
  out.reserve(1024);
  out += "{\"slowest_ns\": " + std::to_string(d.slowest_ns) +
         ", \"slow_recorded\": " + std::to_string(d.slow_recorded) +
         ", \"rejected_recorded\": " +
         std::to_string(d.rejected_recorded) + ", \"slow\": [";
  for (std::size_t i = 0; i < d.slow.size(); ++i) {
    if (i != 0) out += ", ";
    render_trace(out, d.slow[i]);
  }
  out += "], \"rejected\": [";
  for (std::size_t i = 0; i < d.rejected.size(); ++i) {
    if (i != 0) out += ", ";
    render_trace(out, d.rejected[i]);
  }
  out += "]}\n";
  return out;
}

}  // namespace dialed::net
