#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/listener.h"

namespace dialed::net {

attest_client::attest_client(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  fd_ = connect_tcp(host, port, timeout_ms);
  if (timeout_ms > 0) set_io_timeout(fd_, timeout_ms);
}

attest_client::~attest_client() {
  if (fd_ >= 0) ::close(fd_);
}

challenge_resp attest_client::get_challenge(std::uint32_t device_id) {
  byte_vec framed;
  proto::append_stream_frame(framed, encode_challenge_req({device_id}));
  write_all(fd_, framed);
  const auto frame = recv_frame();
  const auto resp = decode_challenge_resp(frame);
  if (!resp) throw error("attest_client: expected challenge_resp");
  return *resp;
}

attest_resp attest_client::submit_report(
    std::span<const std::uint8_t> frame) {
  send_report(frame);
  return recv_result();
}

void attest_client::send_report(std::span<const std::uint8_t> frame) {
  byte_vec framed;
  proto::append_stream_frame(framed, frame);
  write_all(fd_, framed);
}

attest_resp attest_client::recv_result() {
  const auto frame = recv_frame();
  const auto resp = decode_attest_resp(frame);
  if (!resp) throw error("attest_client: expected attest_resp");
  return *resp;
}

byte_vec attest_client::recv_frame() {
  byte_vec frame;
  for (;;) {
    if (framer_.next(frame)) return frame;
    if (framer_.error() != proto::proto_error::none) {
      throw error("attest_client: poisoned stream (bad length prefix)");
    }
    std::uint8_t buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw error("attest_client: server closed the stream");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw timeout_error(
            "attest_client: recv: timed out waiting for the server");
      }
      throw error(std::string("attest_client: recv: ") +
                  std::strerror(errno));
    }
    framer_.feed({buf, static_cast<std::size_t>(n)});
  }
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  const int fd = connect_tcp(host, port, timeout_ms);
  if (timeout_ms > 0) set_io_timeout(fd, timeout_ms);
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  std::string out;
  try {
    write_all(fd, {reinterpret_cast<const std::uint8_t*>(req.data()),
                   req.size()});
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) break;  // Connection: close delimits the response
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          throw timeout_error("http_get: recv: timed out");
        }
        throw error(std::string("http_get: recv: ") +
                    std::strerror(errno));
      }
      out.append(buf, static_cast<std::size_t>(n));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return out;
}

}  // namespace dialed::net
