#include "net/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/error.h"
#include "common/version.h"
#include "crypto/sha256.h"
#include "obs/event_log.h"

namespace dialed::net {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

// Per-callsite budgets: a flood of broken peers must not turn the event
// log into the bottleneck (suppressed counts surface when the window
// reopens).
obs::rate_limit rl_framing{10};
obs::rate_limit rl_close{20};
obs::rate_limit rl_backpressure{10};

}  // namespace

attest_server::attest_server(fleet::hub_like& hub, server_config cfg,
                             std::vector<store::fleet_store*> stores,
                             std::vector<const store::wal_shipper*> shippers)
    : hub_(hub),
      cfg_(cfg),
      stores_(std::move(stores)),
      shippers_(std::move(shippers)),
      batcher_(hub, cfg.batching, loop_) {
  listen_fd_ = listen_tcp(cfg_.bind_addr, cfg_.tcp_port);
  tcp_port_ = local_port(listen_fd_);
  if (cfg_.enable_udp) {
    udp_fd_ = bind_udp(cfg_.bind_addr, cfg_.udp_port);
    udp_port_ = local_port(udp_fd_);
  }
  accept_handler_.srv = this;
  accept_handler_.fn = &attest_server::on_accept;
  udp_handler_.srv = this;
  udp_handler_.fn = &attest_server::on_udp;
  sweeps_enabled_ =
      cfg_.limits.write_stall_ms != 0 || cfg_.limits.idle_timeout_ms != 0;
}

attest_server::~attest_server() {
  stop();
  conns_by_id_.clear();
  conns_.clear();  // destructors deregister + close
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (udp_fd_ >= 0) ::close(udp_fd_);
}

void attest_server::run() {
  loop_.add(listen_fd_, EPOLLIN, &accept_handler_);
  if (udp_fd_ >= 0) loop_.add(udp_fd_, EPOLLIN, &udp_handler_);
  last_sweep_ = std::chrono::steady_clock::now();
  obs::log().emit(obs::log_level::info, "server_started",
                  {{"tcp_port", tcp_port_},
                   {"udp_port", udp_port_},
                   {"max_connections", cfg_.max_connections}});
  running_.store(true, std::memory_order_release);

  while (!stop_flag_.load(std::memory_order_acquire)) {
    auto now = std::chrono::steady_clock::now();
    int timeout = batcher_.timeout_ms(now);
    if (sweeps_enabled_) {
      const int sweep_ms = static_cast<int>(cfg_.sweep_interval_ms);
      if (timeout < 0 || timeout > sweep_ms) timeout = sweep_ms;
    }
    loop_.poll(timeout);
    (void)loop_.take_wake();  // cross-thread work runs every turn anyway

    deliver_completions();
    now = std::chrono::steady_clock::now();
    batcher_.maybe_flush(now);
    check_backpressure();
    if (now - last_sweep_ >=
        std::chrono::milliseconds(cfg_.sweep_interval_ms)) {
      sweep(now);
      last_sweep_ = now;
    }
    process_doomed();
  }

  // Shutdown: tear every connection down; in-flight verifications finish
  // in the batcher destructor, their responses intentionally dropped.
  for (auto& [fd, c] : conns_) {
    if (!c->close_requested()) request_close(*c, close_reason::server_stop);
  }
  process_doomed();
  loop_.remove(listen_fd_);
  if (udp_fd_ >= 0) loop_.remove(udp_fd_);
  obs::log().emit(obs::log_level::info, "server_stopped",
                  {{"connections_accepted",
                    connections_accepted_.load(relaxed)},
                   {"frames_tcp", tcp_frames_.load(relaxed)},
                   {"frames_udp", udp_datagrams_.load(relaxed)}});
  running_.store(false, std::memory_order_release);
}

void attest_server::start() {
  thread_ = std::thread([this] { run(); });
  while (!running_.load(std::memory_order_acquire) &&
         !stop_flag_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void attest_server::stop() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void attest_server::request_stop() {
  stop_flag_.store(true, std::memory_order_release);
  loop_.wake();
}

server_stats attest_server::stats() const {
  server_stats s;
  s.connections_accepted = connections_accepted_.load(relaxed);
  s.connections_closed = connections_closed_.load(relaxed);
  s.connections_open = connections_open_.load(relaxed);
  s.tcp_frames = tcp_frames_.load(relaxed);
  s.udp_datagrams = udp_datagrams_.load(relaxed);
  s.challenge_reqs = challenge_reqs_.load(relaxed);
  s.http_requests = http_requests_.load(relaxed);
  s.responses_sent = responses_sent_.load(relaxed);
  s.framing_errors = framing_errors_.load(relaxed);
  s.dropped_conn_gone = dropped_conn_gone_.load(relaxed);
  s.backpressure_pauses = backpressure_pauses_.load(relaxed);
  s.closed_stalled = closed_stalled_.load(relaxed);
  s.closed_idle = closed_idle_.load(relaxed);
  s.bytes_in = bytes_in_.load(relaxed);
  s.bytes_out = bytes_out_.load(relaxed);
  s.batching = batcher_.snapshot();
  return s;
}

// ---- connection_host --------------------------------------------------

void attest_server::on_challenge_req(connection& c,
                                     const challenge_req& m) {
  challenge_reqs_.fetch_add(1, relaxed);
  const auto grant = hub_.challenge(m.device_id);
  challenge_resp resp;
  resp.error = grant.error;
  resp.note = grant.note;
  resp.device_id = m.device_id;
  resp.seq = grant.seq;
  resp.nonce = grant.nonce;
  const auto encoded = encode_challenge_resp(resp);
  c.send_frame(encoded);
  responses_sent_.fetch_add(1, relaxed);
}

void attest_server::on_report_frame(connection& c, byte_vec frame) {
  tcp_frames_.fetch_add(1, relaxed);
  batcher_.enqueue(c.id(), std::move(frame));
  check_backpressure();
}

std::string attest_server::handle_http(const http_request& req) {
  http_requests_.fetch_add(1, relaxed);
  // HEAD is GET minus the body: route and render identically, then strip
  // (Content-Length still describes the GET body, per RFC 9110).
  const bool head = req.method == "HEAD";
  std::string resp;
  if (req.method != "GET" && !head) {
    resp = render_http_response(405, "text/plain", "method not allowed\n",
                                "Allow: GET, HEAD\r\n");
  } else if (req.path == "/metrics") {
    // Fold live traffic first so a scrape sees current bytes.
    for (auto& [fd, c] : conns_) fold_traffic(*c);
    const auto parts = hub_.partition_stats();
    // Store families aggregate across partitioned stores (sums;
    // histogram buckets add — all partitions share one sync policy).
    store_metrics sm;
    for (const auto* st : stores_) {
      if (st == nullptr) continue;
      sm.present = true;
      sm.sync_policy = store::to_string(st->wal_sync_policy());
      sm.wal_records += st->wal_records();
      sm.wal_bytes += st->wal_bytes();
      const auto gc = st->group_commit();
      sm.group_commit.syncs += gc.syncs;
      sm.group_commit.records += gc.records;
      for (std::size_t i = 0; i < gc.batch_hist.size(); ++i) {
        sm.group_commit.batch_hist[i] += gc.batch_hist[i];
      }
    }
    // A partitioned hub labels each partition; a bare hub is one
    // pipeline labeled partition="0".
    auto pipes = hub_.partition_pipelines();
    if (pipes.empty()) pipes.push_back(hub_.pipeline());
    std::vector<store::ship_stats> ships;
    ships.reserve(shippers_.size());
    for (const auto* sh : shippers_) {
      ships.push_back(sh != nullptr ? sh->stats() : store::ship_stats{});
    }
    build_info_metrics build;
    build.version = dialed_version;
    build.sha256_backend =
        crypto::to_string(crypto::sha256_active_backend());
    build.wal_sync = sm.sync_policy;
    resp = render_http_response(
        200, "text/plain; version=0.0.4",
        render_metrics_body(hub_.stats(), stats(), parts, sm, pipes,
                            ships, build));
  } else if (req.path == "/healthz") {
    std::vector<partition_health> parts(
        std::max(stores_.size(), shippers_.size()));
    bool any_desync = false;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      auto& p = parts[i];
      if (i < stores_.size() && stores_[i] != nullptr) {
        p.has_store = true;
        p.generation = stores_[i]->generation();
        p.wal_records = stores_[i]->wal_records();
      }
      if (i < shippers_.size() && shippers_[i] != nullptr) {
        const auto ss = shippers_[i]->stats();
        p.has_standby = ss.followers > 0;
        p.ship_lag_records = ss.max_lag_records;
        p.ship_desync = ss.any_desync;
        p.standby_synced = p.has_standby && !ss.any_desync;
        if (ss.any_desync) any_desync = true;
      }
    }
    resp = render_http_response(any_desync ? 503 : 200, "application/json",
                                render_healthz_body(parts));
  } else if (req.path == "/debug/traces") {
    resp = render_http_response(200, "application/json",
                                render_traces_body(hub_.traces()));
  } else {
    resp = render_http_response(404, "text/plain", "not found\n");
  }
  return head ? strip_http_body(resp) : resp;
}

void attest_server::request_close(connection& c, close_reason why) {
  if (c.close_requested()) return;
  c.mark_close_requested();
  fold_traffic(c);
  if (loop_.watching(c.fd())) loop_.remove(c.fd());
  doomed_.push_back(c.fd());
  connections_closed_.fetch_add(1, relaxed);
  switch (why) {
    case close_reason::framing_error:
      framing_errors_.fetch_add(1, relaxed);
      obs::log().emit(obs::log_level::warn, "conn_framing_error",
                      rl_framing, {{"conn", c.id()}});
      break;
    case close_reason::write_stalled:
      closed_stalled_.fetch_add(1, relaxed);
      obs::log().emit(obs::log_level::warn, "conn_write_stalled",
                      rl_close, {{"conn", c.id()}});
      break;
    case close_reason::idle:
      closed_idle_.fetch_add(1, relaxed);
      obs::log().emit(obs::log_level::debug, "conn_idle_closed",
                      rl_close, {{"conn", c.id()}});
      break;
    default:
      break;
  }
}

// ---- internals --------------------------------------------------------

void attest_server::on_accept(std::uint32_t) {
  for (;;) {
    const int fd = accept_connection(listen_fd_);
    if (fd < 0) return;
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);  // shed load: the client sees a reset
      continue;
    }
    if (cfg_.limits.sndbuf != 0) {
      const int v = static_cast<int>(cfg_.limits.sndbuf);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<connection>(fd, id, *this, loop_,
                                             cfg_.limits);
    if (ingest_paused_) conn->pause_ingest();
    conns_by_id_[id] = conn.get();
    conns_[fd] = std::move(conn);
    connections_accepted_.fetch_add(1, relaxed);
    connections_open_.fetch_add(1, relaxed);
  }
}

void attest_server::on_udp(std::uint32_t) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(udp_fd_, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error: wait for the next event
    }
    if (n == 0) continue;
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n), relaxed);
    // One raw wire frame per datagram; the datagram boundary IS the
    // framing. Fire-and-forget: conn_id 0 means no response is owed.
    // Past the global cap the datagram is dropped — that is what
    // fire-and-forget buys.
    if (batcher_.backlog() >= cfg_.max_pending_frames) continue;
    udp_datagrams_.fetch_add(1, relaxed);
    batcher_.enqueue(0, byte_vec(buf, buf + n));
  }
}

void attest_server::deliver_completions() {
  for (auto& done : batcher_.drain_completions()) {
    if (done.conn_id == 0) continue;  // UDP fire-and-forget
    const auto it = conns_by_id_.find(done.conn_id);
    if (it == conns_by_id_.end() || it->second->close_requested()) {
      dropped_conn_gone_.fetch_add(1, relaxed);
      continue;
    }
    attest_resp resp;
    resp.error = done.result.error;
    resp.accepted = done.result.accepted();
    resp.device_id = done.result.device;
    resp.seq = done.result.seq;
    const auto encoded = encode_attest_resp(resp);
    it->second->send_frame(encoded);
    responses_sent_.fetch_add(1, relaxed);
  }
}

void attest_server::check_backpressure() {
  const std::size_t backlog = batcher_.backlog();
  if (!ingest_paused_ && backlog >= cfg_.max_pending_frames) {
    ingest_paused_ = true;
    obs::log().emit(obs::log_level::warn, "ingest_paused",
                    rl_backpressure,
                    {{"backlog", backlog},
                     {"cap", cfg_.max_pending_frames}});
    for (auto& [fd, c] : conns_) {
      if (!c->close_requested()) c->pause_ingest();
    }
  } else if (ingest_paused_ && backlog <= cfg_.max_pending_frames / 2) {
    ingest_paused_ = false;
    obs::log().emit(obs::log_level::info, "ingest_resumed",
                    rl_backpressure, {{"backlog", backlog}});
    for (auto& [fd, c] : conns_) {
      if (!c->close_requested()) c->resume_ingest();
    }
  }
}

void attest_server::sweep(std::chrono::steady_clock::time_point now) {
  for (auto& [fd, c] : conns_) {
    fold_traffic(*c);
    if (c->close_requested()) continue;
    const auto verdict = c->sweep(now);
    if (verdict.close) request_close(*c, verdict.why);
  }
}

void attest_server::fold_traffic(connection& c) {
  bytes_in_.fetch_add(c.bytes_in - c.folded_in, relaxed);
  bytes_out_.fetch_add(c.bytes_out - c.folded_out, relaxed);
  backpressure_pauses_.fetch_add(c.pause_events - c.folded_pauses,
                                 relaxed);
  c.folded_in = c.bytes_in;
  c.folded_out = c.bytes_out;
  c.folded_pauses = c.pause_events;
}

void attest_server::process_doomed() {
  for (const int fd : doomed_) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    conns_by_id_.erase(it->second->id());
    conns_.erase(it);  // ~connection deregisters (no-op here) + close(2)
    connections_open_.fetch_sub(1, relaxed);
  }
  doomed_.clear();
}

}  // namespace dialed::net
