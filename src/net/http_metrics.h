// The observability face of the attestation service: a deliberately tiny
// HTTP/1.x server-side — just enough to answer Prometheus scrapes and
// load-balancer health checks on the same reactor (and port) the binary
// protocol runs on. Two endpoints:
//
//   GET /metrics   hub counters (fleet/stats_render) + the net server's
//                  own counters/gauges/histogram, Prometheus text format
//   GET /healthz   hub + store liveness as a one-line JSON body
//
// Requests are parsed from the connection's buffer (method + path only;
// headers are skipped), responses always carry Connection: close and the
// connection is torn down after the write — scrapes are one-shot, keeping
// the server free of keep-alive state.
#ifndef DIALED_NET_HTTP_METRICS_H
#define DIALED_NET_HTTP_METRICS_H

#include <span>
#include <string>

#include "fleet/stats_render.h"
#include "net/batcher.h"
#include "store/wal.h"

namespace dialed::net {

/// Snapshot of the backing store(s) for /metrics; `present == false`
/// renders no dialed_store_* families (serving without --state-dir).
/// With partitioned stores the fields aggregate (sums; histograms add).
struct store_metrics {
  bool present = false;
  const char* sync_policy = "none";  ///< store::to_string(wal_sync)
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  store::group_commit_stats group_commit;
};

/// Net-side counters, snapshotted by attest_server::stats(). Everything
/// here is maintained by the reactor thread and read via atomics (see
/// server.h); this is the plain-data view.
struct server_stats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_open = 0;  ///< gauge
  std::uint64_t tcp_frames = 0;        ///< report frames ingested via TCP
  std::uint64_t udp_datagrams = 0;     ///< datagrams ingested via UDP
  std::uint64_t challenge_reqs = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t responses_sent = 0;    ///< attest/challenge responses
  std::uint64_t framing_errors = 0;    ///< poisoned streams, bad messages
  std::uint64_t dropped_conn_gone = 0; ///< results whose conn had closed
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t closed_stalled = 0;
  std::uint64_t closed_idle = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  batcher::stats batching;
};

struct http_request {
  bool complete = false;   ///< header terminator seen
  bool too_large = false;  ///< header exceeded the cap before terminating
  bool malformed = false;  ///< request line did not parse
  std::string method;
  std::string path;
};

/// Parse the head of `buf` as an HTTP request. Returns complete=false
/// while the blank line hasn't arrived (keep reading), too_large once
/// `max_header` bytes arrived without one.
http_request parse_http_request(std::span<const std::uint8_t> buf,
                                std::size_t max_header);

/// A full HTTP/1.1 response (status line, minimal headers incl.
/// Content-Length and Connection: close, then body).
std::string render_http_response(int status,
                                 const std::string& content_type,
                                 const std::string& body);

/// The /metrics body: hub families + dialed_net_* families. A non-empty
/// `partitions` (one hub_stats per partition, from
/// hub_like::partition_stats) additionally renders the labeled
/// dialed_partition_* families.
std::string render_metrics_body(
    const fleet::hub_stats& hub, const server_stats& net,
    std::span<const fleet::hub_stats> partitions = {},
    const store_metrics& store = {});

/// The /healthz body. `store_ok` false renders "degraded" (and the
/// endpoint answers 503); without a store the store field reads "none".
std::string render_healthz_body(bool has_store, bool store_ok,
                                std::uint64_t wal_records,
                                std::uint64_t generation);

}  // namespace dialed::net

#endif  // DIALED_NET_HTTP_METRICS_H
