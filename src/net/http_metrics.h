// The observability face of the attestation service: a deliberately tiny
// HTTP/1.x server-side — just enough to answer Prometheus scrapes and
// load-balancer health checks on the same reactor (and port) the binary
// protocol runs on. Two endpoints:
//
//   GET /metrics        hub counters (fleet/stats_render), per-stage
//                       latency histograms, the net server's own
//                       counters/gauges/histograms, store + WAL-ship
//                       health, build info — Prometheus text format
//   GET /healthz        hub + per-partition store/standby health, JSON;
//                       503 once any standby latches ship_desync
//   GET /debug/traces   flight-recorder dump (slowest + rejected span
//                       traces), JSON
//
// Requests are parsed from the connection's buffer (method + path only;
// headers are skipped), responses always carry Connection: close and the
// connection is torn down after the write — scrapes are one-shot, keeping
// the server free of keep-alive state.
#ifndef DIALED_NET_HTTP_METRICS_H
#define DIALED_NET_HTTP_METRICS_H

#include <span>
#include <string>

#include "fleet/stats_render.h"
#include "net/batcher.h"
#include "obs/obs.h"
#include "store/ship.h"
#include "store/wal.h"

namespace dialed::net {

/// Snapshot of the backing store(s) for /metrics; `present == false`
/// renders no dialed_store_* families (serving without --state-dir).
/// With partitioned stores the fields aggregate (sums; histograms add).
struct store_metrics {
  bool present = false;
  const char* sync_policy = "none";  ///< store::to_string(wal_sync)
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  store::group_commit_stats group_commit;
};

/// Net-side counters, snapshotted by attest_server::stats(). Everything
/// here is maintained by the reactor thread and read via atomics (see
/// server.h); this is the plain-data view.
struct server_stats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_open = 0;  ///< gauge
  std::uint64_t tcp_frames = 0;        ///< report frames ingested via TCP
  std::uint64_t udp_datagrams = 0;     ///< datagrams ingested via UDP
  std::uint64_t challenge_reqs = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t responses_sent = 0;    ///< attest/challenge responses
  std::uint64_t framing_errors = 0;    ///< poisoned streams, bad messages
  std::uint64_t dropped_conn_gone = 0; ///< results whose conn had closed
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t closed_stalled = 0;
  std::uint64_t closed_idle = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  batcher::stats batching;
};

/// One partition's slice of the /healthz body (and the 503 decision).
struct partition_health {
  bool has_store = false;
  std::uint64_t generation = 0;
  std::uint64_t wal_records = 0;
  bool has_standby = false;  ///< a wal_shipper with tracked followers
  std::uint64_t ship_lag_records = 0;
  bool standby_synced = false;
  bool ship_desync = false;  ///< latched follower error -> answer 503
};

/// The dialed_build_info labels: which binary, crypto backend and
/// durability policy this scrape talks to.
struct build_info_metrics {
  const char* version = "";
  const char* sha256_backend = "";
  const char* wal_sync = "none";
};

struct http_request {
  bool complete = false;   ///< header terminator seen
  bool too_large = false;  ///< header exceeded the cap before terminating
  bool malformed = false;  ///< request line did not parse
  std::string method;
  std::string path;
};

/// Parse the head of `buf` as an HTTP request. Returns complete=false
/// while the blank line hasn't arrived (keep reading), too_large once
/// `max_header` bytes arrived without one.
http_request parse_http_request(std::span<const std::uint8_t> buf,
                                std::size_t max_header);

/// A full HTTP/1.1 response (status line, minimal headers incl.
/// Content-Length and Connection: close, then body). `extra_headers`,
/// when non-empty, must be complete CRLF-terminated header lines (e.g.
/// "Allow: GET, HEAD\r\n").
std::string render_http_response(int status,
                                 const std::string& content_type,
                                 const std::string& body,
                                 const std::string& extra_headers = {});

/// Drop the body of a rendered response, keeping every header byte —
/// the HEAD answer (Content-Length still names the GET body's size, as
/// the RFC wants).
std::string strip_http_body(const std::string& response);

/// The /metrics body: hub families + dialed_net_* families. A non-empty
/// `partitions` (one hub_stats per partition, from
/// hub_like::partition_stats) additionally renders the labeled
/// dialed_partition_* families; `pipelines`
/// (hub_like::partition_pipelines, or a single aggregate snapshot for a
/// bare hub) renders dialed_stage_latency_seconds; `ship` (one
/// wal_shipper::stats per partition) renders the dialed_ship_* standby
/// families; a build with a non-empty version renders dialed_build_info.
std::string render_metrics_body(
    const fleet::hub_stats& hub, const server_stats& net,
    std::span<const fleet::hub_stats> partitions = {},
    const store_metrics& store = {},
    std::span<const obs::pipeline_snapshot> pipelines = {},
    std::span<const store::ship_stats> ship = {},
    const build_info_metrics& build = {});

/// The /healthz body: overall status plus one entry per partition. The
/// endpoint answers 503 when any partition reads ship_desync (the
/// standby is silently diverging — the operator signal this exists
/// for). Empty `parts` renders the storeless body.
std::string render_healthz_body(std::span<const partition_health> parts);

/// The /debug/traces body: the flight-recorder dump as JSON (bounded;
/// a reactor-safe snapshot taken by the caller).
std::string render_traces_body(const obs::trace_dump& d);

}  // namespace dialed::net

#endif  // DIALED_NET_HTTP_METRICS_H
