#include "net/framer.h"

#include <algorithm>

namespace dialed::net {

namespace {

constexpr std::size_t challenge_req_size = 7;
constexpr std::size_t challenge_resp_size = 29;
constexpr std::size_t attest_resp_size = 13;

byte_vec svc_header(svc_type t, std::size_t size) {
  byte_vec out(size, 0);
  store_le16(out, 0, svc_magic);
  out[2] = static_cast<std::uint8_t>(t);
  return out;
}

bool svc_head_matches(std::span<const std::uint8_t> frame, svc_type t,
                      std::size_t size) {
  return frame.size() == size && load_le16(frame, 0) == svc_magic &&
         frame[2] == static_cast<std::uint8_t>(t);
}

}  // namespace

byte_vec encode_challenge_req(const challenge_req& m) {
  byte_vec out = svc_header(svc_type::challenge_req, challenge_req_size);
  store_le32(out, 3, m.device_id);
  return out;
}

byte_vec encode_challenge_resp(const challenge_resp& m) {
  byte_vec out = svc_header(svc_type::challenge_resp, challenge_resp_size);
  out[3] = static_cast<std::uint8_t>(m.error);
  out[4] = static_cast<std::uint8_t>(m.note);
  store_le32(out, 5, m.device_id);
  store_le32(out, 9, m.seq);
  std::copy(m.nonce.begin(), m.nonce.end(), out.begin() + 13);
  return out;
}

byte_vec encode_attest_resp(const attest_resp& m) {
  byte_vec out = svc_header(svc_type::attest_resp, attest_resp_size);
  out[3] = static_cast<std::uint8_t>(m.error);
  out[4] = m.accepted ? 1 : 0;
  store_le32(out, 5, m.device_id);
  store_le32(out, 9, m.seq);
  return out;
}

bool is_svc_message(std::span<const std::uint8_t> frame) {
  return frame.size() >= 3 && load_le16(frame, 0) == svc_magic;
}

std::optional<challenge_req> decode_challenge_req(
    std::span<const std::uint8_t> frame) {
  if (!svc_head_matches(frame, svc_type::challenge_req,
                        challenge_req_size)) {
    return std::nullopt;
  }
  challenge_req m;
  m.device_id = load_le32(frame, 3);
  return m;
}

std::optional<challenge_resp> decode_challenge_resp(
    std::span<const std::uint8_t> frame) {
  if (!svc_head_matches(frame, svc_type::challenge_resp,
                        challenge_resp_size)) {
    return std::nullopt;
  }
  challenge_resp m;
  // Error bytes come off the wire: checked decode, garbage fails closed.
  if (!proto::proto_error_from_u8(frame[3], m.error) ||
      !proto::proto_error_from_u8(frame[4], m.note)) {
    return std::nullopt;
  }
  m.device_id = load_le32(frame, 5);
  m.seq = load_le32(frame, 9);
  std::copy(frame.begin() + 13, frame.begin() + 29, m.nonce.begin());
  return m;
}

std::optional<attest_resp> decode_attest_resp(
    std::span<const std::uint8_t> frame) {
  if (!svc_head_matches(frame, svc_type::attest_resp, attest_resp_size)) {
    return std::nullopt;
  }
  attest_resp m;
  if (!proto::proto_error_from_u8(frame[3], m.error) || frame[4] > 1) {
    return std::nullopt;
  }
  m.accepted = frame[4] == 1;
  m.device_id = load_le32(frame, 5);
  m.seq = load_le32(frame, 9);
  return m;
}

bool stream_framer::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != proto::proto_error::none) return false;
  // Check the pending length prefix BEFORE buffering toward it: an
  // oversized prefix must never cause the buffer to grow, whatever split
  // the bytes arrive in.
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  const auto head = std::span<const std::uint8_t>(buf_).subspan(pos_);
  const auto peek = proto::peek_stream_frame(head);
  if (peek.error != proto::proto_error::none) {
    error_ = peek.error;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  return true;
}

bool stream_framer::next(byte_vec& frame) {
  if (error_ != proto::proto_error::none) return false;
  const auto head = std::span<const std::uint8_t>(buf_).subspan(pos_);
  const auto peek = proto::peek_stream_frame(head);
  if (peek.error != proto::proto_error::none) {
    // A later frame in an already-buffered burst can carry the poison.
    error_ = peek.error;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  if (!peek.complete) {
    // Compact once the consumed prefix dominates, so long-lived
    // connections don't grow the buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
      pos_ = 0;
    }
    return false;
  }
  frame.assign(head.begin() + proto::stream_header_bytes,
               head.begin() + static_cast<long>(peek.need));
  pos_ += peek.need;
  return true;
}

}  // namespace dialed::net
