#include "isa/isa.h"

#include <array>

#include "common/bytes.h"
#include "common/error.h"

namespace dialed::isa {

std::string reg_name(std::uint8_t r) {
  switch (r) {
    case REG_PC: return "pc";
    case REG_SP: return "sp";
    case REG_SR: return "sr";
    default: return "r" + std::to_string(r);
  }
}

namespace {
struct mnemonic_entry {
  std::string_view name;
  opcode op;
};
constexpr std::array<mnemonic_entry, 27> mnemonics = {{
    {"mov", opcode::mov},   {"add", opcode::add},   {"addc", opcode::addc},
    {"subc", opcode::subc}, {"sub", opcode::sub},   {"cmp", opcode::cmp},
    {"dadd", opcode::dadd}, {"bit", opcode::bit},   {"bic", opcode::bic},
    {"bis", opcode::bis},   {"xor", opcode::xor_},  {"and", opcode::and_},
    {"rrc", opcode::rrc},   {"swpb", opcode::swpb}, {"rra", opcode::rra},
    {"sxt", opcode::sxt},   {"push", opcode::push}, {"call", opcode::call},
    {"reti", opcode::reti}, {"jne", opcode::jne},   {"jeq", opcode::jeq},
    {"jnc", opcode::jnc},   {"jc", opcode::jc},     {"jn", opcode::jn},
    {"jge", opcode::jge},   {"jl", opcode::jl},     {"jmp", opcode::jmp},
}};
}  // namespace

std::string_view mnemonic(opcode op) {
  for (const auto& e : mnemonics) {
    if (e.op == op) return e.name;
  }
  return "?";
}

std::optional<opcode> opcode_from_mnemonic(std::string_view m) {
  // Jump aliases used by compilers/assemblers.
  if (m == "jnz") return opcode::jne;
  if (m == "jz") return opcode::jeq;
  if (m == "jlo") return opcode::jnc;
  if (m == "jhs") return opcode::jc;
  for (const auto& e : mnemonics) {
    if (e.name == m) return e.op;
  }
  return std::nullopt;
}

bool mode_touches_memory(addr_mode m) {
  switch (m) {
    case addr_mode::reg:
    case addr_mode::immediate:
      return false;
    default:
      return true;
  }
}

bool mode_needs_ext(addr_mode m) {
  switch (m) {
    case addr_mode::indexed:
    case addr_mode::symbolic:
    case addr_mode::absolute:
    case addr_mode::immediate:
      return true;
    default:
      return false;
  }
}

std::optional<std::pair<std::uint8_t, std::uint8_t>> constant_generator(
    std::int32_t value) {
  switch (value) {
    case 0: return {{REG_CG2, 0}};
    case 1: return {{REG_CG2, 1}};
    case 2: return {{REG_CG2, 2}};
    case -1: return {{REG_CG2, 3}};
    case 0xffff: return {{REG_CG2, 3}};
    case 4: return {{REG_SR, 2}};
    case 8: return {{REG_SR, 3}};
    default: return std::nullopt;
  }
}

namespace {
std::string operand_to_string(const operand& o) {
  switch (o.mode) {
    case addr_mode::reg: return reg_name(o.base);
    case addr_mode::indexed:
      return std::to_string(static_cast<std::int16_t>(o.ext)) + "(" +
             reg_name(o.base) + ")";
    case addr_mode::symbolic: return hex16(o.ext);
    case addr_mode::absolute: return "&" + hex16(o.ext);
    case addr_mode::indirect: return "@" + reg_name(o.base);
    case addr_mode::indirect_inc: return "@" + reg_name(o.base) + "+";
    case addr_mode::immediate: return "#" + hex16(o.ext);
  }
  return "?";
}
}  // namespace

std::string to_string(const instruction& ins) {
  std::string out{mnemonic(ins.op)};
  if (ins.byte_op) out += ".b";
  if (is_jump(ins.op)) {
    out += " " + hex16(ins.target);
  } else if (ins.op == opcode::reti) {
    // no operands
  } else if (is_format2(ins.op)) {
    out += " " + operand_to_string(ins.dst);
  } else {
    out += " " + operand_to_string(ins.src) + ", " + operand_to_string(ins.dst);
  }
  return out;
}

}  // namespace dialed::isa
