// Cycle model following the MSP430x1xx family user's guide (SLAU049)
// instruction-timing tables. The evaluation's Fig. 6(b) reports runtime in
// CPU cycles; this table is what makes those numbers architectural rather
// than host-dependent.
#include "common/error.h"
#include "isa/isa.h"

namespace dialed::isa {

namespace {

int src_extra(addr_mode m, bool cg) {
  switch (m) {
    case addr_mode::reg: return 0;
    case addr_mode::immediate: return cg ? 0 : 1;
    case addr_mode::indirect:
    case addr_mode::indirect_inc: return 1;
    case addr_mode::indexed:
    case addr_mode::symbolic:
    case addr_mode::absolute: return 2;
  }
  return 0;
}

int dst_extra(const operand& d) {
  switch (d.mode) {
    case addr_mode::reg: return d.base == REG_PC ? 1 : 0;
    case addr_mode::indexed:
    case addr_mode::symbolic:
    case addr_mode::absolute: return 3;
    default: return 0;
  }
}

int format2_cycles(opcode op, const operand& o, bool cg) {
  const addr_mode m = o.mode;
  switch (op) {
    case opcode::rrc:
    case opcode::rra:
    case opcode::swpb:
    case opcode::sxt:
      switch (m) {
        case addr_mode::reg: return 1;
        case addr_mode::indirect:
        case addr_mode::indirect_inc: return 3;
        case addr_mode::indexed:
        case addr_mode::symbolic:
        case addr_mode::absolute: return 4;
        default:
          throw error("isa: immediate operand for shift/rotate");
      }
    case opcode::push:
      switch (m) {
        case addr_mode::reg: return 3;
        case addr_mode::immediate: return cg ? 3 : 4;
        case addr_mode::indirect: return 4;
        case addr_mode::indirect_inc: return 5;
        case addr_mode::indexed:
        case addr_mode::symbolic:
        case addr_mode::absolute: return 5;
      }
      return 4;
    case opcode::call:
      switch (m) {
        case addr_mode::reg: return 4;
        case addr_mode::immediate: return cg ? 4 : 5;
        case addr_mode::indirect: return 4;
        case addr_mode::indirect_inc: return 5;
        case addr_mode::indexed:
        case addr_mode::symbolic:
        case addr_mode::absolute: return 5;
      }
      return 5;
    default:
      throw error("isa: not a format-II opcode in cycle model");
  }
}

}  // namespace

int cycles(const instruction& ins, bool cg_src) {
  if (is_jump(ins.op)) return 2;
  if (ins.op == opcode::reti) return 5;
  if (is_format2(ins.op)) return format2_cycles(ins.op, ins.dst, cg_src);
  return 1 + src_extra(ins.src.mode, cg_src) + dst_extra(ins.dst);
}

}  // namespace dialed::isa
