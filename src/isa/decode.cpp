#include "common/bytes.h"
#include "common/error.h"
#include "isa/isa.h"

namespace dialed::isa {

namespace {

opcode format1_op(std::uint16_t nibble) {
  switch (nibble) {
    case 0x4: return opcode::mov;
    case 0x5: return opcode::add;
    case 0x6: return opcode::addc;
    case 0x7: return opcode::subc;
    case 0x8: return opcode::sub;
    case 0x9: return opcode::cmp;
    case 0xa: return opcode::dadd;
    case 0xb: return opcode::bit;
    case 0xc: return opcode::bic;
    case 0xd: return opcode::bis;
    case 0xe: return opcode::xor_;
    case 0xf: return opcode::and_;
    default: throw error("isa: bad format-I opcode nibble");
  }
}

opcode format2_op(std::uint16_t bits) {
  switch (bits) {
    case 0: return opcode::rrc;
    case 1: return opcode::swpb;
    case 2: return opcode::rra;
    case 3: return opcode::sxt;
    case 4: return opcode::push;
    case 5: return opcode::call;
    case 6: return opcode::reti;
    default: throw error("isa: bad format-II opcode bits");
  }
}

opcode jump_op(std::uint16_t cond) {
  switch (cond) {
    case 0: return opcode::jne;
    case 1: return opcode::jeq;
    case 2: return opcode::jnc;
    case 3: return opcode::jc;
    case 4: return opcode::jn;
    case 5: return opcode::jge;
    case 6: return opcode::jl;
    case 7: return opcode::jmp;
    default: throw error("isa: bad jump condition");
  }
}

struct src_decode {
  operand op;
  bool uses_ext = false;
  bool cg = false;
};

// Decode a source-style (As) operand; `ext` is the candidate extension word
// and `ext_addr` its byte address (for symbolic mode).
src_decode decode_src(std::uint8_t reg, std::uint8_t as, std::uint16_t ext,
                      std::uint16_t ext_addr) {
  // Constant generators first.
  if (reg == REG_CG2) {
    switch (as) {
      case 0: return {imm_op(0), false, true};
      case 1: return {imm_op(1), false, true};
      case 2: return {imm_op(2), false, true};
      case 3: return {imm_op(0xffff), false, true};
    }
  }
  if (reg == REG_SR && as >= 2) {
    return {imm_op(as == 2 ? 4 : 8), false, true};
  }
  switch (as) {
    case 0: return {reg_op(reg), false, false};
    case 1:
      if (reg == REG_PC) {
        return {{addr_mode::symbolic, REG_PC,
                 static_cast<std::uint16_t>(ext + ext_addr)},
                true, false};
      }
      if (reg == REG_SR) return {abs_op(ext), true, false};
      return {idx_op(reg, ext), true, false};
    case 2: return {ind_op(reg), false, false};
    case 3:
      if (reg == REG_PC) return {imm_op(ext), true, false};
      return {ind_inc_op(reg), false, false};
  }
  throw error("isa: bad As bits");
}

operand decode_dst(std::uint8_t reg, std::uint8_t ad, std::uint16_t ext,
                   std::uint16_t ext_addr, bool* uses_ext) {
  if (ad == 0) {
    *uses_ext = false;
    return reg_op(reg);
  }
  *uses_ext = true;
  if (reg == REG_PC) {
    return {addr_mode::symbolic, REG_PC,
            static_cast<std::uint16_t>(ext + ext_addr)};
  }
  if (reg == REG_SR) return abs_op(ext);
  return idx_op(reg, ext);
}

std::uint16_t word_at(std::span<const std::uint16_t> code, std::size_t i) {
  if (i >= code.size()) {
    throw error("isa: truncated instruction stream");
  }
  return code[i];
}

/// Speculative read of a possible extension word; strictness is enforced
/// after decoding determines whether the word is actually consumed.
std::uint16_t word_or_zero(std::span<const std::uint16_t> code,
                           std::size_t i) {
  return i < code.size() ? code[i] : 0;
}

}  // namespace

decoded decode(std::span<const std::uint16_t> code, std::uint16_t address) {
  const std::uint16_t w = word_at(code, 0);
  decoded out;

  if ((w & 0xe000) == 0x2000) {
    std::int16_t off = static_cast<std::int16_t>(w & 0x3ff);
    if (off & 0x200) off -= 0x400;  // sign-extend 10 bits
    out.ins.op = jump_op((w >> 10) & 7);
    out.ins.target =
        static_cast<std::uint16_t>(address + 2 + 2 * off);
    out.words = 1;
    return out;
  }

  if ((w & 0xfc00) == 0x1000) {
    const opcode op = format2_op((w >> 7) & 7);
    out.ins.op = op;
    if (op == opcode::reti) {
      out.words = 1;
      return out;
    }
    out.ins.byte_op = (w & 0x40) != 0;
    const auto sd =
        decode_src(w & 0xf, (w >> 4) & 3, word_or_zero(code, 1),
                   static_cast<std::uint16_t>(address + 2));
    if (sd.uses_ext) (void)word_at(code, 1);  // enforce availability
    out.ins.dst = sd.op;
    out.words = sd.uses_ext ? 2 : 1;
    // cycles() needs to know whether a CG was used; expose via cg flag.
    out.cg_src = sd.cg;
    return out;
  }

  const std::uint16_t nibble = w >> 12;
  if (nibble < 0x4) {
    throw error("isa: illegal opcode word " + hex16(w) + " at " +
                hex16(address));
  }
  out.ins.op = format1_op(nibble);
  out.ins.byte_op = (w & 0x40) != 0;
  const auto sd =
      decode_src((w >> 8) & 0xf, (w >> 4) & 3, word_or_zero(code, 1),
                 static_cast<std::uint16_t>(address + 2));
  if (sd.uses_ext) (void)word_at(code, 1);  // enforce availability
  out.ins.src = sd.op;
  out.cg_src = sd.cg;
  int words = 1 + (sd.uses_ext ? 1 : 0);
  const bool dst_has_ext = ((w >> 7) & 1) != 0;
  const std::uint16_t dst_ext_word =
      dst_has_ext ? word_at(code, static_cast<std::size_t>(words)) : 0;
  bool dst_ext = false;
  out.ins.dst =
      decode_dst(w & 0xf, (w >> 7) & 1, dst_ext_word,
                 static_cast<std::uint16_t>(address + 2 * words), &dst_ext);
  if (dst_ext) ++words;
  out.words = words;
  return out;
}

}  // namespace dialed::isa
