#include <utility>

#include "common/bytes.h"
#include "common/error.h"
#include "isa/isa.h"

namespace dialed::isa {

namespace {

// Per-format opcode fields.
std::uint16_t format1_nibble(opcode op) {
  switch (op) {
    case opcode::mov: return 0x4;
    case opcode::add: return 0x5;
    case opcode::addc: return 0x6;
    case opcode::subc: return 0x7;
    case opcode::sub: return 0x8;
    case opcode::cmp: return 0x9;
    case opcode::dadd: return 0xa;
    case opcode::bit: return 0xb;
    case opcode::bic: return 0xc;
    case opcode::bis: return 0xd;
    case opcode::xor_: return 0xe;
    case opcode::and_: return 0xf;
    default: throw error("isa: not a format-I opcode");
  }
}

std::uint16_t format2_bits(opcode op) {
  switch (op) {
    case opcode::rrc: return 0;
    case opcode::swpb: return 1;
    case opcode::rra: return 2;
    case opcode::sxt: return 3;
    case opcode::push: return 4;
    case opcode::call: return 5;
    case opcode::reti: return 6;
    default: throw error("isa: not a format-II opcode");
  }
}

std::uint16_t jump_cond(opcode op) {
  switch (op) {
    case opcode::jne: return 0;
    case opcode::jeq: return 1;
    case opcode::jnc: return 2;
    case opcode::jc: return 3;
    case opcode::jn: return 4;
    case opcode::jge: return 5;
    case opcode::jl: return 6;
    case opcode::jmp: return 7;
    default: throw error("isa: not a jump opcode");
  }
}

struct src_encoding {
  std::uint8_t reg;
  std::uint8_t as;
  bool ext_word;
  std::uint16_t ext;
};

// Encode a source (or format-II) operand. `ext_addr` is the byte address
// where the extension word would sit (needed for symbolic mode).
src_encoding encode_src(const operand& o, std::uint16_t ext_addr,
                        bool allow_cg) {
  switch (o.mode) {
    case addr_mode::reg:
      return {o.base, 0, false, 0};
    case addr_mode::indexed:
      if (o.base == REG_CG2) {
        throw error("isa: r3 cannot be an indexed base");
      }
      return {o.base, 1, true, o.ext};
    case addr_mode::symbolic:
      return {REG_PC, 1, true,
              static_cast<std::uint16_t>(o.ext - ext_addr)};
    case addr_mode::absolute:
      return {REG_SR, 1, true, o.ext};
    case addr_mode::indirect:
      if (o.base == REG_CG2 || o.base == REG_SR) {
        throw error("isa: @r2/@r3 are constant-generator encodings");
      }
      return {o.base, 2, false, 0};
    case addr_mode::indirect_inc:
      if (o.base == REG_CG2 || o.base == REG_SR) {
        throw error("isa: @r2+/@r3+ are constant-generator encodings");
      }
      return {o.base, 3, false, 0};
    case addr_mode::immediate: {
      if (allow_cg) {
        if (auto cg = constant_generator(
                static_cast<std::int16_t>(o.ext))) {
          return {cg->first, cg->second, false, 0};
        }
      }
      return {REG_PC, 3, true, o.ext};
    }
  }
  throw error("isa: unknown source addressing mode");
}

struct dst_encoding {
  std::uint8_t reg;
  std::uint8_t ad;
  bool ext_word;
  std::uint16_t ext;
};

dst_encoding encode_dst(const operand& o, std::uint16_t ext_addr) {
  switch (o.mode) {
    case addr_mode::reg:
      return {o.base, 0, false, 0};
    case addr_mode::indexed:
      return {o.base, 1, true, o.ext};
    case addr_mode::symbolic:
      return {REG_PC, 1, true,
              static_cast<std::uint16_t>(o.ext - ext_addr)};
    case addr_mode::absolute:
      return {REG_SR, 1, true, o.ext};
    default:
      throw error(
          "isa: destination must be reg, indexed, symbolic or absolute");
  }
}

}  // namespace

int encoded_words(const instruction& ins, bool allow_cg) {
  if (is_jump(ins.op) || ins.op == opcode::reti) return 1;
  int words = 1;
  if (is_format1(ins.op)) {
    if (ins.src.mode == addr_mode::immediate) {
      if (!(allow_cg &&
            constant_generator(static_cast<std::int16_t>(ins.src.ext)))) {
        ++words;
      }
    } else if (mode_needs_ext(ins.src.mode)) {
      ++words;
    }
    if (mode_needs_ext(ins.dst.mode)) ++words;
    return words;
  }
  // Format II.
  if (ins.dst.mode == addr_mode::immediate) {
    if (!(allow_cg &&
          constant_generator(static_cast<std::int16_t>(ins.dst.ext)))) {
      ++words;
    }
  } else if (mode_needs_ext(ins.dst.mode)) {
    ++words;
  }
  return words;
}

std::vector<std::uint16_t> encode(const instruction& ins,
                                  std::uint16_t address, bool allow_cg) {
  std::vector<std::uint16_t> out;
  if (is_jump(ins.op)) {
    const std::int32_t delta =
        static_cast<std::int32_t>(ins.target) - (address + 2);
    if (delta % 2 != 0) throw error("isa: odd jump offset");
    const std::int32_t words_off = delta / 2;
    if (words_off < -512 || words_off > 511) {
      throw error("isa: jump target out of range from " + hex16(address) +
                  " to " + hex16(ins.target));
    }
    out.push_back(static_cast<std::uint16_t>(
        0x2000 | (jump_cond(ins.op) << 10) |
        (static_cast<std::uint16_t>(words_off) & 0x3ff)));
    return out;
  }

  if (ins.op == opcode::reti) {
    out.push_back(0x1300);
    return out;
  }

  if (is_format2(ins.op)) {
    // The single operand uses the source-mode encoding (As bits).
    const auto se =
        encode_src(ins.dst, static_cast<std::uint16_t>(address + 2),
                   allow_cg);
    if (ins.op == opcode::call && ins.byte_op) {
      throw error("isa: call has no byte form");
    }
    std::uint16_t w = static_cast<std::uint16_t>(
        0x1000 | (format2_bits(ins.op) << 7) |
        (ins.byte_op ? 0x40 : 0) | (se.as << 4) | se.reg);
    out.push_back(w);
    if (se.ext_word) out.push_back(se.ext);
    return out;
  }

  // Format I.
  const auto se = encode_src(
      ins.src, static_cast<std::uint16_t>(address + 2), allow_cg);
  const std::uint16_t dst_ext_addr = static_cast<std::uint16_t>(
      address + 2 + (se.ext_word ? 2 : 0));
  const auto de = encode_dst(ins.dst, dst_ext_addr);
  std::uint16_t w = static_cast<std::uint16_t>(
      (format1_nibble(ins.op) << 12) | (se.reg << 8) | (de.ad << 7) |
      (ins.byte_op ? 0x40 : 0) | (se.as << 4) | de.reg);
  out.push_back(w);
  if (se.ext_word) out.push_back(se.ext);
  if (de.ext_word) out.push_back(de.ext);
  return out;
}

}  // namespace dialed::isa
