// Complete MSP430 core instruction-set model: the 27 native instructions in
// their three encoding formats, all seven addressing modes, the r2/r3
// constant generators, byte/word variants, instruction encoding/decoding and
// the per-instruction cycle model of the MSP430x1xx family.
//
// This is the shared vocabulary of the assembler (src/masm), the emulator
// (src/emu), the instrumentation passes (src/instr) and the verifier's
// abstract executor (src/verifier).
#ifndef DIALED_ISA_ISA_H
#define DIALED_ISA_ISA_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dialed::isa {

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

/// r0..r15. r0=PC, r1=SP, r2=SR/CG1, r3=CG2. DIALED reserves r4 as the log
/// stack pointer R (paper §III-C F5) and this reproduction reserves r5 as
/// instrumentation scratch (see DESIGN.md §3).
enum : std::uint8_t {
  REG_PC = 0,
  REG_SP = 1,
  REG_SR = 2,
  REG_CG2 = 3,
  REG_LOGPTR = 4,   // the paper's dedicated register R
  REG_SCRATCH = 5,  // instrumentation scratch (documented deviation)
};

/// Status-register flag bits.
enum : std::uint16_t {
  SR_C = 1u << 0,
  SR_Z = 1u << 1,
  SR_N = 1u << 2,
  SR_GIE = 1u << 3,
  SR_CPUOFF = 1u << 4,
  SR_V = 1u << 8,
};

/// Printable register name ("pc", "sp", "sr", "r4"...).
std::string reg_name(std::uint8_t r);

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class opcode : std::uint8_t {
  // Format I (double operand)
  mov, add, addc, subc, sub, cmp, dadd, bit, bic, bis, xor_, and_,
  // Format II (single operand)
  rrc, swpb, rra, sxt, push, call, reti,
  // Format III (relative jumps)
  jne, jeq, jnc, jc, jn, jge, jl, jmp,
};

// Format predicates ride on the enum's contiguous layout; constexpr and
// header-inline because the emulator's dispatch asks them once per
// executed instruction.
constexpr bool is_format1(opcode op) {
  return op >= opcode::mov && op <= opcode::and_;
}
constexpr bool is_format2(opcode op) {
  return op >= opcode::rrc && op <= opcode::reti;
}
constexpr bool is_jump(opcode op) {
  return op >= opcode::jne && op <= opcode::jmp;
}

/// Canonical mnemonic ("mov", "xor", "jne", ...). Never includes ".b".
std::string_view mnemonic(opcode op);

/// Reverse lookup; accepts canonical mnemonics only (no emulated forms —
/// those are resolved by the assembler). Returns nullopt when unknown.
std::optional<opcode> opcode_from_mnemonic(std::string_view m);

// ---------------------------------------------------------------------------
// Addressing modes
// ---------------------------------------------------------------------------

enum class addr_mode : std::uint8_t {
  reg,           ///< Rn
  indexed,       ///< X(Rn)
  symbolic,      ///< ADDR   (PC-relative, encoded as X(PC))
  absolute,      ///< &ADDR  (encoded as X(SR))
  indirect,      ///< @Rn
  indirect_inc,  ///< @Rn+
  immediate,     ///< #N     (encoded as @PC+ or via constant generator)
};

/// True for modes that read (or write) data memory when used as an operand.
/// `immediate` and `reg` do not touch data memory.
bool mode_touches_memory(addr_mode m);

/// True if the mode needs a 16-bit extension word in the instruction stream
/// (constant-generator immediates do not; plain immediates do).
bool mode_needs_ext(addr_mode m);

/// If `value` is representable by the r2/r3 constant generator (0, 1, 2, 4,
/// 8, -1), returns the (reg, as_bits) encoding; otherwise nullopt.
std::optional<std::pair<std::uint8_t, std::uint8_t>> constant_generator(
    std::int32_t value);

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

/// A fully resolved operand. For `indexed` the effective address is
/// `R[base]+ext`; for `absolute`/`symbolic` it is `ext` (symbolic stores the
/// final absolute target; PC-relative displacement is computed at encode
/// time); for `immediate` `ext` is the literal value.
struct operand {
  addr_mode mode = addr_mode::reg;
  std::uint8_t base = 0;
  std::uint16_t ext = 0;

  bool operator==(const operand&) const = default;
};

inline operand reg_op(std::uint8_t r) { return {addr_mode::reg, r, 0}; }
inline operand imm_op(std::uint16_t v) {
  return {addr_mode::immediate, REG_PC, v};
}
inline operand abs_op(std::uint16_t a) {
  return {addr_mode::absolute, REG_SR, a};
}
inline operand idx_op(std::uint8_t r, std::uint16_t x) {
  return {addr_mode::indexed, r, x};
}
inline operand ind_op(std::uint8_t r) { return {addr_mode::indirect, r, 0}; }
inline operand ind_inc_op(std::uint8_t r) {
  return {addr_mode::indirect_inc, r, 0};
}

/// One decoded/encodable instruction.
///
/// Format I uses `src` and `dst`; format II uses only `dst` (reti uses
/// neither); jumps use `target` (absolute byte address of the destination).
struct instruction {
  opcode op = opcode::mov;
  bool byte_op = false;  ///< ".b" suffix
  operand src{};
  operand dst{};
  std::uint16_t target = 0;  ///< jump destination (absolute address)

  bool operator==(const instruction&) const = default;
};

/// Number of 16-bit code words the instruction occupies (1..3).
/// Constant-generator-eligible immediates in `src` count as 0 extension
/// words only when `allow_cg` (the assembler disables CG for symbolic
/// immediates so sizes are stable across passes).
int encoded_words(const instruction& ins, bool allow_cg = true);

/// Encode at byte address `address` (needed for symbolic/jump offsets).
/// Returns 1-3 words. Throws dialed::error for unencodable combinations
/// (e.g. immediate destination, jump out of range).
std::vector<std::uint16_t> encode(const instruction& ins,
                                  std::uint16_t address,
                                  bool allow_cg = true);

/// Result of decoding: the instruction plus its size in words. `cg_src`
/// records that the source immediate came from a constant generator (no
/// extension word; register-mode timing).
struct decoded {
  instruction ins;
  int words = 1;
  bool cg_src = false;
};

/// Decode the instruction starting at `code[0]`, located at byte address
/// `address`. Throws dialed::error on illegal encodings.
decoded decode(std::span<const std::uint16_t> code, std::uint16_t address);

/// Render an instruction as assembly text (for listings / forensics).
std::string to_string(const instruction& ins);

// ---------------------------------------------------------------------------
// Cycle model (MSP430x1xx family user's guide, tables 3-14/3-15/3-16)
// ---------------------------------------------------------------------------

/// CPU cycles consumed by one execution of `ins`. For jumps the cost is the
/// same taken or not (2). `cg_src` marks a source immediate that was encoded
/// via the constant generator (register timing).
int cycles(const instruction& ins, bool cg_src);

/// Cycles charged for taking an interrupt (latency to first ISR instruction).
inline constexpr int interrupt_cycles = 6;

}  // namespace dialed::isa

#endif  // DIALED_ISA_ISA_H
