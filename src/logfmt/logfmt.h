// Model of the OR log layout (paper §III-C, F5): CF-Log and I-Log are one
// merged stack of 16-bit slots growing DOWN from OR_MAX, with the top
// pointer held in r4. Slot k lives at address OR_MAX - 2k:
//
//   slot 0            saved base stack pointer (DIALED F3, Fig. 4)
//   slots 1..8        argument registers r8..r15 (r8 first)
//   slots 9..         interleaved CF destinations and data inputs, in
//                     execution order (untagged on the device; the verifier
//                     annotates them during abstract execution)
#ifndef DIALED_LOGFMT_LOGFMT_H
#define DIALED_LOGFMT_LOGFMT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace dialed::logfmt {

/// A decoded view over an OR snapshot ([or_min, or_max+1] inclusive).
class log_view {
 public:
  log_view(std::uint16_t or_min, std::uint16_t or_max,
           std::span<const std::uint8_t> or_bytes);

  std::uint16_t or_min() const { return or_min_; }
  std::uint16_t or_max() const { return or_max_; }

  /// Total slot capacity of the OR.
  int capacity() const;

  /// Word value of slot `k` (k=0 at OR_MAX). Throws when out of range.
  std::uint16_t slot(int k) const;

  /// Word at an absolute OR address.
  std::uint16_t word_at(std::uint16_t addr) const;

  /// Slot 0: the op's base stack pointer saved at entry.
  std::uint16_t saved_sp() const { return slot(0); }

  /// Value logged for register r8+i at entry (i in 0..7).
  std::uint16_t entry_reg(int i) const { return slot(1 + i); }

  /// Value of the i-th C-level argument: arg i is passed in register
  /// r(15-i), which the entry stub logs as slot 1+(15-i-8) = slot 8-i.
  std::uint16_t argument(int i) const { return slot(8 - i); }

  /// Number of used slots given the final log pointer r4.
  int used_slots(std::uint16_t final_r4) const;
  /// Bytes consumed by the log given the final log pointer r4 (the paper's
  /// Fig. 6(c) metric).
  int used_bytes(std::uint16_t final_r4) const;

 private:
  std::uint16_t or_min_;
  std::uint16_t or_max_;
  byte_vec bytes_;
};

/// Verifier-side annotation of one log slot, reconstructed during abstract
/// execution (forensics / EXPERIMENTS reporting; not used for the verdict).
enum class entry_kind : std::uint8_t {
  saved_sp,
  entry_arg,
  cf_destination,
  data_input,
  unknown,
};

std::string to_string(entry_kind k);

struct annotated_entry {
  int slot = 0;
  std::uint16_t value = 0;
  entry_kind kind = entry_kind::unknown;
  std::uint16_t source_pc = 0;  ///< instruction that produced the entry
};

}  // namespace dialed::logfmt

#endif  // DIALED_LOGFMT_LOGFMT_H
