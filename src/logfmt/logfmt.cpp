#include "logfmt/logfmt.h"

#include "common/error.h"

namespace dialed::logfmt {

log_view::log_view(std::uint16_t or_min, std::uint16_t or_max,
                   std::span<const std::uint8_t> or_bytes)
    : or_min_(or_min), or_max_(or_max),
      bytes_(or_bytes.begin(), or_bytes.end()) {
  const std::size_t expected =
      static_cast<std::size_t>(or_max) + 2 - or_min;
  if (bytes_.size() != expected) {
    throw error("logfmt: OR snapshot size mismatch (got " +
                std::to_string(bytes_.size()) + ", expected " +
                std::to_string(expected) + ")");
  }
}

int log_view::capacity() const { return (or_max_ + 2 - or_min_) / 2; }

std::uint16_t log_view::slot(int k) const {
  if (k < 0 || k >= capacity()) {
    throw error("logfmt: slot index " + std::to_string(k) + " out of range");
  }
  return word_at(static_cast<std::uint16_t>(or_max_ - 2 * k));
}

std::uint16_t log_view::word_at(std::uint16_t addr) const {
  if (addr < or_min_ || addr + 1 > or_max_ + 1) {
    throw error("logfmt: address " + hex16(addr) + " outside the OR");
  }
  return load_le16(bytes_, static_cast<std::size_t>(addr - or_min_));
}

int log_view::used_slots(std::uint16_t final_r4) const {
  if (final_r4 > or_max_) return 0;
  return (or_max_ - final_r4) / 2;
}

int log_view::used_bytes(std::uint16_t final_r4) const {
  return 2 * used_slots(final_r4);
}

std::string to_string(entry_kind k) {
  switch (k) {
    case entry_kind::saved_sp: return "saved-sp";
    case entry_kind::entry_arg: return "entry-arg";
    case entry_kind::cf_destination: return "cf-dest";
    case entry_kind::data_input: return "data-input";
    case entry_kind::unknown: return "unknown";
  }
  return "?";
}

}  // namespace dialed::logfmt
