// The embedded applications of the paper's evaluation (§V-B) re-implemented
// in mini-C, plus the two vulnerable operations of Figures 1 and 2 with
// concrete attack payloads.
//
// Peripheral addresses are the numeric defaults of emu::memory_map:
// P3OUT=0x19 (25), NET_DATA=0x76 (118), NET_AVAIL=0x77 (119),
// ADC_MEM=0x140 (320).
#ifndef DIALED_APPS_APPS_H
#define DIALED_APPS_APPS_H

#include <memory>
#include <string>
#include <vector>

#include "instr/oplink.h"
#include "proto/prover.h"
#include "verifier/replay.h"

namespace dialed::apps {

struct app_spec {
  std::string name;    ///< display name used in the Fig. 6 benches
  std::string source;  ///< mini-C translation unit
  std::string entry;   ///< attested embedded operation
  proto::invocation representative_input;  ///< workload for Fig. 6 numbers
};

/// The three applications of the paper's Fig. 6: SyringePump, FireSensor,
/// UltrasonicRanger.
std::vector<app_spec> evaluation_apps();

/// Paper Fig. 1: syringe-pump operation vulnerable to a stack-smashing
/// control-flow attack via an unchecked memcpy length.
app_spec fig1_app();
/// Benign command: inject `dose` units (dose < 10).
proto::invocation fig1_benign(int dose);
/// The attack: 6 command words; word 5 overwrites parse_commands' return
/// address with &do_actuation, bypassing the dose<10 safety check.
proto::invocation fig1_attack(const instr::linked_program& prog, int dose);

/// Paper Fig. 2: settings-update operation vulnerable to a data-only
/// attack (settings[8] aliases the adjacent `set` actuation word).
app_spec fig2_app();
/// Benign update: settings[index] = value with index in bounds.
proto::invocation fig2_benign(int value, int index);
/// The attack: index=8, value=0 clobbers `set`; control flow is unchanged.
proto::invocation fig2_attack();

/// DoorLock: an extension app beyond the paper's three — a keypad lock
/// whose unchecked digit copy lets 12 keypresses overwrite the master code
/// (a byte-granularity data-only attack, invisible to CFA).
app_spec door_lock_app();
/// Type `digits` at the keypad (len = digits.size()).
proto::invocation door_lock_try(const std::vector<std::uint8_t>& digits);
/// The overflow: the chosen `pin` is written over both `entered` and
/// `master`, so the door opens for the attacker's PIN.
proto::invocation door_lock_attack(const std::vector<std::uint8_t>& pin);

/// Convenience: build an app at a given instrumentation level.
instr::linked_program build_app(const app_spec& app, instr::instrumentation mode,
                                const instr::pass_options& popts = {});

/// Safety policy for the medical operations: any non-zero actuation write
/// to P3OUT requires the (replayed) `dose` global to be below 10.
std::shared_ptr<verifier::policy> dose_actuation_policy(int max_dose = 10);

}  // namespace dialed::apps

#endif  // DIALED_APPS_APPS_H
