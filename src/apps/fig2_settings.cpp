// Paper Fig. 2: an embedded application vulnerable to a data-only attack.
// `settings[8]` is written with an attacker-chosen index; index 8 lands on
// the adjacent global `set` (the actuation port mask), so actuation is
// silently disabled without any change to the control flow — invisible to
// CFA, caught by DIALED.
//
// Layout note: the paper declares `set` first; this toolchain allocates
// globals in declaration order, so `settings` is declared first to make
// `set` the word at settings+16, exactly the aliasing the paper describes.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// Fig. 2 (DAC'21 DIALED paper). P3OUT = 25.
int settings[8] = {1, 1, 1, 1, 1, 0, 0, 0};  // default settings: dose = 5
int set = 1;  // configured to cause actuation on port 1 (paper line 1)

int define_dosage(int *s) {
  int d = 0;
  int i;
  for (i = 0; i < 8; i++) {
    d = d + s[i];
  }
  return d;
}

int op(int new_setting, int index) {
  settings[index] = new_setting;    // paper line 5: unchecked index
  int dose = define_dosage(settings);
  if (dose < 10) {                  // paper line 7: safety check
    __mmio_w8(25, set);             // paper line 8: actuate via `set`
    __delay_cycles(dose * 50);
  }
  __mmio_w8(25, 0);                 // paper line 11
  return dose;
}
)";

}  // namespace

app_spec fig2_app() {
  app_spec s;
  s.name = "Fig2-SettingsOp";
  s.source = source;
  s.entry = "op";
  s.representative_input = fig2_benign(1, 3);
  return s;
}

proto::invocation fig2_benign(int value, int index) {
  proto::invocation inv;
  inv.args[0] = static_cast<std::uint16_t>(value);
  inv.args[1] = static_cast<std::uint16_t>(index);
  return inv;
}

proto::invocation fig2_attack() {
  // new_setting = 0, index = 8: settings[8] aliases `set`, so the write
  // turns actuation off while every branch goes the same way as a benign
  // in-bounds update that leaves the dosage unchanged.
  proto::invocation inv;
  inv.args[0] = 0;
  inv.args[1] = 8;
  return inv;
}

}  // namespace dialed::apps
