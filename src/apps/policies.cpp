// App-specific verifier policies. Unlike OAT's programmer annotations
// (which the paper criticizes, §I), these run entirely on Vrf over the
// replayed execution; the device code is never annotated.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

/// Fires when the replay writes a non-zero actuation value to P3OUT while
/// the `dose` global is at or above the safety limit — the invariant the
/// Fig. 1 code is supposed to enforce with its `dose < 10` check.
class dose_policy final : public verifier::policy {
 public:
  explicit dose_policy(int max_dose) : max_dose_(max_dose) {}

  std::string name() const override { return "dose-actuation"; }

  void on_write(const verifier::replay_state& st, std::uint16_t addr,
                std::uint16_t value, std::uint16_t pc,
                std::vector<verifier::finding>& out) override {
    constexpr std::uint16_t p3out = 0x0019;
    if (addr != p3out || value == 0) return;
    const std::uint16_t dose = st.global("dose");
    if (static_cast<std::int16_t>(dose) >= max_dose_) {
      out.push_back({verifier::attack_kind::policy_violation,
                     "actuation with dose=" + std::to_string(dose) +
                         " >= " + std::to_string(max_dose_),
                     pc, addr});
    }
  }

 private:
  int max_dose_;
};

}  // namespace

std::shared_ptr<verifier::policy> dose_actuation_policy(int max_dose) {
  return std::make_shared<dose_policy>(max_dose);
}

}  // namespace dialed::apps
