// UltrasonicRanger: modelled on the Grove ultrasonic ranger LaunchPad demo
// (the paper's evaluation app #3, "a sensor used in vehicles to measure
// distance from obstacles"). The op fires trigger pulses, averages the echo
// round-trip times, and converts to centimeters with the HC-SR04 divisor.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// Grove-style ultrasonic ranger operation. P3OUT = 25, ADC/echo = 320.
int last_distance_cm = 0;

int measure_echo() {
  __mmio_w8(25, 1);        // trigger pulse high
  __delay_cycles(10);      // >10us trigger
  __mmio_w8(25, 0);        // trigger low
  __mmio_w16(320, 1);      // latch the echo time
  return __mmio_r16(320);  // echo round-trip time in microseconds
}

int op(int samples) {
  int sum = 0;
  int i;
  if (samples < 1) {
    samples = 1;
  }
  if (samples > 8) {
    samples = 8;
  }
  for (i = 0; i < samples; i++) {
    sum = sum + measure_echo();
  }
  int us = sum / samples;
  int cm = us / 58;        // HC-SR04: distance(cm) = echo(us) / 58
  last_distance_cm = cm;
  return cm;
}
)";

}  // namespace

app_spec ultrasonic_ranger_app() {
  app_spec s;
  s.name = "UltrasonicRanger";
  s.source = source;
  s.entry = "op";
  proto::invocation inv;
  inv.args[0] = 4;                                // average over 4 pings
  inv.adc_samples = {1180, 1160, 1220, 1200};     // ~20cm echoes
  s.representative_input = inv;
  return s;
}

}  // namespace dialed::apps
