// DoorLock: an extension application beyond the paper's three (same device
// class: keypad + latch actuator). Demonstrates a byte-granularity
// data-only attack: the keypad handler copies `len` digits into a 6-byte
// buffer without a bound, and the master code lives right behind it — an
// attacker who sends 12 digits overwrites the master code with their own
// PIN and walks in. Control flow is identical to a wrong-PIN attempt plus
// a successful unlock; only DIALED's data-flow evidence reveals it.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// Smart door lock. P3OUT = 25 (latch), NET_DATA = 118 (keypad).
char entered[6];                       // digits typed at the keypad
char master[6] = {3, 1, 4, 1, 5, 9};   // installer-set master code
int fail_count = 0;

int net_byte() {
  int b = __mmio_r8(118);
  __mmio_w8(118, 0);
  return b;
}

void latch(int open) {
  if (open) {
    __mmio_w8(25, 1);                  // energize the strike
  } else {
    __mmio_w8(25, 0);
  }
}

int op(int len) {
  int i;
  for (i = 0; i < len; i++) {
    entered[i] = net_byte();           // no bound check on len!
  }
  int ok = 1;
  for (i = 0; i < 6; i++) {
    if (entered[i] != master[i]) {
      ok = 0;
    }
  }
  if (ok) {
    latch(1);
    fail_count = 0;
  } else {
    latch(0);
    fail_count = fail_count + 1;
  }
  return ok;
}
)";

}  // namespace

app_spec door_lock_app() {
  app_spec s;
  s.name = "DoorLock";
  s.source = source;
  s.entry = "op";
  s.representative_input = door_lock_try({3, 1, 4, 1, 5, 9});
  return s;
}

proto::invocation door_lock_try(const std::vector<std::uint8_t>& digits) {
  proto::invocation inv;
  inv.args[0] = static_cast<std::uint16_t>(digits.size());
  inv.net_rx = digits;
  return inv;
}

proto::invocation door_lock_attack(const std::vector<std::uint8_t>& pin) {
  // Send the chosen PIN twice: bytes 0..5 fill `entered`, bytes 6..11
  // overflow onto `master` — both now hold the attacker's PIN, so the
  // comparison succeeds and the latch opens.
  proto::invocation inv;
  inv.args[0] = static_cast<std::uint16_t>(2 * pin.size());
  inv.net_rx = pin;
  inv.net_rx.insert(inv.net_rx.end(), pin.begin(), pin.end());
  return inv;
}

}  // namespace dialed::apps
