// SyringePump: modelled on OpenSyringePump (the paper's evaluation app #1).
// The op consumes a network command ('+'/'-' plus a step count), drives the
// stepper motor through GPIO pulses with a bounded plunger position, and
// reports how many steps were actually taken. Control-flow intensive
// (per-step loop) with a handful of network inputs.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// OpenSyringePump-style embedded operation. P3OUT = 25, NET_DATA = 118,
// NET_AVAIL = 119.
int plunger_pos = 0;       // persistent plunger position (in steps)
int steps_per_ul = 2;      // calibration: steps per microliter

int net_byte() {
  int b = __mmio_r8(118);   // read FIFO head (idempotent)
  __mmio_w8(118, 0);        // acknowledge/advance
  return b;
}

void pulse_motor(int pattern) {
  __mmio_w8(25, pattern);  // direction + step bit
  __delay_cycles(10);      // motor timing
  __mmio_w8(25, 0);
}

int op(int max_steps) {
  int cmd = net_byte();    // '+' = push (43), '-' = pull (45)
  int ul = net_byte();     // requested volume in microliters
  int steps = ul * steps_per_ul;
  int moved = 0;
  int i;
  if (steps > max_steps) {
    steps = max_steps;
  }
  if (cmd == 43) {
    for (i = 0; i < steps; i++) {
      if (plunger_pos < 200) {
        pulse_motor(1);
        plunger_pos = plunger_pos + 1;
        moved = moved + 1;
      }
    }
  }
  if (cmd == 45) {
    for (i = 0; i < steps; i++) {
      if (plunger_pos > 0) {
        pulse_motor(2);
        plunger_pos = plunger_pos - 1;
        moved = moved + 1;
      }
    }
  }
  return moved;
}
)";

}  // namespace

app_spec syringe_pump_app() {
  app_spec s;
  s.name = "SyringePump";
  s.source = source;
  s.entry = "op";
  proto::invocation inv;
  inv.args[0] = 64;            // max_steps
  inv.net_rx = {'+', 12};      // push 12 microliters = 24 steps
  s.representative_input = inv;
  return s;
}

}  // namespace dialed::apps
