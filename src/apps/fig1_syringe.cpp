// Paper Fig. 1: an embedded medical application vulnerable to a
// control-flow attack. `parse_commands` copies `length` words of a network
// command into a 5-word local buffer without a bounds check; with length=6
// the 6th word lands exactly on the function's saved return address (the
// paper: "the return address can be overwritten with the value of
// recv_commands[5]"). Redirecting it to `do_actuation` bypasses the
// `dose < 10` safety check.
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// Fig. 1 (DAC'21 DIALED paper), restructured for the mini-C toolchain:
// the actuation body is its own function so the attack target is a stable
// symbol. P3OUT = 25, NET_DATA = 118.
int dose = 0;
int rx_buffer[16];

int net_byte() {
  int b = __mmio_r8(118);   // read FIFO head (idempotent)
  __mmio_w8(118, 0);        // acknowledge/advance
  return b;
}

int net_word() {
  int lo = net_byte();
  int hi = net_byte();
  return lo + (hi << 8);
}

void do_actuation() {
  __mmio_w8(25, 1);                 // paper line 5: trigger injection
  __delay_cycles(dose * 10);        // paper line 6: duration ~ dose
  __mmio_w8(25, 0);                 // paper line 8: stop
}

void inject_medicine() {
  if (dose < 10) {                  // paper line 4: overdose safety check
    do_actuation();
  }
}

int process_commands(int *cmds) {
  return cmds[0];                   // command word 0 carries the dosage
}

void parse_commands(int length) {
  int copy_of_commands[5];
  memcpy(copy_of_commands, rx_buffer, length * 2);  // paper line 13: no check
  dose = process_commands(copy_of_commands);
}

int op(int length) {
  int i;
  if (length > 16) { length = 16; }
  for (i = 0; i < length; i++) {
    rx_buffer[i] = net_word();      // network input -> I-Log entries
  }
  parse_commands(length);
  inject_medicine();
  return dose;
}
)";

}  // namespace

app_spec fig1_app() {
  app_spec s;
  s.name = "Fig1-SyringeOp";
  s.source = source;
  s.entry = "op";
  s.representative_input = fig1_benign(5);
  return s;
}

proto::invocation fig1_benign(int dose) {
  proto::invocation inv;
  inv.args[0] = 1;  // one command word
  inv.net_rx = {static_cast<std::uint8_t>(dose), 0};
  return inv;
}

proto::invocation fig1_attack(const instr::linked_program& prog, int dose) {
  // Stack picture inside parse_commands (with S = the op's frame base):
  //   copy_of_commands[0..4] at S-12..S-3, saved RA at S-2, the op's
  //   `length` slot at S, its `i` slot at S+2, the op's own RA at S+4.
  // Eight command words reach S+2. Word 5 redirects parse_commands' return
  // into do_actuation (bypassing the dose<10 check — the paper's "jump to
  // line 5"); words 6 and 7 chain do_actuation's return through the op's
  // final `ret` (at ER_max) twice, so the stack unwinds onto the real
  // return address and execution exits ER cleanly with EXEC = 1 — only the
  // control-flow evidence in CF-Log betrays the attack.
  proto::invocation inv;
  inv.args[0] = 8;
  const std::uint16_t target = prog.image.symbol("do_actuation");
  auto push_word = [&](std::uint16_t w) {
    inv.net_rx.push_back(static_cast<std::uint8_t>(w & 0xff));
    inv.net_rx.push_back(static_cast<std::uint8_t>(w >> 8));
  };
  push_word(static_cast<std::uint16_t>(dose));  // word 0: the (huge) dose
  push_word(0);
  push_word(0);
  push_word(0);
  push_word(0);
  push_word(target);        // word 5: smashes parse_commands' return
  push_word(prog.er_max);   // word 6: gadget — the op's final `ret`
  push_word(prog.er_max);   // word 7: gadget again -> pops the real RA
  return inv;
}

}  // namespace dialed::apps
