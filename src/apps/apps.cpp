#include "apps/apps.h"

namespace dialed::apps {

// Defined in the per-app translation units.
app_spec syringe_pump_app();
app_spec fire_sensor_app();
app_spec ultrasonic_ranger_app();

std::vector<app_spec> evaluation_apps() {
  return {syringe_pump_app(), fire_sensor_app(), ultrasonic_ranger_app()};
}

instr::linked_program build_app(const app_spec& app,
                                instr::instrumentation mode,
                                const instr::pass_options& popts) {
  instr::link_options lo;
  lo.entry = app.entry;
  lo.mode = mode;
  lo.pass_opts = popts;
  return instr::build_operation(app.source, lo);
}

}  // namespace dialed::apps
