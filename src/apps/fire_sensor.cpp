// FireSensor: modelled on the Grove temperature/humidity LaunchPad demo
// (the paper's evaluation app #2). The op samples the ADC, maintains a
// ring-buffer history in global memory, smooths it, and raises the alarm
// GPIO when the average crosses the threshold. Data-input intensive: every
// history word read is an I-Log entry (reads of globals are inputs under
// Definition 1).
#include "apps/apps.h"

namespace dialed::apps {

namespace {

constexpr const char* source = R"(
// Grove-style fire/temperature sensor operation. P3OUT = 25, ADC = 320.
int history[8];
int hist_idx = 0;
int alarm_latched = 0;

int read_adc() {
  __mmio_w16(320, 1);       // trigger a conversion
  return __mmio_r16(320);   // read the converted sample (idempotent)
}

int op(int threshold) {
  int t = read_adc();
  history[hist_idx] = t;
  hist_idx = hist_idx + 1;
  if (hist_idx >= 8) {
    hist_idx = 0;
  }
  int sum = 0;
  int i;
  for (i = 0; i < 8; i++) {
    sum = sum + history[i];
  }
  int avg = sum / 8;
  if (avg > threshold) {
    __mmio_w8(25, 1);     // alarm on
    alarm_latched = 1;
  } else {
    __mmio_w8(25, 0);
  }
  return avg;
}
)";

}  // namespace

app_spec fire_sensor_app() {
  app_spec s;
  s.name = "FireSensor";
  s.source = source;
  s.entry = "op";
  proto::invocation inv;
  inv.args[0] = 300;                 // alarm threshold
  inv.adc_samples = {280};           // one fresh temperature sample
  s.representative_input = inv;
  return s;
}

}  // namespace dialed::apps
