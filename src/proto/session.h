// The verifier side of the challenge-response protocol: nonce management
// (anti-replay) around the core report verification.
#ifndef DIALED_PROTO_SESSION_H
#define DIALED_PROTO_SESSION_H

#include <optional>
#include <random>

#include "verifier/verifier.h"

namespace dialed::proto {

class verifier_session {
 public:
  /// `prog` is Vrf's reference build of the deployed program; `seed` makes
  /// challenge generation reproducible in tests.
  verifier_session(instr::linked_program prog, byte_vec key,
                   std::uint64_t seed = 0x1a2b3c4d5e6f7788ull);

  /// Draw a fresh 16-byte challenge and remember it as outstanding.
  std::array<std::uint8_t, 16> new_challenge();

  /// Verify a report against the outstanding challenge (which is consumed:
  /// re-submitting the same report is rejected as a replay).
  verifier::verdict check(const verifier::attestation_report& report);

  verifier::op_verifier& core() { return verifier_; }

 private:
  verifier::op_verifier verifier_;
  std::mt19937_64 rng_;
  std::optional<std::array<std::uint8_t, 16>> outstanding_;
};

}  // namespace dialed::proto

#endif  // DIALED_PROTO_SESSION_H
