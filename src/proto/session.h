// The v1 single-device verifier session, now a thin adapter over the
// fleet layer: one private device_registry entry (enrolled with the raw
// pre-shared key, no KDF) and a verifier_hub configured for exactly one
// outstanding challenge. Enrollment interns the program into the
// registry's firmware catalog, so even the v1 surface verifies off a
// shared immutable firmware_artifact (see artifact()).
//
// v1 behavior, preserved deliberately: `new_challenge` SUPERSEDES a
// still-outstanding challenge without telling the caller — the hub reports
// the eviction explicitly (challenge_grant::note = challenge_superseded,
// and a late report gets proto_error::challenge_superseded), but this
// adapter swallows the note and folds every protocol error into a
// stale_challenge finding, because that is the v1 contract callers and
// tests were written against. Fleet code should use fleet::verifier_hub
// directly and get the typed errors.
#ifndef DIALED_PROTO_SESSION_H
#define DIALED_PROTO_SESSION_H

#include "fleet/verifier_hub.h"

namespace dialed::proto {

class verifier_session {
 public:
  /// `prog` is Vrf's reference build of the deployed program; `seed` makes
  /// challenge generation reproducible in tests.
  verifier_session(instr::linked_program prog, byte_vec key,
                   std::uint64_t seed = 0x1a2b3c4d5e6f7788ull);

  // hub_ holds a reference to registry_, so the object must not move.
  verifier_session(const verifier_session&) = delete;
  verifier_session& operator=(const verifier_session&) = delete;
  verifier_session(verifier_session&&) = delete;
  verifier_session& operator=(verifier_session&&) = delete;

  /// Draw a fresh 16-byte challenge and remember it as outstanding. Any
  /// previous outstanding challenge is superseded (see file comment).
  std::array<std::uint8_t, 16> new_challenge();

  /// Verify a report against the outstanding challenge. A report carrying
  /// the outstanding nonce consumes it (re-submitting the same report is
  /// rejected as a replay); protocol errors surface as a stale_challenge
  /// finding (v1 contract). One deliberate deviation from v1: a report
  /// whose challenge does NOT match the outstanding nonce no longer burns
  /// that nonce — garbage/unsolicited reports cannot invalidate a live
  /// challenge, so the genuine device's answer still verifies.
  verifier::verdict check(const verifier::attestation_report& report);

  /// Submit a WIRE frame of any supported version — including v2.1 delta
  /// frames, which verify against the session device's or_baseline (kept
  /// by the underlying hub; a baseline-less delta is the typed
  /// baseline_mismatch). Unlike check(), the rich fleet result is
  /// returned so transports can drive the delta fallback negotiation;
  /// unlike hub().submit(), v1 frames (no device id) are accepted and
  /// routed to the session's one device with the sequence check skipped —
  /// they predate sequence numbers.
  fleet::attest_result submit_frame(std::span<const std::uint8_t> frame);

  verifier::op_verifier& core() { return hub_.core(id_); }

  /// The session's interned per-firmware artifact (shared, immutable).
  const std::shared_ptr<const verifier::firmware_artifact>& artifact()
      const {
    return registry_.find(id_)->firmware;
  }

  /// The underlying fleet plumbing, for callers migrating to the hub API.
  fleet::verifier_hub& hub() { return hub_; }
  fleet::device_id id() const { return id_; }

 private:
  fleet::device_registry registry_;
  fleet::verifier_hub hub_;
  fleet::device_id id_;
};

}  // namespace dialed::proto

#endif  // DIALED_PROTO_SESSION_H
