#include "proto/prover.h"

#include "common/error.h"

namespace dialed::proto {

byte_vec delta_emitter::encode(std::uint32_t device_id, std::uint32_t seq,
                               const verifier::attestation_report& rep) {
  frame_info info;
  info.device_id = device_id;
  info.seq = seq;
  info.version = wire_v2;
  // The full frame's size is a closed form, so the steady-state delta
  // round never materializes (and throws away) a ~OR-sized full frame
  // just to compare against it.
  const std::size_t full_size = v2_frame_size(rep.or_bytes.size());
  ++stats_.frames;
  stats_.full_bytes += full_size;
  const auto it = baselines_.find(device_id);
  if (it != baselines_.end()) {
    byte_vec delta = encode_delta_frame(info, rep, it->second.seq,
                                        it->second.bytes);
    // A churned OR can make the delta LARGER than the snapshot (segment
    // headers on top of mostly-new bytes); ship whichever is smaller.
    if (delta.size() < full_size) {
      ++stats_.delta_frames;
      stats_.wire_bytes += delta.size();
      return delta;
    }
  }
  byte_vec full = encode_frame(info, rep);
  stats_.wire_bytes += full.size();
  return full;
}

void delta_emitter::note_result(std::uint32_t device_id, std::uint32_t seq,
                                const verifier::attestation_report& rep,
                                proto_error error, bool accepted) {
  if (error == proto_error::baseline_mismatch) {
    // The hub does not hold the baseline this mirror assumes (restart,
    // desync, or it never existed): fall back to full frames until the
    // next acceptance re-establishes one.
    baselines_.erase(device_id);
    return;
  }
  if (error != proto_error::none || !accepted) return;
  // Mirror of the hub's adoption rule: newest accepted round wins.
  const auto it = baselines_.find(device_id);
  if (it == baselines_.end()) {
    baselines_.emplace(device_id, mirror{seq, rep.or_bytes});
  } else if (seq > it->second.seq) {
    it->second.seq = seq;
    it->second.bytes = rep.or_bytes;
  }
}

/// Bus watcher measuring the op's own runtime (ER entry → exit) and the
/// final log pointer, mirroring how the paper isolates the Fig. 6(b)/(c)
/// quantities from startup and attestation costs.
class prover_device::op_meter final : public emu::watcher {
 public:
  op_meter(emu::machine& m, std::uint16_t er_min, std::uint16_t er_max)
      : m_(m), er_min_(er_min), er_max_(er_max) {}

  void on_exec(std::uint16_t pc, const isa::instruction&) override {
    if (!started_ && pc == er_min_) {
      started_ = true;
      start_cycles_ = m_.cycles();
      return;
    }
    if (started_ && !ended_ && (pc < er_min_ || pc > er_max_)) {
      ended_ = true;
      op_cycles_ = m_.cycles() - start_cycles_;
      final_r4_ = m_.get_cpu().regs()[isa::REG_LOGPTR];
    }
  }

  void reset() {
    started_ = ended_ = false;
    start_cycles_ = op_cycles_ = 0;
    final_r4_ = 0;
  }

  bool started() const { return started_; }
  bool ended() const { return ended_; }
  std::uint64_t op_cycles(std::uint64_t now) const {
    if (started_ && !ended_) return now - start_cycles_;
    return op_cycles_;
  }
  std::uint16_t final_r4() const { return final_r4_; }

 private:
  emu::machine& m_;
  std::uint16_t er_min_;
  std::uint16_t er_max_;
  bool started_ = false;
  bool ended_ = false;
  std::uint64_t start_cycles_ = 0;
  std::uint64_t op_cycles_ = 0;
  std::uint16_t final_r4_ = 0;
};

prover_device::prover_device(instr::linked_program prog, byte_vec key)
    : prog_(std::move(prog)), key_(std::move(key)) {
  machine_ = std::make_unique<emu::machine>(prog_.options.map);
  rot_ = std::make_unique<rot::root_of_trust>(*machine_);
  rot_->vrased().provision_key(key_);
  meter_ = std::make_unique<op_meter>(*machine_, prog_.er_min, prog_.er_max);
  machine_->get_bus().add_watcher(meter_.get());
}

prover_device::~prover_device() {
  machine_->get_bus().remove_watcher(meter_.get());
}

std::uint64_t prover_device::last_total_cycles() const {
  return machine_->cycles();
}

verifier::attestation_report prover_device::invoke(
    const std::array<std::uint8_t, 16>& challenge, const invocation& inv) {
  auto& m = *machine_;
  const auto& map = m.map();

  // Fresh boot for this invocation.
  m.load(prog_.image);
  m.reset();
  m.gpio().clear_history();
  meter_->reset();

  // Untrusted device software configures METADATA (bounds + challenge) —
  // modelled as bus writes so the APEX FSM observes them.
  auto& apex = rot_->apex();
  auto meta_w16 = [&](std::uint16_t off, std::uint16_t v) {
    apex.write8(static_cast<std::uint16_t>(map.meta_base + off),
                static_cast<std::uint8_t>(v & 0xff));
    apex.write8(static_cast<std::uint16_t>(map.meta_base + off + 1),
                static_cast<std::uint8_t>(v >> 8));
  };
  meta_w16(emu::META_ER_MIN, prog_.er_min);
  meta_w16(emu::META_ER_MAX, prog_.er_max);
  meta_w16(emu::META_OR_MIN, map.or_min);
  meta_w16(emu::META_OR_MAX, map.or_max);
  for (int i = 0; i < 16; ++i) {
    apex.write8(
        static_cast<std::uint16_t>(map.meta_base + emu::META_CHAL + i),
        challenge[static_cast<std::size_t>(i)]);
  }

  // Operation inputs.
  for (int i = 0; i < 8; ++i) {
    m.mailbox().set_arg(i, inv.args[static_cast<std::size_t>(i)]);
  }
  for (const std::uint8_t b : inv.net_rx) m.net().push_rx(b);
  for (const std::uint16_t s : inv.adc_samples) m.adc().push_sample(s);
  m.gpio().set_input(inv.gpio_in);

  if (inv.before_run) inv.before_run(m);

  // Run to halt (crt0: init → op → SW-Att → halt).
  if (inv.on_step) {
    while (!m.halted() && m.cycles() < inv.max_cycles) {
      inv.on_step(m, m.get_cpu().pc());
      if (m.halted()) break;
      m.run(m.cycles() + 1);  // single step through the run loop
    }
  } else {
    m.run(inv.max_cycles);
  }
  if (!m.halted()) {
    throw error("proto: device did not halt within the cycle budget");
  }

  // Metrics.
  op_cycles_ = meter_->op_cycles(m.cycles());
  log_bytes_ = 0;
  if (prog_.options.mode != instr::instrumentation::none &&
      meter_->ended()) {
    log_bytes_ = static_cast<int>(map.or_max - meter_->final_r4());
  }

  // Build the report from device memory.
  verifier::attestation_report rep;
  rep.er_min = prog_.er_min;
  rep.er_max = prog_.er_max;
  rep.or_min = map.or_min;
  rep.or_max = map.or_max;
  rep.exec = rot_->apex().exec_flag();
  rep.challenge = challenge;
  // The snapshot bound is or_max + 1 INCLUSIVE on purpose: or_max is the
  // address of the topmost 16-bit log slot, whose high byte lives at
  // or_max + 1. SW-Att MACs the same [or_min, or_max+1] range
  // (src/rot/vrased.cpp) and the verifier replays it — trimming the loop
  // to or_max would drop that byte and break every MAC. The layout is
  // documented in src/proto/wire.h and src/emu/memmap.h. The 0xffff
  // clamp keeps the uint16 cast from wrapping the tail read to 0x0000 if
  // a map ever put or_max at the very top (such layouts are rejected by
  // the verifier; the prover must still not read the wrong byte).
  for (std::uint32_t a = map.or_min;
       a <= static_cast<std::uint32_t>(map.or_max) + 1 && a <= 0xffffu;
       ++a) {
    rep.or_bytes.push_back(m.get_bus().peek8(static_cast<std::uint16_t>(a)));
  }
  for (std::uint16_t i = 0; i < 32; ++i) {
    rep.mac[i] = m.get_bus().peek8(static_cast<std::uint16_t>(map.mac_base + i));
  }
  rep.claimed_result = m.mailbox().result();
  rep.halt_code = m.halt_code();
  return rep;
}

}  // namespace dialed::proto
