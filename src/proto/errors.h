// Typed protocol errors shared by the wire codec (transport layer) and the
// fleet verifier hub (challenge/anti-replay layer). A transport error means
// the frame itself is damaged and should be re-requested; a protocol error
// means a well-formed frame failed device or challenge bookkeeping — the
// attestation itself was never evaluated in either case.
#ifndef DIALED_PROTO_ERRORS_H
#define DIALED_PROTO_ERRORS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace dialed::proto {

enum class proto_error : std::uint8_t {
  none,

  // ---- transport (framing) errors, from the wire codec ----
  truncated,     ///< frame shorter than its fixed header + trailer
  bad_magic,     ///< first two bytes are not 0xD1A7
  bad_version,   ///< version byte names no supported wire format
  bad_length,    ///< or_bytes length field inconsistent with frame size
  bad_crc,       ///< CRC-16 mismatch: corrupted in transit

  // ---- fleet/protocol errors, from the verifier hub ----
  unknown_device,        ///< device_id was never provisioned
  stale_nonce,           ///< challenge matches nothing the hub ever issued
  replayed_report,       ///< challenge was already consumed by a report
  challenge_expired,     ///< challenge outlived its TTL before the report
  challenge_superseded,  ///< challenge was evicted by newer ones
  sequence_mismatch,     ///< frame's seq differs from the challenge's seq
  baseline_mismatch,     ///< v2.1 delta names a baseline the hub does not
                         ///< hold — resend the report as a FULL frame
};

/// Number of proto_error values — sizes histogram arrays indexed by the
/// enum (e.g. fleet::hub_stats). Keep in sync with the last enumerator.
inline constexpr std::size_t proto_error_count =
    static_cast<std::size_t>(proto_error::baseline_mismatch) + 1;

/// Checked decode of a persisted error byte (the fleet store journals
/// verdicts as one byte). A byte naming no proto_error means the record
/// is corrupt and the caller must fail closed — never cast the byte
/// directly, a garbage value would silently index out of histogram range.
constexpr bool proto_error_from_u8(std::uint8_t v, proto_error& out) {
  if (v >= proto_error_count) return false;
  out = static_cast<proto_error>(v);
  return true;
}

/// True for errors produced by the framing layer (re-request the frame);
/// false for challenge/device bookkeeping failures (a protocol signal).
constexpr bool is_transport_error(proto_error e) {
  switch (e) {
    case proto_error::truncated:
    case proto_error::bad_magic:
    case proto_error::bad_version:
    case proto_error::bad_length:
    case proto_error::bad_crc:
      return true;
    default:
      return false;
  }
}

std::string to_string(proto_error e);

}  // namespace dialed::proto

#endif  // DIALED_PROTO_ERRORS_H
