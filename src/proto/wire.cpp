#include "proto/wire.h"

namespace dialed::proto {

namespace {
constexpr std::uint16_t wire_magic = 0xd1a7;
constexpr std::uint8_t wire_version = 1;
constexpr std::size_t header_size = 66;
}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xffff;
  for (const std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

byte_vec encode_report(const verifier::attestation_report& rep) {
  byte_vec out(header_size);
  store_le16(out, 0, wire_magic);
  out[2] = wire_version;
  out[3] = rep.exec ? 1 : 0;
  store_le16(out, 4, rep.er_min);
  store_le16(out, 6, rep.er_max);
  store_le16(out, 8, rep.or_min);
  store_le16(out, 10, rep.or_max);
  store_le16(out, 12, rep.claimed_result);
  store_le16(out, 14, rep.halt_code);
  for (int i = 0; i < 16; ++i) {
    out[16 + static_cast<std::size_t>(i)] =
        rep.challenge[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 32; ++i) {
    out[32 + static_cast<std::size_t>(i)] =
        rep.mac[static_cast<std::size_t>(i)];
  }
  store_le16(out, 64, static_cast<std::uint16_t>(rep.or_bytes.size()));
  out.insert(out.end(), rep.or_bytes.begin(), rep.or_bytes.end());
  const std::uint16_t crc = crc16_ccitt(out);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  return out;
}

std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < header_size + 2) return std::nullopt;
  if (load_le16(frame, 0) != wire_magic) return std::nullopt;
  if (frame[2] != wire_version) return std::nullopt;
  const std::size_t or_len = load_le16(frame, 64);
  if (frame.size() != header_size + or_len + 2) return std::nullopt;
  const std::uint16_t crc =
      crc16_ccitt(frame.subspan(0, header_size + or_len));
  if (crc != load_le16(frame, header_size + or_len)) return std::nullopt;

  verifier::attestation_report rep;
  rep.exec = (frame[3] & 1) != 0;
  rep.er_min = load_le16(frame, 4);
  rep.er_max = load_le16(frame, 6);
  rep.or_min = load_le16(frame, 8);
  rep.or_max = load_le16(frame, 10);
  rep.claimed_result = load_le16(frame, 12);
  rep.halt_code = load_le16(frame, 14);
  for (int i = 0; i < 16; ++i) {
    rep.challenge[static_cast<std::size_t>(i)] =
        frame[16 + static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 32; ++i) {
    rep.mac[static_cast<std::size_t>(i)] =
        frame[32 + static_cast<std::size_t>(i)];
  }
  rep.or_bytes.assign(frame.begin() + header_size,
                      frame.begin() + static_cast<std::ptrdiff_t>(
                                          header_size + or_len));
  return rep;
}

}  // namespace dialed::proto
