#include "proto/wire.h"

#include <algorithm>

#include "common/error.h"
#include "crypto/sha256.h"

namespace dialed::proto {

namespace {

constexpr std::size_t v1_header_size = 66;
constexpr std::size_t v2_header_size = 74;
/// v2.1: the v2 fields through the MAC (72 bytes) + baseline_seq (4) +
/// baseline_hash (8) + or_full_len (2) + segment count (2).
constexpr std::size_t v21_header_size = 88;
/// Per-segment framing overhead: offset u16 + length u16. Changed ranges
/// closer than this are cheaper to coalesce than to split.
constexpr std::size_t segment_overhead = 4;

constexpr std::size_t header_size(std::uint8_t version) {
  return version == wire_v1 ? v1_header_size : v2_header_size;
}

/// The 72 bytes v2 and v2.1 share: magic/version/flags/identity/bounds/
/// claims/challenge/MAC. `out` must already be sized >= 72.
void write_v2_prefix(std::span<std::uint8_t> out, std::uint8_t version,
                     const frame_info& info,
                     const verifier::attestation_report& rep) {
  store_le16(out, 0, wire_magic);
  out[2] = version;
  out[3] = rep.exec ? 1 : 0;
  store_le32(out, 4, info.device_id);
  store_le32(out, 8, info.seq);
  store_le16(out, 12, rep.er_min);
  store_le16(out, 14, rep.er_max);
  store_le16(out, 16, rep.or_min);
  store_le16(out, 18, rep.or_max);
  store_le16(out, 20, rep.claimed_result);
  store_le16(out, 22, rep.halt_code);
  for (std::size_t i = 0; i < 16; ++i) out[24 + i] = rep.challenge[i];
  for (std::size_t i = 0; i < 32; ++i) out[40 + i] = rep.mac[i];
}

void append_crc(byte_vec& out) {
  const std::uint16_t crc = crc16_ccitt(out);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
}

}  // namespace

std::string to_string(proto_error e) {
  switch (e) {
    case proto_error::none: return "none";
    case proto_error::truncated: return "truncated";
    case proto_error::bad_magic: return "bad_magic";
    case proto_error::bad_version: return "bad_version";
    case proto_error::bad_length: return "bad_length";
    case proto_error::bad_crc: return "bad_crc";
    case proto_error::unknown_device: return "unknown_device";
    case proto_error::stale_nonce: return "stale_nonce";
    case proto_error::replayed_report: return "replayed_report";
    case proto_error::challenge_expired: return "challenge_expired";
    case proto_error::challenge_superseded: return "challenge_superseded";
    case proto_error::sequence_mismatch: return "sequence_mismatch";
    case proto_error::baseline_mismatch: return "baseline_mismatch";
  }
  return "?";
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  // Table-driven (one lookup per byte, ~8x the bitwise loop): the frame
  // CRC runs over every report on the hot verify path, where the bitwise
  // version was the single biggest decode cost.
  static const auto table = [] {
    std::array<std::uint16_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint16_t c = static_cast<std::uint16_t>(i << 8);
      for (int k = 0; k < 8; ++k) {
        c = (c & 0x8000) ? static_cast<std::uint16_t>((c << 1) ^ 0x1021)
                         : static_cast<std::uint16_t>(c << 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint16_t crc = 0xffff;
  for (const std::uint8_t b : data) {
    crc = static_cast<std::uint16_t>(
        (crc << 8) ^ table[((crc >> 8) ^ b) & 0xffu]);
  }
  return crc;
}

proto_error encode_frame_into(const frame_info& info,
                              const verifier::attestation_report& rep,
                              byte_vec& out) {
  out.clear();
  if (info.version != wire_v1 && info.version != wire_v2) {
    return proto_error::bad_version;
  }
  if (rep.or_bytes.size() > max_or_bytes) {
    // The length field is 16 bits; a larger OR used to be silently
    // truncated here, emitting a frame whose length/CRC never validate.
    return proto_error::bad_length;
  }
  const std::size_t hdr = header_size(info.version);
  out.resize(hdr);
  store_le16(out, 0, wire_magic);
  out[2] = info.version;
  out[3] = rep.exec ? 1 : 0;
  // Bounds and claims land at version-dependent offsets: v2 inserts the
  // 8-byte (device_id, seq) pair after the flags byte.
  std::size_t off = 4;
  if (info.version == wire_v2) {
    store_le32(out, 4, info.device_id);
    store_le32(out, 8, info.seq);
    off = 12;
  }
  store_le16(out, off + 0, rep.er_min);
  store_le16(out, off + 2, rep.er_max);
  store_le16(out, off + 4, rep.or_min);
  store_le16(out, off + 6, rep.or_max);
  store_le16(out, off + 8, rep.claimed_result);
  store_le16(out, off + 10, rep.halt_code);
  for (std::size_t i = 0; i < 16; ++i) out[off + 12 + i] = rep.challenge[i];
  for (std::size_t i = 0; i < 32; ++i) out[off + 28 + i] = rep.mac[i];
  store_le16(out, off + 60,
             static_cast<std::uint16_t>(rep.or_bytes.size()));
  out.insert(out.end(), rep.or_bytes.begin(), rep.or_bytes.end());
  const std::uint16_t crc = crc16_ccitt(out);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  return proto_error::none;
}

byte_vec encode_frame(const frame_info& info,
                      const verifier::attestation_report& rep) {
  byte_vec out;
  const proto_error err = encode_frame_into(info, rep, out);
  if (err != proto_error::none) {
    throw error("wire: cannot encode frame (" + to_string(err) +
                "): " + (err == proto_error::bad_version
                             ? "unknown version " +
                                   std::to_string(info.version)
                             : "OR payload of " +
                                   std::to_string(rep.or_bytes.size()) +
                                   " bytes exceeds the 16-bit length "
                                   "field"));
  }
  return out;
}

namespace {

/// The v2.1 trailer: delta section + CRC. The caller has already checked
/// magic/version and that the fixed 88-byte header (+CRC room) is there.
/// Scratch-reuse contract: EVERY field of `out` that this frame does not
/// carry is explicitly cleared — in particular report.or_bytes (a longer
/// previous frame's snapshot must never leak into a shorter delta
/// reconstruction) and the segment/data vectors (assigned, not appended).
proto_error decode_v21_into(std::span<const std::uint8_t> frame,
                            decoded_frame& out) {
  // Walk the declared segments to find where the CRC should sit. A length
  // field lying about a segment (running past the frame, or leaving
  // trailing slack) is a typed bad_length, same as v1/v2's or_len check.
  const std::size_t seg_count = load_le16(frame, 86);
  std::size_t pos = v21_header_size;
  for (std::size_t s = 0; s < seg_count; ++s) {
    if (pos + segment_overhead > frame.size()) return proto_error::bad_length;
    const std::size_t len = load_le16(frame, pos + 2);
    pos += segment_overhead;
    if (len > frame.size() - pos) return proto_error::bad_length;
    pos += len;
  }
  if (pos + 2 != frame.size()) return proto_error::bad_length;
  const std::uint16_t crc = crc16_ccitt(frame.subspan(0, pos));
  if (crc != load_le16(frame, pos)) return proto_error::bad_crc;

  out.info.version = wire_v21;
  out.info.device_id = load_le32(frame, 4);
  out.info.seq = load_le32(frame, 8);
  auto& rep = out.report;
  rep.exec = (frame[3] & 1) != 0;
  rep.er_min = load_le16(frame, 12);
  rep.er_max = load_le16(frame, 14);
  rep.or_min = load_le16(frame, 16);
  rep.or_max = load_le16(frame, 18);
  rep.claimed_result = load_le16(frame, 20);
  rep.halt_code = load_le16(frame, 22);
  for (std::size_t i = 0; i < 16; ++i) rep.challenge[i] = frame[24 + i];
  for (std::size_t i = 0; i < 32; ++i) rep.mac[i] = frame[40 + i];
  // The frame carries no full OR; the verifier reconstructs it.
  rep.or_bytes.clear();
  out.or_view = {};

  auto& d = out.delta;
  d.present = true;
  d.baseline_seq = load_le32(frame, 72);
  for (std::size_t i = 0; i < 8; ++i) d.baseline_hash[i] = frame[76 + i];
  d.full_len = load_le16(frame, 84);
  d.segments.clear();
  d.data.clear();
  std::size_t next_min = 0;  // segments strictly ascending, no overlap
  pos = v21_header_size;
  for (std::size_t s = 0; s < seg_count; ++s) {
    or_delta::segment seg;
    seg.offset = load_le16(frame, pos);
    seg.length = load_le16(frame, pos + 2);
    seg.data_pos = static_cast<std::uint32_t>(d.data.size());
    pos += segment_overhead;
    if (seg.length == 0 || seg.offset < next_min ||
        static_cast<std::size_t>(seg.offset) + seg.length > d.full_len) {
      d.present = false;  // half-parsed delta must not look usable
      return proto_error::bad_length;
    }
    next_min = static_cast<std::size_t>(seg.offset) + seg.length;
    d.data.insert(d.data.end(),
                  frame.begin() + static_cast<std::ptrdiff_t>(pos),
                  frame.begin() + static_cast<std::ptrdiff_t>(pos + seg.length));
    d.segments.push_back(seg);
    pos += seg.length;
  }
  return proto_error::none;
}

}  // namespace

proto_error decode_frame_into(std::span<const std::uint8_t> frame,
                              decoded_frame& out, decode_mode mode) {
  if (frame.size() < 3) return proto_error::truncated;
  if (load_le16(frame, 0) != wire_magic) return proto_error::bad_magic;
  const std::uint8_t version = frame[2];
  if (version != wire_v1 && version != wire_v2 && version != wire_v21) {
    return proto_error::bad_version;
  }
  if (version == wire_v21) {
    if (frame.size() < v21_header_size + 2) return proto_error::truncated;
    return decode_v21_into(frame, out);
  }
  // A frame without a delta section must not leave a previous decode's
  // delta looking live in reused scratch (the hub would try to
  // reconstruct a full frame against a baseline).
  out.delta.present = false;
  out.delta.segments.clear();
  out.delta.data.clear();
  const std::size_t hdr = header_size(version);
  if (frame.size() < hdr + 2) return proto_error::truncated;
  const std::size_t len_off = hdr - 2;
  const std::size_t or_len = load_le16(frame, len_off);
  if (frame.size() != hdr + or_len + 2) return proto_error::bad_length;
  const std::uint16_t crc = crc16_ccitt(frame.subspan(0, hdr + or_len));
  if (crc != load_le16(frame, hdr + or_len)) return proto_error::bad_crc;

  out.info.version = version;
  out.info.device_id = 0;
  out.info.seq = 0;
  std::size_t off = 4;
  if (version == wire_v2) {
    out.info.device_id = load_le32(frame, 4);
    out.info.seq = load_le32(frame, 8);
    off = 12;
  }
  auto& rep = out.report;
  rep.exec = (frame[3] & 1) != 0;
  rep.er_min = load_le16(frame, off + 0);
  rep.er_max = load_le16(frame, off + 2);
  rep.or_min = load_le16(frame, off + 4);
  rep.or_max = load_le16(frame, off + 6);
  rep.claimed_result = load_le16(frame, off + 8);
  rep.halt_code = load_le16(frame, off + 10);
  for (std::size_t i = 0; i < 16; ++i) rep.challenge[i] = frame[off + 12 + i];
  for (std::size_t i = 0; i < 32; ++i) rep.mac[i] = frame[off + 28 + i];
  if (mode == decode_mode::borrow) {
    // Zero-copy: the OR stays in the caller's frame buffer (see the
    // decode_mode lifetime contract in wire.h).
    rep.or_bytes.clear();
    out.or_view = frame.subspan(hdr, or_len);
  } else {
    rep.or_bytes.assign(
        frame.begin() + static_cast<std::ptrdiff_t>(hdr),
        frame.begin() + static_cast<std::ptrdiff_t>(hdr + or_len));
    out.or_view = rep.or_bytes;
  }
  return proto_error::none;
}

std::array<std::uint8_t, 8> or_baseline_hash(
    std::uint32_t seq, std::span<const std::uint8_t> or_bytes) {
  std::array<std::uint8_t, 4> seq_le{};
  store_le32(seq_le, 0, seq);
  crypto::sha256 h;
  h.update(seq_le);
  h.update(or_bytes);
  const auto digest = h.finish();
  std::array<std::uint8_t, 8> out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = digest[i];
  return out;
}

proto_error encode_delta_frame_into(const frame_info& info,
                                    const verifier::attestation_report& rep,
                                    std::uint32_t baseline_seq,
                                    std::span<const std::uint8_t> baseline,
                                    byte_vec& out) {
  out.clear();
  if (rep.or_bytes.size() > max_or_bytes ||
      baseline.size() > max_or_bytes) {
    return proto_error::bad_length;
  }
  const std::size_t full_len = rep.or_bytes.size();
  out.resize(v21_header_size);
  write_v2_prefix(out, wire_v21, info, rep);
  store_le32(out, 72, baseline_seq);
  const auto hash = or_baseline_hash(baseline_seq, baseline);
  for (std::size_t i = 0; i < 8; ++i) out[76 + i] = hash[i];
  store_le16(out, 84, static_cast<std::uint16_t>(full_len));

  // Sparse diff with gap coalescing: a run of equal bytes shorter than
  // the 4-byte segment header is cheaper to ship inline than to split on.
  const auto differs = [&](std::size_t k) {
    return k >= baseline.size() || rep.or_bytes[k] != baseline[k];
  };
  std::size_t seg_count = 0;
  std::size_t i = 0;
  while (i < full_len) {
    if (!differs(i)) {
      ++i;
      continue;
    }
    std::size_t last_diff = i;
    std::size_t j = i + 1;
    while (j < full_len &&
           (differs(j) ? (last_diff = j, true)
                       : (j - last_diff < segment_overhead))) {
      ++j;
    }
    std::size_t start = i;
    std::size_t len = last_diff - i + 1;
    while (len > 0) {
      const std::size_t chunk = std::min<std::size_t>(len, 0xffff);
      const std::size_t pos = out.size();
      out.resize(pos + segment_overhead);
      store_le16(out, pos, static_cast<std::uint16_t>(start));
      store_le16(out, pos + 2, static_cast<std::uint16_t>(chunk));
      out.insert(out.end(),
                 rep.or_bytes.begin() + static_cast<std::ptrdiff_t>(start),
                 rep.or_bytes.begin() +
                     static_cast<std::ptrdiff_t>(start + chunk));
      start += chunk;
      len -= chunk;
      ++seg_count;
    }
    i = last_diff + 1;
  }
  // Max segments is bounded well under the u16: each one covers at least
  // one byte and gaps of >= 4 separate them, so <= full_len/5 + 1.
  store_le16(out, 86, static_cast<std::uint16_t>(seg_count));
  append_crc(out);
  return proto_error::none;
}

byte_vec encode_delta_frame(const frame_info& info,
                            const verifier::attestation_report& rep,
                            std::uint32_t baseline_seq,
                            std::span<const std::uint8_t> baseline) {
  byte_vec out;
  const proto_error err =
      encode_delta_frame_into(info, rep, baseline_seq, baseline, out);
  if (err != proto_error::none) {
    throw error("wire: cannot encode delta frame (" + to_string(err) +
                "): OR payload of " + std::to_string(rep.or_bytes.size()) +
                " bytes (baseline " + std::to_string(baseline.size()) +
                ") exceeds the 16-bit length field");
  }
  return out;
}

proto_error apply_or_delta(const or_delta& delta,
                           std::span<const std::uint8_t> baseline,
                           byte_vec& out) {
  // assign + resize overwrite the WHOLE buffer: bytes a longer previous
  // reconstruction left behind can never survive into this one.
  out.assign(baseline.begin(), baseline.end());
  out.resize(delta.full_len, 0);
  std::size_t next_min = 0;
  for (const auto& seg : delta.segments) {
    const std::size_t end = static_cast<std::size_t>(seg.offset) + seg.length;
    if (seg.length == 0 || seg.offset < next_min || end > delta.full_len ||
        static_cast<std::size_t>(seg.data_pos) + seg.length >
            delta.data.size()) {
      out.clear();  // never hand back a half-applied reconstruction
      return proto_error::bad_length;
    }
    std::copy(delta.data.begin() + static_cast<std::ptrdiff_t>(seg.data_pos),
              delta.data.begin() +
                  static_cast<std::ptrdiff_t>(seg.data_pos + seg.length),
              out.begin() + static_cast<std::ptrdiff_t>(seg.offset));
    next_min = end;
  }
  return proto_error::none;
}

decode_result decode_frame(std::span<const std::uint8_t> frame) {
  decode_result r;
  r.error = decode_frame_into(frame, r.frame);
  return r;
}

void append_stream_frame(byte_vec& out,
                         std::span<const std::uint8_t> frame) {
  if (frame.size() > max_stream_frame_bytes) {
    throw error("wire: stream frame larger than max_stream_frame_bytes (" +
                std::to_string(frame.size()) + " bytes)");
  }
  const std::size_t at = out.size();
  out.resize(at + stream_header_bytes + frame.size());
  store_le32(out, at, static_cast<std::uint32_t>(frame.size()));
  std::copy(frame.begin(), frame.end(),
            out.begin() + static_cast<std::ptrdiff_t>(at) +
                static_cast<std::ptrdiff_t>(stream_header_bytes));
}

stream_peek peek_stream_frame(std::span<const std::uint8_t> buf) {
  stream_peek p;
  if (buf.size() < stream_header_bytes) {
    p.need = stream_header_bytes;
    return p;
  }
  p.frame_len = load_le32(buf, 0);
  if (p.frame_len > max_stream_frame_bytes) {
    p.error = proto_error::bad_length;
    return p;
  }
  p.need = stream_header_bytes + p.frame_len;
  p.complete = buf.size() >= p.need;
  return p;
}

byte_vec encode_report(const verifier::attestation_report& rep) {
  frame_info info;
  info.version = wire_v1;
  return encode_frame(info, rep);
}

std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame) {
  auto r = decode_frame(frame);
  if (!r.ok()) return std::nullopt;
  return std::move(r.frame.report);
}

}  // namespace dialed::proto
