#include "proto/wire.h"

#include "common/error.h"

namespace dialed::proto {

namespace {

constexpr std::uint16_t wire_magic = 0xd1a7;
constexpr std::size_t v1_header_size = 66;
constexpr std::size_t v2_header_size = 74;

constexpr std::size_t header_size(std::uint8_t version) {
  return version == wire_v1 ? v1_header_size : v2_header_size;
}

}  // namespace

std::string to_string(proto_error e) {
  switch (e) {
    case proto_error::none: return "none";
    case proto_error::truncated: return "truncated";
    case proto_error::bad_magic: return "bad_magic";
    case proto_error::bad_version: return "bad_version";
    case proto_error::bad_length: return "bad_length";
    case proto_error::bad_crc: return "bad_crc";
    case proto_error::unknown_device: return "unknown_device";
    case proto_error::stale_nonce: return "stale_nonce";
    case proto_error::replayed_report: return "replayed_report";
    case proto_error::challenge_expired: return "challenge_expired";
    case proto_error::challenge_superseded: return "challenge_superseded";
    case proto_error::sequence_mismatch: return "sequence_mismatch";
  }
  return "?";
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xffff;
  for (const std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

proto_error encode_frame_into(const frame_info& info,
                              const verifier::attestation_report& rep,
                              byte_vec& out) {
  out.clear();
  if (info.version != wire_v1 && info.version != wire_v2) {
    return proto_error::bad_version;
  }
  if (rep.or_bytes.size() > max_or_bytes) {
    // The length field is 16 bits; a larger OR used to be silently
    // truncated here, emitting a frame whose length/CRC never validate.
    return proto_error::bad_length;
  }
  const std::size_t hdr = header_size(info.version);
  out.resize(hdr);
  store_le16(out, 0, wire_magic);
  out[2] = info.version;
  out[3] = rep.exec ? 1 : 0;
  // Bounds and claims land at version-dependent offsets: v2 inserts the
  // 8-byte (device_id, seq) pair after the flags byte.
  std::size_t off = 4;
  if (info.version == wire_v2) {
    store_le32(out, 4, info.device_id);
    store_le32(out, 8, info.seq);
    off = 12;
  }
  store_le16(out, off + 0, rep.er_min);
  store_le16(out, off + 2, rep.er_max);
  store_le16(out, off + 4, rep.or_min);
  store_le16(out, off + 6, rep.or_max);
  store_le16(out, off + 8, rep.claimed_result);
  store_le16(out, off + 10, rep.halt_code);
  for (std::size_t i = 0; i < 16; ++i) out[off + 12 + i] = rep.challenge[i];
  for (std::size_t i = 0; i < 32; ++i) out[off + 28 + i] = rep.mac[i];
  store_le16(out, off + 60,
             static_cast<std::uint16_t>(rep.or_bytes.size()));
  out.insert(out.end(), rep.or_bytes.begin(), rep.or_bytes.end());
  const std::uint16_t crc = crc16_ccitt(out);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  return proto_error::none;
}

byte_vec encode_frame(const frame_info& info,
                      const verifier::attestation_report& rep) {
  byte_vec out;
  const proto_error err = encode_frame_into(info, rep, out);
  if (err != proto_error::none) {
    throw error("wire: cannot encode frame (" + to_string(err) +
                "): " + (err == proto_error::bad_version
                             ? "unknown version " +
                                   std::to_string(info.version)
                             : "OR payload of " +
                                   std::to_string(rep.or_bytes.size()) +
                                   " bytes exceeds the 16-bit length "
                                   "field"));
  }
  return out;
}

proto_error decode_frame_into(std::span<const std::uint8_t> frame,
                              decoded_frame& out) {
  if (frame.size() < 3) return proto_error::truncated;
  if (load_le16(frame, 0) != wire_magic) return proto_error::bad_magic;
  const std::uint8_t version = frame[2];
  if (version != wire_v1 && version != wire_v2) {
    return proto_error::bad_version;
  }
  const std::size_t hdr = header_size(version);
  if (frame.size() < hdr + 2) return proto_error::truncated;
  const std::size_t len_off = hdr - 2;
  const std::size_t or_len = load_le16(frame, len_off);
  if (frame.size() != hdr + or_len + 2) return proto_error::bad_length;
  const std::uint16_t crc = crc16_ccitt(frame.subspan(0, hdr + or_len));
  if (crc != load_le16(frame, hdr + or_len)) return proto_error::bad_crc;

  out.info.version = version;
  out.info.device_id = 0;
  out.info.seq = 0;
  std::size_t off = 4;
  if (version == wire_v2) {
    out.info.device_id = load_le32(frame, 4);
    out.info.seq = load_le32(frame, 8);
    off = 12;
  }
  auto& rep = out.report;
  rep.exec = (frame[3] & 1) != 0;
  rep.er_min = load_le16(frame, off + 0);
  rep.er_max = load_le16(frame, off + 2);
  rep.or_min = load_le16(frame, off + 4);
  rep.or_max = load_le16(frame, off + 6);
  rep.claimed_result = load_le16(frame, off + 8);
  rep.halt_code = load_le16(frame, off + 10);
  for (std::size_t i = 0; i < 16; ++i) rep.challenge[i] = frame[off + 12 + i];
  for (std::size_t i = 0; i < 32; ++i) rep.mac[i] = frame[off + 28 + i];
  rep.or_bytes.assign(frame.begin() + static_cast<std::ptrdiff_t>(hdr),
                      frame.begin() + static_cast<std::ptrdiff_t>(hdr + or_len));
  return proto_error::none;
}

decode_result decode_frame(std::span<const std::uint8_t> frame) {
  decode_result r;
  r.error = decode_frame_into(frame, r.frame);
  return r;
}

byte_vec encode_report(const verifier::attestation_report& rep) {
  frame_info info;
  info.version = wire_v1;
  return encode_frame(info, rep);
}

std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame) {
  auto r = decode_frame(frame);
  if (!r.ok()) return std::nullopt;
  return std::move(r.frame.report);
}

}  // namespace dialed::proto
