// Wire format for attestation reports — the bytes Prv actually sends over
// its network link. Little-endian fixed header + variable OR payload,
// framed with a magic, a version, and a CRC-16 so transport corruption is
// distinguished from security failures (a corrupted frame is re-requested;
// a bad MAC is an attack signal).
//
//   offset  size  field
//   0       2     magic 0xD1A7
//   2       1     version (1)
//   3       1     flags: bit0 = EXEC claim
//   4       2     er_min        6   2  er_max
//   8       2     or_min        10  2  or_max
//   12      2     claimed_result
//   14      2     halt_code
//   16      16    challenge
//   32      32    MAC
//   64      2     or_bytes length
//   66      n     or_bytes
//   66+n    2     CRC-16/CCITT over bytes [0, 66+n)
#ifndef DIALED_PROTO_WIRE_H
#define DIALED_PROTO_WIRE_H

#include <optional>

#include "common/bytes.h"
#include "verifier/report.h"

namespace dialed::proto {

/// Serialize a report into a transmission frame.
byte_vec encode_report(const verifier::attestation_report& rep);

/// Parse and validate a frame. Returns nullopt on any framing problem
/// (magic/version/length/CRC) — the caller should treat it as a transport
/// error, not as an attestation failure.
std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xffff) used by the framing.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace dialed::proto

#endif  // DIALED_PROTO_WIRE_H
