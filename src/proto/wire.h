// Wire formats for attestation reports — the bytes Prv actually sends over
// its network link. Little-endian fixed header + variable OR payload,
// framed with a magic, a version, and a CRC-16 so transport corruption is
// distinguished from security failures (a corrupted frame is re-requested;
// a bad MAC is an attack signal).
//
// v1 — the original single-device format (no device identity):
//
//   offset  size  field
//   0       2     magic 0xD1A7
//   2       1     version (1)
//   3       1     flags: bit0 = EXEC claim
//   4       2     er_min        6   2  er_max
//   8       2     or_min        10  2  or_max
//   12      2     claimed_result
//   14      2     halt_code
//   16      16    challenge
//   32      32    MAC
//   64      2     or_bytes length
//   66      n     or_bytes
//   66+n    2     CRC-16/CCITT over bytes [0, 66+n)
//
// v2 — the fleet format: identical trailer, but the header additionally
// carries the 32-bit device id (hub routing + per-device key selection)
// and the 32-bit challenge sequence number (anti-replay bookkeeping):
//
//   offset  size  field
//   0       2     magic 0xD1A7
//   2       1     version (2)
//   3       1     flags: bit0 = EXEC claim
//   4       4     device_id (LE32)
//   8       4     seq (LE32)
//   12      2     er_min        14  2  er_max
//   16      2     or_min        18  2  or_max
//   20      2     claimed_result
//   22      2     halt_code
//   24      16    challenge
//   40      32    MAC
//   72      2     or_bytes length
//   74      n     or_bytes
//   74+n    2     CRC-16/CCITT over bytes [0, 74+n)
//
// v2.1 — the delta-compressed fleet format (version byte 3): in
// high-frequency polling the OR barely changes between rounds, so instead
// of the full snapshot the prover may ship a sparse range delta against
// the OR of the last report the hub ACCEPTED for this device (the
// per-device `or_baseline`, sequence-stamped so both sides agree which
// round it was). The header is byte-identical to v2 through offset 72,
// then the or-length/or-bytes trailer is replaced by a delta section:
//
//   offset  size  field
//   0..71         exactly as v2 (magic|ver=3|flags|device_id|seq|bounds|
//                 result|halt|challenge|MAC)
//   72      4     baseline_seq (LE32) — seq of the accepted round whose
//                 OR is the delta baseline
//   76      8     baseline_hash — first 8 bytes of
//                 SHA-256(LE32(baseline_seq) || baseline OR bytes); a
//                 desynced verifier detects the mismatch BEFORE burning
//                 the nonce and answers with the typed baseline_mismatch
//                 error, demanding a full frame
//   84      2     or_full_len — length of the reconstructed OR
//   86      2     segment count S
//   88      ...   S segments, each [offset u16 | len u16 | len bytes]:
//                 replace `len` bytes of the baseline at `offset`.
//                 Segments are strictly ascending, non-overlapping,
//                 non-empty and end within or_full_len — anything else is
//                 a typed bad_length, never a parse.
//   end     2     CRC-16/CCITT over everything before
//
// Reconstruction: start from the baseline bytes, truncate/zero-extend to
// or_full_len, then splat the segments. The MAC still covers the FULL
// reconstructed OR — delta encoding is transport compression, not a
// change to what is attested; a delta that reconstructs the wrong OR
// fails MAC verification exactly like a forged full frame.
//
// The codec API is versioned: `encode_frame` emits whichever version the
// frame_info names, `decode_frame` dispatches on the version byte, and the
// v1 helpers `encode_report`/`decode_report` are kept for single-device
// callers and old captured frames. Delta frames are emitted by
// `encode_delta_frame_into` and reconstructed by `apply_or_delta` (the
// hub resolves the baseline; the codec never holds per-device state).
//
// OR payload layout (shared contract with src/emu/memmap.h and the §III
// MAC): `or_max` is the ADDRESS OF THE TOPMOST 16-BIT LOG SLOT, so the
// slot occupies bytes [or_max, or_max+1] and the attested snapshot spans
// [or_min, or_max+1] INCLUSIVE — `or_bytes` carries
// `or_max - or_min + 2` bytes, one more than the naive `or_max - or_min
// + 1`. SW-Att MACs exactly that range (src/rot/attest.h), the prover
// snapshots it, and the verifier replays it; an encoder that drops the
// final byte produces a frame whose MAC can never verify.
//
// Because the topmost slot spans [or_max, or_max+1], a valid layout
// needs `or_max <= 0xfffe` — with or_max = 0xffff the tail byte would
// sit past the top of the address space and 16-bit arithmetic on
// `or_max + 1` wraps to 0x0000. The verifier fails such layouts closed
// (firmware_artifact rejects them at build time; replay_operation
// returns a bounds_mismatch finding), and every snapshot loop clamps at
// 0xffff rather than wrap.
//
// The or_bytes length field is 16 bits: an OR snapshot larger than
// `max_or_bytes` is unencodable and is rejected with bad_length (it used
// to be silently truncated, yielding a frame that could never decode).
#ifndef DIALED_PROTO_WIRE_H
#define DIALED_PROTO_WIRE_H

#include <optional>

#include "common/bytes.h"
#include "proto/errors.h"
#include "verifier/report.h"

namespace dialed::proto {

constexpr std::uint8_t wire_v1 = 1;
constexpr std::uint8_t wire_v2 = 2;
constexpr std::uint8_t wire_v21 = 3;  ///< v2.1: delta-compressed OR

/// First two frame bytes, little-endian (0xA7 0xD1 on the wire). Public
/// so routing layers can sniff a frame's version without a full decode.
constexpr std::uint16_t wire_magic = 0xd1a7;

/// Sniff the device id out of a frame header without decoding it: v2 and
/// v2.1 carry it LE32 at offset 4, right after magic/version/flags.
/// nullopt for anything else (short, wrong magic, v1 — which has no id on
/// the wire). This is a ROUTING hint only: the full decode downstream
/// still authenticates the frame, so a lying header merely routes the
/// frame to a partition that rejects it with the same typed error the
/// sender would get anywhere.
inline std::optional<std::uint32_t> peek_device_id(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < 8 || load_le16(frame, 0) != wire_magic) {
    return std::nullopt;
  }
  if (frame[2] != wire_v2 && frame[2] != wire_v21) return std::nullopt;
  return load_le32(frame, 4);
}

/// Total encoded size of a FULL v2 frame carrying an n-byte OR (header +
/// payload + CRC) — what a delta frame's savings are measured against.
constexpr std::size_t v2_frame_size(std::size_t or_len) {
  return 74 + or_len + 2;
}

/// Per-frame routing metadata. `device_id` and `seq` are carried only by
/// v2/v2.1 frames; a v1 decode leaves them zero.
struct frame_info {
  std::uint8_t version = wire_v2;
  std::uint32_t device_id = 0;
  std::uint32_t seq = 0;
};

/// One decoded v2.1 delta section: the baseline reference plus the sparse
/// replacement segments, stored flat (`data` concatenates every segment's
/// bytes) so repeated decodes reuse capacity instead of allocating per
/// segment.
struct or_delta {
  /// A strictly-validated replacement range: `length` bytes at
  /// `data[data_pos..]` overwrite the reconstruction at `offset`.
  struct segment {
    std::uint16_t offset = 0;
    std::uint16_t length = 0;
    std::uint32_t data_pos = 0;
  };

  bool present = false;  ///< true only after decoding a v2.1 frame
  std::uint32_t baseline_seq = 0;
  std::array<std::uint8_t, 8> baseline_hash{};
  std::uint16_t full_len = 0;  ///< reconstructed OR length
  std::vector<segment> segments;
  byte_vec data;  ///< all segment bytes, in segment order

  /// Bytes the delta section occupies on the wire (the frame-size win the
  /// benches report): fixed delta header + 4 per segment + the data.
  std::size_t wire_bytes() const {
    return 16 + segments.size() * 4 + data.size();
  }
};

struct decoded_frame {
  frame_info info;
  verifier::attestation_report report;
  /// The decoded OR payload as a span, regardless of decode mode: in
  /// `copy` mode it views `report.or_bytes`; in `borrow` mode it views
  /// the caller's frame buffer (see decode_mode lifetime rules) and
  /// `report.or_bytes` stays empty. Empty for v2.1 frames — the OR does
  /// not exist until apply_or_delta reconstructs it.
  std::span<const std::uint8_t> or_view;
  /// v2.1 only: the delta section. When `delta.present`, report.or_bytes
  /// is EMPTY — the verifier must reconstruct it against its baseline via
  /// apply_or_delta before anything downstream (MAC!) may run.
  or_delta delta;
};

struct decode_result {
  proto_error error = proto_error::none;
  decoded_frame frame;  ///< meaningful only when error == none
  bool ok() const { return error == proto_error::none; }
};

/// Largest OR payload a frame can carry (16-bit length field).
constexpr std::size_t max_or_bytes = 0xffff;

/// Serialize a report into a transmission frame of the requested version.
/// Throws dialed::error for an unknown version or an OR payload larger
/// than max_or_bytes (see encode_frame_into for the non-throwing path).
byte_vec encode_frame(const frame_info& info,
                      const verifier::attestation_report& rep);

/// Non-throwing encode into caller-owned storage (capacity is reused).
/// Returns bad_version for an unknown version and bad_length for an OR
/// payload that cannot fit the 16-bit length field; `out` is left empty
/// on error.
proto_error encode_frame_into(const frame_info& info,
                              const verifier::attestation_report& rep,
                              byte_vec& out);

/// Parse and validate a frame of any supported version.
decode_result decode_frame(std::span<const std::uint8_t> frame);

/// How decode_frame_into materializes the OR payload.
///
/// `copy`   — report.or_bytes owns a copy (capacity reused across calls);
///            or_view aliases it. The decoded frame is self-contained.
/// `borrow` — ZERO-COPY: or_view points INTO the caller's `frame` buffer
///            and report.or_bytes stays empty. Lifetime contract: the
///            frame bytes must stay alive AND unmodified for as long as
///            or_view (or any report_view built from it) is read — i.e.
///            until verification of this report completes. The borrowing
///            callers in-tree all satisfy this structurally: the hub
///            verifies synchronously inside submit() while the caller
///            holds the frame; the net batcher keeps each batch's frames
///            in stable per-batch storage until every verdict is out; WAL
///            replay keeps the record buffer alive across the apply.
///            Anything that must OUTLIVE the frame (e.g. a delta
///            baseline adopted from an accepted report) must copy out of
///            the view — never store the span.
///
/// v2.1 delta frames carry no OR either way; or_view is empty until
/// apply_or_delta reconstructs the payload into caller storage.
enum class decode_mode : std::uint8_t { copy, borrow };

/// Parse into caller-owned storage, reusing `out.report.or_bytes`'s
/// capacity — the allocation-free path `verify_batch` runs on. See
/// decode_mode for the `borrow` lifetime rules.
proto_error decode_frame_into(std::span<const std::uint8_t> frame,
                              decoded_frame& out,
                              decode_mode mode = decode_mode::copy);

// ---- v2.1 delta codec -----------------------------------------------------

/// The sequence-stamped baseline fingerprint both sides compute: the first
/// 8 bytes of SHA-256(LE32(seq) || or_bytes). Stamping the seq into the
/// hash means a baseline reused under the wrong round can never pass the
/// cheap pre-MAC check by byte coincidence.
std::array<std::uint8_t, 8> or_baseline_hash(
    std::uint32_t seq, std::span<const std::uint8_t> or_bytes);

/// Serialize `rep` as a v2.1 delta frame against `baseline` (the OR bytes
/// of the accepted round `baseline_seq`). info.version is ignored — the
/// frame is always wire_v21. Returns bad_length when the OR exceeds
/// max_or_bytes; `out` is left empty on error. The encoder coalesces
/// nearby changed ranges (a 4-byte segment header makes gaps < 4 cheaper
/// to inline) and splits ranges longer than a u16 can carry.
proto_error encode_delta_frame_into(const frame_info& info,
                                    const verifier::attestation_report& rep,
                                    std::uint32_t baseline_seq,
                                    std::span<const std::uint8_t> baseline,
                                    byte_vec& out);

/// Throwing convenience over encode_delta_frame_into.
byte_vec encode_delta_frame(const frame_info& info,
                            const verifier::attestation_report& rep,
                            std::uint32_t baseline_seq,
                            std::span<const std::uint8_t> baseline);

/// Reconstruct the full OR from a decoded delta and the baseline bytes:
/// out = baseline truncated/zero-extended to delta.full_len, then every
/// segment splatted. `out`'s previous contents (possibly longer than
/// full_len — the scratch-reuse hazard) are fully overwritten, never
/// leaked into the reconstruction. Returns bad_length if the delta's
/// segments are structurally inconsistent (decode already rejects such
/// frames; this re-check keeps hand-built deltas safe too).
proto_error apply_or_delta(const or_delta& delta,
                           std::span<const std::uint8_t> baseline,
                           byte_vec& out);

// ---- length-prefixed stream framing (the TCP transport) -------------------
//
// Datagram links hand the codec whole frames; a TCP byte stream does not.
// The service front-end (src/net/) therefore carries every frame — report
// frames and its own small service messages alike — as
//
//   [u32 len (LE) | len frame bytes]
//
// and reassembles arbitrary stream splits before decode_frame_into ever
// sees the bytes. The length prefix is attacker-controlled, so it is
// capped at max_stream_frame_bytes: a garbage prefix yields a typed
// bad_length instead of an unbounded allocation.

/// Upper bound on a length prefix the stream transport will honor. Sized
/// above the largest legal encoded frame — a pathological v2.1 delta with
/// 65535 one-byte segments costs 72 + 16 + 4*65535 + 65535 + 2 bytes
/// (~320 KiB) — and far below anything a hostile prefix could use to
/// balloon the reassembly buffer.
constexpr std::size_t max_stream_frame_bytes = 512 * 1024;
static_assert(max_stream_frame_bytes >=
              72 + 16 + 4 * 65535ull + max_or_bytes + 2);

/// Bytes of the [u32 len] prefix.
constexpr std::size_t stream_header_bytes = 4;

/// Append `frame` to `out` with its length prefix. Throws dialed::error
/// for a frame larger than max_stream_frame_bytes (encoders never produce
/// one; a caller that does has corrupted memory, not a frame).
void append_stream_frame(byte_vec& out, std::span<const std::uint8_t> frame);

/// What peeking at the head of a reassembly buffer found.
struct stream_peek {
  /// bad_length: the prefix names a frame larger than
  /// max_stream_frame_bytes — the stream is unrecoverable (there is no
  /// resync point), the transport must drop the connection.
  proto_error error = proto_error::none;
  bool complete = false;     ///< a whole frame is buffered
  std::uint32_t frame_len = 0;  ///< prefix value, when >= 4 bytes buffered
  /// Prefix + frame bytes to consume when `complete`; otherwise the total
  /// buffered size a complete frame would need (the framer's read target).
  std::size_t need = stream_header_bytes;
};

/// Inspect `buf` (the head of a stream reassembly buffer) for one
/// length-prefixed frame. Never consumes; the caller slices
/// [stream_header_bytes, need) out as the frame when `complete`.
stream_peek peek_stream_frame(std::span<const std::uint8_t> buf);

/// v1 compatibility: serialize with no device identity.
byte_vec encode_report(const verifier::attestation_report& rep);

/// v1-era convenience: nullopt on ANY framing problem (the typed error is
/// available from decode_frame). Accepts v1 and v2 frames.
std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xffff) used by the framing.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace dialed::proto

#endif  // DIALED_PROTO_WIRE_H
