// Wire formats for attestation reports — the bytes Prv actually sends over
// its network link. Little-endian fixed header + variable OR payload,
// framed with a magic, a version, and a CRC-16 so transport corruption is
// distinguished from security failures (a corrupted frame is re-requested;
// a bad MAC is an attack signal).
//
// v1 — the original single-device format (no device identity):
//
//   offset  size  field
//   0       2     magic 0xD1A7
//   2       1     version (1)
//   3       1     flags: bit0 = EXEC claim
//   4       2     er_min        6   2  er_max
//   8       2     or_min        10  2  or_max
//   12      2     claimed_result
//   14      2     halt_code
//   16      16    challenge
//   32      32    MAC
//   64      2     or_bytes length
//   66      n     or_bytes
//   66+n    2     CRC-16/CCITT over bytes [0, 66+n)
//
// v2 — the fleet format: identical trailer, but the header additionally
// carries the 32-bit device id (hub routing + per-device key selection)
// and the 32-bit challenge sequence number (anti-replay bookkeeping):
//
//   offset  size  field
//   0       2     magic 0xD1A7
//   2       1     version (2)
//   3       1     flags: bit0 = EXEC claim
//   4       4     device_id (LE32)
//   8       4     seq (LE32)
//   12      2     er_min        14  2  er_max
//   16      2     or_min        18  2  or_max
//   20      2     claimed_result
//   22      2     halt_code
//   24      16    challenge
//   40      32    MAC
//   72      2     or_bytes length
//   74      n     or_bytes
//   74+n    2     CRC-16/CCITT over bytes [0, 74+n)
//
// The codec API is versioned: `encode_frame` emits whichever version the
// frame_info names, `decode_frame` dispatches on the version byte, and the
// v1 helpers `encode_report`/`decode_report` are kept for single-device
// callers and old captured frames.
//
// OR payload layout (shared contract with src/emu/memmap.h and the §III
// MAC): `or_max` is the ADDRESS OF THE TOPMOST 16-BIT LOG SLOT, so the
// slot occupies bytes [or_max, or_max+1] and the attested snapshot spans
// [or_min, or_max+1] INCLUSIVE — `or_bytes` carries
// `or_max - or_min + 2` bytes, one more than the naive `or_max - or_min
// + 1`. SW-Att MACs exactly that range (src/rot/attest.h), the prover
// snapshots it, and the verifier replays it; an encoder that drops the
// final byte produces a frame whose MAC can never verify.
//
// The or_bytes length field is 16 bits: an OR snapshot larger than
// `max_or_bytes` is unencodable and is rejected with bad_length (it used
// to be silently truncated, yielding a frame that could never decode).
#ifndef DIALED_PROTO_WIRE_H
#define DIALED_PROTO_WIRE_H

#include <optional>

#include "common/bytes.h"
#include "proto/errors.h"
#include "verifier/report.h"

namespace dialed::proto {

constexpr std::uint8_t wire_v1 = 1;
constexpr std::uint8_t wire_v2 = 2;

/// Per-frame routing metadata. `device_id` and `seq` are carried only by
/// v2 frames; a v1 decode leaves them zero.
struct frame_info {
  std::uint8_t version = wire_v2;
  std::uint32_t device_id = 0;
  std::uint32_t seq = 0;
};

struct decoded_frame {
  frame_info info;
  verifier::attestation_report report;
};

struct decode_result {
  proto_error error = proto_error::none;
  decoded_frame frame;  ///< meaningful only when error == none
  bool ok() const { return error == proto_error::none; }
};

/// Largest OR payload a frame can carry (16-bit length field).
constexpr std::size_t max_or_bytes = 0xffff;

/// Serialize a report into a transmission frame of the requested version.
/// Throws dialed::error for an unknown version or an OR payload larger
/// than max_or_bytes (see encode_frame_into for the non-throwing path).
byte_vec encode_frame(const frame_info& info,
                      const verifier::attestation_report& rep);

/// Non-throwing encode into caller-owned storage (capacity is reused).
/// Returns bad_version for an unknown version and bad_length for an OR
/// payload that cannot fit the 16-bit length field; `out` is left empty
/// on error.
proto_error encode_frame_into(const frame_info& info,
                              const verifier::attestation_report& rep,
                              byte_vec& out);

/// Parse and validate a frame of any supported version.
decode_result decode_frame(std::span<const std::uint8_t> frame);

/// Parse into caller-owned storage, reusing `out.report.or_bytes`'s
/// capacity — the allocation-free path `verify_batch` runs on.
proto_error decode_frame_into(std::span<const std::uint8_t> frame,
                              decoded_frame& out);

/// v1 compatibility: serialize with no device identity.
byte_vec encode_report(const verifier::attestation_report& rep);

/// v1-era convenience: nullopt on ANY framing problem (the typed error is
/// available from decode_frame). Accepts v1 and v2 frames.
std::optional<verifier::attestation_report> decode_report(
    std::span<const std::uint8_t> frame);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xffff) used by the framing.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace dialed::proto

#endif  // DIALED_PROTO_WIRE_H
