// The prover side of the attestation protocol: an emulated device with the
// APEX/VRASED root of trust installed, running a linked operation once per
// challenge and producing the attestation report. Also meters the metrics
// the paper's Fig. 6 reports: op runtime in cycles and bytes consumed in OR.
#ifndef DIALED_PROTO_PROVER_H
#define DIALED_PROTO_PROVER_H

#include <array>
#include <functional>
#include <map>
#include <memory>

#include "emu/machine.h"
#include "instr/oplink.h"
#include "proto/wire.h"
#include "rot/rot.h"
#include "verifier/report.h"

namespace dialed::proto {

/// One attested invocation: arguments, environment inputs, and optional
/// adversarial hooks used by tests/examples to mount attacks.
struct invocation {
  std::array<std::uint16_t, 8> args{};
  std::vector<std::uint8_t> net_rx;        ///< network bytes to enqueue
  std::vector<std::uint16_t> adc_samples;  ///< ADC samples to enqueue
  std::uint8_t gpio_in = 0;                ///< P3IN level

  /// Called after load/reset but before the run (e.g. poke memory, patch
  /// code, pre-fill OR).
  std::function<void(emu::machine&)> before_run;
  /// Called on every executed instruction (e.g. raise an interrupt or DMA
  /// write mid-execution). Return value ignored.
  std::function<void(emu::machine&, std::uint16_t pc)> on_step;

  std::uint64_t max_cycles = 200'000'000;
};

/// Prover/transport-side state for wire v2.1 delta emission: mirrors, per
/// device, the OR snapshot of the last report the verifier ACCEPTED (the
/// hub keeps the same baseline on its side, updated on the same accepted
/// verdicts, so the two stay in lockstep without extra round trips).
///
/// Protocol: encode() emits a v2.1 delta frame when a mirror exists and
/// the delta is actually smaller than the full v2 frame, else plain v2.
/// Feed every round's outcome back through note_result(): an acceptance
/// adopts that round's OR as the new mirror; a baseline_mismatch answer
/// (the hub lost or never had the baseline — fresh device, restart,
/// desync) drops the mirror, so re-encoding the SAME report for the SAME
/// challenge goes out as a full frame — the fallback negotiation.
///
/// Not thread-safe: one emitter per transport link (the device end of the
/// protocol is sequential anyway).
class delta_emitter {
 public:
  /// Cumulative transport accounting: what was actually emitted vs what
  /// full v2 frames for the same reports would have cost.
  struct stats {
    std::uint64_t frames = 0;
    std::uint64_t delta_frames = 0;   ///< emitted as v2.1
    std::uint64_t wire_bytes = 0;     ///< bytes actually emitted
    std::uint64_t full_bytes = 0;     ///< v2-equivalent bytes
  };

  /// Serialize `rep` for transmission to the hub. Throws dialed::error
  /// (via encode_frame) if the OR exceeds the 16-bit length field.
  byte_vec encode(std::uint32_t device_id, std::uint32_t seq,
                  const verifier::attestation_report& rep);

  /// Report the verifier's answer for a round of device `device_id`
  /// whose report was `rep` (seq = the round's sequence number).
  void note_result(std::uint32_t device_id, std::uint32_t seq,
                   const verifier::attestation_report& rep,
                   proto_error error, bool accepted);

  bool has_baseline(std::uint32_t device_id) const {
    return baselines_.count(device_id) != 0;
  }
  /// Drop a device's mirror (e.g. the transport knows the hub restarted
  /// without durable state). Next frame is full.
  void reset_baseline(std::uint32_t device_id) {
    baselines_.erase(device_id);
  }
  const stats& transport_stats() const { return stats_; }

 private:
  struct mirror {
    std::uint32_t seq = 0;
    byte_vec bytes;
  };

  std::map<std::uint32_t, mirror> baselines_;
  stats stats_;
};

class prover_device {
 public:
  prover_device(instr::linked_program prog, byte_vec key);
  ~prover_device();

  prover_device(const prover_device&) = delete;
  prover_device& operator=(const prover_device&) = delete;

  /// Run one attested invocation under the given 16-byte challenge and
  /// build the report from device memory.
  verifier::attestation_report invoke(
      const std::array<std::uint8_t, 16>& challenge, const invocation& inv);

  emu::machine& machine() { return *machine_; }
  rot::root_of_trust& rot() { return *rot_; }
  const instr::linked_program& program() const { return prog_; }

  // ---- metrics of the last invocation (Fig. 6 quantities) ----
  /// Cycles spent inside the attested op (ER entry to exit), excluding
  /// crt0 and SW-Att.
  std::uint64_t last_op_cycles() const { return op_cycles_; }
  /// Total device cycles including startup and SW-Att.
  std::uint64_t last_total_cycles() const;
  /// Bytes consumed in OR by CF-Log + I-Log (0 for uninstrumented runs).
  int last_log_bytes() const { return log_bytes_; }

 private:
  class op_meter;

  instr::linked_program prog_;
  byte_vec key_;
  std::unique_ptr<emu::machine> machine_;
  std::unique_ptr<rot::root_of_trust> rot_;
  std::unique_ptr<op_meter> meter_;
  std::uint64_t op_cycles_ = 0;
  int log_bytes_ = 0;
};

}  // namespace dialed::proto

#endif  // DIALED_PROTO_PROVER_H
