// The prover side of the attestation protocol: an emulated device with the
// APEX/VRASED root of trust installed, running a linked operation once per
// challenge and producing the attestation report. Also meters the metrics
// the paper's Fig. 6 reports: op runtime in cycles and bytes consumed in OR.
#ifndef DIALED_PROTO_PROVER_H
#define DIALED_PROTO_PROVER_H

#include <array>
#include <functional>
#include <memory>

#include "emu/machine.h"
#include "instr/oplink.h"
#include "rot/rot.h"
#include "verifier/report.h"

namespace dialed::proto {

/// One attested invocation: arguments, environment inputs, and optional
/// adversarial hooks used by tests/examples to mount attacks.
struct invocation {
  std::array<std::uint16_t, 8> args{};
  std::vector<std::uint8_t> net_rx;        ///< network bytes to enqueue
  std::vector<std::uint16_t> adc_samples;  ///< ADC samples to enqueue
  std::uint8_t gpio_in = 0;                ///< P3IN level

  /// Called after load/reset but before the run (e.g. poke memory, patch
  /// code, pre-fill OR).
  std::function<void(emu::machine&)> before_run;
  /// Called on every executed instruction (e.g. raise an interrupt or DMA
  /// write mid-execution). Return value ignored.
  std::function<void(emu::machine&, std::uint16_t pc)> on_step;

  std::uint64_t max_cycles = 200'000'000;
};

class prover_device {
 public:
  prover_device(instr::linked_program prog, byte_vec key);
  ~prover_device();

  prover_device(const prover_device&) = delete;
  prover_device& operator=(const prover_device&) = delete;

  /// Run one attested invocation under the given 16-byte challenge and
  /// build the report from device memory.
  verifier::attestation_report invoke(
      const std::array<std::uint8_t, 16>& challenge, const invocation& inv);

  emu::machine& machine() { return *machine_; }
  rot::root_of_trust& rot() { return *rot_; }
  const instr::linked_program& program() const { return prog_; }

  // ---- metrics of the last invocation (Fig. 6 quantities) ----
  /// Cycles spent inside the attested op (ER entry to exit), excluding
  /// crt0 and SW-Att.
  std::uint64_t last_op_cycles() const { return op_cycles_; }
  /// Total device cycles including startup and SW-Att.
  std::uint64_t last_total_cycles() const;
  /// Bytes consumed in OR by CF-Log + I-Log (0 for uninstrumented runs).
  int last_log_bytes() const { return log_bytes_; }

 private:
  class op_meter;

  instr::linked_program prog_;
  byte_vec key_;
  std::unique_ptr<emu::machine> machine_;
  std::unique_ptr<rot::root_of_trust> rot_;
  std::unique_ptr<op_meter> meter_;
  std::uint64_t op_cycles_ = 0;
  int log_bytes_ = 0;
};

}  // namespace dialed::proto

#endif  // DIALED_PROTO_PROVER_H
