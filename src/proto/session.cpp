#include "proto/session.h"

namespace dialed::proto {

verifier_session::verifier_session(instr::linked_program prog, byte_vec key,
                                   std::uint64_t seed)
    : verifier_(std::move(prog), std::move(key)), rng_(seed) {}

std::array<std::uint8_t, 16> verifier_session::new_challenge() {
  std::array<std::uint8_t, 16> chal{};
  for (auto& b : chal) {
    b = static_cast<std::uint8_t>(rng_() & 0xff);
  }
  outstanding_ = chal;
  return chal;
}

verifier::verdict verifier_session::check(
    const verifier::attestation_report& report) {
  if (!outstanding_) {
    verifier::verdict v;
    v.findings.push_back(
        {verifier::attack_kind::stale_challenge,
         "no outstanding challenge: report replayed or unsolicited", 0, 0});
    return v;
  }
  const auto chal = *outstanding_;
  outstanding_.reset();  // one-time nonce
  return verifier_.verify(report, chal);
}

}  // namespace dialed::proto
