#include "proto/session.h"

namespace dialed::proto {

namespace {

fleet::hub_config single_device_config(std::uint64_t seed) {
  fleet::hub_config cfg;
  cfg.max_outstanding = 1;  // v1 semantics: a new challenge evicts the old
  cfg.seed = seed;
  // One device needs one lock domain and no worker pool: the adapter is a
  // single-threaded v1 surface, so don't pay hub threads per session.
  cfg.shards = 1;
  cfg.sequential_batch = true;
  return cfg;
}

}  // namespace

verifier_session::verifier_session(instr::linked_program prog, byte_vec key,
                                   std::uint64_t seed)
    : registry_(key), hub_(registry_, single_device_config(seed)) {
  id_ = registry_.enroll(std::move(prog), std::move(key));
}

std::array<std::uint8_t, 16> verifier_session::new_challenge() {
  // The grant's challenge_superseded note is intentionally dropped here —
  // the documented v1 behavior this adapter preserves.
  return hub_.challenge(id_).nonce;
}

fleet::attest_result verifier_session::submit_frame(
    std::span<const std::uint8_t> frame) {
  // Cheap route sniff (magic + version byte): only a v1 frame — no
  // identity, predates sequence numbers — needs the adapter's
  // seq-unchecked path, and only it pays a decode here. Everything else
  // (v2/v2.1/damaged, so the hub's error histogram sees the damage) goes
  // straight to the hub, which decodes ONCE into its thread-local
  // scratch instead of twice per report.
  if (frame.size() >= 3 && load_le16(frame, 0) == wire_magic &&
      frame[2] == wire_v1) {
    const auto decoded = decode_frame(frame);
    if (decoded.ok()) return hub_.verify_report(id_, decoded.frame.report);
  }
  return hub_.submit(frame);
}

verifier::verdict verifier_session::check(
    const verifier::attestation_report& report) {
  auto result = hub_.verify_report(id_, report);
  if (result.error == proto_error::none) return std::move(result.verdict);
  verifier::verdict v;
  v.findings.push_back(
      {verifier::attack_kind::stale_challenge,
       "challenge not outstanding (" + to_string(result.error) +
           "): report replayed, superseded or unsolicited",
       0, 0});
  return v;
}

}  // namespace dialed::proto
