// Mini-C compiler: front-end diagnostics and, mainly, end-to-end semantic
// tests that compile snippets, run them on the emulated MCU and check the
// returned value against the C semantics.
#include <gtest/gtest.h>

#include "cc/compiler.h"
#include "common/error.h"
#include "helpers.h"

namespace dialed::cc {
namespace {

using test::eval_op;

// ---------------------------------------------------------------------------
// Arithmetic and operators (golden-behavior sweep)
// ---------------------------------------------------------------------------

struct binop_case {
  std::string op;
  std::int16_t a;
  std::int16_t b;
  std::int16_t expected;
};

class binop_eval : public ::testing::TestWithParam<binop_case> {};

TEST_P(binop_eval, computes_c_semantics) {
  const auto& c = GetParam();
  const std::string src =
      "int op(int a, int b) { return a " + c.op + " b; }";
  const auto r = eval_op(src, static_cast<std::uint16_t>(c.a),
                         static_cast<std::uint16_t>(c.b));
  EXPECT_EQ(static_cast<std::int16_t>(r), c.expected)
      << c.a << " " << c.op << " " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    arithmetic, binop_eval,
    ::testing::Values(binop_case{"+", 40, 2, 42},
                      binop_case{"+", 32000, 1000, -32536},  // wraps
                      binop_case{"-", 10, 25, -15},
                      binop_case{"*", 7, 6, 42},
                      binop_case{"*", -7, 6, -42},
                      binop_case{"*", 300, 300, static_cast<std::int16_t>(
                                                    90000 & 0xffff)},
                      binop_case{"/", 42, 6, 7},
                      binop_case{"/", -42, 6, -7},
                      binop_case{"/", 42, -6, -7},
                      binop_case{"/", 7, 2, 3},
                      binop_case{"%", 42, 5, 2},
                      binop_case{"%", -42, 5, -2},
                      binop_case{"&", 0x0ff0, 0x00ff, 0x00f0},
                      binop_case{"|", 0x0f00, 0x00f0, 0x0ff0},
                      binop_case{"^", 0x0ff0, 0x0f0f, 0x00ff},
                      binop_case{"<<", 3, 4, 48},
                      binop_case{">>", 0x0100, 4, 0x0010}));

INSTANTIATE_TEST_SUITE_P(
    comparisons, binop_eval,
    ::testing::Values(binop_case{"==", 5, 5, 1}, binop_case{"==", 5, 6, 0},
                      binop_case{"!=", 5, 6, 1}, binop_case{"!=", 5, 5, 0},
                      binop_case{"<", -1, 1, 1}, binop_case{"<", 1, -1, 0},
                      binop_case{"<=", 5, 5, 1}, binop_case{"<=", 6, 5, 0},
                      binop_case{">", 9, 3, 1}, binop_case{">", -9, 3, 0},
                      binop_case{">=", 3, 3, 1}, binop_case{">=", 2, 3, 0},
                      binop_case{"&&", 2, 3, 1}, binop_case{"&&", 2, 0, 0},
                      binop_case{"||", 0, 3, 1}, binop_case{"||", 0, 0, 0}));

TEST(expr, unary_operators) {
  EXPECT_EQ(static_cast<std::int16_t>(
                eval_op("int op(int a) { return -a; }", 42)),
            -42);
  EXPECT_EQ(eval_op("int op(int a) { return ~a; }", 0x00ff), 0xff00);
  EXPECT_EQ(eval_op("int op(int a) { return !a; }", 0), 1);
  EXPECT_EQ(eval_op("int op(int a) { return !a; }", 7), 0);
}

TEST(expr, precedence_and_parens) {
  EXPECT_EQ(eval_op("int op(int a) { return 2 + 3 * 4; }", 0), 14);
  EXPECT_EQ(eval_op("int op(int a) { return (2 + 3) * 4; }", 0), 20);
  EXPECT_EQ(eval_op("int op(int a) { return 10 - 2 - 3; }", 0), 5);
}

TEST(expr, short_circuit_does_not_evaluate_rhs) {
  // If && evaluated its rhs, the division by zero helper would corrupt the
  // result; division by zero yields garbage but the guard prevents it.
  const auto r = eval_op(
      "int op(int a) { if (a != 0 && 10 / a > 1) { return 1; } return 0; }",
      0);
  EXPECT_EQ(r, 0);
}

TEST(expr, compound_assignment_and_incdec) {
  EXPECT_EQ(eval_op("int op(int a) { a += 5; a *= 2; a -= 4; return a; }", 3),
            12);
  EXPECT_EQ(eval_op("int op(int a) { int b = a++; return a * 100 + b; }", 4),
            504);
  EXPECT_EQ(eval_op("int op(int a) { int b = ++a; return a * 100 + b; }", 4),
            505);
  EXPECT_EQ(eval_op("int op(int a) { a--; --a; return a; }", 10), 8);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

TEST(stmt, if_else_chains) {
  const std::string src =
      "int op(int a) {"
      "  if (a < 0) { return 1; }"
      "  else if (a == 0) { return 2; }"
      "  else { return 3; }"
      "}";
  EXPECT_EQ(eval_op(src, static_cast<std::uint16_t>(-5)), 1);
  EXPECT_EQ(eval_op(src, 0), 2);
  EXPECT_EQ(eval_op(src, 5), 3);
}

TEST(stmt, while_loop_sum) {
  const auto r = eval_op(
      "int op(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; }"
      " return s; }",
      10);
  EXPECT_EQ(r, 55);
}

TEST(stmt, for_loop_with_break_continue) {
  const auto r = eval_op(
      "int op(int n) {"
      "  int s = 0; int i;"
      "  for (i = 0; i < n; i++) {"
      "    if (i == 3) { continue; }"
      "    if (i == 7) { break; }"
      "    s = s + i;"
      "  }"
      "  return s;"
      "}",
      100);
  EXPECT_EQ(r, 0 + 1 + 2 + 4 + 5 + 6);
}

TEST(stmt, do_while_runs_body_at_least_once) {
  const std::string src =
      "int op(int n) { int c = 0;"
      "  do { c = c + 1; n = n - 1; } while (n > 0);"
      "  return c; }";
  EXPECT_EQ(eval_op(src, 5), 5);
  EXPECT_EQ(eval_op(src, 0), 1);  // body executes before the test
}

TEST(stmt, do_while_break_and_continue) {
  const auto r = eval_op(
      "int op(int n) { int c = 0; int i = 0;"
      "  do {"
      "    i = i + 1;"
      "    if (i == 2) { continue; }"
      "    if (i == 5) { break; }"
      "    c = c + i;"
      "  } while (i < n);"
      "  return c; }",
      100);
  EXPECT_EQ(r, 1 + 3 + 4);
}

TEST(stmt, nested_loops) {
  const auto r = eval_op(
      "int op(int n) {"
      "  int s = 0; int i; int j;"
      "  for (i = 1; i <= n; i++) {"
      "    for (j = 1; j <= i; j++) { s = s + 1; }"
      "  }"
      "  return s;"
      "}",
      5);
  EXPECT_EQ(r, 15);
}

// ---------------------------------------------------------------------------
// Functions, recursion, calling convention
// ---------------------------------------------------------------------------

TEST(functions, recursion_factorial) {
  const auto r = eval_op(
      "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
      "int op(int n) { return fact(n); }",
      7);
  EXPECT_EQ(r, 5040);
}

TEST(functions, fibonacci_double_recursion) {
  const auto r = eval_op(
      "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
      "int op(int n) { return fib(n); }",
      12);
  EXPECT_EQ(r, 144);
}

TEST(functions, eight_arguments) {
  const std::string src =
      "int f(int a, int b, int c, int d, int e, int f2, int g, int h) {"
      "  return a + b*2 + c*3 + d*4 + e*5 + f2*6 + g*7 + h*8; }"
      "int op(int x) { return f(1, 2, 3, 4, 5, 6, 7, 8); }";
  EXPECT_EQ(eval_op(src, 0), 1 + 4 + 9 + 16 + 25 + 36 + 49 + 64);
}

TEST(functions, void_function_side_effect) {
  const auto r = eval_op(
      "int acc = 0;"
      "void bump(int k) { acc = acc + k; }"
      "int op(int n) { bump(n); bump(n); return acc; }",
      21);
  EXPECT_EQ(r, 42);
}

TEST(functions, call_in_expression_preserves_temporaries) {
  const auto r = eval_op(
      "int id(int x) { return x; }"
      "int op(int a) { return id(1) + id(2) * id(3) + a; }",
      10);
  EXPECT_EQ(r, 17);
}

// ---------------------------------------------------------------------------
// Arrays, pointers, globals
// ---------------------------------------------------------------------------

TEST(memory, local_array_sum) {
  const auto r = eval_op(
      "int op(int n) {"
      "  int a[5]; int i; int s = 0;"
      "  for (i = 0; i < 5; i++) { a[i] = i * n; }"
      "  for (i = 0; i < 5; i++) { s = s + a[i]; }"
      "  return s;"
      "}",
      3);
  EXPECT_EQ(r, (0 + 1 + 2 + 3 + 4) * 3);
}

TEST(memory, global_array_and_initializers) {
  const auto r = eval_op(
      "int table[4] = {10, 20, 30, 40};"
      "int op(int i) { return table[i]; }",
      2);
  EXPECT_EQ(r, 30);
}

TEST(memory, global_scalar_init_and_update) {
  const auto r = eval_op(
      "int counter = 5;"
      "int op(int k) { counter = counter + k; return counter; }",
      10);
  EXPECT_EQ(r, 15);
}

TEST(memory, pointer_deref_and_addr) {
  const auto r = eval_op(
      "int op(int a) { int x = a; int *p = &x; *p = *p + 1; return x; }", 41);
  EXPECT_EQ(r, 42);
}

TEST(memory, pointer_arithmetic_scales_by_element) {
  const auto r = eval_op(
      "int op(int n) {"
      "  int a[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;"
      "  int *p = a; p = p + 2; return *p;"
      "}",
      0);
  EXPECT_EQ(r, 3);
}

TEST(memory, array_parameter_decays_to_pointer) {
  const auto r = eval_op(
      "int sum(int *v, int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + v[i]; } return s; }"
      "int op(int x) { int a[3]; a[0] = x; a[1] = x; a[2] = x;"
      "  return sum(a, 3); }",
      7);
  EXPECT_EQ(r, 21);
}

TEST(memory, char_arrays_are_byte_addressed) {
  const auto r = eval_op(
      "char buf[4];"
      "int op(int x) { buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;"
      "  return buf[0] + buf[1] * 256 + buf[3]; }",
      0);
  EXPECT_EQ(r, 1 + 2 * 256 + 4);
}

TEST(memory, char_truncates_to_byte) {
  const auto r = eval_op(
      "char c;"
      "int op(int x) { c = x; return c; }",
      0x1ff);
  EXPECT_EQ(r, 0xff);
}

TEST(memory, memcpy_builtin) {
  const auto r = eval_op(
      "int src[3] = {7, 8, 9}; int dst[3];"
      "int op(int x) { memcpy(dst, src, 6); return dst[0] + dst[1] + dst[2]; }",
      0);
  EXPECT_EQ(r, 24);
}

// ---------------------------------------------------------------------------
// Access sites (the verifier's bounds metadata)
// ---------------------------------------------------------------------------

TEST(debug_info, access_sites_recorded_for_named_arrays) {
  const auto cr = compile(
      "int g[4];"
      "int op(int i) { int loc[2]; loc[0] = 1; g[i] = 2; return loc[i]; }");
  int global_sites = 0, local_sites = 0;
  for (const auto& s : cr.access_sites) {
    if (s.is_global) {
      ++global_sites;
      EXPECT_EQ(s.object, "g");
      EXPECT_EQ(s.size_bytes, 8);
    } else {
      ++local_sites;
      EXPECT_EQ(s.object, "loc");
      EXPECT_EQ(s.size_bytes, 4);
    }
  }
  EXPECT_EQ(global_sites, 1);
  EXPECT_EQ(local_sites, 2);
}

TEST(debug_info, pointer_bases_have_no_sites) {
  const auto cr = compile("int op(int *p, int i) { return p[i]; }");
  EXPECT_TRUE(cr.access_sites.empty());
}

TEST(debug_info, function_frames_reported) {
  const auto cr = compile(
      "int op(int a, int b) { int x; int arr[3]; return a; }");
  ASSERT_EQ(cr.functions.size(), 1u);
  const auto& f = cr.functions[0];
  EXPECT_EQ(f.name, "op");
  EXPECT_EQ(f.num_params, 2);
  ASSERT_EQ(f.locals.size(), 4u);
  EXPECT_EQ(f.locals[0].name, "a");
  EXPECT_EQ(f.locals[0].frame_offset, 0);
  EXPECT_EQ(f.locals[2].name, "x");
  EXPECT_EQ(f.locals[3].name, "arr");
  EXPECT_EQ(f.locals[3].size_bytes, 6);
  EXPECT_EQ(f.frame_size, 2 + 2 + 2 + 6);
}

// ---------------------------------------------------------------------------
// Runtime helpers
// ---------------------------------------------------------------------------

TEST(runtime, helpers_tracked_and_emitted_with_deps) {
  const auto cr = compile("int op(int a, int b) { return a / b; }");
  EXPECT_TRUE(cr.helpers.count("__divhi"));
  const auto text = runtime_asm(cr.helpers);
  EXPECT_NE(text.find("__divhi:"), std::string::npos);
  EXPECT_NE(text.find("__udivhi:"), std::string::npos);  // dependency
}

TEST(runtime, unknown_helper_rejected) {
  EXPECT_THROW(runtime_asm({"__nonsense"}), error);
}

TEST(runtime, division_by_zero_does_not_hang) {
  // C leaves it undefined; ours returns garbage but must terminate.
  const auto r = eval_op("int op(int a) { return a / 0 + 1; }", 5);
  (void)r;
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

struct diag_case {
  std::string source;
  std::string fragment;
};

class diagnostics : public ::testing::TestWithParam<diag_case> {};

TEST_P(diagnostics, reports_error_with_context) {
  try {
    compile(GetParam().source);
    FAIL() << "expected cc error";
  } catch (const error& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().fragment),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    errors, diagnostics,
    ::testing::Values(
        diag_case{"int op(int a) { return b; }", "undefined variable"},
        diag_case{"int op(int a) { missing(); return 0; }",
                  "undefined function"},
        diag_case{"int f(int a) { return a; } int op(int a) { return f(); }",
                  "wrong number of arguments"},
        diag_case{"int op(int a) { 5 = a; return 0; }", "not assignable"},
        diag_case{"int op(int a) { int a; return a; }", "redefined"},
        diag_case{"int op(int a) { return *a; }", "non-pointer"},
        diag_case{"int op(int a) { break; return 0; }", "outside a loop"},
        diag_case{"int op(int a) { return a +; }", "expected expression"},
        diag_case{"int op(int a) { if a { return 1; } return 0; }",
                  "expected '('"},
        diag_case{"int g; int g; int op(int a) { return 0; }",
                  "global redefined"}));

TEST(lexer, character_literals_and_comments) {
  const auto r = eval_op(
      "/* block comment */"
      "int op(int a) { // line comment\n  return 'A' + a; }",
      1);
  EXPECT_EQ(r, 66);
}

TEST(lexer, hex_literals) {
  EXPECT_EQ(eval_op("int op(int a) { return 0xff + a; }", 1), 0x100);
}

}  // namespace
}  // namespace dialed::cc
