// CPU core semantics (flags, addressing modes, byte ops, control transfer,
// interrupts) and the peripherals, exercised through small assembly
// programs run on the machine.
#include <gtest/gtest.h>

#include "helpers.h"

namespace dialed::emu {
namespace {

using test::run_asm;

std::uint16_t reg_after(const std::string& body, int reg) {
  auto m = run_asm(body + "        mov #1, &HALT_PORT\n");
  EXPECT_TRUE(m->halted());
  return m->get_cpu().regs()[static_cast<std::size_t>(reg)];
}

std::uint16_t sr_after(const std::string& body) {
  return reg_after(body, isa::REG_SR);
}

// ---------------------------------------------------------------------------
// Arithmetic flags
// ---------------------------------------------------------------------------

TEST(flags, add_carry_and_zero) {
  const auto sr = sr_after(
      "        mov #0xffff, r15\n"
      "        add #1, r15\n");
  EXPECT_TRUE(sr & isa::SR_C);
  EXPECT_TRUE(sr & isa::SR_Z);
  EXPECT_FALSE(sr & isa::SR_N);
  EXPECT_FALSE(sr & isa::SR_V);
}

TEST(flags, add_signed_overflow) {
  const auto sr = sr_after(
      "        mov #0x7fff, r15\n"
      "        add #1, r15\n");
  EXPECT_TRUE(sr & isa::SR_V);
  EXPECT_TRUE(sr & isa::SR_N);
  EXPECT_FALSE(sr & isa::SR_C);
}

TEST(flags, sub_borrow_clears_carry) {
  // 3 - 5: borrow -> C=0, negative result.
  const auto sr = sr_after(
      "        mov #3, r15\n"
      "        sub #5, r15\n");
  EXPECT_FALSE(sr & isa::SR_C);
  EXPECT_TRUE(sr & isa::SR_N);
}

TEST(flags, sub_no_borrow_sets_carry) {
  const auto sr = sr_after(
      "        mov #5, r15\n"
      "        sub #3, r15\n");
  EXPECT_TRUE(sr & isa::SR_C);
  EXPECT_FALSE(sr & isa::SR_N);
}

TEST(flags, cmp_does_not_write_destination) {
  EXPECT_EQ(reg_after("        mov #7, r15\n"
                      "        cmp #3, r15\n",
                      15),
            7);
}

TEST(flags, mov_preserves_flags) {
  const auto sr = sr_after(
      "        mov #0, r15\n"
      "        add #0, r15\n"  // sets Z
      "        mov #5, r14\n");
  EXPECT_TRUE(sr & isa::SR_Z);
}

TEST(alu, addc_uses_carry_chain) {
  EXPECT_EQ(reg_after("        mov #0xffff, r15\n"
                      "        add #1, r15\n"   // C=1
                      "        mov #10, r14\n"
                      "        addc #0, r14\n",  // r14 = 10 + 0 + C
                      14),
            11);
}

TEST(alu, subc_borrow_chain) {
  // 0 - 1 across two words: low: 0-1 -> 0xffff, C=0; high: 0 - 0 - !C.
  EXPECT_EQ(reg_after("        mov #0, r15\n"
                      "        mov #0, r14\n"
                      "        sub #1, r15\n"
                      "        subc #0, r14\n",
                      14),
            0xffff);
}

TEST(alu, dadd_bcd_addition) {
  EXPECT_EQ(reg_after("        clrc\n"
                      "        mov #0x0199, r15\n"
                      "        dadd #0x0001, r15\n",
                      15),
            0x0200);
}

TEST(alu, logic_ops) {
  EXPECT_EQ(reg_after("        mov #0x0ff0, r15\n"
                      "        and #0x00ff, r15\n",
                      15),
            0x00f0);
  EXPECT_EQ(reg_after("        mov #0x0f00, r15\n"
                      "        bis #0x00f0, r15\n",
                      15),
            0x0ff0);
  EXPECT_EQ(reg_after("        mov #0xffff, r15\n"
                      "        bic #0x00ff, r15\n",
                      15),
            0xff00);
  EXPECT_EQ(reg_after("        mov #0xaaaa, r15\n"
                      "        xor #0xffff, r15\n",
                      15),
            0x5555);
}

TEST(alu, bit_sets_flags_without_writeback) {
  const auto m = run_asm(
      "        mov #0x0001, r15\n"
      "        bit #1, r15\n"
      "        mov #1, &HALT_PORT\n");
  const auto sr = m->get_cpu().regs()[isa::REG_SR];
  EXPECT_FALSE(sr & isa::SR_Z);
  EXPECT_TRUE(sr & isa::SR_C);  // C = NOT Z
  EXPECT_EQ(m->get_cpu().regs()[15], 1);
}

TEST(alu, shifts_and_rotates) {
  EXPECT_EQ(reg_after("        mov #0x8001, r15\n"
                      "        rra r15\n",
                      15),
            0xc000);  // arithmetic: sign preserved
  EXPECT_EQ(reg_after("        mov #0x8000, r15\n"
                      "        setc\n"
                      "        rrc r15\n",
                      15),
            0xc000);  // carry into MSB
  EXPECT_EQ(reg_after("        mov #3, r15\n"
                      "        rla r15\n",
                      15),
            6);
}

TEST(alu, swpb_and_sxt) {
  EXPECT_EQ(reg_after("        mov #0x1234, r15\n"
                      "        swpb r15\n",
                      15),
            0x3412);
  EXPECT_EQ(reg_after("        mov #0x0080, r15\n"
                      "        sxt r15\n",
                      15),
            0xff80);
  EXPECT_EQ(reg_after("        mov #0x007f, r15\n"
                      "        sxt r15\n",
                      15),
            0x007f);
}

// ---------------------------------------------------------------------------
// Byte operations
// ---------------------------------------------------------------------------

TEST(byte_ops, register_write_clears_high_byte) {
  EXPECT_EQ(reg_after("        mov #0xffff, r15\n"
                      "        mov.b #0x12, r15\n",
                      15),
            0x0012);
}

TEST(byte_ops, memory_byte_store_leaves_neighbor) {
  auto m = run_asm(
      "        mov #0x5678, &0x0200\n"
      "        mov.b #0xaa, &0x0200\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_bus().peek16(0x0200), 0x56aa);
}

TEST(byte_ops, byte_add_flags_from_byte) {
  const auto sr = sr_after(
      "        mov #0x00ff, r15\n"
      "        add.b #1, r15\n");
  EXPECT_TRUE(sr & isa::SR_Z);
  EXPECT_TRUE(sr & isa::SR_C);
}

// ---------------------------------------------------------------------------
// Addressing modes + memory
// ---------------------------------------------------------------------------

TEST(modes, indexed_and_indirect) {
  auto m = run_asm(
      "        mov #0x0200, r14\n"
      "        mov #0x1111, 0(r14)\n"
      "        mov #0x2222, 2(r14)\n"
      "        mov @r14, r15\n"
      "        mov 2(r14), r13\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_cpu().regs()[15], 0x1111);
  EXPECT_EQ(m->get_cpu().regs()[13], 0x2222);
}

TEST(modes, autoincrement_word_and_byte) {
  auto m = run_asm(
      "        mov #0x1234, &0x0200\n"
      "        mov #0x0200, r14\n"
      "        mov @r14+, r15\n"
      "        mov #0x0200, r13\n"
      "        mov.b @r13+, r12\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_cpu().regs()[14], 0x0202);  // +2 for word
  EXPECT_EQ(m->get_cpu().regs()[13], 0x0201);  // +1 for byte
  EXPECT_EQ(m->get_cpu().regs()[15], 0x1234);
  EXPECT_EQ(m->get_cpu().regs()[12], 0x0034);
}

TEST(modes, push_pop_and_stack) {
  auto m = run_asm(
      "        mov #STACK_INIT, sp\n"
      "        mov #0xaaaa, r15\n"
      "        push r15\n"
      "        mov #0xbbbb, r15\n"
      "        push r15\n"
      "        pop r14\n"
      "        pop r13\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_cpu().regs()[14], 0xbbbb);
  EXPECT_EQ(m->get_cpu().regs()[13], 0xaaaa);
  EXPECT_EQ(m->get_cpu().regs()[isa::REG_SP], m->map().stack_init);
}

// ---------------------------------------------------------------------------
// Control transfer
// ---------------------------------------------------------------------------

TEST(control, call_and_ret) {
  auto m = run_asm(
      "        mov #STACK_INIT, sp\n"
      "        call #sub\n"
      "        mov #1, &HALT_PORT\n"
      "sub:    mov #0x77, r15\n"
      "        ret\n");
  EXPECT_EQ(m->get_cpu().regs()[15], 0x77);
  EXPECT_EQ(m->halt_code(), 1);
}

TEST(control, conditional_jumps_signed_vs_unsigned) {
  // jl is signed: -1 < 1. jlo is unsigned: 0xffff > 1.
  auto m = run_asm(
      "        mov #0xffff, r15\n"
      "        cmp #1, r15\n"
      "        jl signed_less\n"
      "        mov #0, r14\n"
      "        jmp next\n"
      "signed_less: mov #1, r14\n"
      "next:   cmp #1, r15\n"
      "        jlo unsigned_less\n"
      "        mov #0, r13\n"
      "        jmp done\n"
      "unsigned_less: mov #1, r13\n"
      "done:   mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_cpu().regs()[14], 1);  // signed: -1 < 1
  EXPECT_EQ(m->get_cpu().regs()[13], 0);  // unsigned: 0xffff >= 1
}

TEST(control, br_via_pc) {
  auto m = run_asm(
      "        br #target\n"
      "        mov #99, r15\n"
      "        mov #1, &HALT_PORT\n"
      "target: mov #42, r15\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->get_cpu().regs()[15], 42);
}

TEST(control, cycle_counting_matches_model) {
  auto m = run_asm(
      "        mov #5, r15\n"          // 2 cycles (#N->Rn)
      "        add r15, r15\n"         // 1
      "        mov r15, &0x0200\n"     // 4
      "        mov #1, &HALT_PORT\n"); // 5 (CG #1 -> &abs = 1+0+3... CG+abs=4)
  // mov #1 uses CG: 1 + 0 + 3 = 4 cycles.
  EXPECT_EQ(m->cycles(), 2u + 1u + 4u + 4u);
}

// ---------------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------------

TEST(interrupts, serviced_when_gie_set) {
  emu::memory_map map;
  const std::string text =
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #STACK_INIT, sp\n"
      "        eint\n"
      "loop:   jmp loop\n"
      "isr:    mov #0xbeef, r15\n"
      "        mov #1, &HALT_PORT\n"
      "        reti\n"
      "        .org 0xffe0\n"
      "        .word isr\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n";
  auto img = masm::assemble_text(text, map.predefined_symbols());
  machine m(map);
  m.load(img);
  m.reset();
  m.run(100);  // spin a little
  EXPECT_FALSE(m.halted());
  m.get_cpu().request_interrupt(0);
  m.run(10'000);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.get_cpu().regs()[15], 0xbeef);
}

TEST(interrupts, masked_when_gie_clear) {
  emu::memory_map map;
  const std::string text =
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #STACK_INIT, sp\n"
      "        dint\n"
      "        mov #100, r14\n"
      "loop:   dec r14\n"
      "        jne loop\n"
      "        mov #1, &HALT_PORT\n"
      "isr:    mov #0xbeef, r15\n"
      "        reti\n"
      "        .org 0xffe0\n"
      "        .word isr\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n";
  auto img = masm::assemble_text(text, map.predefined_symbols());
  machine m(map);
  m.load(img);
  m.reset();
  m.get_cpu().request_interrupt(0);
  m.run(100'000);
  EXPECT_TRUE(m.halted());
  EXPECT_NE(m.get_cpu().regs()[15], 0xbeef);
}

// ---------------------------------------------------------------------------
// Peripherals
// ---------------------------------------------------------------------------

TEST(peripherals, gpio_records_history_with_cycles) {
  auto m = run_asm(
      "        mov.b #1, &P3OUT\n"
      "        mov.b #0, &P3OUT\n"
      "        mov #1, &HALT_PORT\n");
  const auto& h = m->gpio().history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].value, 1);
  EXPECT_EQ(h[1].value, 0);
  EXPECT_LT(h[0].cycle, h[1].cycle);
}

TEST(peripherals, net_fifo_idempotent_read_with_ack) {
  emu::memory_map map;
  auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov.b &NET_DATA, r15\n"
      "        mov.b &NET_DATA, r14\n"  // same byte again (no ack yet)
      "        mov.b #0, &NET_DATA\n"   // ack
      "        mov.b &NET_DATA, r13\n"  // next byte
      "        mov.b &NET_AVAIL, r12\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  machine m(map);
  m.load(img);
  m.net().push_rx(0x41);
  m.net().push_rx(0x42);
  m.reset();
  m.run(10'000);
  EXPECT_EQ(m.get_cpu().regs()[15], 0x41);
  EXPECT_EQ(m.get_cpu().regs()[14], 0x41);
  EXPECT_EQ(m.get_cpu().regs()[13], 0x42);
  EXPECT_EQ(m.get_cpu().regs()[12], 1);  // one byte left
}

TEST(peripherals, net_tx_collects_bytes) {
  auto m = run_asm(
      "        mov.b #0x58, &NET_TX\n"
      "        mov.b #0x59, &NET_TX\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_EQ(m->net().tx(), (std::vector<std::uint8_t>{0x58, 0x59}));
}

TEST(peripherals, adc_trigger_then_read) {
  emu::memory_map map;
  auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #1, &ADC_MEM\n"   // trigger conversion
      "        mov &ADC_MEM, r15\n"
      "        mov &ADC_MEM, r14\n"  // idempotent re-read
      "        mov #1, &ADC_MEM\n"
      "        mov &ADC_MEM, r13\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  machine m(map);
  m.load(img);
  m.adc().push_sample(0x123);
  m.adc().push_sample(0x456);
  m.reset();
  m.run(10'000);
  EXPECT_EQ(m.get_cpu().regs()[15], 0x123);
  EXPECT_EQ(m.get_cpu().regs()[14], 0x123);
  EXPECT_EQ(m.get_cpu().regs()[13], 0x456);
}

TEST(peripherals, mailbox_args_and_result) {
  emu::memory_map map;
  auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov &ARGS_BASE, r15\n"
      "        mov &ARGS_BASE+2, r14\n"
      "        add r14, r15\n"
      "        mov r15, &RESULT\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  machine m(map);
  m.load(img);
  m.mailbox().set_arg(0, 30);
  m.mailbox().set_arg(1, 12);
  m.reset();
  m.run(10'000);
  EXPECT_EQ(m.mailbox().result(), 42);
}

TEST(peripherals, timer_tracks_cycles) {
  auto m = run_asm(
      "        mov &TAR, r15\n"
      "        nop\n"
      "        nop\n"
      "        mov &TAR, r14\n"
      "        mov #1, &HALT_PORT\n");
  EXPECT_GT(m->get_cpu().regs()[14], m->get_cpu().regs()[15]);
}

TEST(machine, dma_visible_to_watchers) {
  struct probe : watcher {
    int dma_writes = 0;
    void on_access(const bus_access& a) override {
      if (a.dma && a.write) ++dma_writes;
    }
  };
  machine m{};
  probe p;
  m.get_bus().add_watcher(&p);
  m.dma_write16(0x0200, 0x1234);
  EXPECT_EQ(p.dma_writes, 1);
  EXPECT_EQ(m.get_bus().peek16(0x0200), 0x1234);
  m.get_bus().remove_watcher(&p);
}

TEST(machine, cycle_limit_run_result) {
  auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "loop:   jmp loop\n"
      "        .org 0xfffe\n"
      "        .word __start\n");
  machine m{};
  m.load(img);
  m.reset();
  EXPECT_EQ(m.run(1'000), machine::run_result::cycle_limit);
  EXPECT_FALSE(m.halted());
}

TEST(machine, halt_code_word_write) {
  auto m = run_asm("        mov #0x0203, &HALT_PORT\n");
  EXPECT_TRUE(m->halted());
}

TEST(bus, peek_is_authoritative_for_mmio_addresses) {
  // Regression (PR 10): peek8/peek16 used to read the raw RAM array under
  // device-owned addresses, so a host observation of a peripheral register
  // disagreed with what the program would read. The page table now gives
  // the device the one authoritative answer for both paths.
  emu::memory_map map;
  machine m{};
  m.get_bus().write8(map.p3out, 0x5a);
  m.gpio().set_input(0x07);
  EXPECT_EQ(m.gpio().output(), 0x5a);
  EXPECT_EQ(m.get_bus().peek8(map.p3out), 0x5a);
  EXPECT_EQ(m.get_bus().peek8(map.p3in), 0x07);
  // p3in/p3out are adjacent (0x18/0x19): a 16-bit peek must compose the
  // same per-byte device answers.
  EXPECT_EQ(m.get_bus().peek16(map.p3in), 0x5a07);

  m.adc().push_sample(0x0123);
  m.get_bus().write8(map.adc_mem, 0);  // trigger a conversion
  EXPECT_EQ(m.get_bus().peek16(map.adc_mem), 0x0123);
}

TEST(bus, peek_does_not_consume_the_net_fifo) {
  // Observation must be side-effect-free: peeking the RX head leaves the
  // FIFO depth untouched, and only the program's ack (a write to net_data)
  // advances it.
  emu::memory_map map;
  machine m{};
  m.net().push_rx(0xaa);
  m.net().push_rx(0xbb);
  EXPECT_EQ(m.get_bus().peek8(map.net_data), 0xaa);
  EXPECT_EQ(m.get_bus().peek8(map.net_data), 0xaa);
  EXPECT_EQ(m.get_bus().peek8(map.net_avail), 2);
  m.get_bus().write8(map.net_data, 0);  // ack: pop the head
  EXPECT_EQ(m.get_bus().peek8(map.net_data), 0xbb);
  EXPECT_EQ(m.get_bus().peek8(map.net_avail), 1);
}

TEST(bus, page_table_stays_coherent_across_recycle) {
  // recycle() clears RAM and re-arms the peripherals but never
  // adds/removes devices — the dispatch page table must keep routing
  // device addresses afterwards.
  emu::memory_map map;
  machine m{};
  m.get_bus().write8(map.p3out, 0x11);
  m.recycle();
  EXPECT_EQ(m.get_bus().peek8(map.p3out), m.gpio().output());
  m.get_bus().write8(map.p3out, 0x22);
  EXPECT_EQ(m.get_bus().peek8(map.p3out), 0x22);
  EXPECT_EQ(m.gpio().output(), 0x22);
  // Plain RAM still reads/writes through the no-device fast path.
  m.get_bus().write8(0x0200, 0x33);
  EXPECT_EQ(m.get_bus().peek8(0x0200), 0x33);
}

}  // namespace
}  // namespace dialed::emu
