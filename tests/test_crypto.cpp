// SHA-256 (FIPS 180-4 / NIST CAVP vectors) and HMAC-SHA256 (RFC 4231).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dialed::crypto {
namespace {

byte_vec bytes_of(const std::string& s) {
  return byte_vec(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// SHA-256 known-answer tests
// ---------------------------------------------------------------------------

struct sha_vector {
  std::string message;
  std::string digest_hex;
};

class sha256_kat : public ::testing::TestWithParam<sha_vector> {};

TEST_P(sha256_kat, matches_reference_digest) {
  const auto& v = GetParam();
  const auto d = sha256::hash(bytes_of(v.message));
  EXPECT_EQ(to_hex(d), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    nist, sha256_kat,
    ::testing::Values(
        sha_vector{"",
                   "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
                   "7852b855"},
        sha_vector{"abc",
                   "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
                   "f20015ad"},
        sha_vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
                   "19db06c1"},
        sha_vector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                   "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
                   "7afee9d1"},
        sha_vector{"The quick brown fox jumps over the lazy dog",
                   "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
                   "37c9e592"}));

TEST(sha256, million_a) {
  sha256 h;
  const byte_vec chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(sha256, reset_restores_initial_state) {
  sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Incremental hashing must be chunking-invariant.
class sha256_chunking : public ::testing::TestWithParam<int> {};

TEST_P(sha256_chunking, incremental_equals_oneshot) {
  const int chunk = GetParam();
  byte_vec msg(257);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto expect = sha256::hash(msg);
  sha256 h;
  for (std::size_t pos = 0; pos < msg.size();
       pos += static_cast<std::size_t>(chunk)) {
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(chunk),
                              msg.size() - pos);
    h.update(std::span(msg).subspan(pos, n));
  }
  EXPECT_EQ(h.finish(), expect);
}

INSTANTIATE_TEST_SUITE_P(chunks, sha256_chunking,
                         ::testing::Values(1, 2, 3, 7, 31, 63, 64, 65, 128,
                                           255));

// Boundary lengths around the padding edge (55/56/63/64 bytes).
class sha256_lengths : public ::testing::TestWithParam<int> {};

TEST_P(sha256_lengths, consistent_with_prefix_property) {
  // hash(m) must differ from hash(m || 0x00) — trivial but catches padding
  // bugs at block boundaries.
  const int n = GetParam();
  byte_vec msg(static_cast<std::size_t>(n), 0xab);
  byte_vec ext = msg;
  ext.push_back(0x00);
  EXPECT_NE(sha256::hash(msg), sha256::hash(ext));
}

INSTANTIATE_TEST_SUITE_P(boundaries, sha256_lengths,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128));

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(hmac, rfc4231_case1) {
  const byte_vec key(20, 0x0b);
  const auto mac = hmac_sha256::compute(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(hmac, rfc4231_case2) {
  const auto mac = hmac_sha256::compute(
      bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(hmac, rfc4231_case3) {
  const byte_vec key(20, 0xaa);
  const byte_vec data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256::compute(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(hmac, rfc4231_case6_long_key) {
  const byte_vec key(131, 0xaa);
  const auto mac = hmac_sha256::compute(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(hmac, rfc4231_case7_long_key_and_data) {
  const byte_vec key(131, 0xaa);
  const auto mac = hmac_sha256::compute(
      key, bytes_of("This is a test using a larger than block-size key and a "
                    "larger than block-size data. The key needs to be hashed "
                    "before being used by the HMAC algorithm."));
  EXPECT_EQ(to_hex(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(hmac, incremental_equals_oneshot) {
  const byte_vec key = from_hex("000102030405060708090a0b0c0d0e0f");
  byte_vec data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  hmac_sha256 h(key);
  h.update(std::span(data).subspan(0, 100));
  h.update(std::span(data).subspan(100, 150));
  h.update(std::span(data).subspan(250));
  EXPECT_EQ(h.finish(), hmac_sha256::compute(key, data));
}

TEST(hmac, different_keys_different_macs) {
  const byte_vec k1(32, 0x01), k2(32, 0x02);
  const auto data = bytes_of("same message");
  EXPECT_NE(hmac_sha256::compute(k1, data), hmac_sha256::compute(k2, data));
}

TEST(hmac, equal_is_constant_time_comparison_api) {
  hmac_sha256::mac a{}, b{};
  EXPECT_TRUE(hmac_sha256::equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(hmac_sha256::equal(a, b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(hmac_sha256::equal(a, b));
}

// ---------------------------------------------------------------------------
// hex helpers
// ---------------------------------------------------------------------------

TEST(bytes, hex_round_trip) {
  const byte_vec v = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(v), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), v);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), v);
}

TEST(bytes, from_hex_rejects_malformed) {
  EXPECT_THROW(from_hex("abc"), error);
  EXPECT_THROW(from_hex("zz"), error);
}

TEST(bytes, le16_round_trip) {
  byte_vec buf(4, 0);
  store_le16(buf, 1, 0xbeef);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(buf[2], 0xbe);
  EXPECT_EQ(load_le16(buf, 1), 0xbeef);
}

// ---------------------------------------------------------------------------
// SIMD backend differential battery (PR 8)
//
// Every backend the CPU supports must produce byte-identical digests to
// the scalar reference, over adversarial lengths (block boundaries, the
// padding cliff at 55/56, multi-block AVX2 pairs) AND over the checked-in
// wire fuzz corpus — real frame bytes, not synthetic patterns. Backends
// the CPU lacks are SKIPPED, not failed: the suite must pass on any
// x86-64 (and, compiled portable, collapses to scalar-vs-scalar).
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random fill (splitmix64), so failures replay.
byte_vec prng_bytes(std::size_t n, std::uint64_t seed) {
  byte_vec out(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    out[i] = static_cast<std::uint8_t>((z ^ (z >> 31)) & 0xff);
  }
  return out;
}

/// RAII backend override: forces `b` for the test body, restores the
/// environment's pick afterwards even on assertion failure.
class forced_backend {
 public:
  explicit forced_backend(sha256_backend b)
      : prev_(sha256_active_backend()), ok_(sha256_force_backend(b)) {}
  ~forced_backend() { sha256_force_backend(prev_); }
  bool ok() const { return ok_; }

 private:
  sha256_backend prev_;
  bool ok_;
};

class sha256_backends : public ::testing::TestWithParam<sha256_backend> {
 protected:
  void SetUp() override {
    if (!sha256_backend_supported(GetParam())) {
      GTEST_SKIP() << "backend " << to_string(GetParam())
                   << " not supported on this CPU/build";
    }
  }
};

TEST_P(sha256_backends, matches_scalar_on_boundary_lengths) {
  // 0/1: empty+tiny. 55/56: the padding cliff (56 spills a second
  // block). 63/64/65: block boundary. 127..129: the AVX2 two-block
  // pair boundary. 4096: bulk. 65535: or_max, the largest OR a wire
  // frame can carry. 70000: beyond any frame, multi-block remainder mix.
  const std::size_t lengths[] = {0,  1,  55,  56,  63,   64,   65,
                                 96, 127, 128, 129, 4096, 65535, 70000};
  for (const std::size_t n : lengths) {
    const byte_vec msg = prng_bytes(n, 0xd1a1ed00ull + n);
    sha256::digest want;
    {
      forced_backend f(sha256_backend::scalar);
      ASSERT_TRUE(f.ok());
      want = sha256::hash(msg);
    }
    forced_backend f(GetParam());
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(to_hex(sha256::hash(msg)), to_hex(want))
        << "backend " << to_string(GetParam()) << " diverges at length "
        << n;
  }
}

TEST_P(sha256_backends, matches_scalar_on_incremental_chunking) {
  // Chunked updates stress the partial-block buffer against the
  // multi-block bulk path: every chunk size crosses block boundaries at
  // different phases.
  const byte_vec msg = prng_bytes(3000, 0xfeedface);
  sha256::digest want;
  {
    forced_backend f(sha256_backend::scalar);
    ASSERT_TRUE(f.ok());
    want = sha256::hash(msg);
  }
  forced_backend f(GetParam());
  ASSERT_TRUE(f.ok());
  for (const std::size_t chunk : {1u, 7u, 64u, 65u, 191u, 1024u}) {
    sha256 h;
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      h.update(std::span<const std::uint8_t>(msg).subspan(
          off, std::min(chunk, msg.size() - off)));
    }
    EXPECT_EQ(to_hex(h.finish()), to_hex(want))
        << "backend " << to_string(GetParam()) << " chunk " << chunk;
  }
}

TEST_P(sha256_backends, matches_scalar_on_wire_fuzz_corpus) {
  // Real frame bytes from the wire fuzz battery's checked-in corpus.
  const std::filesystem::path dir = DIALED_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir))
      << "fuzz corpus missing: " << dir;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << entry.path();
    byte_vec data((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    sha256::digest want;
    {
      forced_backend f(sha256_backend::scalar);
      ASSERT_TRUE(f.ok());
      want = sha256::hash(data);
    }
    forced_backend f(GetParam());
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(to_hex(sha256::hash(data)), to_hex(want))
        << "backend " << to_string(GetParam()) << " diverges on corpus "
        << entry.path();
    ++files;
  }
  EXPECT_GT(files, 0u) << "corpus directory is empty";
}

TEST_P(sha256_backends, hmac_keystate_equals_from_scratch) {
  forced_backend f(GetParam());
  ASSERT_TRUE(f.ok());
  for (const std::size_t key_len : {16u, 32u, 64u, 65u, 200u}) {
    const byte_vec key = prng_bytes(key_len, 0x4b4b + key_len);
    const byte_vec msg = prng_bytes(777, 0x6d6d);
    const auto ks = hmac_keystate::derive(key);
    EXPECT_EQ(to_hex(hmac_sha256::compute(ks, msg)),
              to_hex(hmac_sha256::compute(key, msg)))
        << "keystate MAC diverges, key length " << key_len;
  }
}

INSTANTIATE_TEST_SUITE_P(all, sha256_backends,
                         ::testing::Values(sha256_backend::scalar,
                                           sha256_backend::avx2,
                                           sha256_backend::shani),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(sha256_dispatch, active_backend_is_supported) {
  EXPECT_TRUE(sha256_backend_supported(sha256_active_backend()));
  // scalar must exist everywhere — it is the reference and the fallback.
  EXPECT_TRUE(sha256_backend_supported(sha256_backend::scalar));
}

TEST(sha256_dispatch, force_rejects_unsupported_and_keeps_current) {
  // Exercise only when some backend genuinely is unsupported (portable
  // builds / non-SHA CPUs); otherwise nothing to observe.
  const auto before = sha256_active_backend();
  for (const auto b :
       {sha256_backend::scalar, sha256_backend::avx2,
        sha256_backend::shani}) {
    if (sha256_backend_supported(b)) continue;
    EXPECT_FALSE(sha256_force_backend(b));
    EXPECT_EQ(sha256_active_backend(), before);
  }
}

// ---------------------------------------------------------------------------
// midstate save/restore + finish() auto-reset (PR 8)
// ---------------------------------------------------------------------------

TEST(sha256_midstate, save_restore_resumes_at_block_boundary) {
  const byte_vec head = prng_bytes(128, 1);  // two whole blocks
  const byte_vec tail = prng_bytes(100, 2);
  sha256 ref;
  ref.update(head);
  ref.update(tail);
  const auto want = ref.finish();

  sha256 h;
  h.update(head);
  const auto mid = h.save();
  // Resume from the midstate in a FRESH object: the whole point is
  // skipping the head's compressions.
  sha256 resumed;
  resumed.restore(mid);
  resumed.update(tail);
  EXPECT_EQ(to_hex(resumed.finish()), to_hex(want));
  // The midstate is reusable: restore again, different tail.
  sha256 again;
  again.restore(mid);
  again.update(head);  // any other continuation
  sha256 ref2;
  ref2.update(head);
  ref2.update(head);
  EXPECT_EQ(to_hex(again.finish()), to_hex(ref2.finish()));
}

TEST(sha256_midstate, save_off_boundary_throws) {
  sha256 h;
  h.update(prng_bytes(65, 3));  // one byte past a block boundary
  EXPECT_THROW((void)h.save(), error);
}

TEST(sha256_finish, auto_resets_for_reuse) {
  const byte_vec a = bytes_of("first message");
  const byte_vec b = bytes_of("second message");
  sha256 h;
  h.update(a);
  const auto da = h.finish();
  h.update(b);  // no explicit reset(): finish() re-armed the object
  const auto db = h.finish();
  EXPECT_EQ(to_hex(da), to_hex(sha256::hash(a)));
  EXPECT_EQ(to_hex(db), to_hex(sha256::hash(b)));
}

TEST(hmac_keystate, finish_rearms_for_same_key) {
  const byte_vec key = prng_bytes(32, 4);
  const auto ks = hmac_keystate::derive(key);
  hmac_sha256 mac(ks);
  mac.update(bytes_of("one"));
  const auto m1 = mac.finish();
  mac.update(bytes_of("two"));  // reuse without re-keying
  const auto m2 = mac.finish();
  EXPECT_EQ(to_hex(m1), to_hex(hmac_sha256::compute(key, bytes_of("one"))));
  EXPECT_EQ(to_hex(m2), to_hex(hmac_sha256::compute(key, bytes_of("two"))));
}

}  // namespace
}  // namespace dialed::crypto
