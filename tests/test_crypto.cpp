// SHA-256 (FIPS 180-4 / NIST CAVP vectors) and HMAC-SHA256 (RFC 4231).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dialed::crypto {
namespace {

byte_vec bytes_of(const std::string& s) {
  return byte_vec(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// SHA-256 known-answer tests
// ---------------------------------------------------------------------------

struct sha_vector {
  std::string message;
  std::string digest_hex;
};

class sha256_kat : public ::testing::TestWithParam<sha_vector> {};

TEST_P(sha256_kat, matches_reference_digest) {
  const auto& v = GetParam();
  const auto d = sha256::hash(bytes_of(v.message));
  EXPECT_EQ(to_hex(d), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    nist, sha256_kat,
    ::testing::Values(
        sha_vector{"",
                   "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
                   "7852b855"},
        sha_vector{"abc",
                   "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
                   "f20015ad"},
        sha_vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
                   "19db06c1"},
        sha_vector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                   "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
                   "7afee9d1"},
        sha_vector{"The quick brown fox jumps over the lazy dog",
                   "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
                   "37c9e592"}));

TEST(sha256, million_a) {
  sha256 h;
  const byte_vec chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(sha256, reset_restores_initial_state) {
  sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Incremental hashing must be chunking-invariant.
class sha256_chunking : public ::testing::TestWithParam<int> {};

TEST_P(sha256_chunking, incremental_equals_oneshot) {
  const int chunk = GetParam();
  byte_vec msg(257);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto expect = sha256::hash(msg);
  sha256 h;
  for (std::size_t pos = 0; pos < msg.size();
       pos += static_cast<std::size_t>(chunk)) {
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(chunk),
                              msg.size() - pos);
    h.update(std::span(msg).subspan(pos, n));
  }
  EXPECT_EQ(h.finish(), expect);
}

INSTANTIATE_TEST_SUITE_P(chunks, sha256_chunking,
                         ::testing::Values(1, 2, 3, 7, 31, 63, 64, 65, 128,
                                           255));

// Boundary lengths around the padding edge (55/56/63/64 bytes).
class sha256_lengths : public ::testing::TestWithParam<int> {};

TEST_P(sha256_lengths, consistent_with_prefix_property) {
  // hash(m) must differ from hash(m || 0x00) — trivial but catches padding
  // bugs at block boundaries.
  const int n = GetParam();
  byte_vec msg(static_cast<std::size_t>(n), 0xab);
  byte_vec ext = msg;
  ext.push_back(0x00);
  EXPECT_NE(sha256::hash(msg), sha256::hash(ext));
}

INSTANTIATE_TEST_SUITE_P(boundaries, sha256_lengths,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128));

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(hmac, rfc4231_case1) {
  const byte_vec key(20, 0x0b);
  const auto mac = hmac_sha256::compute(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(hmac, rfc4231_case2) {
  const auto mac = hmac_sha256::compute(
      bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(hmac, rfc4231_case3) {
  const byte_vec key(20, 0xaa);
  const byte_vec data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256::compute(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(hmac, rfc4231_case6_long_key) {
  const byte_vec key(131, 0xaa);
  const auto mac = hmac_sha256::compute(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(hmac, rfc4231_case7_long_key_and_data) {
  const byte_vec key(131, 0xaa);
  const auto mac = hmac_sha256::compute(
      key, bytes_of("This is a test using a larger than block-size key and a "
                    "larger than block-size data. The key needs to be hashed "
                    "before being used by the HMAC algorithm."));
  EXPECT_EQ(to_hex(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(hmac, incremental_equals_oneshot) {
  const byte_vec key = from_hex("000102030405060708090a0b0c0d0e0f");
  byte_vec data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  hmac_sha256 h(key);
  h.update(std::span(data).subspan(0, 100));
  h.update(std::span(data).subspan(100, 150));
  h.update(std::span(data).subspan(250));
  EXPECT_EQ(h.finish(), hmac_sha256::compute(key, data));
}

TEST(hmac, different_keys_different_macs) {
  const byte_vec k1(32, 0x01), k2(32, 0x02);
  const auto data = bytes_of("same message");
  EXPECT_NE(hmac_sha256::compute(k1, data), hmac_sha256::compute(k2, data));
}

TEST(hmac, equal_is_constant_time_comparison_api) {
  hmac_sha256::mac a{}, b{};
  EXPECT_TRUE(hmac_sha256::equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(hmac_sha256::equal(a, b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(hmac_sha256::equal(a, b));
}

// ---------------------------------------------------------------------------
// hex helpers
// ---------------------------------------------------------------------------

TEST(bytes, hex_round_trip) {
  const byte_vec v = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(v), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), v);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), v);
}

TEST(bytes, from_hex_rejects_malformed) {
  EXPECT_THROW(from_hex("abc"), error);
  EXPECT_THROW(from_hex("zz"), error);
}

TEST(bytes, le16_round_trip) {
  byte_vec buf(4, 0);
  store_le16(buf, 1, 0xbeef);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(buf[2], 0xbe);
  EXPECT_EQ(load_le16(buf, 1), 0xbeef);
}

}  // namespace
}  // namespace dialed::crypto
