// The common worker pool behind fleet::verifier_hub::verify_batch:
// completion of every index, result slot isolation, exception transport,
// reuse across batches and the 0-worker inline degradation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dialed {
namespace {

TEST(thread_pool, runs_every_index_exactly_once) {
  thread_pool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(thread_pool, results_land_in_their_own_slots) {
  thread_pool pool(3);
  constexpr std::size_t n = 4096;
  std::vector<std::size_t> out(n, 0);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(thread_pool, reusable_across_many_batches) {
  thread_pool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 5000u);
}

TEST(thread_pool, zero_workers_degrades_to_inline_loop) {
  thread_pool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> out(64, 0);
  // No pool threads exist, so the body observably runs on this thread.
  const auto me = std::this_thread::get_id();
  pool.parallel_for(out.size(), [&](std::size_t i) {
    ASSERT_EQ(std::this_thread::get_id(), me);
    out[i] = 1;
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(thread_pool, first_exception_is_rethrown_and_batch_drains) {
  thread_pool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(
      pool.parallel_for(n,
                        [&](std::size_t i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                          if (i % 97 == 0) throw error("boom");
                        }),
      error);
  // A throwing index must not abort the rest of the batch.
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  // ...and the pool is still usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(thread_pool, inline_fallback_honors_the_same_exception_contract) {
  // The 0-worker degradation must drain the whole batch too, not abort at
  // the first throw.
  thread_pool pool(0);
  std::vector<int> hits(100, 0);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   hits[i] = 1;
                                   if (i == 3) throw error("boom");
                                 }),
               error);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(thread_pool, concurrent_parallel_for_callers_are_serialized) {
  thread_pool pool(2);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(64, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 20u * 64u);
}

}  // namespace
}  // namespace dialed
