// End-to-end: the full DIALED pipeline (compile -> instrument -> link ->
// execute under APEX -> SW-Att -> verify/abstract-execute) across mixed
// benign and adversarial rounds — the deployment loop of paper §III.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "proto/session.h"

namespace dialed {
namespace {

using test::test_key;

TEST(e2e, fig1_full_story) {
  const auto prog =
      apps::build_app(apps::fig1_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  vrf.core().add_policy(apps::dose_actuation_policy());

  // Round 1: benign command, accepted; Vrf learns the true dose.
  auto v1 = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig1_benign(5)));
  EXPECT_TRUE(v1.accepted);
  EXPECT_EQ(v1.replayed_result, 5);

  // Round 2: the paper's control-flow attack.
  auto v2 = vrf.check(
      dev.invoke(vrf.new_challenge(), apps::fig1_attack(prog, 15)));
  EXPECT_FALSE(v2.accepted);
  EXPECT_TRUE(v2.has(verifier::attack_kind::control_flow_attack));
  EXPECT_TRUE(v2.has(verifier::attack_kind::policy_violation));
  EXPECT_FALSE(v2.has(verifier::attack_kind::data_only_attack));

  // Round 3: the device recovers; a fresh benign round is accepted again.
  auto v3 = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig1_benign(3)));
  EXPECT_TRUE(v3.accepted);
}

TEST(e2e, fig2_full_story) {
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());

  auto v1 = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_benign(1, 3)));
  EXPECT_TRUE(v1.accepted);

  auto v2 = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
  EXPECT_FALSE(v2.accepted);
  EXPECT_TRUE(v2.has(verifier::attack_kind::data_only_attack));
  // Control flow was untouched — exactly the CFA blind spot.
  EXPECT_FALSE(v2.has(verifier::attack_kind::control_flow_attack));
}

TEST(e2e, every_evaluation_app_verifies_at_dialed_level) {
  for (const auto& app : apps::evaluation_apps()) {
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, test_key());
    proto::verifier_session vrf(prog, test_key());
    for (int round = 0; round < 3; ++round) {
      const auto v =
          vrf.check(dev.invoke(vrf.new_challenge(), app.representative_input));
      EXPECT_TRUE(v.accepted) << app.name << " round " << round;
    }
  }
}

TEST(e2e, sensor_values_reconstructed_from_ilog) {
  // The verifier learns the sensed value itself from the attested logs —
  // the PoX-style "authenticated sensing" use case.
  auto app = apps::evaluation_apps()[2];  // UltrasonicRanger
  const auto prog = apps::build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 2;
  inv.adc_samples = {2320, 2320};  // 40 cm
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 40);
}

TEST(e2e, spoofed_sensor_claim_detected) {
  // A compromised device cannot claim a different result than its inputs
  // produce: the mailbox result is not attested, the replay output is.
  auto app = apps::evaluation_apps()[1];  // FireSensor
  const auto prog = apps::build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 50;
  inv.adc_samples = {800};  // avg 100 -> alarm
  auto rep = dev.invoke(vrf.new_challenge(), inv);
  rep.claimed_result = 0;  // "all quiet here"
  const auto v = vrf.check(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::result_forged));
  EXPECT_EQ(v.replayed_result, 100);
}

TEST(e2e, post_execution_log_tamper_detected) {
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv = apps::fig2_benign(1, 2);
  const auto chal = vrf.new_challenge();
  auto rep = dev.invoke(chal, inv);
  // Attacker rewrites an I-Log slot after attestation (in transit).
  rep.or_bytes[rep.or_bytes.size() - 24] ^= 0x40;
  const auto v = vrf.check(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::mac_invalid));
}

TEST(e2e, abort_report_rejected_with_abort_hint) {
  // Overflow the OR: the device aborts before attestation; Vrf must reject
  // and can tell the operator the instrumentation tripped.
  const auto prog = test::build_op(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + 1; } return s; }",
      "op", instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 5000;
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::instrumentation_abort) ||
              v.has(verifier::attack_kind::mac_invalid));
}

TEST(e2e, cross_app_isolation_of_verifiers) {
  // A report from app A must not verify against app B's reference build.
  const auto prog_a =
      apps::build_app(apps::fig1_app(), instr::instrumentation::dialed);
  const auto prog_b =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev_a(prog_a, test_key());
  proto::verifier_session vrf_b(prog_b, test_key());
  const auto chal = vrf_b.new_challenge();
  const auto rep = dev_a.invoke(chal, apps::fig1_benign(2));
  const auto v = vrf_b.check(rep);
  EXPECT_FALSE(v.accepted);
}

class e2e_ablation
    : public ::testing::TestWithParam<instr::pass_options> {};

TEST_P(e2e_ablation, benign_verifies_and_fig2_attack_detected) {
  // Every instrumentation configuration must stay sound end-to-end: the
  // replay executes whatever binary was deployed, so ablations change
  // cost, never verification correctness.
  const auto prog = apps::build_app(
      apps::fig2_app(), instr::instrumentation::dialed, GetParam());
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());

  const auto v1 =
      vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_benign(1, 3)));
  EXPECT_TRUE(v1.accepted);
  EXPECT_EQ(v1.replayed_result, 5);

  const auto v2 = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
  EXPECT_FALSE(v2.accepted);
  EXPECT_TRUE(v2.has(verifier::attack_kind::data_only_attack));
}

instr::pass_options opt_default() { return {}; }
instr::pass_options opt_cf() {
  instr::pass_options o;
  o.optimized_cf = true;
  return o;
}
instr::pass_options opt_logall() {
  instr::pass_options o;
  o.log_all_reads = true;
  return o;
}
instr::pass_options opt_dynamic() {
  instr::pass_options o;
  o.static_read_filter = false;
  o.static_write_filter = false;
  return o;
}

INSTANTIATE_TEST_SUITE_P(configs, e2e_ablation,
                         ::testing::Values(opt_default(), opt_cf(),
                                           opt_logall(), opt_dynamic()));

TEST(e2e, hundred_round_soak) {
  const auto prog = test::build_op(
      "int op(int a, int b) { int s = 0; int i;"
      "  for (i = 0; i < a; i++) { s = s + b; } return s; }",
      "op", instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  for (std::uint16_t r = 0; r < 100; ++r) {
    proto::invocation inv;
    inv.args[0] = static_cast<std::uint16_t>(r % 7);
    inv.args[1] = static_cast<std::uint16_t>(r * 3);
    const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
    ASSERT_TRUE(v.accepted) << "round " << r;
    ASSERT_EQ(v.replayed_result,
              static_cast<std::uint16_t>((r % 7) * (r * 3)));
  }
}

}  // namespace
}  // namespace dialed
