// Standalone Tiny-CFA verification: path reconstruction from CF-Log alone.
// Establishes the paper's layering claim operationally — CFA catches the
// Fig. 1 control-flow attack, and is provably blind to the Fig. 2
// data-only attack, which is exactly why DIALED exists.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "verifier/cfa_check.h"
#include "verifier/verifier.h"

namespace dialed::verifier {
namespace {

using test::build_op;
using test::test_key;

attestation_report run_once(const instr::linked_program& prog,
                            const proto::invocation& inv) {
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  return dev.invoke(chal, inv);
}

proto::invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

TEST(cfa_walk, straight_line_op_reconstructs) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                             instr::instrumentation::tinycfa);
  const auto rep = run_once(prog, args(1, 2));
  const auto r = check_cfa_log(prog, rep);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.entries_consumed, 0);
  EXPECT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), prog.er_min);
}

TEST(cfa_walk, loop_path_length_tracks_trip_count) {
  const auto prog = build_op(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + i; } return s; }",
      "op", instr::instrumentation::tinycfa);
  const auto r2 = check_cfa_log(prog, run_once(prog, args(2)));
  const auto r8 = check_cfa_log(prog, run_once(prog, args(8)));
  ASSERT_TRUE(r2.ok);
  ASSERT_TRUE(r8.ok);
  EXPECT_GT(r8.entries_consumed, r2.entries_consumed);
}

TEST(cfa_walk, calls_and_returns_balanced) {
  const auto prog = build_op(
      "int leaf(int x) { return x * 2; }"
      "int mid(int x) { return leaf(x) + 1; }"
      "int op(int a) { return mid(a) + leaf(a); }",
      "op", instr::instrumentation::tinycfa);
  const auto r = check_cfa_log(prog, run_once(prog, args(5)));
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings[0].detail);
}

TEST(cfa_walk, works_in_optimized_cf_mode) {
  instr::pass_options opts;
  opts.optimized_cf = true;
  const auto prog = build_op(
      "int leaf(int x) { return x + 1; }"
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = leaf(s); } return s; }",
      "op", instr::instrumentation::tinycfa, opts);
  const auto r = check_cfa_log(prog, run_once(prog, args(4)));
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings[0].detail);
}

TEST(cfa_walk, rejects_dialed_mode_programs) {
  const auto prog = build_op("int op(int a) { return a; }", "op",
                             instr::instrumentation::dialed);
  const auto rep = run_once(prog, args(1));
  EXPECT_THROW(check_cfa_log(prog, rep), error);
}

TEST(cfa_walk, tampered_cf_entry_detected) {
  const auto prog = build_op(
      "int op(int n) { if (n > 3) { return 1; } return 2; }", "op",
      instr::instrumentation::tinycfa);
  auto rep = run_once(prog, args(5));
  ASSERT_TRUE(check_cfa_log(prog, rep).ok);
  // Flip a bit in the first CF entry (slot 0 is at or_max).
  rep.or_bytes[rep.or_bytes.size() - 2] ^= 0x02;
  const auto r = check_cfa_log(prog, rep);
  EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------------
// The paper's central narrative, at the CFA layer
// ---------------------------------------------------------------------------

TEST(cfa_story, fig1_attack_detected_by_cfa_alone) {
  const auto prog =
      apps::build_app(apps::fig1_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};

  const auto benign = dev.invoke(chal, apps::fig1_benign(5));
  EXPECT_TRUE(check_cfa_log(prog, benign).ok);

  const auto attacked = dev.invoke(chal, apps::fig1_attack(prog, 15));
  ASSERT_TRUE(attacked.exec);  // APEX saw nothing wrong
  const auto r = check_cfa_log(prog, attacked);
  EXPECT_FALSE(r.ok);
  bool cf_attack = false;
  for (const auto& f : r.findings) {
    if (f.kind == attack_kind::control_flow_attack) cf_attack = true;
  }
  EXPECT_TRUE(cf_attack);
}

TEST(cfa_story, fig2_attack_invisible_to_cfa) {
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto attacked = dev.invoke(chal, apps::fig2_attack());
  const auto r = check_cfa_log(prog, attacked);
  // The data-only attack's path is perfectly valid: CFA accepts it.
  EXPECT_TRUE(r.ok);
}

TEST(cfa_story, op_verifier_integrates_the_walker) {
  const auto prog =
      apps::build_app(apps::fig1_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  op_verifier vrf(prog, test_key());
  std::array<std::uint8_t, 16> chal{};

  EXPECT_TRUE(vrf.verify(dev.invoke(chal, apps::fig1_benign(4))).accepted);
  const auto v = vrf.verify(dev.invoke(chal, apps::fig1_attack(prog, 15)));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::control_flow_attack));
}

TEST(cfa_story, evaluation_apps_walk_cleanly) {
  for (const auto& app : apps::evaluation_apps()) {
    const auto prog = apps::build_app(app, instr::instrumentation::tinycfa);
    const auto rep = run_once(prog, app.representative_input);
    const auto r = check_cfa_log(prog, rep);
    EXPECT_TRUE(r.ok) << app.name << ": "
                      << (r.findings.empty() ? "" : r.findings[0].detail);
  }
}

}  // namespace
}  // namespace dialed::verifier
